"""Microbenchmarks of the simulation kernel itself.

Not a paper exhibit — these measure simulated-cycles-per-second of the
core building blocks so performance regressions in the simulator are
caught alongside the reproduction benchmarks.
"""

import os
import time
from itertools import count

from tests.helpers import make_request
from repro.core.system import build_system
from repro.dram.controller import CommandEngine
from repro.dram.device import SdramDevice
from repro.dram.timing import DramTiming
from repro.experiments import bench
from repro.obs import NullTracer
from repro.sim.config import DdrGeneration, NocDesign, SystemConfig

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
TRAJECTORY_PATH = os.path.join(REPO_ROOT, bench.TRAJECTORY_FILE)
#: The naive per-cycle kernel's measurement lives in BENCH_5.json's
#: baseline; later trajectory files baseline against the previous PR's
#: kernel, so the historical 2x claim is always judged against this file.
NAIVE_BASELINE_PATH = os.path.join(REPO_ROOT, "BENCH_5.json")


def test_full_system_cycles_per_second(benchmark):
    system = build_system(SystemConfig(app="single_dtv", cycles=100_000,
                                       design=NocDesign.GSS_SAGM))

    def step_chunk():
        for _ in range(500):
            system.simulator.step()

    benchmark(step_chunk)


def test_dram_engine_throughput(benchmark):
    timing = DramTiming.for_clock(DdrGeneration.DDR2, 333)
    ids = count()

    def serve_batch():
        device = SdramDevice(timing)
        engine = CommandEngine(device, burst_beats=8)
        pending = [
            make_request(request_id=next(ids), bank=i % 8, row=i // 8, beats=16)
            for i in range(64)
        ]
        cycle = 0
        while (pending or not engine.idle) and cycle < 10_000:
            if pending and engine.has_space:
                engine.accept(pending.pop(0), cycle)
            engine.tick(cycle)
            engine.drain_finished()
            cycle += 1

    benchmark(serve_batch)


def test_conv_system_cycles_per_second(benchmark):
    system = build_system(SystemConfig(app="dual_dtv", cycles=100_000,
                                       design=NocDesign.CONV))

    def step_chunk():
        for _ in range(500):
            system.simulator.step()

    benchmark(step_chunk)


def test_kernel_speedup_vs_recorded_naive_baseline():
    """The fast-path kernel must hold ≥2x the naive kernel's cycles/sec.

    ``BENCH_5.json``'s baseline records the last naive per-cycle kernel
    (pre-idle-skip); every kernel since — idle-skip, then the event
    calendar queue — must keep the full-system GSS+SAGM throughput at
    least 2x above it.  This test re-measures the current tree and
    asserts that floor, judged on the raw ratio or — when this host
    differs from the recording host — on the calibration-scaled ratio,
    whichever is more representative.  Up to three measurement attempts
    absorb transient host noise (each attempt is itself a min-of-reps
    estimate)."""
    recorded = bench.load_trajectory(NAIVE_BASELINE_PATH)
    baseline = recorded["baseline"]
    base_cps = float(
        baseline["full_system_gss_sagm"]["cycles_per_second"]
    )

    best_raw = best_scaled = 0.0
    for _ in range(3):
        result = bench.bench_full_system(
            NocDesign.GSS_SAGM, "single_dtv", cycles=12_000,
            reps=4, warmup_reps=1,
        )
        current = {"calibration_kops": bench.calibrate()}
        scale = bench.machine_scale(baseline, current)
        raw = result.cycles_per_second / base_cps
        scaled = result.cycles_per_second / (base_cps * scale)
        best_raw = max(best_raw, raw)
        best_scaled = max(best_scaled, scaled)
        if best_raw >= 2.0 or best_scaled >= 2.0:
            break

    assert best_raw >= 2.0 or best_scaled >= 2.0, (
        f"full-system GSS+SAGM speedup fell below 2x the recorded naive "
        f"baseline ({base_cps:.0f} c/s): best raw {best_raw:.2f}x, best "
        f"calibration-scaled {best_scaled:.2f}x"
    )


def test_recorded_trajectory_is_monotone():
    """The committed ``BENCH_<n>.json`` history must never walk backwards.

    Each file's ``current`` point is the kernel that PR shipped.  After
    scaling out host speed (cycles/sec per calibration kop), every later
    point must stay within tolerance of the best point recorded before
    it — a PR that trades away more than the measurement noise floor on
    any standing benchmark has to say so by rewriting history, not by
    silently appending a slower point.  Tolerance matches the noise
    floor documented in BENCH_7.json's protocol (an untouched-code
    control benchmark swings ~0.9-1.1x between interleaved rounds).

    Pure file arithmetic — no measurement, so it is deterministic."""
    import glob

    paths = sorted(
        glob.glob(os.path.join(REPO_ROOT, "BENCH_*.json")),
        key=lambda p: int(os.path.basename(p)[6:-5]),
    )
    assert TRAJECTORY_PATH in paths, "current trajectory file not committed"
    tolerance = 0.25
    best: dict = {}
    for path in paths:
        point = bench.load_trajectory(path)["current"]
        kops = float(point["calibration_kops"])
        for name, entry in point.items():
            if not isinstance(entry, dict) or "cycles_per_second" not in entry:
                continue
            scaled = float(entry["cycles_per_second"]) / kops
            prior_best = best.get(name)
            if prior_best is not None:
                floor = prior_best * (1.0 - tolerance)
                assert scaled >= floor, (
                    f"{os.path.basename(path)}: {name} at {scaled:.2f} "
                    f"c/s-per-kop fell below the trajectory floor "
                    f"{floor:.2f} (best earlier point {prior_best:.2f})"
                )
            best[name] = max(prior_best or 0.0, scaled)


def test_benchmark_trajectory_holds():
    """The committed trajectory point must still be reachable: no
    benchmark may regress more than 20% (calibration-scaled) below the
    recorded ``current`` point — the same check CI runs via
    ``repro bench --check``."""
    recorded = bench.load_trajectory(TRAJECTORY_PATH)["current"]
    for attempt in range(3):
        point = bench.run_benchmarks(reps=4, warmup_reps=1)
        failures = bench.check_regression(recorded, point, max_regression=0.2)
        if not failures:
            return
    assert not failures, "; ".join(failures)


def test_null_tracer_overhead_bounded():
    """A disabled tracer must not slow the simulator down.

    Every emission site guards with ``if tracer:`` — falsy for both
    ``None`` and ``NullTracer`` — so the hot path with a NullTracer
    attached must stay within 5% of the untraced baseline.  Interleaved
    min-of-trials timing keeps the comparison robust on noisy CI hosts.
    """
    config = SystemConfig(app="single_dtv", cycles=100_000,
                          design=NocDesign.GSS_SAGM)
    baseline = build_system(config)
    traced = build_system(config, tracer=NullTracer())

    def time_chunk(system, cycles=2_000):
        start = time.perf_counter()
        for _ in range(cycles):
            system.simulator.step()
        return time.perf_counter() - start

    # warm both systems past startup transients (and JIT-ish dict warmup)
    time_chunk(baseline)
    time_chunk(traced)

    baseline_times, traced_times = [], []
    for _ in range(5):
        baseline_times.append(time_chunk(baseline))
        traced_times.append(time_chunk(traced))
    baseline_best = min(baseline_times)
    traced_best = min(traced_times)

    overhead = traced_best / baseline_best
    assert overhead <= 1.05, (
        f"NullTracer path is {overhead:.3f}x the untraced baseline "
        f"({traced_best:.4f}s vs {baseline_best:.4f}s per 2k cycles)"
    )


def test_sampler_overhead_bounded():
    """Telemetry sampling at the CI interval must cost at most 5%.

    The sampler ticks only at window boundaries (one cheap comparison
    per stepped cycle, one wake per window under event dispatch), so a
    system with a 1000-cycle sampler attached must stay within 5% of the
    unsampled baseline — the same guard discipline as the NullTracer.
    Interleaved min-of-trials timing keeps the comparison robust.
    """
    config = SystemConfig(app="single_dtv", cycles=1_000_000,
                          design=NocDesign.GSS_SAGM)
    baseline = build_system(config)
    sampled = build_system(config)
    sampled.attach_sampler(1_000)

    def time_chunk(system, cycles=2_000):
        start = time.perf_counter()
        for _ in range(cycles):
            system.simulator.step()
        return time.perf_counter() - start

    time_chunk(baseline)
    time_chunk(sampled)

    baseline_times, sampled_times = [], []
    for _ in range(5):
        baseline_times.append(time_chunk(baseline))
        sampled_times.append(time_chunk(sampled))
    baseline_best = min(baseline_times)
    sampled_best = min(sampled_times)

    overhead = sampled_best / baseline_best
    assert overhead <= 1.05, (
        f"sampler path is {overhead:.3f}x the unsampled baseline "
        f"({sampled_best:.4f}s vs {baseline_best:.4f}s per 2k cycles)"
    )
    assert sampled.sampler.emitted > 0
