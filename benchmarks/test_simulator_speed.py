"""Microbenchmarks of the simulation kernel itself.

Not a paper exhibit — these measure simulated-cycles-per-second of the
core building blocks so performance regressions in the simulator are
caught alongside the reproduction benchmarks.
"""

import time
from itertools import count

from tests.helpers import make_request
from repro.core.system import build_system
from repro.dram.controller import CommandEngine
from repro.dram.device import SdramDevice
from repro.dram.timing import DramTiming
from repro.obs import NullTracer
from repro.sim.config import DdrGeneration, NocDesign, SystemConfig


def test_full_system_cycles_per_second(benchmark):
    system = build_system(SystemConfig(app="single_dtv", cycles=100_000,
                                       design=NocDesign.GSS_SAGM))

    def step_chunk():
        for _ in range(500):
            system.simulator.step()

    benchmark(step_chunk)


def test_dram_engine_throughput(benchmark):
    timing = DramTiming.for_clock(DdrGeneration.DDR2, 333)
    ids = count()

    def serve_batch():
        device = SdramDevice(timing)
        engine = CommandEngine(device, burst_beats=8)
        pending = [
            make_request(request_id=next(ids), bank=i % 8, row=i // 8, beats=16)
            for i in range(64)
        ]
        cycle = 0
        while (pending or not engine.idle) and cycle < 10_000:
            if pending and engine.has_space:
                engine.accept(pending.pop(0), cycle)
            engine.tick(cycle)
            engine.drain_finished()
            cycle += 1

    benchmark(serve_batch)


def test_conv_system_cycles_per_second(benchmark):
    system = build_system(SystemConfig(app="dual_dtv", cycles=100_000,
                                       design=NocDesign.CONV))

    def step_chunk():
        for _ in range(500):
            system.simulator.step()

    benchmark(step_chunk)


def test_null_tracer_overhead_bounded():
    """A disabled tracer must not slow the simulator down.

    Every emission site guards with ``if tracer:`` — falsy for both
    ``None`` and ``NullTracer`` — so the hot path with a NullTracer
    attached must stay within 5% of the untraced baseline.  Interleaved
    min-of-trials timing keeps the comparison robust on noisy CI hosts.
    """
    config = SystemConfig(app="single_dtv", cycles=100_000,
                          design=NocDesign.GSS_SAGM)
    baseline = build_system(config)
    traced = build_system(config, tracer=NullTracer())

    def time_chunk(system, cycles=2_000):
        start = time.perf_counter()
        for _ in range(cycles):
            system.simulator.step()
        return time.perf_counter() - start

    # warm both systems past startup transients (and JIT-ish dict warmup)
    time_chunk(baseline)
    time_chunk(traced)

    baseline_times, traced_times = [], []
    for _ in range(5):
        baseline_times.append(time_chunk(baseline))
        traced_times.append(time_chunk(traced))
    baseline_best = min(baseline_times)
    traced_best = min(traced_times)

    overhead = traced_best / baseline_best
    assert overhead <= 1.05, (
        f"NullTracer path is {overhead:.3f}x the untraced baseline "
        f"({traced_best:.4f}s vs {baseline_best:.4f}s per 2k cycles)"
    )
