"""Microbenchmarks of the simulation kernel itself.

Not a paper exhibit — these measure simulated-cycles-per-second of the
core building blocks so performance regressions in the simulator are
caught alongside the reproduction benchmarks.
"""

import os
import time
from itertools import count

from tests.helpers import make_request
from repro.core.system import build_system
from repro.dram.controller import CommandEngine
from repro.dram.device import SdramDevice
from repro.dram.timing import DramTiming
from repro.experiments import bench
from repro.obs import NullTracer
from repro.sim.config import DdrGeneration, NocDesign, SystemConfig

TRAJECTORY_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    bench.TRAJECTORY_FILE,
)


def test_full_system_cycles_per_second(benchmark):
    system = build_system(SystemConfig(app="single_dtv", cycles=100_000,
                                       design=NocDesign.GSS_SAGM))

    def step_chunk():
        for _ in range(500):
            system.simulator.step()

    benchmark(step_chunk)


def test_dram_engine_throughput(benchmark):
    timing = DramTiming.for_clock(DdrGeneration.DDR2, 333)
    ids = count()

    def serve_batch():
        device = SdramDevice(timing)
        engine = CommandEngine(device, burst_beats=8)
        pending = [
            make_request(request_id=next(ids), bank=i % 8, row=i // 8, beats=16)
            for i in range(64)
        ]
        cycle = 0
        while (pending or not engine.idle) and cycle < 10_000:
            if pending and engine.has_space:
                engine.accept(pending.pop(0), cycle)
            engine.tick(cycle)
            engine.drain_finished()
            cycle += 1

    benchmark(serve_batch)


def test_conv_system_cycles_per_second(benchmark):
    system = build_system(SystemConfig(app="dual_dtv", cycles=100_000,
                                       design=NocDesign.CONV))

    def step_chunk():
        for _ in range(500):
            system.simulator.step()

    benchmark(step_chunk)


def test_idle_skip_kernel_speedup_vs_recorded_baseline():
    """The fast-path kernel must hold ≥2x the pre-PR cycles/sec.

    ``BENCH_5.json`` records the pre-PR HEAD's full-system GSS+SAGM
    throughput (measured interleaved with the post-PR kernel on one
    host).  This test re-measures the current tree and asserts the 2x
    floor, judged on the raw ratio or — when this host differs from the
    recording host — on the calibration-scaled ratio, whichever is more
    representative.  Up to three measurement attempts absorb transient
    host noise (each attempt is itself a min-of-reps estimate)."""
    recorded = bench.load_trajectory(TRAJECTORY_PATH)
    baseline = recorded["baseline"]
    base_cps = float(
        baseline["full_system_gss_sagm"]["cycles_per_second"]
    )

    best_raw = best_scaled = 0.0
    for _ in range(3):
        result = bench.bench_full_system(
            NocDesign.GSS_SAGM, "single_dtv", cycles=12_000,
            reps=4, warmup_reps=1,
        )
        current = {"calibration_kops": bench.calibrate()}
        scale = bench.machine_scale(baseline, current)
        raw = result.cycles_per_second / base_cps
        scaled = result.cycles_per_second / (base_cps * scale)
        best_raw = max(best_raw, raw)
        best_scaled = max(best_scaled, scaled)
        if best_raw >= 2.0 or best_scaled >= 2.0:
            break

    assert best_raw >= 2.0 or best_scaled >= 2.0, (
        f"full-system GSS+SAGM speedup fell below 2x the recorded pre-PR "
        f"baseline ({base_cps:.0f} c/s): best raw {best_raw:.2f}x, best "
        f"calibration-scaled {best_scaled:.2f}x"
    )


def test_benchmark_trajectory_holds():
    """The committed trajectory point must still be reachable: no
    benchmark may regress more than 20% (calibration-scaled) below the
    recorded ``current`` point — the same check CI runs via
    ``repro bench --check``."""
    recorded = bench.load_trajectory(TRAJECTORY_PATH)["current"]
    for attempt in range(3):
        point = bench.run_benchmarks(reps=4, warmup_reps=1)
        failures = bench.check_regression(recorded, point, max_regression=0.2)
        if not failures:
            return
    assert not failures, "; ".join(failures)


def test_null_tracer_overhead_bounded():
    """A disabled tracer must not slow the simulator down.

    Every emission site guards with ``if tracer:`` — falsy for both
    ``None`` and ``NullTracer`` — so the hot path with a NullTracer
    attached must stay within 5% of the untraced baseline.  Interleaved
    min-of-trials timing keeps the comparison robust on noisy CI hosts.
    """
    config = SystemConfig(app="single_dtv", cycles=100_000,
                          design=NocDesign.GSS_SAGM)
    baseline = build_system(config)
    traced = build_system(config, tracer=NullTracer())

    def time_chunk(system, cycles=2_000):
        start = time.perf_counter()
        for _ in range(cycles):
            system.simulator.step()
        return time.perf_counter() - start

    # warm both systems past startup transients (and JIT-ish dict warmup)
    time_chunk(baseline)
    time_chunk(traced)

    baseline_times, traced_times = [], []
    for _ in range(5):
        baseline_times.append(time_chunk(baseline))
        traced_times.append(time_chunk(traced))
    baseline_best = min(baseline_times)
    traced_best = min(traced_times)

    overhead = traced_best / baseline_best
    assert overhead <= 1.05, (
        f"NullTracer path is {overhead:.3f}x the untraced baseline "
        f"({traced_best:.4f}s vs {baseline_best:.4f}s per 2k cycles)"
    )
