"""Benchmark: regenerate Table V (average power, analytical model).

Paper: CONV burns ~1.33-1.55x the proposed design's power (the reorder
buffers and MemMax thread buffers); [4] is within ~0.5 %... our gate model
puts [4] ~5 % above, see EXPERIMENTS.md.
"""

from conftest import BENCH_CYCLES, BENCH_SEEDS
from repro.experiments.table5 import render, run_table5


def test_table5_static(benchmark):
    data = benchmark.pedantic(run_table5, rounds=3, iterations=1)
    print()
    print(render(data))
    for row in data.values():
        ours = row["gss+sagm+sti"]
        assert 1.25 < row["conv"] / ours < 1.6
        assert 1.0 < row["sdram-aware"] / ours < 1.12


def test_table5_with_measured_activity(benchmark):
    """Power modulated by each design's simulated switching activity."""
    data = benchmark.pedantic(
        lambda: run_table5(with_activity=True, cycles=4_000,
                           seeds=BENCH_SEEDS),
        rounds=1, iterations=1,
    )
    print()
    print(render(data))
    for row in data.values():
        assert row["conv"] > row["gss+sagm+sti"]
