"""Ablation studies of the design choices DESIGN.md calls out.

Not paper exhibits — these quantify the contribution of individual
mechanisms so a user can see *why* the headline numbers come out the way
they do:

* PCT sweep — the priority-service knob of Algorithm 1;
* SAGM split granularity — why the paper matches the device burst;
* the row-hit ``T_o(0)`` cascade stage — this paper's addition over [4];
* MemMax SDRAM-friendly skip — how much arbiter SDRAM-awareness would
  have bought the conventional design;
* link buffer depth — why shallow link buffers preserve priority service;
* refresh — the overhead the paper (and the default config) ignores.
"""

from conftest import BENCH_CYCLES, BENCH_SEEDS, BENCH_WARMUP
from repro.core.system import build_system
from repro.dram.refresh import RefreshTimer
from repro.sim.config import DdrGeneration, NocDesign, SystemConfig


def run(design=NocDesign.GSS_SAGM, mutate=None, **overrides):
    config = SystemConfig(
        app="single_dtv",
        design=design,
        priority_enabled=True,
        cycles=BENCH_CYCLES,
        warmup=BENCH_WARMUP,
        seed=BENCH_SEEDS[0],
        **overrides,
    )
    system = build_system(config)
    if mutate is not None:
        mutate(system)
    return system.run()


def test_pct_sweep(benchmark):
    """PCT: 1 degenerates to priority-equal, 6 to priority-first."""
    def sweep():
        return {pct: run(design=NocDesign.GSS, pct=pct) for pct in (1, 3, 5, 6)}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    for pct, m in results.items():
        print(f"  PCT={pct}: util={m.utilization:.3f} "
              f"lat={m.latency_all:6.1f} pri={m.latency_demand:6.1f}")
    # higher PCT should not slow priority packets down dramatically
    assert results[5].latency_demand <= results[1].latency_demand * 1.15


def test_sagm_granularity(benchmark):
    """Split granularity: matching the device burst (4 beats on DDR II)
    beats both finer and coarser splits."""
    from repro.core.sagm import SagmSplitter

    def sweep():
        out = {}
        for gran in (2, 4, 8, 16):
            def mutate(system, gran=gran):
                for ci in system.core_interfaces:
                    assert ci.splitter is not None
                    ci.splitter.granularity_beats = gran
            out[gran] = run(mutate=mutate)
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    for gran, m in results.items():
        print(f"  granularity={gran:2d} beats: util={m.utilization:.3f} "
              f"lat={m.latency_all:6.1f} waste={m.raw_utilization - m.utilization:.3f}")
    # device-burst-matched granularity is at least as good as a 2x coarser split
    assert results[4].utilization >= results[16].utilization - 0.02


def test_row_hit_stage(benchmark):
    """The T_o(0) stage keeps SAGM split chains together."""
    from repro.core.gss_flow_control import GssFlowController

    def sweep():
        out = {}
        for enabled in (True, False):
            GssFlowController.row_hit_stage = enabled
            try:
                out[enabled] = run()
            finally:
                GssFlowController.row_hit_stage = True
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    for enabled, m in results.items():
        print(f"  row_hit_stage={enabled}: util={m.utilization:.3f} "
              f"rowhit={m.row_hit_rate:.2f} lat={m.latency_all:6.1f}")
    assert results[True].row_hit_rate >= results[False].row_hit_rate - 0.02


def test_memmax_sdram_skip(benchmark):
    """How much arbiter-level SDRAM awareness would help CONV."""
    def sweep():
        out = {}
        for skip in (False, True):
            def mutate(system, skip=skip):
                system.subsystem.scheduler.sdram_friendly_skip = skip
            out[skip] = run(design=NocDesign.CONV, mutate=mutate)
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    for skip, m in results.items():
        print(f"  sdram_friendly_skip={skip}: util={m.utilization:.3f} "
              f"lat={m.latency_all:6.1f}")
    # awareness in the thread arbiter should not hurt
    assert results[True].utilization >= results[False].utilization - 0.03


def test_link_buffer_depth(benchmark):
    """Deep link buffers accumulate head-of-line blocking that priority
    packets cannot overtake (DESIGN.md decision 8)."""
    def sweep():
        return {
            depth: run(link_buffer_flits=depth)
            for depth in (8, 12, 32, 64)
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    for depth, m in results.items():
        print(f"  link buffers={depth:2d} flits: util={m.utilization:.3f} "
              f"lat={m.latency_all:6.1f} pri={m.latency_demand:6.1f}")
    assert results[12].latency_demand <= results[64].latency_demand * 1.1


def test_refresh_overhead(benchmark):
    """Auto-refresh costs ~1-2 % of cycles; the comparisons are unchanged."""
    def sweep():
        out = {}
        for enabled in (False, True):
            def mutate(system, enabled=enabled):
                if enabled:
                    system.subsystem.engine.refresh = RefreshTimer(system.timing)
            out[enabled] = run(mutate=mutate)
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    for enabled, m in results.items():
        print(f"  refresh={enabled}: util={m.utilization:.3f} "
              f"lat={m.latency_all:6.1f}")
    loss = results[False].utilization - results[True].utilization
    assert -0.01 < loss < 0.05


def test_virtual_channels(benchmark):
    """A priority virtual channel removes same-FIFO head-of-line blocking
    — the paper's alternative input-buffer organization (Section IV-A)."""
    def sweep():
        return {vcs: run(virtual_channels=vcs) for vcs in (1, 2)}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    for vcs, m in results.items():
        print(f"  virtual channels={vcs}: util={m.utilization:.3f} "
              f"lat={m.latency_all:6.1f} pri={m.latency_demand:6.1f}")
    assert results[2].latency_demand < results[1].latency_demand


def test_adaptive_routing(benchmark):
    """West-first adaptive routing (Section IV-A's alternative to XY)."""
    def sweep():
        return {adaptive: run(adaptive_routing=adaptive)
                for adaptive in (False, True)}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    for adaptive, m in results.items():
        print(f"  adaptive={adaptive}: util={m.utilization:.3f} "
              f"lat={m.latency_all:6.1f} pri={m.latency_demand:6.1f}")
    # corner-memory traffic is west-dominated: adaptivity is ~neutral here
    assert abs(results[True].utilization - results[False].utilization) < 0.05
