"""Benchmark: regenerate Table II (priority memory requests).

Paper expectations (ratios vs Table I's [4] baseline):

* CONV+PFS buys priority latency at a heavy overall cost;
* [4]+PFS buys more priority latency but degrades utilization/latency;
* GSS achieves comparable priority latency with far smaller penalties;
* GSS+SAGM is best on all three metrics (0.672 priority-latency ratio).
"""

from conftest import BENCH_CYCLES, BENCH_SEEDS, BENCH_WARMUP
from repro.experiments.table2 import render, run_table2
from repro.sim.config import NocDesign


def test_table2(benchmark):
    result = benchmark.pedantic(
        lambda: run_table2(cycles=BENCH_CYCLES, warmup=BENCH_WARMUP,
                           seeds=BENCH_SEEDS),
        rounds=1, iterations=1,
    )
    print()
    print(render(result))

    ratios = result.ratios()
    sagm = ratios[NocDesign.GSS_SAGM]
    gss = ratios[NocDesign.GSS]
    conv_pfs = ratios[NocDesign.CONV_PFS]

    # GSS+SAGM: better priority latency than plain [4] service while
    # keeping (or improving) overall utilization (paper: 1.034 / 0.672)
    assert sagm["latency_demand"] < 0.97
    assert sagm["utilization"] > 0.97
    # GSS serves priority packets faster than it serves the average packet
    averages = result.comparison.averages()
    assert (
        averages[NocDesign.GSS]["latency_demand"]
        <= averages[NocDesign.GSS]["latency_all"] * 1.02
    )
    # GSS+SAGM beats CONV+PFS on overall latency (paper: 0.922 vs 1.821)
    assert sagm["latency_all"] < conv_pfs["latency_all"]
