"""Benchmark: regenerate Table III (STI filter on high-clock DDR III).

Paper expectation: enabling the Fig. 4(b) short-turnaround filter on DDR
III at 533-800 MHz improves utilization (+9.4 % avg), overall latency
(+11.2 %), and priority latency (+12.9 %).

Known deviation (see EXPERIMENTS.md): the direction reproduces but the
magnitudes are smaller (~+2 % utilization, ~+4 % latency).  Our Fig. 6
command engine already overlaps most bank deactivation/reactivation
behind other banks' bursts, so a large share of the stalls the paper's
STI filter removes have been absorbed by the controller pipeline before
the filter can matter.
"""

from conftest import BENCH_CYCLES, BENCH_SEEDS, BENCH_WARMUP
from repro.experiments.table3 import render, run_table3


def test_table3(benchmark):
    rows = benchmark.pedantic(
        lambda: run_table3(cycles=BENCH_CYCLES, warmup=BENCH_WARMUP,
                           seeds=BENCH_SEEDS),
        rounds=1, iterations=1,
    )
    print()
    print(render(rows))

    n = len(rows)
    avg_util_gain = sum(r.utilization_improvement for r in rows) / n
    avg_latency_gain = sum(r.latency_improvement for r in rows) / n
    avg_priority_gain = sum(r.priority_latency_improvement for r in rows) / n
    # STI improves utilization and latency on average (paper: +9-13 %;
    # here smaller since the engine hides most turn-around stalls)
    assert avg_util_gain > -0.01
    assert avg_latency_gain > -0.03
    assert avg_priority_gain > -0.06
    assert avg_util_gain + avg_latency_gain > 0
