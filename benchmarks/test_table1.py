"""Benchmark: regenerate Table I (no priority memory requests).

Paper expectations (ratios vs the SDRAM-aware baseline [4]):

* CONV: lower utilization, much higher latency;
* GSS:  ~par utilization (1.018x) and latency (0.942x);
* GSS+SAGM: +3-6 % utilization, ~0.85x latency.

Known deviation (see EXPERIMENTS.md): our MemMax+Databahn model is more
capable than the paper's CONV, so CONV lands at utilization parity with
[4] instead of ~9 % below; its latency ordering (worst of all designs)
is preserved.
"""

from conftest import BENCH_CYCLES, BENCH_SEEDS, BENCH_WARMUP
from repro.experiments.table1 import render, run_table1
from repro.sim.config import NocDesign


def test_table1(benchmark):
    result = benchmark.pedantic(
        lambda: run_table1(cycles=BENCH_CYCLES, warmup=BENCH_WARMUP,
                           seeds=BENCH_SEEDS),
        rounds=1, iterations=1,
    )
    print()
    print(render(result))

    ratios = result.ratios(NocDesign.SDRAM_AWARE)
    sagm = ratios[NocDesign.GSS_SAGM]
    gss = ratios[NocDesign.GSS]
    conv = ratios[NocDesign.CONV]

    # GSS+SAGM wins utilization and latency against [4] (paper: 1.054 / 0.846)
    assert sagm["utilization"] > 1.01
    assert sagm["latency_all"] < 0.97
    # GSS is at least at parity with [4] (paper: 1.018 / 0.942)
    assert gss["utilization"] > 0.97
    assert gss["latency_all"] < 1.05
    # CONV pays the worst latency of all designs (paper: 1.59x)
    assert conv["latency_all"] == max(r["latency_all"] for r in ratios.values())
