"""Checkpoint-overhead guards.

Not a paper exhibit — these bound the cost of the crash-tolerance
machinery so enabling it never becomes a performance decision:

* running with ``checkpoint_every`` (the segmented run loop that makes
  signal checks and periodic snapshots possible) must stay within 5% of
  a plain run — segment boundaries clamp fast-forward jumps but must
  never inhibit them;
* a snapshot itself is dominated by pickling the run's accumulated
  statistics, so its cost scales with the *state protected*, not with
  the horizon — the second test pins that scaling down so a sparse
  cadence stays cheap at any horizon.
"""

import time

from repro.core.system import build_system
from repro.sim.checkpoint import load_checkpoint, save_checkpoint
from repro.sim.config import NocDesign, SystemConfig

CONFIG = SystemConfig(
    app="single_dtv", cycles=1_000_000, warmup=2_000,
    design=NocDesign.GSS_SAGM,
)


def test_checkpoint_machinery_overhead_bounded():
    """run(checkpoint_every=...) must cost <= 5% over a plain run.

    This is the cost every checkpointing ``repro run`` pays on *every*
    segment: the run loop re-enters once per 1000 cycles (the CLI's
    signal-poll cadence) and invokes the callback.  No snapshot is
    written here — save cost is cadence policy, measured separately —
    so the guard isolates the segmentation machinery itself.
    Interleaved min-of-trials timing keeps the comparison robust on
    noisy CI hosts.
    """
    baseline = build_system(CONFIG)
    segmented = build_system(CONFIG)

    def time_chunk(system, cycles=4_000, **kwargs):
        start = time.perf_counter()
        system.simulator.run(cycles, **kwargs)
        return time.perf_counter() - start

    def no_save(cycle):
        return False

    # warm both systems past startup transients
    time_chunk(baseline)
    time_chunk(segmented, checkpoint_every=1_000, on_checkpoint=no_save)

    baseline_times, segmented_times = [], []
    for _ in range(5):
        baseline_times.append(time_chunk(baseline))
        segmented_times.append(
            time_chunk(
                segmented, checkpoint_every=1_000, on_checkpoint=no_save
            )
        )
    baseline_best = min(baseline_times)
    segmented_best = min(segmented_times)

    overhead = segmented_best / baseline_best
    assert overhead <= 1.05, (
        f"segmented run is {overhead:.3f}x the plain run "
        f"({segmented_best:.4f}s vs {baseline_best:.4f}s per 4k cycles)"
    )


def test_snapshot_cost_amortizes_below_5pct_at_sparse_cadence(tmp_path):
    """One snapshot per >= 4x its own simulation horizon costs <= 5%.

    A snapshot pickles the whole system — dominated by the statistics
    history, which grows with cycles simulated — so no fixed cadence in
    cycles can bound the cost for every horizon.  What *is* bounded is
    the ratio this test pins: the wall clock of saving the state
    produced by h cycles stays well under the wall clock of simulating
    those h cycles, so any cadence that re-simulates at least ~4x the
    save's own horizon between snapshots (the metrics runner's
    ``cycles // 4`` default is 4 interior segments) keeps amortized
    overhead within a few percent — at 12k cycles and at every longer
    horizon, because both sides grow with the same state.
    """
    system = build_system(CONFIG)
    start = time.perf_counter()
    system.simulator.run(12_000)
    run_s = time.perf_counter() - start

    path = tmp_path / "bench.ckpt"
    save_times = []
    for _ in range(3):
        start = time.perf_counter()
        save_checkpoint(path, system)
        save_times.append(time.perf_counter() - start)
    save_s = min(save_times)

    # Saving 12k cycles of state must cost <= 20% of simulating them:
    # at the runner's cycles//4 cadence (4 segments per run) the
    # amortized overhead is then <= 5% of total run time.
    ratio = save_s / run_s
    assert ratio <= 0.20, (
        f"snapshot of a 12k-cycle run cost {save_s:.3f}s = {ratio:.1%} "
        f"of the {run_s:.3f}s simulation it protects (budget 20%)"
    )

    # And the snapshot is actually usable (guard against measuring a
    # fast-but-broken write path).
    restored = load_checkpoint(path)
    assert restored.simulator.cycle == system.simulator.cycle
