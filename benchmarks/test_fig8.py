"""Benchmark: regenerate Fig. 8 (performance vs number of GSS routers).

Paper expectation: utilization rises and latencies fall steeply as the
first ~3 routers around the memory corner become GSS, then plateau —
"more than four GSS routers achieve little improvement".
"""

from conftest import BENCH_CYCLES, BENCH_SEEDS, BENCH_WARMUP
from repro.experiments.fig8 import knee_index, render, run_fig8


def test_fig8(benchmark):
    curves = benchmark.pedantic(
        lambda: run_fig8(cycles=BENCH_CYCLES, warmup=BENCH_WARMUP,
                         seeds=BENCH_SEEDS),
        rounds=1, iterations=1,
    )
    print()
    print(render(curves))

    for curve in curves:
        full = curve.gss_router_counts[-1]
        # deploying GSS routers helps relative to the k=0 baseline
        assert curve.utilization[-1] >= curve.utilization[0] - 0.02
        assert curve.latency_priority[-1] <= curve.latency_priority[0] * 1.05
        # the knee lands in the first few routers (paper: 3)
        assert knee_index(curve) <= max(4, full // 2)
