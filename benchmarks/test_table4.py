"""Benchmark: regenerate Table IV (gate counts, analytical model).

Paper ratios (vs the proposed design): flow controller CONV 0.539 /
[4] 1.097; router 0.904 / 1.003; memory subsystem 3.283 / 1.065; full
3x3 NoC 1.511 / 1.035.
"""

from conftest import BENCH_CYCLES  # noqa: F401  (uniform bench imports)
from repro.experiments.table4 import render, run_table4


def test_table4(benchmark):
    data = benchmark.pedantic(run_table4, rounds=3, iterations=1)
    print()
    print(render(data))

    def ratio(module, design):
        return data[module][design] / data[module]["gss+sagm+sti"]

    # flow controller: CONV about half, [4] slightly larger than ours
    assert 0.4 < ratio("flow_controller", "conv") < 0.65
    assert 1.02 < ratio("flow_controller", "sdram-aware") < 1.2
    # router: within ~10 % across designs
    assert 0.85 < ratio("router", "conv") < 1.0
    assert 0.98 < ratio("router", "sdram-aware") < 1.05
    # memory subsystem: CONV ~3x (reorder buffers + MemMax)
    assert 2.5 < ratio("memory_subsystem", "conv") < 3.8
    assert 1.0 < ratio("memory_subsystem", "sdram-aware") < 1.15
    # full NoC: CONV ~1.5x, [4] ~1.04x
    assert 1.3 < ratio("noc_3x3", "conv") < 1.7
    assert 1.0 < ratio("noc_3x3", "sdram-aware") < 1.12
