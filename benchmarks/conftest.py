"""Benchmark configuration.

Each benchmark regenerates one paper exhibit at a reduced but meaningful
horizon (the paper uses 1 M RTL cycles; pure-Python cycle simulation runs
~10^3x slower, and the reported metrics are time-averages that stabilize
well below the default here).  Set ``REPRO_BENCH_CYCLES`` /
``REPRO_BENCH_SEEDS`` to trade time for tighter numbers.
"""

import os

BENCH_CYCLES = int(os.environ.get("REPRO_BENCH_CYCLES", 12_000))
BENCH_WARMUP = max(500, BENCH_CYCLES // 6)
BENCH_SEEDS = tuple(
    int(s) for s in os.environ.get("REPRO_BENCH_SEEDS", "2010").split(",")
)
