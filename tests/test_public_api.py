"""Public API surface tests: the names README documents must exist."""

import repro
import repro.core
import repro.cost
import repro.dram
import repro.experiments
import repro.noc
import repro.obs
import repro.sim
import repro.workloads


def test_top_level_quickstart_surface():
    config = repro.SystemConfig(app="bluray", cycles=600, warmup=100)
    metrics = repro.run_config(config)
    assert isinstance(metrics, repro.RunMetrics)
    system = repro.build_system(config)
    assert isinstance(system, repro.SocSystem)


def test_all_exports_resolve():
    for module in (repro, repro.core, repro.cost, repro.dram,
                   repro.experiments, repro.noc, repro.obs, repro.sim,
                   repro.workloads):
        for name in module.__all__:
            assert hasattr(module, name), f"{module.__name__}.{name} missing"


def test_version_present():
    assert repro.__version__


def test_design_enum_covers_paper_comparisons():
    values = {design.value for design in repro.NocDesign}
    assert values == {
        "conv", "conv+pfs", "sdram-aware", "sdram-aware+pfs",
        "gss", "gss+sagm",
    }
