"""Simulator profiling tests."""

import pytest

from repro.obs.profiler import HOOKS_LABEL, SimulatorProfiler
from repro.sim.engine import Simulator


class Spinner:
    """A component whose tick does a little measurable work."""

    def __init__(self):
        self.ticks = 0

    def tick(self, cycle):
        self.ticks += 1
        sum(range(200))


class TestProfilerUnit:
    def test_window_must_be_positive(self):
        with pytest.raises(ValueError):
            SimulatorProfiler(window_cycles=0)

    def test_step_times_each_component_class(self):
        profiler = SimulatorProfiler(window_cycles=10)
        components = [Spinner(), Spinner()]
        for cycle in range(5):
            profiler.step(components, [], cycle)
        assert profiler.calls == {"Spinner": 10}
        assert profiler.totals["Spinner"] > 0
        assert profiler.cycles_profiled == 5

    def test_hooks_timed_under_own_label(self):
        profiler = SimulatorProfiler()
        fired = []
        profiler.step([], [fired.append], 0)
        assert fired == [0]
        assert HOOKS_LABEL in profiler.totals

    def test_windows_roll(self):
        profiler = SimulatorProfiler(window_cycles=3)
        for cycle in range(7):
            profiler.step([Spinner()], [], cycle)
        assert len(profiler.windows) == 2
        first_start, first_totals = profiler.windows[0]
        assert first_start == 0
        assert "Spinner" in first_totals

    def test_shares_sum_to_one(self):
        profiler = SimulatorProfiler()
        profiler.step([Spinner()], [lambda cycle: None], 0)
        assert sum(profiler.shares().values()) == pytest.approx(1.0)

    def test_empty_shares(self):
        assert SimulatorProfiler().shares() == {}

    def test_report_renders(self):
        profiler = SimulatorProfiler(window_cycles=2)
        for cycle in range(4):
            profiler.step([Spinner()], [], cycle)
        text = profiler.report()
        assert "Spinner" in text
        assert "component class" in text
        assert "windows" in text


class TestEngineIntegration:
    def test_attach_and_step(self):
        simulator = Simulator()
        spinner = Spinner()
        simulator.add(spinner)
        profiler = SimulatorProfiler(window_cycles=5)
        simulator.attach_profiler(profiler)
        assert simulator.profiler is profiler
        simulator.run(20)
        assert spinner.ticks == 20
        assert profiler.cycles_profiled == 20
        assert profiler.calls["Spinner"] == 20

    def test_profiled_run_matches_plain_run(self):
        plain, profiled = Simulator(), Simulator()
        a, b = Spinner(), Spinner()
        plain.add(a)
        profiled.add(b)
        profiled.attach_profiler(SimulatorProfiler())
        plain.run(13)
        profiled.run(13)
        assert plain.cycle == profiled.cycle
        assert a.ticks == b.ticks

    def test_default_is_unprofiled(self):
        assert Simulator().profiler is None
