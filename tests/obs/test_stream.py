"""Telemetry stream protocol: writers, readers, manifests, Prometheus."""

import io
import json

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.stream import (
    RECORD_TYPES,
    TelemetryWriter,
    append_record,
    host_manifest,
    prometheus_exposition,
    read_stream,
    run_manifest,
    validate_stream,
)
from repro.sim.config import SystemConfig


class TestTelemetryWriter:
    def test_emits_typed_timestamped_lines(self, tmp_path):
        path = tmp_path / "t.ndjson"
        with TelemetryWriter(path) as writer:
            writer.emit("sweep_start", total=3)
            writer.emit("sweep_end", total=3)
        records = read_stream(path)
        assert [r["type"] for r in records] == ["sweep_start", "sweep_end"]
        assert all("ts" in r for r in records)
        assert writer.records_written == 2

    def test_rejects_unknown_type(self, tmp_path):
        writer = TelemetryWriter(tmp_path / "t.ndjson")
        with pytest.raises(ValueError):
            writer.emit("not_a_type")
        writer.close()

    def test_text_stream_sink(self):
        sink = io.StringIO()
        writer = TelemetryWriter(sink)
        writer.emit("heartbeat", worker=1)
        assert json.loads(sink.getvalue())["worker"] == 1
        assert writer.path is None

    def test_mode_w_truncates(self, tmp_path):
        path = tmp_path / "t.ndjson"
        path.write_text('{"type": "sweep_end", "ts": 0}\n')
        TelemetryWriter(path).emit("sweep_start", total=1)
        assert [r["type"] for r in read_stream(path)] == ["sweep_start"]

    def test_lines_sorted_keys(self, tmp_path):
        path = tmp_path / "t.ndjson"
        TelemetryWriter(path).emit("heartbeat", zeta=1, alpha=2)
        line = path.read_text().strip()
        keys = list(json.loads(line))
        assert keys == sorted(keys)


class TestAppendRecord:
    def test_interleaves_with_writer(self, tmp_path):
        path = tmp_path / "t.ndjson"
        writer = TelemetryWriter(path)
        writer.emit("sweep_start", total=2)
        # A worker process appends through its own one-shot handle.
        append_record(str(path), "job_start", key="k", worker=123)
        writer.emit("sweep_end", total=2)
        types = [r["type"] for r in read_stream(path)]
        assert types == ["sweep_start", "job_start", "sweep_end"]

    def test_rejects_unknown_type(self, tmp_path):
        with pytest.raises(ValueError):
            append_record(tmp_path / "t.ndjson", "bogus")


class TestReaders:
    def test_truncated_tail_dropped(self, tmp_path):
        path = tmp_path / "t.ndjson"
        with open(path, "w") as handle:
            handle.write('{"type": "heartbeat", "ts": 1}\n')
            handle.write('{"type": "sample", "cyc')  # interrupted producer
        records = read_stream(path)
        assert len(records) == 1

    def test_validate_counts_per_type(self):
        counts = validate_stream([
            {"type": "sweep_start"},
            {"type": "heartbeat"},
            {"type": "heartbeat"},
        ])
        assert counts == {"sweep_start": 1, "heartbeat": 2}

    def test_validate_rejects_unknown_type(self):
        with pytest.raises(ValueError):
            validate_stream([{"type": "mystery"}])
        with pytest.raises(ValueError):
            validate_stream([{"no_type": True}])

    def test_validate_rejects_malformed_sample(self):
        with pytest.raises(ValueError):
            validate_stream([{"type": "sample", "cycle": 9}])
        validate_stream([
            {"type": "sample", "cycle": 9, "span": 10, "rates": {}}
        ])


class TestManifests:
    def test_host_manifest_fields(self):
        manifest = host_manifest()
        for field in (
            "python", "implementation", "platform", "hostname",
            "cpu_count", "numpy", "git", "pid",
        ):
            assert field in manifest
        assert isinstance(manifest["numpy"], bool)

    def test_run_manifest_key_matches_sweep_store(self):
        from repro.sweep import config_payload, job_key, metrics_job

        config = SystemConfig(app="single_dtv", cycles=4_000, warmup=400)
        manifest = run_manifest(config, sample_interval=500)
        assert manifest["config_key"] == job_key(
            "metrics", config_payload(config)
        )
        assert manifest["config_key"] == metrics_job(config).key
        assert manifest["sample_interval"] == 500
        assert manifest["config"]["cycles"] == 4_000
        json.dumps(manifest)  # stream-ready

    def test_record_types_cover_protocol(self):
        assert {"run_start", "sample", "run_end", "heartbeat",
                "sweep_progress", "bench_round"} <= RECORD_TYPES


class TestPrometheus:
    def test_counter_gauge_histogram_rendering(self):
        registry = MetricsRegistry()
        registry.counter("noc.link.flits").inc(7)
        registry.gauge("buffer.highwater").set(3.0)
        hist = registry.histogram("latency.all")
        for value in (10.0, 20.0, 30.0):
            hist.record(value)
        text = prometheus_exposition(registry)
        assert "# TYPE repro_noc_link_flits counter" in text
        assert "repro_noc_link_flits 7" in text
        assert "# TYPE repro_buffer_highwater gauge" in text
        assert "# TYPE repro_latency_all summary" in text
        assert 'repro_latency_all{quantile="0.5"} 20.0' in text
        assert "repro_latency_all_sum 60.0" in text
        assert "repro_latency_all_count 3" in text

    def test_names_sanitized(self):
        registry = MetricsRegistry()
        registry.counter("dram.bank3.row-hits").inc()
        text = prometheus_exposition(registry, prefix="x")
        assert "x_dram_bank3_row_hits 1" in text

    def test_deterministic_output(self):
        def build(order):
            registry = MetricsRegistry()
            for name in order:
                registry.counter(name).inc()
            return prometheus_exposition(registry)

        assert build(["b", "a", "c"]) == build(["c", "a", "b"])
