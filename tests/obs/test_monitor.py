"""Monitor: state folding, rendering, and the CLI entry point."""

import io

from repro.obs.monitor import MonitorState, render, run_monitor
from repro.obs.stream import TelemetryWriter


def sample_record(cycle, wall_s, completed_rate=0.1):
    return {
        "type": "sample",
        "cycle": cycle,
        "span": 1_000,
        "windows": 1,
        "partial": False,
        "rates": {
            "dram.busy_cycles": 0.75,
            "dram.row_hits": 0.09,
            "dram.row_misses": 0.01,
            "requests.completed": completed_rate,
        },
        "gauges": {"noc.in_flight_packets": 30.0},
        "latency": {"all": {"count": 50.0, "mean": 180.0, "p95": 400.0}},
        "wall_s": wall_s,
    }


class TestMonitorState:
    def test_run_stream_folding(self):
        state = MonitorState()
        state.apply({"type": "run_start", "label": "x", "seed": 1})
        state.apply(sample_record(999, 1.0))
        state.apply(sample_record(1999, 1.5))
        assert state.samples_seen == 2
        assert not state.finished
        assert state.cycles_per_second() == 1000 / 0.5
        state.apply({"type": "run_end", "utilization": 0.7})
        assert state.finished

    def test_sweep_stream_folding(self):
        state = MonitorState()
        state.apply({"type": "sweep_start", "total": 4})
        state.apply({"type": "job_hit", "key": "a"})
        state.apply({"type": "job_done", "key": "b"})
        state.apply({"type": "job_fail", "key": "c"})
        assert (state.sweep_done, state.sweep_failed, state.sweep_hits) \
            == (3, 1, 1)
        state.apply({
            "type": "sweep_progress", "done": 4, "total": 4,
            "failed": 1, "hits": 1, "jobs_per_s": 2.0, "eta_s": 0.0,
        })
        assert state.sweep_done == 4
        assert not state.finished
        state.apply({"type": "sweep_end"})
        assert state.finished

    def test_heartbeats_keep_latest_per_worker(self):
        state = MonitorState()
        state.apply({"type": "sweep_start", "total": 1})
        state.apply({"type": "heartbeat", "worker": 11, "jobs_done": 1})
        state.apply({"type": "heartbeat", "worker": 11, "jobs_done": 2})
        state.apply({"type": "heartbeat", "worker": 12, "jobs_done": 1})
        assert len(state.workers) == 2
        assert state.workers[11]["jobs_done"] == 2

    def test_unknown_record_type_tolerated(self):
        state = MonitorState()
        state.apply({"type": "from_the_future", "x": 1})
        assert state.records_seen == 1


class TestRender:
    def test_run_view_lines(self):
        state = MonitorState()
        state.apply({
            "type": "run_start", "label": "single_dtv", "seed": 2010,
            "sample_interval": 1000, "config_key": "abcdef0123456789",
        })
        state.apply(sample_record(999, 1.0))
        state.apply(sample_record(1999, 1.5))
        text = render(state)
        assert "single_dtv" in text
        assert "2,000 c/s" in text
        assert "row-hit  90.0%" in text
        assert "p95=400c" in text
        assert "30 packets" in text

    def test_sweep_view_lines(self):
        state = MonitorState()
        state.apply({"type": "sweep_start", "total": 8})
        state.apply({
            "type": "sweep_progress", "done": 4, "total": 8,
            "failed": 1, "hits": 2, "jobs_per_s": 0.5, "eta_s": 8.0,
        })
        state.apply({"type": "heartbeat", "worker": 7, "jobs_done": 3})
        text = render(state)
        assert "4/8 done" in text
        assert "1 failed" in text
        assert "eta 8s" in text
        assert "7:3" in text

    def test_empty_stream_renders_placeholder(self):
        assert "no renderable records" in render(MonitorState())


class TestRunMonitor:
    def test_once_renders_and_exits_zero(self, tmp_path):
        path = tmp_path / "t.ndjson"
        with TelemetryWriter(path) as writer:
            writer.emit("sweep_start", total=1)
            writer.emit("job_done", key="k")
            writer.emit("sweep_end", total=1)
        out = io.StringIO()
        assert run_monitor(str(path), once=True, out=out) == 0
        assert "sweep done" in out.getvalue()

    def test_empty_stream_exits_one(self, tmp_path):
        path = tmp_path / "t.ndjson"
        path.write_text("")
        out = io.StringIO()
        assert run_monitor(str(path), once=True, out=out) == 1

    def test_follow_exits_on_finish_marker(self, tmp_path):
        path = tmp_path / "t.ndjson"
        with TelemetryWriter(path) as writer:
            writer.emit("sweep_start", total=1)
            writer.emit("sweep_end", total=1)
        out = io.StringIO()
        code = run_monitor(
            str(path), follow=True, refresh_s=0.01, out=out, max_seconds=5
        )
        assert code == 0
        assert "sweep done" in out.getvalue()
