"""Time-series sampler: windowing, coalescing, ring buffer, system runs."""

import pytest

from repro.core.system import build_system
from repro.obs.timeseries import (
    RingBuffer,
    Sample,
    SampleSource,
    TimeSeriesSampler,
    window_percentiles,
)
from repro.sim.config import NocDesign, SystemConfig


def make_sample(cycle, span=1, **overrides):
    fields = dict(
        cycle=cycle, span=span, windows=1, partial=False,
        totals={}, deltas={}, rates={"x": float(cycle)}, gauges={},
        latency={}, wall_s=0.0,
    )
    fields.update(overrides)
    return Sample(**fields)


class TestRingBuffer:
    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            RingBuffer(0)

    def test_keeps_most_recent_in_order(self):
        ring = RingBuffer(3)
        for cycle in range(5):
            ring.append(make_sample(cycle))
        assert [s.cycle for s in ring] == [2, 3, 4]
        assert ring.last().cycle == 4
        assert ring.appended == 5
        assert ring.evicted == 2

    def test_series_extracts_one_metric(self):
        ring = RingBuffer(4)
        for cycle in range(3):
            ring.append(make_sample(cycle))
        assert ring.series("x") == [0.0, 1.0, 2.0]
        assert ring.series("missing") == [0.0, 0.0, 0.0]

    def test_empty_last_is_none(self):
        assert RingBuffer(2).last() is None


class TestWindowPercentiles:
    def test_single_value(self):
        assert window_percentiles([7.0]) == {
            "p50": 7.0, "p95": 7.0, "p99": 7.0
        }

    def test_nearest_rank(self):
        values = [float(v) for v in range(1, 101)]
        out = window_percentiles(values)
        assert 49.0 <= out["p50"] <= 51.0
        assert out["p95"] == 95.0
        assert out["p99"] == 99.0


class FakeSeries:
    def __init__(self):
        self.count = 0
        self.total = 0.0
        self.samples = []

    def record(self, value):
        self.count += 1
        self.total += value
        self.samples.append(value)


class FakeSource(SampleSource):
    """A hand-cranked source: the test advances the counters."""

    def __init__(self):
        self.done = 0.0
        self.flits = 0.0
        self.series = FakeSeries()

    def counters(self):
        return {"done": self.done, "flits": self.flits}

    def gauges(self):
        return {"queue": self.done / 2}

    def latency_series(self):
        return {"all": self.series}


class TestSampler:
    def test_rejects_nonpositive_interval(self):
        with pytest.raises(ValueError):
            TimeSeriesSampler(FakeSource(), 0)

    def test_window_deltas_and_rates(self):
        source = FakeSource()
        sampler = TimeSeriesSampler(source, 10, clock=lambda: 0.0)
        sampler.on_run_start(0)
        for cycle in range(25):
            source.done += 1
            sampler.tick(cycle)
        assert sampler.emitted == 2
        samples = list(sampler.samples)
        assert [s.cycle for s in samples] == [9, 19]
        assert all(s.span == 10 and s.windows == 1 for s in samples)
        assert samples[0].deltas["done"] == 10.0
        assert samples[1].deltas["done"] == 10.0
        assert samples[1].rates["done"] == pytest.approx(1.0)
        assert samples[1].totals["done"] == 20.0

    def test_coalesced_gap_emits_one_sample(self):
        source = FakeSource()
        sampler = TimeSeriesSampler(source, 10, clock=lambda: 0.0)
        sampler.on_run_start(0)
        source.done = 35.0
        # The simulator jumped cycles [0, 35) without ticking anyone.
        sampler.on_cycles_skipped(0, 35)
        assert sampler.emitted == 1
        sample = sampler.samples.last()
        assert sample.windows == 3  # boundaries 9, 19, 29 folded
        assert sample.cycle == 29
        assert sample.span == 30
        assert sample.deltas["done"] == 35.0
        # Next boundary re-arms past the gap.
        assert sampler.wake_at() == 39

    def test_flush_emits_trailing_partial(self):
        source = FakeSource()
        sampler = TimeSeriesSampler(source, 10, clock=lambda: 0.0)
        sampler.on_run_start(0)
        for cycle in range(14):
            source.done += 1
            sampler.tick(cycle)
        sampler.on_run_end(14)
        last = sampler.samples.last()
        assert last.partial and last.windows == 0
        assert last.cycle == 13 and last.span == 4
        assert last.deltas["done"] == 4.0
        # Second flush at the same cycle is a no-op.
        assert sampler.flush(14) is None
        assert sampler.emitted == 2

    def test_deltas_sum_to_totals(self):
        source = FakeSource()
        sampler = TimeSeriesSampler(source, 7, clock=lambda: 0.0)
        sampler.on_run_start(0)
        for cycle in range(40):
            source.done += (cycle % 3)
            sampler.tick(cycle)
        sampler.on_run_end(40)
        total = sum(s.deltas["done"] for s in sampler.samples)
        assert total == source.done

    def test_window_latency_percentiles(self):
        source = FakeSource()
        sampler = TimeSeriesSampler(source, 10, clock=lambda: 0.0)
        sampler.on_run_start(0)
        for value in (5.0, 10.0, 15.0):
            source.series.record(value)
        sampler.tick(9)
        first = sampler.samples.last().latency["all"]
        assert first["count"] == 3.0
        assert first["mean"] == pytest.approx(10.0)
        assert first["p50"] == 10.0
        # The next window only sees *new* samples.
        source.series.record(100.0)
        sampler.tick(19)
        second = sampler.samples.last().latency["all"]
        assert second["count"] == 1.0
        assert second["p95"] == 100.0

    def test_event_contract(self):
        sampler = TimeSeriesSampler(FakeSource(), 10)
        assert sampler.event_wake_at(0) == 9
        assert sampler.event_wake_at(9) == 10  # boundary tick pending
        assert sampler.is_idle(5) and not sampler.is_idle(9)
        assert sampler.wake_at() == 9

    def test_on_sample_callback_sees_every_emission(self):
        seen = []
        source = FakeSource()
        sampler = TimeSeriesSampler(
            source, 10, on_sample=seen.append, clock=lambda: 0.0
        )
        sampler.on_run_start(0)
        for cycle in range(12):
            sampler.tick(cycle)
        sampler.on_run_end(12)
        assert len(seen) == sampler.emitted == 2

    def test_to_dict_sorted_and_json_ready(self):
        import json

        source = FakeSource()
        sampler = TimeSeriesSampler(source, 5, clock=lambda: 1.5)
        sampler.on_run_start(0)
        source.done = 5
        sampler.tick(4)
        payload = sampler.samples.last().to_dict()
        assert list(payload["rates"]) == sorted(payload["rates"])
        json.dumps(payload)  # must not raise


class TestSystemAttachment:
    def test_attach_sampler_collects_run(self):
        config = SystemConfig(
            app="single_dtv", cycles=3_000, warmup=300,
            design=NocDesign.GSS_SAGM, seed=2010,
        )
        system = build_system(config)
        sampler = system.attach_sampler(500)
        metrics = system.run()
        assert sampler.emitted >= 6
        assert sum(
            s.deltas["requests.completed"] for s in sampler.samples
        ) == system.stats.all_packets.count
        last = sampler.samples.last()
        assert last.cycle == system.simulator.cycle - 1
        assert metrics.completed > 0

    def test_double_attach_rejected(self):
        system = build_system(
            SystemConfig(app="single_dtv", cycles=100, warmup=0)
        )
        system.attach_sampler(10)
        with pytest.raises(RuntimeError):
            system.attach_sampler(10)

    def test_sampler_does_not_inhibit_fast_forward(self):
        """After quiescence the engine fast-forwards; an attached
        sampler must ride the jumps (landing on its window boundaries),
        not force per-cycle stepping."""
        config = SystemConfig(
            app="single_dtv", cycles=2_000, warmup=200, seed=2010,
        )
        system = build_system(config)
        sampler = system.attach_sampler(100)
        system.run()
        system.drain()
        before_ff = system.simulator.fast_forwarded_cycles
        before_emitted = sampler.emitted
        horizon = 10_000
        system.simulator.run(horizon)
        jumped = system.simulator.fast_forwarded_cycles - before_ff
        assert jumped > horizon * 0.9, "sampler inhibited fast-forward"
        assert sampler.emitted > before_emitted
        # Every jumped window is still accounted for: coverage is gapless
        # up to the last simulated cycle.
        assert sampler.samples.last().cycle == system.simulator.cycle - 1
