"""End-to-end tracing: a traced run emits the full lifecycle vocabulary."""

from dataclasses import replace

import pytest

from repro.core.system import build_system
from repro.obs import MemoryTracer
from repro.obs.events import LIFECYCLE_EVENT_TYPES, EventType
from repro.obs.exporters import (
    chrome_trace,
    latency_breakdowns,
    validate_chrome_trace,
)
from repro.sim.config import NocDesign, SystemConfig


@pytest.fixture(scope="module")
def traced():
    tracer = MemoryTracer()
    system = build_system(
        SystemConfig(cycles=3_000, warmup=0), tracer=tracer
    )
    system.run()
    return system, tracer


class TestVocabulary:
    def test_all_seven_event_types_emitted(self, traced):
        _, tracer = traced
        seen = {event.type for event in tracer}
        assert seen == set(LIFECYCLE_EVENT_TYPES)

    def test_conv_design_emits_memmax_grants(self):
        tracer = MemoryTracer()
        config = replace(
            SystemConfig(cycles=2_500, warmup=0), design=NocDesign.CONV
        )
        build_system(config, tracer=tracer).run()
        grants = tracer.of_type(EventType.ARB_GRANT)
        assert grants
        assert all(e.component.startswith("memmax.t") for e in grants)

    def test_untraced_system_emits_nothing(self):
        # tracer=None must build and run identically, just silently.
        system = build_system(SystemConfig(cycles=1_000, warmup=0))
        metrics = system.run()
        assert metrics.cycles == 1_000


class TestEventConsistency:
    def test_lifecycle_ordering_per_request(self, traced):
        _, tracer = traced
        for breakdown in latency_breakdowns(tracer.events):
            assert (
                breakdown.inject_cycle
                <= breakdown.first_dram_cycle
                <= breakdown.last_data_cycle
                <= breakdown.complete_cycle
            )

    def test_completions_match_interfaces(self, traced):
        system, tracer = traced
        completed = sum(
            ci.completed_requests for ci in system.core_interfaces
        )
        assert len(tracer.of_type(EventType.COMPLETE)) == completed

    def test_split_parts_cover_injections(self, traced):
        _, tracer = traced
        part_ids = set()
        for event in tracer.of_type(EventType.SAGM_SPLIT):
            part_ids.update(event.args["parts"])
        request_injects = {
            e.request_id
            for e in tracer.of_type(EventType.INJECT)
            if e.args.get("side") != "memory"
        }
        # Every request packet injected at a core NI came out of the
        # splitter (gss+sagm default config splits everything).
        assert request_injects <= part_ids

    def test_hops_reference_routers(self, traced):
        _, tracer = traced
        hops = tracer.of_type(EventType.HOP)
        assert hops
        assert all(e.component.startswith("router") for e in hops)
        assert all(e.packet_id is not None for e in hops)


class TestChromeExport:
    def test_valid_trace_with_all_types(self, traced):
        _, tracer = traced
        doc = chrome_trace(tracer.events)
        validate_chrome_trace(doc)
        names = {
            record["name"]
            for record in doc["traceEvents"]
            if record["ph"] != "M"
        }
        assert names == {t.value for t in LIFECYCLE_EVENT_TYPES}

    def test_breakdowns_nonempty(self, traced):
        _, tracer = traced
        breakdowns = latency_breakdowns(tracer.events)
        assert breakdowns
        assert all(b.total > 0 for b in breakdowns)


class TestMetricsCollection:
    def test_registry_absorbs_component_counters(self, traced):
        system, _ = traced
        registry = system.collect_metrics()
        assert registry.names("noc.link.flits")
        assert registry.names("noc.buffer.highwater")
        assert registry.names("dram")
        total_injected = sum(
            registry.get(name).value
            for name in registry.names("ni")
            if name.endswith(".injected")
        )
        assert total_injected == sum(
            ci.injected_packets for ci in system.core_interfaces
        )

    def test_per_bank_row_outcomes_registered(self, traced):
        system, _ = traced
        registry = system.collect_metrics()
        hits = [
            registry.get(name).value
            for name in registry.names()
            if name.endswith(".row_hits")
        ]
        assert hits and sum(hits) > 0
        # Per-bank tallies must sum to the fleet-wide stats counters.
        assert sum(hits) == system.stats.row_hits
