"""Exporter tests: Chrome trace JSON, JSONL, latency breakdowns."""

import json

import pytest

from repro.obs.events import EventType, TraceEvent
from repro.obs.exporters import (
    RequestBreakdown,
    chrome_trace,
    latency_breakdowns,
    read_jsonl,
    render_latency_report,
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)


def lifecycle_events(request_id=1, packet_id=10):
    """A minimal complete lifecycle for one unsplit request."""
    return [
        TraceEvent(EventType.INJECT, 100, "core0", packet_id, request_id),
        TraceEvent(EventType.HOP, 101, "router1", packet_id, request_id,
                   args={"port": "EAST"}),
        TraceEvent(EventType.ARB_GRANT, 102, "gss0.local", packet_id,
                   request_id),
        TraceEvent(EventType.DRAM_CMD, 110, "bank0", None, request_id,
                   args={"kind": "ACT"}),
        TraceEvent(EventType.DRAM_CMD, 115, "bank0", None, request_id,
                   args={"kind": "RD"}),
        TraceEvent(EventType.DATA_BEAT, 118, "bank0", None, request_id,
                   args={"data_end": 121}),
        TraceEvent(EventType.COMPLETE, 130, "core0", None, request_id,
                   args={"latency": 30}),
    ]


class TestChromeTrace:
    def test_document_shape(self):
        doc = chrome_trace(lifecycle_events())
        assert "traceEvents" in doc
        validate_chrome_trace(doc)

    def test_one_track_per_component(self):
        doc = chrome_trace(lifecycle_events())
        thread_names = {
            record["args"]["name"]
            for record in doc["traceEvents"]
            if record["ph"] == "M" and record["name"] == "thread_name"
        }
        assert thread_names == {"core0", "router1", "gss0.local", "bank0"}

    def test_processes_group_layers(self):
        doc = chrome_trace(lifecycle_events())
        processes = {
            record["args"]["name"]
            for record in doc["traceEvents"]
            if record["ph"] == "M" and record["name"] == "process_name"
        }
        assert {"cores", "noc", "dram"} <= processes

    def test_data_beat_duration_spans_burst(self):
        doc = chrome_trace(lifecycle_events())
        beat = next(
            r for r in doc["traceEvents"] if r.get("name") == "DATA_BEAT"
        )
        assert beat["ts"] == 118
        assert beat["dur"] == 4  # 118..121 inclusive

    def test_serializable(self):
        json.dumps(chrome_trace(lifecycle_events()))

    def test_write_round_trip(self, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(lifecycle_events(), str(path))
        doc = json.loads(path.read_text())
        validate_chrome_trace(doc)
        names = {r["name"] for r in doc["traceEvents"] if r["ph"] != "M"}
        assert names == {
            "INJECT", "HOP", "ARB_GRANT", "DRAM_CMD", "DATA_BEAT", "COMPLETE"
        }


class TestValidation:
    def test_missing_trace_events_rejected(self):
        with pytest.raises(ValueError, match="traceEvents"):
            validate_chrome_trace({"foo": []})

    def test_missing_keys_rejected(self):
        with pytest.raises(ValueError, match="missing"):
            validate_chrome_trace({"traceEvents": [{"name": "X", "ph": "X"}]})

    def test_non_monotonic_track_rejected(self):
        doc = {
            "traceEvents": [
                {"name": "a", "ph": "X", "pid": 1, "tid": 1, "ts": 10},
                {"name": "b", "ph": "X", "pid": 1, "tid": 1, "ts": 5},
            ]
        }
        with pytest.raises(ValueError, match="monotonic"):
            validate_chrome_trace(doc)

    def test_separate_tracks_independent(self):
        doc = {
            "traceEvents": [
                {"name": "a", "ph": "X", "pid": 1, "tid": 1, "ts": 10},
                {"name": "b", "ph": "X", "pid": 1, "tid": 2, "ts": 5},
            ]
        }
        validate_chrome_trace(doc)


class TestJsonl:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "events.jsonl"
        events = lifecycle_events()
        count = write_jsonl(events, str(path))
        assert count == len(events)
        records = read_jsonl(str(path))
        assert [r["type"] for r in records] == [e.type.value for e in events]
        assert records[0]["component"] == "core0"


class TestLatencyBreakdown:
    def test_segments(self):
        (breakdown,) = latency_breakdowns(lifecycle_events())
        assert breakdown.inject_cycle == 100
        assert breakdown.first_dram_cycle == 110
        assert breakdown.last_data_cycle == 121
        assert breakdown.complete_cycle == 130
        assert breakdown.queue_network == 10
        assert breakdown.dram_service == 11
        assert breakdown.response_return == 9
        assert breakdown.total == 30
        assert (
            breakdown.queue_network
            + breakdown.dram_service
            + breakdown.response_return
            == breakdown.total
        )

    def test_split_parts_fold_onto_parent(self):
        events = [
            TraceEvent(EventType.SAGM_SPLIT, 99, "core0", None, 1,
                       args={"parts": [11, 12]}),
            TraceEvent(EventType.INJECT, 100, "core0", 21, 11),
            TraceEvent(EventType.INJECT, 104, "core0", 22, 12),
            TraceEvent(EventType.DRAM_CMD, 110, "bank0", None, 11),
            TraceEvent(EventType.DRAM_CMD, 114, "bank0", None, 12),
            TraceEvent(EventType.DATA_BEAT, 112, "bank0", None, 11,
                       args={"data_end": 113}),
            TraceEvent(EventType.DATA_BEAT, 116, "bank0", None, 12,
                       args={"data_end": 117}),
            TraceEvent(EventType.COMPLETE, 125, "core0", None, 1),
        ]
        (breakdown,) = latency_breakdowns(events)
        assert breakdown.request_id == 1
        assert breakdown.inject_cycle == 100  # first part's injection
        assert breakdown.last_data_cycle == 117  # last part's data
        assert breakdown.complete_cycle == 125

    def test_memory_side_inject_ignored(self):
        events = lifecycle_events()
        # A response injection at the memory NI *before* the core's
        # injection must not shift the queueing segment.
        events.insert(
            0,
            TraceEvent(EventType.INJECT, 50, "ni0", 99, 1,
                       args={"side": "memory"}),
        )
        (breakdown,) = latency_breakdowns(events)
        assert breakdown.inject_cycle == 100

    def test_incomplete_lifecycles_skipped(self):
        events = [
            TraceEvent(EventType.INJECT, 100, "core0", 10, 1),
            TraceEvent(EventType.COMPLETE, 120, "core0", None, 1),
        ]
        assert latency_breakdowns(events) == []

    def test_report_renders(self):
        text = render_latency_report(lifecycle_events())
        assert "queue+network" in text
        assert "req#1" in text

    def test_report_empty(self):
        assert "no fully-traced" in render_latency_report([])


class TestRequestBreakdownProperties:
    def test_dataclass_segments(self):
        breakdown = RequestBreakdown(
            request_id=1, inject_cycle=0, first_dram_cycle=4,
            last_data_cycle=9, complete_cycle=12,
        )
        assert breakdown.queue_network == 4
        assert breakdown.dram_service == 5
        assert breakdown.response_return == 3
        assert breakdown.total == 12


class TestRealRunRoundTrips:
    """Full-system round trips: a traced run's exports re-parse and
    validate against the source event list, field for field."""

    @pytest.fixture(scope="class")
    def traced_run(self):
        from repro.core.system import build_system
        from repro.obs import MemoryTracer
        from repro.sim.config import SystemConfig

        tracer = MemoryTracer()
        system = build_system(
            SystemConfig(app="single_dtv", cycles=1_500, warmup=0),
            tracer=tracer,
        )
        system.run()
        assert tracer.events, "traced run produced no events"
        return tracer.events

    def test_chrome_trace_round_trip_validates(self, traced_run, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(traced_run, str(path))
        doc = json.loads(path.read_text())
        validate_chrome_trace(doc)
        slices = [r for r in doc["traceEvents"] if r["ph"] != "M"]
        # Every source event surfaces as exactly one slice.
        assert len(slices) == len(traced_run)
        assert {r["name"] for r in slices} == {
            e.type.value for e in traced_run
        }

    def test_jsonl_round_trip_matches_source(self, traced_run, tmp_path):
        path = tmp_path / "events.jsonl"
        count = write_jsonl(traced_run, str(path))
        records = read_jsonl(str(path))
        assert count == len(records) == len(traced_run)
        for record, event in zip(records, traced_run):
            assert record["type"] == event.type.value
            assert record["cycle"] == event.cycle
            assert record["component"] == event.component
            assert record.get("request_id") == event.request_id
