"""Metrics registry tests."""

import pytest

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry


class TestCounter:
    def test_increments(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter("c").inc(-1)


class TestGauge:
    def test_set(self):
        gauge = Gauge("g")
        gauge.set(3.5)
        assert gauge.value == 3.5

    def test_track_max(self):
        gauge = Gauge("g")
        for value in (2, 7, 4):
            gauge.track_max(value)
        assert gauge.value == 7


class TestHistogram:
    def test_streaming_summary(self):
        hist = Histogram("h")
        for value in (1, 2, 3):
            hist.record(value)
        assert hist.count == 3
        assert hist.mean == 2.0
        assert hist.minimum == 1
        assert hist.maximum == 3

    def test_percentile(self):
        hist = Histogram("h")
        for value in range(1, 101):
            hist.record(value)
        assert hist.percentile(0) == 1
        assert hist.percentile(100) == 100
        assert 49 <= hist.percentile(50) <= 51

    def test_empty_percentile_raises(self):
        with pytest.raises(ValueError, match="no samples"):
            Histogram("h").percentile(50)

    def test_percentile_bounds(self):
        hist = Histogram("h")
        hist.record(1)
        with pytest.raises(ValueError):
            hist.percentile(101)


class TestRegistry:
    def test_get_or_create(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert len(registry) == 1

    def test_kind_clash_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("x")

    def test_contains_and_get(self):
        registry = MetricsRegistry()
        registry.gauge("noc.buffer.0")
        assert "noc.buffer.0" in registry
        assert registry.get("noc.buffer.0") is not None
        assert registry.get("missing") is None

    def test_names_prefix_filter(self):
        registry = MetricsRegistry()
        registry.counter("noc.link.flits")
        registry.counter("noc.link.packets")
        registry.counter("dram.commands")
        # prefix matches whole dotted segments, not raw string prefixes
        registry.counter("nocturnal")
        assert registry.names("noc") == ["noc.link.flits", "noc.link.packets"]
        assert len(registry.names()) == 4

    def test_as_dict(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(3)
        registry.gauge("g").set(1.5)
        registry.histogram("h").record(10)
        snapshot = registry.as_dict()
        assert snapshot["c"] == 3
        assert snapshot["g"] == 1.5
        assert snapshot["h"]["count"] == 1.0
        assert snapshot["h"]["mean"] == 10.0

    def test_render_lists_all(self):
        registry = MetricsRegistry()
        registry.counter("dram.commands").inc(2)
        registry.histogram("lat").record(5)
        text = registry.render()
        assert "dram.commands" in text
        assert "n=1" in text


class TestSnapshotDeterminism:
    """The snapshot is the base of JSONL telemetry and the Prometheus
    exposition: byte-identical output for identical state, regardless of
    registration or update order."""

    @staticmethod
    def _populate(registry, order):
        for name in order:
            registry.counter(f"counter.{name}").inc(3)
        registry.gauge("gauge.z").set(1.0)
        hist = registry.histogram("hist.lat")
        for value in (5.0, 1.0, 9.0):
            hist.record(value)

    def test_json_dumps_byte_identical_across_orders(self):
        import json

        first = MetricsRegistry()
        self._populate(first, ["b", "a", "c"])
        second = MetricsRegistry()
        self._populate(second, ["c", "b", "a"])
        assert json.dumps(first.snapshot()) == json.dumps(second.snapshot())

    def test_keys_sorted(self):
        registry = MetricsRegistry()
        self._populate(registry, ["z", "m", "a"])
        keys = list(registry.snapshot())
        assert keys == sorted(keys)

    def test_histogram_summary_field_order_fixed(self):
        registry = MetricsRegistry()
        registry.histogram("h").record(4.0)
        summary = registry.snapshot()["h"]
        assert list(summary) == ["count", "mean", "min", "max", "p50",
                                 "p95", "p99"]

    def test_empty_histogram_omits_extremes(self):
        registry = MetricsRegistry()
        registry.histogram("h")
        summary = registry.snapshot()["h"]
        assert list(summary) == ["count", "mean"]

    def test_percentiles_reported_when_samples_kept(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h")
        for value in range(1, 101):
            hist.record(float(value))
        summary = registry.snapshot()["h"]
        assert summary["p95"] == 95.0
        assert summary["min"] == 1.0 and summary["max"] == 100.0
