"""Tracer contract tests: the falsy null default and the recorder."""

import pytest

from repro.obs import NULL_TRACER, MemoryTracer, NullTracer, Tracer
from repro.obs.events import EventType, TraceEvent


class TestNullTracer:
    def test_falsy(self):
        assert not NullTracer()
        assert not NULL_TRACER

    def test_disabled(self):
        assert NullTracer().enabled is False

    def test_emit_is_noop(self):
        NULL_TRACER.emit(EventType.HOP, 3, "router0", packet_id=1)

    def test_guard_pattern_skips_null_and_none(self):
        # The emission sites guard with plain truthiness; both defaults
        # must short-circuit identically.
        for tracer in (None, NULL_TRACER):
            fired = False
            if tracer:
                fired = True
            assert not fired


class TestMemoryTracer:
    def test_truthy_even_when_empty(self):
        # __len__ == 0 must not make an attached tracer falsy, or no
        # event would ever be recorded.
        tracer = MemoryTracer()
        assert len(tracer) == 0
        assert tracer
        assert tracer.enabled

    def test_records_events(self):
        tracer = MemoryTracer()
        tracer.emit(EventType.INJECT, 5, "core0", packet_id=1, request_id=2)
        tracer.emit(EventType.COMPLETE, 9, "core0", request_id=2, latency=4)
        assert len(tracer) == 2
        first = tracer.events[0]
        assert first.type is EventType.INJECT
        assert first.cycle == 5
        assert first.component == "core0"
        assert first.packet_id == 1
        assert first.request_id == 2

    def test_extra_kwargs_land_in_args(self):
        tracer = MemoryTracer()
        tracer.emit(EventType.HOP, 1, "router3", port="EAST", flits=4)
        assert tracer.events[0].args == {"port": "EAST", "flits": 4}

    def test_limit_counts_dropped(self):
        tracer = MemoryTracer(limit=2)
        for cycle in range(5):
            tracer.emit(EventType.HOP, cycle, "router0")
        assert len(tracer) == 2
        assert tracer.dropped == 3

    def test_limit_must_be_positive(self):
        with pytest.raises(ValueError):
            MemoryTracer(limit=0)

    def test_of_type_and_by_request(self):
        tracer = MemoryTracer()
        tracer.emit(EventType.INJECT, 1, "core0", request_id=7)
        tracer.emit(EventType.HOP, 2, "router0", request_id=7)
        tracer.emit(EventType.INJECT, 3, "core1", request_id=8)
        assert len(tracer.of_type(EventType.INJECT)) == 2
        assert [e.cycle for e in tracer.by_request(7)] == [1, 2]

    def test_counts(self):
        tracer = MemoryTracer()
        tracer.emit(EventType.HOP, 1, "router0")
        tracer.emit(EventType.HOP, 2, "router1")
        tracer.emit(EventType.COMPLETE, 3, "core0")
        assert tracer.counts() == {"HOP": 2, "COMPLETE": 1}

    def test_iteration(self):
        tracer = MemoryTracer()
        tracer.emit(EventType.HOP, 1, "router0")
        assert [e.type for e in tracer] == [EventType.HOP]


class TestTraceEvent:
    def test_to_dict_omits_missing_ids(self):
        event = TraceEvent(EventType.DRAM_CMD, 4, "bank1")
        record = event.to_dict()
        assert record == {"type": "DRAM_CMD", "cycle": 4, "component": "bank1"}

    def test_to_dict_round_trips_args(self):
        event = TraceEvent(
            EventType.DATA_BEAT, 10, "bank0", request_id=3,
            args={"data_end": 13},
        )
        record = event.to_dict()
        assert record["request_id"] == 3
        assert record["args"] == {"data_end": 13}

    def test_repr_mentions_ids(self):
        event = TraceEvent(EventType.HOP, 2, "router1", packet_id=5)
        assert "pkt=5" in repr(event)

    def test_base_tracer_emit_abstract(self):
        with pytest.raises(NotImplementedError):
            Tracer().emit(EventType.HOP, 0, "router0")
