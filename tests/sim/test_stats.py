"""Stats accounting tests: latency series, warmup filtering, utilization."""

import pytest
from hypothesis import given, strategies as st

from repro.sim.stats import LatencySeries, RunMetrics, StatsCollector


class TestLatencySeries:
    def test_mean_and_max(self):
        series = LatencySeries()
        for value in (10, 20, 30):
            series.record(value)
        assert series.mean == 20
        assert series.maximum == 30
        assert series.count == 3

    def test_empty_mean_is_zero(self):
        assert LatencySeries().mean == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            LatencySeries().record(-1)

    def test_samples_kept_only_when_requested(self):
        kept = LatencySeries(keep_samples=True)
        kept.record(5)
        assert kept.samples == [5]
        dropped = LatencySeries()
        dropped.record(5)
        assert dropped.samples == []

    @given(st.lists(st.integers(min_value=0, max_value=10_000), min_size=1))
    def test_mean_matches_arithmetic_mean(self, values):
        series = LatencySeries()
        for value in values:
            series.record(value)
        assert series.mean == pytest.approx(sum(values) / len(values))
        assert series.maximum == max(values)

    def test_p0_p100_without_kept_samples(self):
        """Extremes are O(1) streaming fields — no keep_samples needed,
        so the WCET column can never under-report the worst case."""
        series = LatencySeries()
        for value in (30, 10, 20):
            series.record(value)
        assert series.p0 == 10.0
        assert series.p100 == 30.0
        assert series.minimum == 10
        assert series.percentile(0) == 10.0
        assert series.percentile(100) == 30.0

    def test_minimum_tracks_first_sample(self):
        series = LatencySeries()
        series.record(0)
        series.record(5)
        assert series.minimum == 0
        assert series.p0 == 0.0

    def test_interior_percentile_still_requires_samples(self):
        series = LatencySeries()
        series.record(10)
        with pytest.raises(RuntimeError):
            series.percentile(50)

    def test_percentile_empty_series_still_rejected(self):
        series = LatencySeries(keep_samples=True)
        for q in (0, 50, 100):
            with pytest.raises(ValueError):
                series.percentile(q)

    @given(st.lists(st.integers(min_value=0, max_value=10_000), min_size=1))
    def test_exact_extremes_match_kept_samples(self, values):
        streaming = LatencySeries()
        kept = LatencySeries(keep_samples=True)
        for value in values:
            streaming.record(value)
            kept.record(value)
        assert streaming.percentile(0) == kept.percentile(0) == min(values)
        assert (
            streaming.percentile(100) == kept.percentile(100) == max(values)
        )


class TestStatsCollector:
    def test_warmup_excludes_early_completions(self):
        stats = StatsCollector(warmup=100)
        stats.record_completion(cycle=150, issued_cycle=50, master=0, is_demand=False)
        assert stats.all_packets.count == 0
        stats.record_completion(cycle=250, issued_cycle=150, master=0, is_demand=False)
        assert stats.all_packets.count == 1

    def test_demand_class_tracked_separately(self):
        stats = StatsCollector()
        stats.record_completion(10, 0, master=1, is_demand=True)
        stats.record_completion(20, 0, master=2, is_demand=False)
        assert stats.demand_packets.count == 1
        assert stats.all_packets.count == 2

    def test_per_master_series(self):
        stats = StatsCollector()
        stats.record_completion(10, 0, master=3, is_demand=False)
        stats.record_completion(30, 0, master=3, is_demand=False)
        assert stats.per_master[3].count == 2
        assert stats.per_master[3].mean == 20

    def test_utilization_counts_useful_fraction(self):
        stats = StatsCollector()
        for cycle in range(10):
            stats.record_idle_cycle(cycle)
        # 4 busy cycles, half useful each
        for cycle in range(4):
            stats.record_bus_cycle(cycle, useful_beats=1, total_beats=2)
        assert stats.raw_utilization == pytest.approx(0.4)
        assert stats.utilization == pytest.approx(0.2)

    def test_bus_cycle_validation(self):
        stats = StatsCollector()
        with pytest.raises(ValueError):
            stats.record_bus_cycle(0, useful_beats=3, total_beats=2)
        with pytest.raises(ValueError):
            stats.record_bus_cycle(0, useful_beats=0, total_beats=0)

    def test_warmup_excludes_bus_activity(self):
        stats = StatsCollector(warmup=10)
        stats.record_bus_cycle(5, 2, 2)
        assert stats.busy_cycles == 0
        stats.record_bus_cycle(15, 2, 2)
        assert stats.busy_cycles == 1

    def test_row_hit_rate(self):
        stats = StatsCollector()
        stats.record_row_outcome(0, hit=True)
        stats.record_row_outcome(0, hit=True)
        stats.record_row_outcome(0, hit=False)
        assert stats.row_hit_rate == pytest.approx(2 / 3)

    def test_commands_counted_by_kind(self):
        stats = StatsCollector()
        stats.record_command(0, "ACT")
        stats.record_command(0, "ACT")
        stats.record_command(0, "PRE")
        assert stats.commands_issued == {"ACT": 2, "PRE": 1}

    def test_summary_keys(self):
        stats = StatsCollector()
        summary = stats.summary()
        assert set(summary) == {
            "utilization", "raw_utilization", "latency_all",
            "latency_demand", "completed", "row_hit_rate",
        }

    def test_negative_warmup_rejected(self):
        with pytest.raises(ValueError):
            StatsCollector(warmup=-1)


class TestRunMetrics:
    def test_from_collector_snapshot(self):
        stats = StatsCollector()
        stats.record_idle_cycle(0)
        stats.record_bus_cycle(0, 2, 2)
        stats.record_completion(40, 0, master=0, is_demand=True)
        metrics = RunMetrics.from_collector(stats, cycles=100)
        assert metrics.cycles == 100
        assert metrics.completed == 1
        assert metrics.latency_demand == 40
        assert metrics.utilization == pytest.approx(1.0)


class TestPercentiles:
    def test_percentile_values(self):
        series = LatencySeries(keep_samples=True)
        for value in range(1, 101):
            series.record(value)
        assert series.percentile(0) == 1
        assert series.percentile(100) == 100
        assert 49 <= series.percentile(50) <= 51
        assert 94 <= series.percentile(95) <= 96

    def test_percentile_linear_interpolation_exact(self):
        """R-7 (numpy default) closest-ranks interpolation, exactly."""
        series = LatencySeries(keep_samples=True)
        for value in (1, 2, 3, 4):
            series.record(value)
        assert series.percentile(50) == pytest.approx(2.5)
        assert series.percentile(25) == pytest.approx(1.75)
        assert series.percentile(75) == pytest.approx(3.25)
        assert series.percentile(10) == pytest.approx(1.3)

    def test_percentile_exact_rank_avoids_interpolation(self):
        series = LatencySeries(keep_samples=True)
        for value in (10, 20, 30):
            series.record(value)
        # Ranks 0, 1, 2 land exactly on samples.
        assert series.percentile(0) == 10.0
        assert series.percentile(50) == 20.0
        assert series.percentile(100) == 30.0

    def test_percentile_single_sample(self):
        series = LatencySeries(keep_samples=True)
        series.record(7)
        for q in (0, 13, 50, 99, 100):
            assert series.percentile(q) == 7.0

    def test_percentile_unsorted_input(self):
        series = LatencySeries(keep_samples=True)
        for value in (9, 1, 5, 3, 7):
            series.record(value)
        assert series.percentile(50) == 5.0
        assert series.percentile(75) == pytest.approx(7.0)
        assert series.percentile(90) == pytest.approx(8.2)

    def test_percentile_requires_samples(self):
        series = LatencySeries()
        series.record(5)
        with pytest.raises(RuntimeError):
            series.percentile(50)

    def test_percentile_bounds(self):
        series = LatencySeries(keep_samples=True)
        with pytest.raises(ValueError):
            series.percentile(101)

    def test_empty_percentile_raises(self):
        with pytest.raises(ValueError, match="empty series"):
            LatencySeries(keep_samples=True).percentile(99)
