"""SystemConfig validation and paper configuration enumeration."""

import pytest

from repro.sim.config import (
    ConfigError,
    DdrGeneration,
    NocDesign,
    PAPER_CLOCK_POINTS,
    SystemConfig,
    paper_configs,
)


class TestNocDesign:
    def test_gss_router_flags(self):
        assert NocDesign.GSS.uses_gss_router
        assert NocDesign.GSS_SAGM.uses_gss_router
        assert not NocDesign.CONV.uses_gss_router
        assert not NocDesign.SDRAM_AWARE.uses_gss_router

    def test_sagm_flag(self):
        assert NocDesign.GSS_SAGM.uses_sagm
        assert not NocDesign.GSS.uses_sagm

    def test_pfs_flag(self):
        assert NocDesign.CONV_PFS.uses_pfs
        assert NocDesign.SDRAM_AWARE_PFS.uses_pfs
        assert not NocDesign.GSS.uses_pfs


class TestDdrGeneration:
    def test_sagm_granularity(self):
        # Section IV-C: 2 data cycles (4 beats) on DDR I/II, 4 (8 beats) on DDR III
        assert DdrGeneration.DDR1.sagm_granularity_beats == 4
        assert DdrGeneration.DDR2.sagm_granularity_beats == 4
        assert DdrGeneration.DDR3.sagm_granularity_beats == 8

    def test_device_burst(self):
        for generation in DdrGeneration:
            assert generation.device_burst_beats == 8


class TestSystemConfig:
    def test_defaults_valid(self):
        config = SystemConfig()
        assert config.app == "single_dtv"

    def test_pct_bounds(self):
        with pytest.raises(ValueError):
            SystemConfig(pct=0)
        with pytest.raises(ValueError):
            SystemConfig(pct=7)
        SystemConfig(pct=1)
        SystemConfig(pct=6)

    def test_warmup_must_be_less_than_cycles(self):
        with pytest.raises(ValueError):
            SystemConfig(cycles=100, warmup=100)
        SystemConfig(cycles=100, warmup=99)

    def test_unknown_app_rejected(self):
        with pytest.raises(ValueError, match="unknown application"):
            SystemConfig(app="nonexistent")

    def test_positive_clock_required(self):
        with pytest.raises(ValueError):
            SystemConfig(clock_mhz=0)

    def test_with_returns_modified_copy(self):
        base = SystemConfig(clock_mhz=333)
        changed = base.with_(clock_mhz=400)
        assert changed.clock_mhz == 400
        assert base.clock_mhz == 333

    def test_label_mentions_design_and_clock(self):
        config = SystemConfig(design=NocDesign.GSS_SAGM, clock_mhz=333)
        assert "gss+sagm" in config.label
        assert "333MHz" in config.label

    def test_label_marks_sti(self):
        config = SystemConfig(design=NocDesign.GSS, sti=True)
        assert config.label.endswith("+sti")


class TestConfigError:
    def test_is_value_error_naming_the_field(self):
        with pytest.raises(ConfigError) as excinfo:
            SystemConfig(pct=0)
        assert excinfo.value.field == "pct"
        assert isinstance(excinfo.value, ValueError)
        assert str(excinfo.value).startswith("pct:")

    @pytest.mark.parametrize("kwargs,field", [
        (dict(clock_mhz=0), "clock_mhz"),
        (dict(cycles=100, warmup=100), "warmup"),
        (dict(app="nonexistent"), "app"),
        (dict(virtual_channels=0), "virtual_channels"),
        (dict(link_buffer_flits=0), "link_buffer_flits"),
    ])
    def test_every_rejection_names_its_field(self, kwargs, field):
        with pytest.raises(ConfigError) as excinfo:
            SystemConfig(**kwargs)
        assert excinfo.value.field == field

    def test_faults_field_must_be_fault_config(self):
        with pytest.raises(ConfigError) as excinfo:
            SystemConfig(faults="high")
        assert excinfo.value.field == "faults"

    def test_unknown_arbiter_lists_registered_backends(self):
        with pytest.raises(ConfigError) as excinfo:
            SystemConfig(arbiter="tdm")
        assert excinfo.value.field == "arbiter"
        message = str(excinfo.value)
        for name in ("engine", "memmax", "databahn", "dpq", "bank-reg"):
            assert name in message

    def test_registered_arbiter_accepted_and_labelled(self):
        config = SystemConfig(arbiter="dpq")
        assert config.arbiter == "dpq"
        assert config.label.endswith("/dpq")

    def test_default_arbiter_leaves_label_unchanged(self):
        base = SystemConfig().label
        assert SystemConfig(arbiter="dpq").label == f"{base}/dpq"

    def test_fault_config_accepted(self):
        from repro.resilience.faults import FaultConfig

        config = SystemConfig(faults=FaultConfig.uniform(1e-3))
        assert config.faults.link_corrupt_rate == 1e-3
        assert SystemConfig().faults is None
        assert SystemConfig().check_invariants is False


class TestPaperConfigs:
    def test_nine_points(self):
        configs = list(paper_configs(NocDesign.GSS, priority=False))
        assert len(configs) == 9
        apps = {c.app for c in configs}
        assert apps == {"bluray", "single_dtv", "dual_dtv"}

    def test_clock_points_match_paper(self):
        # Section V: blu-ray 133/266/533, single DTV 166/333/667, dual 200/400/800
        assert PAPER_CLOCK_POINTS["bluray"][DdrGeneration.DDR1] == 133
        assert PAPER_CLOCK_POINTS["single_dtv"][DdrGeneration.DDR3] == 667
        assert PAPER_CLOCK_POINTS["dual_dtv"][DdrGeneration.DDR2] == 400

    def test_overrides_forwarded(self):
        configs = list(paper_configs(NocDesign.GSS, priority=True, cycles=500, warmup=10))
        assert all(c.cycles == 500 for c in configs)
        assert all(c.priority_enabled for c in configs)
