"""RunResult and table-row helpers."""

import pytest

from repro.sim.config import SystemConfig
from repro.sim.records import RunResult, TableRow, ratio_row
from repro.sim.stats import RunMetrics


def _metrics(**overrides):
    values = dict(
        utilization=0.7, raw_utilization=0.75, latency_all=120.0,
        latency_demand=90.0, completed=500, row_hit_rate=0.5, cycles=10_000,
    )
    values.update(overrides)
    return RunMetrics(**values)


def test_run_result_properties():
    result = RunResult(config=SystemConfig(), metrics=_metrics())
    assert result.utilization == 0.7
    assert result.latency_all == 120.0
    assert result.latency_demand == 90.0


def test_run_result_to_dict_includes_label_and_metrics():
    result = RunResult(config=SystemConfig(), metrics=_metrics())
    record = result.to_dict()
    assert "label" in record
    assert record["utilization"] == 0.7
    assert record["cycles"] == 10_000


def test_ratio_row_normalizes_to_baseline():
    rows = [
        TableRow("a", 100, "ddr2", {"conv": 0.6, "gss": 0.7}),
        TableRow("b", 200, "ddr2", {"conv": 0.4, "gss": 0.5}),
    ]
    ratios = ratio_row(rows, baseline_key="conv")
    assert ratios["conv"] == pytest.approx(1.0)
    assert ratios["gss"] == pytest.approx(0.6 / 0.5)


def test_ratio_row_empty_and_zero_baseline():
    assert ratio_row([], "conv") == {}
    rows = [TableRow("a", 1, "ddr1", {"conv": 0.0, "gss": 1.0})]
    assert ratio_row(rows, "conv") == {"conv": 0.0, "gss": 0.0}
