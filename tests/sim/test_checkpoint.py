"""Checkpoint/restore: golden resume identity and snapshot integrity.

The contract under test (see :mod:`repro.sim.checkpoint`): for any
cycle k, ``run(N)`` and ``run(k); save; load; run(N-k)`` are
bit-identical — same metrics, same resilience ledger, same trace-event
stream — on every dispatch tier, clean and faulty, for both NoC
designs.  Alongside the identity, the snapshot file format itself:
atomic writes, CRC/schema/truncation rejection with precise errors,
and newest-valid selection.
"""

import dataclasses
import pickle

import pytest

from repro.core.system import build_system
from repro.resilience.faults import FaultConfig
from repro.resilience.watchdog import RequestWatchdog
from repro.sim.checkpoint import (
    MAGIC,
    SCHEMA_VERSION,
    CheckpointError,
    latest_checkpoint,
    load_checkpoint,
    read_header,
    save_checkpoint,
)
from repro.sim.config import NocDesign, SystemConfig
from repro.sim.stats import RunMetrics

CYCLES = 1_800
WARMUP = 300
MID = 700  # mid-run split: inside warmup-adjacent steady state

FAULTS = FaultConfig(link_corrupt_rate=1e-3, sdram_bit_rate=1e-3)


def _config(design, faults) -> SystemConfig:
    return SystemConfig(
        app="single_dtv", cycles=CYCLES, warmup=WARMUP,
        design=design, seed=2010, faults=faults,
    )


def _forced(mode: str, simulator) -> None:
    """Pin ``simulator`` to one dispatch tier (see engine module docs).
    Re-applied after every load: restore re-derives dispatch state."""
    if mode == "naive":
        simulator.idle_skip = False
    elif mode == "stepped":
        simulator._all_event = False
    else:
        assert mode == "event"


def _observe(system) -> dict:
    """Metrics plus the full resilience ledger, for exact comparison."""
    observed = dataclasses.asdict(
        RunMetrics.from_collector(system.stats, system.simulator.cycle)
    )
    resilience = system.resilience
    if resilience is not None:
        observed["resilience"] = {
            "recovered": resilience.recovered,
            "failed_faults": resilience.failed_faults,
            "crc_retries": resilience.crc_retries,
            "dram_rereads": resilience.dram_reread_count,
            "watchdog_reissues": resilience.watchdog_reissues,
            "failed_requests": resilience.failed_requests,
            "stale_responses": resilience.stale_responses,
            "injected": dict(resilience.injector.injected),
        }
    return observed


def _diffs(a: dict, b: dict) -> dict:
    return {key: (a[key], b[key]) for key in a if a[key] != b[key]}


# ---------------------------------------------------------------------- #
# Golden resume identity
# ---------------------------------------------------------------------- #


@pytest.mark.parametrize("mode", ["event", "stepped", "naive"])
@pytest.mark.parametrize("design", [NocDesign.GSS_SAGM, NocDesign.CONV])
@pytest.mark.parametrize("faults", [None, FAULTS], ids=["clean", "faulty"])
def test_resume_identity_all_tiers(tmp_path, mode, design, faults):
    """run(N) == run(k); save; load; run(N-k) for k in {0, mid-run},
    bit-identically, on every dispatch tier."""
    baseline = build_system(_config(design, faults))
    _forced(mode, baseline.simulator)
    baseline.simulator.run(CYCLES)
    assert baseline.simulator.last_dispatch_mode == mode
    expected = _observe(baseline)

    for k in (0, MID):
        system = build_system(_config(design, faults))
        _forced(mode, system.simulator)
        system.simulator.run(k)
        path = save_checkpoint(tmp_path / f"k{k}.ckpt", system)
        restored = load_checkpoint(path)
        _forced(mode, restored.simulator)
        restored.simulator.run(CYCLES - k)
        assert restored.simulator.cycle == CYCLES
        if k > 0:
            assert restored.simulator.last_dispatch_mode == mode
        diffs = _diffs(_observe(restored), expected)
        assert not diffs, f"resume at k={k} diverged ({mode}): {diffs}"


@pytest.mark.parametrize("mode", ["event", "stepped", "naive"])
@pytest.mark.parametrize("design", [NocDesign.GSS_SAGM, NocDesign.CONV])
@pytest.mark.parametrize("faults", [None, FAULTS], ids=["clean", "faulty"])
def test_resume_identity_post_drain(tmp_path, mode, design, faults):
    """A snapshot taken after drain-to-quiescence resumes exactly: the
    extended run fast-forwards the same idle horizon and metrics match a
    never-serialized continuation."""
    extra = 5_000

    def run_drain(system):
        _forced(mode, system.simulator)
        system.simulator.run(CYCLES)
        system.drain()

    baseline = build_system(_config(design, faults))
    run_drain(baseline)
    baseline.simulator.run(extra)
    expected = _observe(baseline)

    system = build_system(_config(design, faults))
    run_drain(system)
    restored = load_checkpoint(
        save_checkpoint(tmp_path / "drained.ckpt", system)
    )
    _forced(mode, restored.simulator)
    before = restored.simulator.fast_forwarded_cycles
    restored.simulator.run(extra)
    diffs = _diffs(_observe(restored), expected)
    assert not diffs, f"post-drain resume diverged ({mode}): {diffs}"
    if mode != "naive":
        # Restoration must not inhibit fast-forward: the quiescent
        # horizon is still jumped, not stepped.
        jumped = restored.simulator.fast_forwarded_cycles - before
        assert jumped > extra * 0.9


@pytest.mark.parametrize("design", [NocDesign.GSS_SAGM, NocDesign.CONV])
def test_resume_trace_stream_bit_identical(tmp_path, design):
    """The post-resume trace-event stream continues the pre-save stream
    exactly — compared field-by-field (TraceEvent has no __eq__)."""
    from repro.obs import MemoryTracer

    def events(system):
        return [event.to_dict() for event in system.tracer.events]

    baseline = build_system(_config(design, FAULTS), tracer=MemoryTracer())
    baseline.simulator.run(CYCLES)

    system = build_system(_config(design, FAULTS), tracer=MemoryTracer())
    system.simulator.run(MID)
    restored = load_checkpoint(
        save_checkpoint(tmp_path / "trace.ckpt", system)
    )
    restored.simulator.run(CYCLES - MID)
    assert events(restored) == events(baseline)


def test_resume_identity_with_sampler(tmp_path):
    """A snapshot carries its time-series sampler (windows intact); the
    resumed run keeps sampling on the event tier, stays metrics-
    bit-identical to a straight run, and its sample stream matches an
    unserialized run split at the same cycle (the sampler flushes a
    partial window at every run exit, serialized or not)."""
    def build():
        system = build_system(_config(NocDesign.GSS_SAGM, None))
        system.attach_sampler(250, capacity=64)
        return system

    straight = build()
    straight.simulator.run(CYCLES)

    split = build()
    split.simulator.run(MID)
    split.simulator.run(CYCLES - MID)

    system = build()
    system.simulator.run(MID)
    restored = load_checkpoint(
        save_checkpoint(tmp_path / "sampled.ckpt", system)
    )
    restored.simulator.run(CYCLES - MID)
    assert restored.simulator.last_dispatch_mode == "event"
    assert not _diffs(_observe(restored), _observe(straight))
    assert [s.cycle for s in restored.sampler.samples] == [
        s.cycle for s in split.sampler.samples
    ]


ARBITERS = ("engine", "memmax", "databahn", "dpq", "bank-reg")


@pytest.mark.parametrize("arbiter", ARBITERS)
@pytest.mark.parametrize("faults", [None, FAULTS], ids=["clean", "faulty"])
def test_resume_identity_every_arbiter(tmp_path, arbiter, faults):
    """Every Scheduler backend round-trips through a mid-run snapshot
    bit-identically: metrics (including the backend-sourced WCET pair)
    and the full scheduler_stats surface — queue contents, priority
    order, budget ledgers — match a never-serialized run."""
    def config():
        return SystemConfig(
            app="single_dtv", cycles=CYCLES, warmup=WARMUP,
            design=NocDesign.GSS_SAGM, seed=2010, faults=faults,
            arbiter=arbiter,
        )

    def observe(system):
        observed = _observe(system)
        observed["metrics"] = dataclasses.asdict(
            RunMetrics.from_collector(
                system.stats, system.simulator.cycle,
                scheduler=system.subsystem,
            )
        )
        observed["scheduler"] = system.subsystem.scheduler_stats()
        return observed

    baseline = build_system(config())
    baseline.simulator.run(CYCLES)
    expected = observe(baseline)

    system = build_system(config())
    system.simulator.run(MID)
    restored = load_checkpoint(
        save_checkpoint(tmp_path / f"{arbiter}.ckpt", system)
    )
    restored.simulator.run(CYCLES - MID)
    assert restored.simulator.cycle == CYCLES
    diffs = _diffs(observe(restored), expected)
    assert not diffs, f"{arbiter} resume diverged: {diffs}"


# ---------------------------------------------------------------------- #
# checkpoint_every segmentation
# ---------------------------------------------------------------------- #


def test_checkpoint_every_calls_back_on_schedule():
    system = build_system(_config(NocDesign.GSS_SAGM, None))
    seen = []
    system.run(2_000, checkpoint_every=300, on_checkpoint=seen.append)
    assert seen == [300, 600, 900, 1200, 1500, 1800, 2000]


def test_checkpoint_every_preserves_metrics_and_fast_forward():
    plain = build_system(_config(NocDesign.GSS_SAGM, None))
    plain.simulator.run(CYCLES)
    plain.drain()
    plain.simulator.run(6_000)

    segmented = build_system(_config(NocDesign.GSS_SAGM, None))
    segmented.simulator.run(CYCLES, checkpoint_every=137)
    segmented.drain()
    segmented.simulator.run(6_000, checkpoint_every=137)
    assert not _diffs(_observe(segmented), _observe(plain))
    # Segmentation must not inhibit fast-forward: jumps are clamped to
    # segment ends (one stepped cycle per boundary), so the drained
    # horizon is still almost entirely elided, never stepped through.
    boundaries = 6_000 // 137 + CYCLES // 137 + 2
    assert (
        segmented.simulator.fast_forwarded_cycles
        >= plain.simulator.fast_forwarded_cycles - boundaries
    )


def test_on_checkpoint_true_stops_the_run():
    system = build_system(_config(NocDesign.GSS_SAGM, None))
    system.run(2_000, checkpoint_every=400, on_checkpoint=lambda c: c >= 800)
    assert system.simulator.cycle == 800


def test_run_argument_validation():
    system = build_system(_config(NocDesign.GSS_SAGM, None))
    with pytest.raises(ValueError):
        system.simulator.run(-1)
    with pytest.raises(ValueError):
        system.simulator.run(100, checkpoint_every=0)


# ---------------------------------------------------------------------- #
# Snapshot file integrity
# ---------------------------------------------------------------------- #


@pytest.fixture(scope="module")
def snapshot(tmp_path_factory):
    """One real snapshot shared by the integrity tests (cheap reads)."""
    system = build_system(_config(NocDesign.GSS_SAGM, None))
    system.simulator.run(400)
    path = tmp_path_factory.mktemp("ckpt") / "base.ckpt"
    save_checkpoint(path, system, meta={"note": "integrity"})
    return path


class TestSnapshotFile:
    def test_header_round_trip(self, snapshot):
        header = read_header(snapshot)
        assert header["schema"] == SCHEMA_VERSION
        assert header["cycle"] == 400
        assert header["meta"] == {"note": "integrity"}
        assert header["label"]  # config label recorded

    def test_write_is_atomic_no_temp_residue(self, snapshot):
        leftovers = [
            p for p in snapshot.parent.iterdir() if ".tmp." in p.name
        ]
        assert leftovers == []

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "not.ckpt"
        path.write_bytes(b"JUNKJUNK" + b"\x00" * 64)
        with pytest.raises(CheckpointError, match="not a repro checkpoint"):
            load_checkpoint(path)

    def test_truncated_payload_rejected(self, snapshot, tmp_path):
        path = tmp_path / "trunc.ckpt"
        path.write_bytes(snapshot.read_bytes()[:-64])
        with pytest.raises(CheckpointError, match="truncated"):
            load_checkpoint(path)

    def test_truncated_header_rejected(self, tmp_path):
        path = tmp_path / "short.ckpt"
        path.write_bytes(MAGIC + b"\x01")
        with pytest.raises(CheckpointError, match="truncated"):
            read_header(path)

    def test_bit_flip_fails_crc(self, snapshot, tmp_path):
        raw = bytearray(snapshot.read_bytes())
        raw[-20] ^= 0xFF
        path = tmp_path / "flipped.ckpt"
        path.write_bytes(bytes(raw))
        with pytest.raises(CheckpointError, match="CRC"):
            load_checkpoint(path)

    def test_schema_mismatch_is_explicit(self, tmp_path):
        import json
        import struct
        import zlib

        payload = b"x"
        header = json.dumps({
            "schema": SCHEMA_VERSION + 7,
            "crc32": zlib.crc32(payload),
            "payload_bytes": 1,
        }).encode()
        path = tmp_path / "future.ckpt"
        path.write_bytes(
            MAGIC + struct.pack("<I", len(header)) + header + payload
        )
        with pytest.raises(CheckpointError, match="schema"):
            load_checkpoint(path)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(CheckpointError, match="cannot read"):
            load_checkpoint(tmp_path / "absent.ckpt")

    def test_unserializable_system_rejected_cleanly(self, tmp_path):
        with pytest.raises(CheckpointError, match="not serializable"):
            save_checkpoint(tmp_path / "bad.ckpt", lambda: None)

    def test_latest_checkpoint_picks_newest_valid(self, tmp_path):
        for cycles, name in [(200, "old"), (600, "new")]:
            system = build_system(_config(NocDesign.GSS_SAGM, None))
            system.simulator.run(cycles)
            save_checkpoint(tmp_path / f"{name}.ckpt", system)
        (tmp_path / "corrupt.ckpt").write_bytes(b"REPROCKPgarbage")
        best = latest_checkpoint(tmp_path)
        assert best is not None and best.name == "new.ckpt"

    def test_latest_checkpoint_none_when_nothing_valid(self, tmp_path):
        (tmp_path / "junk.ckpt").write_bytes(b"nope")
        assert latest_checkpoint(tmp_path) is None


# ---------------------------------------------------------------------- #
# Engine serialization plumbing
# ---------------------------------------------------------------------- #


def test_plain_pickle_round_trip_equivalent():
    """The checkpoint file format wraps ordinary pickling: a raw pickle
    round-trip must already resume exactly (the engine's lazy rebind)."""
    baseline = build_system(_config(NocDesign.GSS_SAGM, FAULTS))
    baseline.simulator.run(CYCLES)

    system = build_system(_config(NocDesign.GSS_SAGM, FAULTS))
    system.simulator.run(MID)
    restored = pickle.loads(pickle.dumps(system))
    restored.simulator.run(CYCLES - MID)
    assert not _diffs(_observe(restored), _observe(baseline))


def test_watchdog_on_hang_hook_fires_and_is_not_load_bearing():
    """The hang hook fires once per exhausted request with (cycle,
    parent, master); a raising hook is swallowed (never load-bearing);
    the hook is dropped from snapshots."""

    class Tracker:
        last_activity = 0

    class Generator:
        master = 3

    class Interface:
        _reassembly = {17: Tracker()}
        generator = Generator()

    class Controller:
        def __init__(self):
            self.failed = []

        def fail_request(self, cycle, parent, master, reason):
            self.failed.append((cycle, parent, master, reason))

    controller = Controller()
    interface = Interface()
    watchdog = RequestWatchdog(
        controller, [interface],
        FaultConfig(watchdog_timeout=10, watchdog_retry_limit=0),
    )
    calls = []
    watchdog.on_hang = lambda cycle, parent, master: calls.append(
        (cycle, parent, master)
    )
    watchdog.tick(64)
    assert controller.failed == [(64, 17, 3, "watchdog")]
    assert calls == [(64, 17, 3)]

    # Raising hook: logged, never propagated.
    def explode(cycle, parent, master):
        raise RuntimeError("post-mortem hook bug")

    interface._reassembly = {18: Tracker()}
    watchdog.on_hang = explode
    watchdog.tick(128)  # must not raise
    assert controller.failed[-1][1] == 18


def test_watchdog_on_hang_hook_dropped_from_snapshots():
    system = build_system(_config(NocDesign.GSS_SAGM, FAULTS))
    system.watchdog.on_hang = lambda cycle, parent, master: None
    restored = pickle.loads(pickle.dumps(system))
    assert restored.watchdog.on_hang is None
