"""Seed derivation: deterministic, scope-independent, frozen legacy streams."""

import random

from repro.sim.rng import core_rng, derive_rng, derive_seed, placement_rng


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(2010, "fault", "link-drop") == derive_seed(
            2010, "fault", "link-drop"
        )

    def test_scope_sensitive(self):
        seeds = {
            derive_seed(2010),
            derive_seed(2010, "fault"),
            derive_seed(2010, "fault", "link-drop"),
            derive_seed(2010, "fault", "link-corrupt"),
        }
        assert len(seeds) == 4

    def test_root_sensitive(self):
        assert derive_seed(1, "x") != derive_seed(2, "x")

    def test_adjacent_roots_do_not_collide_across_scopes(self):
        # The cryptographic mix must not alias e.g. (1, "10") with (11, "0").
        assert derive_seed(1, 10) != derive_seed(11, 0)

    def test_fits_64_bits(self):
        assert 0 <= derive_seed(2**63, "scope") < 2**64


class TestDeriveRng:
    def test_no_scope_matches_plain_random(self):
        ours = derive_rng(42)
        reference = random.Random(42)
        assert [ours.random() for _ in range(5)] == [
            reference.random() for _ in range(5)
        ]

    def test_scoped_streams_are_independent(self):
        a = derive_rng(42, "fault", "a")
        b = derive_rng(42, "fault", "b")
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_scoped_stream_reproducible(self):
        a = derive_rng(42, "fault", "a")
        b = derive_rng(42, "fault", "a")
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]


class TestFrozenLegacyStreams:
    def test_core_rng_formula(self):
        # Golden waveforms depend on this exact derivation; never change it.
        ours = core_rng(2010, master=5)
        reference = random.Random((2010 << 8) ^ 5)
        assert [ours.random() for _ in range(5)] == [
            reference.random() for _ in range(5)
        ]

    def test_placement_rng_formula(self):
        ours = placement_rng(2010)
        reference = random.Random(2010)
        assert [ours.random() for _ in range(5)] == [
            reference.random() for _ in range(5)
        ]
