"""Post-run analysis helper tests."""

import pytest

from repro.sim.analysis import (
    bandwidth_share,
    per_master_report,
    render_master_report,
    tail_latencies,
)
from repro.sim.stats import StatsCollector


def populated_stats(keep_samples=True):
    stats = StatsCollector(keep_samples=keep_samples)
    for latency, master, demand in [
        (50, 0, True), (70, 0, True), (200, 1, False), (220, 1, False),
        (90, 2, False),
    ]:
        stats.record_completion(latency, 0, master=master, is_demand=demand)
    stats.record_idle_cycle(0)
    stats.record_bus_cycle(0, useful_beats=1, total_beats=2)
    return stats


class TestPerMaster:
    def test_one_report_per_master(self):
        reports = per_master_report(populated_stats())
        assert [r.master for r in reports] == [0, 1, 2]
        assert reports[0].completed == 2
        assert reports[0].mean_latency == 60

    def test_names_applied(self):
        reports = per_master_report(populated_stats(), names={0: "cpu"})
        assert reports[0].name == "cpu"
        assert reports[1].name == "core1"

    def test_p95_requires_samples(self):
        reports = per_master_report(populated_stats(keep_samples=False))
        assert reports[0].p95_latency is None

    def test_render_contains_rows(self):
        text = render_master_report(per_master_report(populated_stats()))
        assert "core1" in text
        assert "mean" in text


class TestTailLatencies:
    def test_classes_reported(self):
        tails = tail_latencies(populated_stats())
        assert tails["all"].maximum == 220
        assert tails["demand"].maximum == 70
        assert tails["all"].p99 >= tails["all"].p50

    def test_requires_samples(self):
        with pytest.raises(RuntimeError):
            tail_latencies(populated_stats(keep_samples=False))


class TestBandwidthShare:
    def test_shares_sum_to_one(self):
        share = bandwidth_share(populated_stats())
        assert share["useful"] + share["wasted"] == pytest.approx(1.0)
        assert share["useful"] == pytest.approx(0.5)

    def test_empty_stats(self):
        share = bandwidth_share(StatsCollector())
        assert share == {"useful": 0.0, "wasted": 0.0}


class TestEndToEnd:
    def test_analysis_of_real_run(self):
        from repro.core.system import build_system
        from repro.sim.config import SystemConfig
        from repro.sim.stats import StatsCollector

        config = SystemConfig(app="bluray", cycles=2_500, warmup=400)
        system = build_system(config)
        # swap in a sample-keeping collector before running
        system.stats.keep_samples = True
        system.stats.all_packets.keep_samples = True
        system.stats.demand_packets.keep_samples = True
        system.run()
        reports = per_master_report(
            system.stats,
            names={i: spec.name for i, spec in enumerate(system.app.cores)},
        )
        assert len(reports) >= 6
        assert any(r.name == "cpu" for r in reports)
        tails = tail_latencies(system.stats)
        assert tails["all"].p95 >= tails["all"].p50 > 0
