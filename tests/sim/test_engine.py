"""Simulator kernel tests: ordering, hooks, run control."""

import pytest

from repro.sim.engine import Simulator


class Recorder:
    def __init__(self, log, name):
        self.log = log
        self.name = name

    def tick(self, cycle):
        self.log.append((cycle, self.name))


def test_components_tick_in_registration_order():
    log = []
    sim = Simulator()
    sim.add(Recorder(log, "a"))
    sim.add(Recorder(log, "b"))
    sim.step()
    assert log == [(0, "a"), (0, "b")]


def test_cycle_counts_advance():
    sim = Simulator()
    assert sim.cycle == 0
    sim.step()
    assert sim.cycle == 1
    sim.run(9)
    assert sim.cycle == 10


def test_run_until_predicate_stops_early():
    log = []
    sim = Simulator()
    sim.add(Recorder(log, "x"))
    sim.run(100, until=lambda: len(log) >= 5)
    assert sim.cycle == 5


def test_run_rejects_negative_cycles():
    with pytest.raises(ValueError):
        Simulator().run(-1)


def test_add_rejects_non_clocked():
    with pytest.raises(TypeError):
        Simulator().add(object())


def test_add_returns_component_for_fluent_wiring():
    sim = Simulator()
    component = Recorder([], "a")
    assert sim.add(component) is component


def test_on_cycle_hook_runs_after_components():
    log = []
    sim = Simulator()
    sim.add(Recorder(log, "comp"))
    sim.on_cycle(lambda cycle: log.append((cycle, "hook")))
    sim.step()
    sim.step()
    assert log == [(0, "comp"), (0, "hook"), (1, "comp"), (1, "hook")]


def test_add_all_registers_in_iteration_order():
    log = []
    sim = Simulator()
    sim.add_all([Recorder(log, "a"), Recorder(log, "b"), Recorder(log, "c")])
    sim.step()
    assert [name for _, name in log] == ["a", "b", "c"]


def test_components_see_monotonic_cycles():
    seen = []

    class Watcher:
        def tick(self, cycle):
            seen.append(cycle)

    sim = Simulator()
    sim.add(Watcher())
    sim.run(50)
    assert seen == list(range(50))
