"""Simulator kernel tests: ordering, hooks, run control."""

import pytest

from repro.sim.engine import Simulator


class Recorder:
    def __init__(self, log, name):
        self.log = log
        self.name = name

    def tick(self, cycle):
        self.log.append((cycle, self.name))


def test_components_tick_in_registration_order():
    log = []
    sim = Simulator()
    sim.add(Recorder(log, "a"))
    sim.add(Recorder(log, "b"))
    sim.step()
    assert log == [(0, "a"), (0, "b")]


def test_cycle_counts_advance():
    sim = Simulator()
    assert sim.cycle == 0
    sim.step()
    assert sim.cycle == 1
    sim.run(9)
    assert sim.cycle == 10


def test_run_until_predicate_stops_early():
    log = []
    sim = Simulator()
    sim.add(Recorder(log, "x"))
    sim.run(100, until=lambda: len(log) >= 5)
    assert sim.cycle == 5


def test_run_rejects_negative_cycles():
    with pytest.raises(ValueError):
        Simulator().run(-1)


def test_add_rejects_non_clocked():
    with pytest.raises(TypeError):
        Simulator().add(object())


def test_add_returns_component_for_fluent_wiring():
    sim = Simulator()
    component = Recorder([], "a")
    assert sim.add(component) is component


def test_on_cycle_hook_runs_after_components():
    log = []
    sim = Simulator()
    sim.add(Recorder(log, "comp"))
    sim.on_cycle(lambda cycle: log.append((cycle, "hook")))
    sim.step()
    sim.step()
    assert log == [(0, "comp"), (0, "hook"), (1, "comp"), (1, "hook")]


def test_add_all_registers_in_iteration_order():
    log = []
    sim = Simulator()
    sim.add_all([Recorder(log, "a"), Recorder(log, "b"), Recorder(log, "c")])
    sim.step()
    assert [name for _, name in log] == ["a", "b", "c"]


def test_components_see_monotonic_cycles():
    seen = []

    class Watcher:
        def tick(self, cycle):
            seen.append(cycle)

    sim = Simulator()
    sim.add(Watcher())
    sim.run(50)
    assert seen == list(range(50))


def test_run_until_true_at_entry_simulates_zero_cycles():
    log = []
    sim = Simulator()
    sim.add(Recorder(log, "x"))
    assert sim.run(100, until=lambda: True) == 0
    assert sim.cycle == 0 and log == []


def test_add_rejects_non_callable_tick_attribute():
    class Broken:
        tick = "not callable"

    with pytest.raises(TypeError):
        Simulator().add(Broken())


class Sleeper:
    """Idle-skip component: quiet until ``wake`` (None = purely reactive),
    then ticks exactly once and goes quiet again."""

    def __init__(self, log, wake=None):
        self.log = log
        self.wake = wake
        self.skipped = []

    def tick(self, cycle):
        self.log.append(cycle)
        if self.wake is not None and cycle >= self.wake:
            self.wake = None

    def is_idle(self, cycle):
        return self.wake is None or cycle < self.wake

    def wake_at(self):
        return self.wake

    def on_cycles_skipped(self, start, stop):
        self.skipped.append((start, stop))


def test_fast_forward_jumps_to_wake_cycle():
    log = []
    sim = Simulator()
    component = sim.add(Sleeper(log, wake=40))
    sim.run(100)
    # Cycles 0-39 are skipped in one jump; 40 ticks; 41-99 jump to end.
    assert log == [40]
    assert sim.cycle == 100
    assert sim.fast_forwarded_cycles == 99
    assert component.skipped == [(0, 40), (41, 100)]


def test_fast_forward_clamps_to_run_horizon():
    log = []
    sim = Simulator()
    component = sim.add(Sleeper(log, wake=500))
    sim.run(100)
    assert log == []
    assert sim.cycle == 100
    assert component.skipped == [(0, 100)]
    sim.run(500)
    assert log == [500]
    assert sim.cycle == 600


def test_fast_forward_with_no_wake_jumps_to_end():
    sim = Simulator()
    component = sim.add(Sleeper([], wake=None))
    sim.run(1_000)
    assert sim.cycle == 1_000
    assert sim.fast_forwarded_cycles == 1_000
    assert component.skipped == [(0, 1_000)]


def test_fast_forward_disabled_without_idle_skip():
    log = []
    sim = Simulator(idle_skip=False)
    sim.add(Sleeper(log, wake=40))
    sim.run(100)
    # Naive stepping ticks every cycle, idle or not.
    assert log == list(range(100))
    assert sim.fast_forwarded_cycles == 0


def test_fast_forward_disabled_with_cycle_hooks():
    """on_cycle hooks observe individual cycles, so every cycle must step."""
    log, hooks = [], []
    sim = Simulator()
    sim.add(Sleeper(log, wake=40))
    sim.on_cycle(hooks.append)
    sim.run(100)
    assert hooks == list(range(100))
    assert sim.fast_forwarded_cycles == 0


def test_step_skips_idle_components_without_skip_accounting():
    """Per-cycle dispatch honours is_idle for components that do not keep
    per-cycle counters (no on_cycles_skipped)."""

    class Gated:
        def __init__(self):
            self.ticks = []

        def tick(self, cycle):
            self.ticks.append(cycle)

        def is_idle(self, cycle):
            return cycle % 2 == 0  # idle on even cycles

    sim = Simulator()
    gated = sim.add(Gated())
    always = sim.add(Recorder([], "busy"))
    always.is_idle = None  # plain component: no idle contract
    for _ in range(6):
        sim.step()
    assert gated.ticks == [1, 3, 5]


def test_step_always_ticks_components_with_skip_accounting():
    """A component with on_cycles_skipped keeps per-cycle state, so the
    stepped path must tick it every cycle even while it reports idle —
    only bulk fast-forward may elide its ticks (with accounting)."""
    log = []
    sleeper = Sleeper(log, wake=None)  # always idle
    busy = Recorder([], "busy")        # keeps the system from fast-forwarding

    sim = Simulator()
    sim.add(sleeper)
    sim.add(busy)
    sim.run(10)
    assert log == list(range(10))
    assert sleeper.skipped == []

# ---------------------------------------------------------------------- #
# Event dispatch (tier 1)
# ---------------------------------------------------------------------- #

from bisect import bisect_right

from repro.obs.profiler import SimulatorProfiler


class EventRecorder:
    """Event-capable component: self-arms at its scheduled cycles."""

    def __init__(self, log, name, schedule=()):
        self.log = log
        self.name = name
        self.schedule = sorted(set(schedule))
        self.skipped = []

    def tick(self, cycle):
        self.log.append((cycle, self.name))

    def event_wake_at(self, cycle):
        index = bisect_right(self.schedule, cycle)
        return self.schedule[index] if index < len(self.schedule) else None

    def on_cycles_skipped(self, start, stop):
        self.skipped.append((start, stop))


class Reactive:
    """Purely reactive event component: only wakes through its handle."""

    def __init__(self, log, name):
        self.log = log
        self.name = name
        self.wake = None

    def attach_wake(self, wake):
        self.wake = wake

    def tick(self, cycle):
        self.log.append((cycle, self.name))

    def event_wake_at(self, cycle):
        return None


class Firer(EventRecorder):
    """Ticks on schedule and calls another component's wake handle."""

    def __init__(self, log, name, schedule, fire_at, target, deadline=None):
        super().__init__(log, name, schedule)
        self.fire_at = fire_at
        self.target = target
        self.deadline = deadline

    def tick(self, cycle):
        super().tick(cycle)
        if cycle == self.fire_at:
            if self.deadline is None:
                self.target.wake()
            else:
                self.target.wake(self.deadline)


def test_event_dispatch_engages_when_all_components_are_event_capable():
    log = []
    sim = Simulator()
    sim.add(EventRecorder(log, "a", schedule=[3]))
    sim.add(EventRecorder(log, "b", schedule=[5]))
    sim.run(10)
    assert sim.last_dispatch_mode == "event"
    # Run entry arms everything once; then only the scheduled cycles run.
    assert log == [(0, "a"), (0, "b"), (3, "a"), (5, "b")]


def test_event_dispatch_jumps_unarmed_gaps():
    log = []
    sim = Simulator()
    sim.add(EventRecorder(log, "a", schedule=[5]))
    sim.run(100)
    assert sim.cycle == 100
    assert [c for c, _ in log] == [0, 5]
    assert sim.fast_forwarded_cycles == 98  # 1-4 and 6-99


def test_one_legacy_component_drops_the_run_to_stepping():
    log = []
    sim = Simulator()
    sim.add(EventRecorder(log, "event", schedule=[]))
    sim.add(Recorder(log, "legacy"))
    sim.run(5)
    assert sim.last_dispatch_mode == "stepped"


def test_event_wake_reaches_a_later_component_the_same_cycle():
    log = []
    sim = Simulator()
    reactive = Reactive(log, "b")
    sim.add(Firer(log, "a", schedule=[3], fire_at=3, target=reactive))
    sim.add(reactive)
    sim.run(10)
    # b was woken by a's cycle-3 tick and, being registered later, ran the
    # very same cycle — the ordered-stepping visibility rule.
    assert log == [(0, "a"), (0, "b"), (3, "a"), (3, "b")]


def test_event_wake_reaches_an_earlier_component_the_next_cycle():
    log = []
    sim = Simulator()
    reactive = Reactive(log, "a")
    sim.add(reactive)
    sim.add(Firer(log, "b", schedule=[3], fire_at=3, target=reactive))
    sim.run(10)
    assert log == [(0, "a"), (0, "b"), (3, "b"), (4, "a")]


def test_event_wake_with_deadline_arms_that_cycle():
    log = []
    sim = Simulator()
    reactive = Reactive(log, "b")
    sim.add(Firer(log, "a", schedule=[3], fire_at=3, target=reactive,
                  deadline=50))
    sim.add(reactive)
    sim.run(100)
    assert log == [(0, "a"), (0, "b"), (3, "a"), (50, "b")]


def test_event_skip_accounting_covers_exactly_the_unticked_cycles():
    log = []
    sim = Simulator()
    component = sim.add(EventRecorder(log, "a", schedule=[10, 20]))
    sim.run(30)
    assert [c for c, _ in log] == [0, 10, 20]
    assert component.skipped == [(1, 10), (11, 20), (21, 30)]


def test_event_until_predicate_checked_before_each_cycle():
    log = []
    sim = Simulator()
    sim.add(EventRecorder(log, "a", schedule=list(range(1, 100))))
    sim.run(100, until=lambda: len(log) >= 3)
    assert sim.last_dispatch_mode == "event"
    assert len(log) == 3


def test_profiler_rides_event_dispatch_without_inhibition():
    log = []
    sim = Simulator()
    sim.add(EventRecorder(log, "a", schedule=[2, 4]))
    profiler = SimulatorProfiler()
    sim.attach_profiler(profiler)
    sim.run(10)
    assert sim.last_dispatch_mode == "event"
    assert sim.fast_forward_inhibited is False
    # Only the cycles that actually processed ticks are attributed.
    assert profiler.cycles_profiled == 3
    assert profiler.totals.get("EventRecorder", 0) > 0


def test_profiler_on_legacy_system_inhibits_fast_forward():
    sim = Simulator()
    sim.add(Sleeper([], wake=40))
    sim.attach_profiler(SimulatorProfiler())
    sim.run(10)
    assert sim.last_dispatch_mode == "stepped"
    assert sim.fast_forward_inhibited is True


def test_cycle_hooks_inhibit_event_dispatch_and_set_telemetry():
    log, hooks = [], []
    sim = Simulator()
    sim.add(EventRecorder(log, "a", schedule=[5]))
    sim.on_cycle(hooks.append)
    sim.run(10)
    assert sim.last_dispatch_mode == "stepped"
    assert sim.fast_forward_inhibited is True
    assert hooks == list(range(10))


def test_on_run_mode_announces_the_dispatch_tier():
    calls = []

    class Modal(EventRecorder):
        def on_run_mode(self, event_dispatch):
            calls.append(event_dispatch)

    sim = Simulator()
    sim.add(Modal([], "a"))
    sim.run(5)
    assert calls == [True]
    sim.idle_skip = False
    sim.run(5)
    assert calls == [True, False]


def test_event_rearm_every_cycle_ticks_continuously():
    """The carry fast path (re-arm at cycle+1) must not skip or duplicate
    cycles."""
    log = []
    sim = Simulator()
    sim.add(EventRecorder(log, "a", schedule=list(range(1, 50))))
    sim.run(50)
    assert [c for c, _ in log] == list(range(50))
