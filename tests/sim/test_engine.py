"""Simulator kernel tests: ordering, hooks, run control."""

import pytest

from repro.sim.engine import Simulator


class Recorder:
    def __init__(self, log, name):
        self.log = log
        self.name = name

    def tick(self, cycle):
        self.log.append((cycle, self.name))


def test_components_tick_in_registration_order():
    log = []
    sim = Simulator()
    sim.add(Recorder(log, "a"))
    sim.add(Recorder(log, "b"))
    sim.step()
    assert log == [(0, "a"), (0, "b")]


def test_cycle_counts_advance():
    sim = Simulator()
    assert sim.cycle == 0
    sim.step()
    assert sim.cycle == 1
    sim.run(9)
    assert sim.cycle == 10


def test_run_until_predicate_stops_early():
    log = []
    sim = Simulator()
    sim.add(Recorder(log, "x"))
    sim.run(100, until=lambda: len(log) >= 5)
    assert sim.cycle == 5


def test_run_rejects_negative_cycles():
    with pytest.raises(ValueError):
        Simulator().run(-1)


def test_add_rejects_non_clocked():
    with pytest.raises(TypeError):
        Simulator().add(object())


def test_add_returns_component_for_fluent_wiring():
    sim = Simulator()
    component = Recorder([], "a")
    assert sim.add(component) is component


def test_on_cycle_hook_runs_after_components():
    log = []
    sim = Simulator()
    sim.add(Recorder(log, "comp"))
    sim.on_cycle(lambda cycle: log.append((cycle, "hook")))
    sim.step()
    sim.step()
    assert log == [(0, "comp"), (0, "hook"), (1, "comp"), (1, "hook")]


def test_add_all_registers_in_iteration_order():
    log = []
    sim = Simulator()
    sim.add_all([Recorder(log, "a"), Recorder(log, "b"), Recorder(log, "c")])
    sim.step()
    assert [name for _, name in log] == ["a", "b", "c"]


def test_components_see_monotonic_cycles():
    seen = []

    class Watcher:
        def tick(self, cycle):
            seen.append(cycle)

    sim = Simulator()
    sim.add(Watcher())
    sim.run(50)
    assert seen == list(range(50))


def test_run_until_true_at_entry_simulates_zero_cycles():
    log = []
    sim = Simulator()
    sim.add(Recorder(log, "x"))
    assert sim.run(100, until=lambda: True) == 0
    assert sim.cycle == 0 and log == []


def test_add_rejects_non_callable_tick_attribute():
    class Broken:
        tick = "not callable"

    with pytest.raises(TypeError):
        Simulator().add(Broken())


class Sleeper:
    """Idle-skip component: quiet until ``wake`` (None = purely reactive),
    then ticks exactly once and goes quiet again."""

    def __init__(self, log, wake=None):
        self.log = log
        self.wake = wake
        self.skipped = []

    def tick(self, cycle):
        self.log.append(cycle)
        if self.wake is not None and cycle >= self.wake:
            self.wake = None

    def is_idle(self, cycle):
        return self.wake is None or cycle < self.wake

    def wake_at(self):
        return self.wake

    def on_cycles_skipped(self, start, stop):
        self.skipped.append((start, stop))


def test_fast_forward_jumps_to_wake_cycle():
    log = []
    sim = Simulator()
    component = sim.add(Sleeper(log, wake=40))
    sim.run(100)
    # Cycles 0-39 are skipped in one jump; 40 ticks; 41-99 jump to end.
    assert log == [40]
    assert sim.cycle == 100
    assert sim.fast_forwarded_cycles == 99
    assert component.skipped == [(0, 40), (41, 100)]


def test_fast_forward_clamps_to_run_horizon():
    log = []
    sim = Simulator()
    component = sim.add(Sleeper(log, wake=500))
    sim.run(100)
    assert log == []
    assert sim.cycle == 100
    assert component.skipped == [(0, 100)]
    sim.run(500)
    assert log == [500]
    assert sim.cycle == 600


def test_fast_forward_with_no_wake_jumps_to_end():
    sim = Simulator()
    component = sim.add(Sleeper([], wake=None))
    sim.run(1_000)
    assert sim.cycle == 1_000
    assert sim.fast_forwarded_cycles == 1_000
    assert component.skipped == [(0, 1_000)]


def test_fast_forward_disabled_without_idle_skip():
    log = []
    sim = Simulator(idle_skip=False)
    sim.add(Sleeper(log, wake=40))
    sim.run(100)
    # Naive stepping ticks every cycle, idle or not.
    assert log == list(range(100))
    assert sim.fast_forwarded_cycles == 0


def test_fast_forward_disabled_with_cycle_hooks():
    """on_cycle hooks observe individual cycles, so every cycle must step."""
    log, hooks = [], []
    sim = Simulator()
    sim.add(Sleeper(log, wake=40))
    sim.on_cycle(hooks.append)
    sim.run(100)
    assert hooks == list(range(100))
    assert sim.fast_forwarded_cycles == 0


def test_step_skips_idle_components_without_skip_accounting():
    """Per-cycle dispatch honours is_idle for components that do not keep
    per-cycle counters (no on_cycles_skipped)."""

    class Gated:
        def __init__(self):
            self.ticks = []

        def tick(self, cycle):
            self.ticks.append(cycle)

        def is_idle(self, cycle):
            return cycle % 2 == 0  # idle on even cycles

    sim = Simulator()
    gated = sim.add(Gated())
    always = sim.add(Recorder([], "busy"))
    always.is_idle = None  # plain component: no idle contract
    for _ in range(6):
        sim.step()
    assert gated.ticks == [1, 3, 5]


def test_step_always_ticks_components_with_skip_accounting():
    """A component with on_cycles_skipped keeps per-cycle state, so the
    stepped path must tick it every cycle even while it reports idle —
    only bulk fast-forward may elide its ticks (with accounting)."""
    log = []
    sleeper = Sleeper(log, wake=None)  # always idle
    busy = Recorder([], "busy")        # keeps the system from fast-forwarding

    sim = Simulator()
    sim.add(sleeper)
    sim.add(busy)
    sim.run(10)
    assert log == list(range(10))
    assert sleeper.skipped == []
