"""Golden regression: idle-skip stepping is bit-identical to naive stepping.

The idle-skip contract (see :mod:`repro.sim.engine`) claims that skipping a
component's tick when ``is_idle`` holds — and fast-forwarding whole idle
gaps — changes no observable state.  These tests hold the kernel to that
claim end-to-end: full systems run twice, once per kernel, and every
reported metric (and the resilience ledger, when faults are injected) must
match exactly.  Any drift here means a component's ``is_idle`` lied.
"""

import dataclasses

import pytest

from repro.core.system import build_system
from repro.resilience.faults import FaultConfig
from repro.sim.config import NocDesign, SystemConfig

CYCLES = 2_500
WARMUP = 400

FAULTS = FaultConfig(link_corrupt_rate=1e-3, sdram_bit_rate=1e-3)


def _run(idle_skip: bool, design: NocDesign, faults) -> dict:
    config = SystemConfig(
        app="single_dtv", cycles=CYCLES, warmup=WARMUP,
        design=design, seed=2010, faults=faults,
    )
    system = build_system(config)
    system.simulator.idle_skip = idle_skip
    metrics = system.run(CYCLES)
    observed = dataclasses.asdict(metrics)
    resilience = system.resilience
    if resilience is not None:
        observed["resilience"] = {
            "recovered": resilience.recovered,
            "failed_faults": resilience.failed_faults,
            "crc_retries": resilience.crc_retries,
            "dram_rereads": resilience.dram_reread_count,
            "watchdog_reissues": resilience.watchdog_reissues,
            "failed_requests": resilience.failed_requests,
            "stale_responses": resilience.stale_responses,
            "injected": dict(resilience.injector.injected),
        }
    return observed


@pytest.mark.parametrize("design", [NocDesign.GSS_SAGM, NocDesign.CONV])
@pytest.mark.parametrize("faults", [None, FAULTS], ids=["clean", "faulty"])
def test_idle_skip_metrics_bit_identical(design, faults):
    skipping = _run(True, design, faults)
    naive = _run(False, design, faults)
    diffs = {
        key: (skipping[key], naive[key])
        for key in skipping
        if skipping[key] != naive[key]
    }
    assert not diffs, f"idle-skip kernel diverged from naive stepping: {diffs}"


def test_fast_forward_engages_on_drained_system():
    """The identity above is only meaningful if the fast path engages.

    At the paper's operating point the fabric is saturated, so global
    fast-forward never fires mid-run (per-cycle skipping carries the
    speedup there); it fires on idle tails.  After :meth:`System.drain`
    reaches quiescence, every component is idle with no self-wake, so a
    further run must jump over (almost) the whole horizon instead of
    stepping it."""
    config = SystemConfig(
        app="single_dtv", cycles=CYCLES, warmup=WARMUP,
        design=NocDesign.GSS_SAGM, seed=2010,
    )
    system = build_system(config)
    system.run(CYCLES)
    assert system.drain(), "system failed to quiesce"
    before = system.simulator.fast_forwarded_cycles
    horizon = 10_000
    system.simulator.run(horizon)
    jumped = system.simulator.fast_forwarded_cycles - before
    assert jumped > horizon * 0.9, (
        f"quiescent system stepped {horizon - jumped} of {horizon} cycles"
    )
