"""Golden regression: idle-skip stepping is bit-identical to naive stepping.

The idle-skip contract (see :mod:`repro.sim.engine`) claims that skipping a
component's tick when ``is_idle`` holds — and fast-forwarding whole idle
gaps — changes no observable state.  These tests hold the kernel to that
claim end-to-end: full systems run twice, once per kernel, and every
reported metric (and the resilience ledger, when faults are injected) must
match exactly.  Any drift here means a component's ``is_idle`` lied.
"""

import dataclasses

import pytest

from repro.core.system import build_system
from repro.resilience.faults import FaultConfig
from repro.sim.config import NocDesign, SystemConfig

CYCLES = 2_500
WARMUP = 400

FAULTS = FaultConfig(link_corrupt_rate=1e-3, sdram_bit_rate=1e-3)


def _run(idle_skip: bool, design: NocDesign, faults) -> dict:
    config = SystemConfig(
        app="single_dtv", cycles=CYCLES, warmup=WARMUP,
        design=design, seed=2010, faults=faults,
    )
    system = build_system(config)
    system.simulator.idle_skip = idle_skip
    metrics = system.run(CYCLES)
    observed = dataclasses.asdict(metrics)
    resilience = system.resilience
    if resilience is not None:
        observed["resilience"] = {
            "recovered": resilience.recovered,
            "failed_faults": resilience.failed_faults,
            "crc_retries": resilience.crc_retries,
            "dram_rereads": resilience.dram_reread_count,
            "watchdog_reissues": resilience.watchdog_reissues,
            "failed_requests": resilience.failed_requests,
            "stale_responses": resilience.stale_responses,
            "injected": dict(resilience.injector.injected),
        }
    return observed


@pytest.mark.parametrize("design", [NocDesign.GSS_SAGM, NocDesign.CONV])
@pytest.mark.parametrize("faults", [None, FAULTS], ids=["clean", "faulty"])
def test_idle_skip_metrics_bit_identical(design, faults):
    skipping = _run(True, design, faults)
    naive = _run(False, design, faults)
    diffs = {
        key: (skipping[key], naive[key])
        for key in skipping
        if skipping[key] != naive[key]
    }
    assert not diffs, f"idle-skip kernel diverged from naive stepping: {diffs}"


def test_fast_forward_engages_on_drained_system():
    """The identity above is only meaningful if the fast path engages.

    At the paper's operating point the fabric is saturated, so global
    fast-forward never fires mid-run (per-cycle skipping carries the
    speedup there); it fires on idle tails.  After :meth:`System.drain`
    reaches quiescence, every component is idle with no self-wake, so a
    further run must jump over (almost) the whole horizon instead of
    stepping it."""
    config = SystemConfig(
        app="single_dtv", cycles=CYCLES, warmup=WARMUP,
        design=NocDesign.GSS_SAGM, seed=2010,
    )
    system = build_system(config)
    system.run(CYCLES)
    assert system.drain(), "system failed to quiesce"
    before = system.simulator.fast_forwarded_cycles
    horizon = 10_000
    system.simulator.run(horizon)
    jumped = system.simulator.fast_forwarded_cycles - before
    assert jumped > horizon * 0.9, (
        f"quiescent system stepped {horizon - jumped} of {horizon} cycles"
    )


def _forced(mode: str, simulator) -> None:
    """Pin ``simulator`` to one dispatch tier (see engine module docs)."""
    if mode == "naive":
        simulator.idle_skip = False
    elif mode == "stepped":
        simulator._all_event = False  # the legacy escape hatch
    else:
        assert mode == "event"


def _run_mode(mode: str, design: NocDesign, faults) -> dict:
    config = SystemConfig(
        app="single_dtv", cycles=CYCLES, warmup=WARMUP,
        design=design, seed=2010, faults=faults,
    )
    system = build_system(config)
    _forced(mode, system.simulator)
    metrics = system.run(CYCLES)
    assert system.simulator.last_dispatch_mode == mode
    return dataclasses.asdict(metrics)


@pytest.mark.parametrize("mode", ["event", "stepped"])
@pytest.mark.parametrize("design", [NocDesign.GSS_SAGM, NocDesign.CONV])
def test_every_dispatch_tier_matches_naive(mode, design):
    """Three-way golden identity: the event calendar queue and the stepped
    idle-skip kernel must both reproduce naive stepping exactly."""
    observed = _run_mode(mode, design, FAULTS)
    naive = _run_mode("naive", design, FAULTS)
    diffs = {
        key: (observed[key], naive[key])
        for key in observed
        if observed[key] != naive[key]
    }
    assert not diffs, f"{mode} dispatch diverged from naive stepping: {diffs}"


# ---------------------------------------------------------------------- #
# Property-based identity: random wake/idle schedules (hypothesis)
# ---------------------------------------------------------------------- #

hypothesis = pytest.importorskip("hypothesis")
from bisect import bisect_right

from hypothesis import given, settings, strategies as st

from repro.sim.engine import Simulator

HORIZON = 260


class PropSource:
    """Emits one item per scheduled cycle, gated by a token credit the
    sink hands back — a closed loop across the registration order."""

    def __init__(self, schedule, tokens):
        self.schedule = sorted(set(schedule))
        self.tokens = tokens
        self.consumer = None
        self.log = []
        self._wake = None

    def attach_wake(self, wake):
        self._wake = wake

    def credit(self):
        """Called by the sink (registered later): visible next cycle."""
        self.tokens += 1
        if self._wake is not None:
            self._wake()

    def tick(self, cycle):
        if cycle in self.schedule and self.tokens > 0:
            self.tokens -= 1
            self.log.append(cycle)
            self.consumer.push(cycle, ("item", cycle))

    def event_wake_at(self, cycle):
        index = bisect_right(self.schedule, cycle)
        return self.schedule[index] if index < len(self.schedule) else None


class PropRelay:
    """Holds each item for a fixed delay, then forwards it downstream."""

    def __init__(self, delay):
        self.delay = delay
        self.pending = []
        self.consumer = None
        self.log = []
        self._wake = None

    def attach_wake(self, wake):
        self._wake = wake

    def push(self, cycle, item):
        due = cycle + self.delay
        self.pending.append((due, item))
        if self._wake is not None:
            self._wake(due if self.delay else None)

    def tick(self, cycle):
        due_now = [entry for entry in self.pending if entry[0] <= cycle]
        if not due_now:
            return
        self.pending = [entry for entry in self.pending if entry[0] > cycle]
        for _, item in due_now:
            self.log.append((cycle, item))
            self.consumer.push(cycle, item)

    def event_wake_at(self, cycle):
        if not self.pending:
            return None
        return min(due for due, _ in self.pending)


class PropSink:
    """Consumes everything pushed at it and returns the token upstream."""

    def __init__(self, source):
        self.source = source
        self.queue = []
        self.log = []
        self._wake = None

    def attach_wake(self, wake):
        self._wake = wake

    def push(self, cycle, item):
        self.queue.append(item)
        if self._wake is not None:
            self._wake()

    def tick(self, cycle):
        if not self.queue:
            return
        for item in self.queue:
            self.log.append((cycle, item))
            self.source.credit()
        self.queue = []

    def event_wake_at(self, cycle):
        return cycle + 1 if self.queue else None


def _build_chain(schedule, tokens, delay):
    source = PropSource(schedule, tokens)
    relay = PropRelay(delay)
    sink = PropSink(source)
    source.consumer = relay
    relay.consumer = sink
    sim = Simulator()
    sim.add(source)
    sim.add(relay)
    sim.add(sink)
    return sim, source, relay, sink


@settings(max_examples=60, deadline=None)
@given(
    schedule=st.lists(
        st.integers(min_value=0, max_value=HORIZON - 10), max_size=40
    ),
    tokens=st.integers(min_value=0, max_value=6),
    delay=st.integers(min_value=0, max_value=7),
)
def test_random_schedules_event_identical_to_naive(schedule, tokens, delay):
    """Any random wake/idle schedule must produce cycle-identical logs
    under event dispatch and naive stepping — a missed or misordered wake
    shows up as a shifted emission, relay, or credit cycle."""
    event_sim, esrc, erelay, esink = _build_chain(schedule, tokens, delay)
    event_sim.run(HORIZON)
    assert event_sim.last_dispatch_mode == "event"

    naive_sim, nsrc, nrelay, nsink = _build_chain(schedule, tokens, delay)
    naive_sim.idle_skip = False
    naive_sim.run(HORIZON)
    assert naive_sim.last_dispatch_mode == "naive"

    assert esrc.log == nsrc.log
    assert erelay.log == nrelay.log
    assert esink.log == nsink.log
    assert esrc.tokens == nsrc.tokens
    assert erelay.pending == nrelay.pending


# ---------------------------------------------------------------------- #
# Sampler transparency: telemetry must never perturb simulated metrics
# ---------------------------------------------------------------------- #


@pytest.mark.parametrize("interval", [1, 997])
def test_sampler_leaves_metrics_bit_identical(interval):
    """An attached time-series sampler — at a pathological interval of 1
    or a boundary-straddling prime — must leave every reported metric
    bit-identical to the unsampled run, and must keep an all-event system
    on the event tier (it speaks ``event_wake_at``, so it never drops the
    run to stepping)."""
    def run(attach: bool):
        config = SystemConfig(
            app="single_dtv", cycles=CYCLES, warmup=WARMUP,
            design=NocDesign.GSS_SAGM, seed=2010,
        )
        system = build_system(config)
        sampler = (
            # Capacity covers every window so the delta-sum check below
            # sees the whole run, not just the ring's tail.
            system.attach_sampler(interval, capacity=CYCLES + 8)
            if attach else None
        )
        metrics = system.run(CYCLES)
        return dataclasses.asdict(metrics), system, sampler

    sampled, sampled_system, sampler = run(True)
    plain, plain_system, _ = run(False)
    assert sampled == plain, (
        f"sampler at interval {interval} perturbed metrics: "
        f"{ {k: (sampled[k], plain[k]) for k in sampled if sampled[k] != plain[k]} }"
    )
    assert sampled_system.simulator.last_dispatch_mode == "event"
    assert plain_system.simulator.last_dispatch_mode == "event"
    # Coverage is complete and conservative: window deltas sum to the
    # final cumulative counter.
    assert sum(
        s.deltas["requests.completed"] for s in sampler.samples
    ) == sampled_system.stats.all_packets.count
