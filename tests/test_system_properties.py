"""Property-based full-system tests.

Hypothesis chooses random configurations (design, generation, clock, PCT,
routing, VCs, buffer sizes); the full stack must always build, run, serve
traffic, keep its metrics physically sensible, and remain deterministic.
"""

from hypothesis import given, settings, strategies as st

from repro.core.system import build_system
from repro.resilience.faults import FaultConfig
from repro.sim.config import DdrGeneration, NocDesign, SystemConfig

CLOCKS = {
    DdrGeneration.DDR1: (133, 166, 200),
    DdrGeneration.DDR2: (266, 333, 400),
    DdrGeneration.DDR3: (533, 667, 800),
}

config_strategy = st.builds(
    dict,
    app=st.sampled_from(["bluray", "single_dtv"]),
    design=st.sampled_from(list(NocDesign)),
    ddr=st.sampled_from(list(DdrGeneration)),
    clock_index=st.integers(0, 2),
    priority_enabled=st.booleans(),
    pct=st.integers(1, 6),
    sti=st.booleans(),
    adaptive_routing=st.booleans(),
    virtual_channels=st.integers(1, 2),
    link_buffer_flits=st.sampled_from([8, 12, 24]),
    num_gss_routers=st.one_of(st.none(), st.integers(0, 9)),
    seed=st.integers(0, 2**16),
)


def build_config(raw) -> SystemConfig:
    clock = CLOCKS[raw["ddr"]][raw.pop("clock_index")]
    return SystemConfig(clock_mhz=clock, cycles=1_200, warmup=200, **raw)


@settings(max_examples=20, deadline=None)
@given(raw=config_strategy)
def test_any_configuration_serves_traffic(raw):
    config = build_config(raw)
    system = build_system(config)
    metrics = system.run()
    # Degenerate configs (e.g. SAGM splitting with zero GSS routers and
    # round-robin arbitration) can have per-request latency beyond the
    # post-warmup window, leaving the warmup-filtered collector empty —
    # so assert service at the interfaces, which counts every completion.
    assert sum(ci.completed_requests for ci in system.core_interfaces) > 0
    assert 0.0 < metrics.utilization <= 1.0
    assert metrics.utilization <= metrics.raw_utilization + 1e-9
    if metrics.completed:
        assert metrics.latency_all > 0
    # conservation at the memory boundary
    mi = system.memory_interface
    assert mi.responses_sent <= mi.admitted


@settings(max_examples=10, deadline=None)
@given(raw=config_strategy)
def test_any_configuration_is_deterministic(raw):
    config = build_config(raw)
    a = build_system(config).run()
    b = build_system(config).run()
    assert a == b


@settings(max_examples=10, deadline=None)
@given(raw=config_strategy)
def test_no_requests_stranded_after_drain(raw):
    config = build_config(raw)
    system = build_system(config)
    system.run()
    for core in system.cores:
        core.spec.max_outstanding = 0
    for _ in range(25_000):
        system.simulator.step()
        if (
            all(ci.outstanding == 0 for ci in system.core_interfaces)
            and system.memory_interface.idle
            and system.network.in_flight_packets == 0
        ):
            break
    issued = sum(core.issued for core in system.cores)
    completed = sum(core.completed for core in system.cores)
    assert issued == completed


@settings(max_examples=10, deadline=None)
@given(raw=config_strategy)
def test_invariant_checker_never_fires_fault_free(raw):
    # Credit/token conservation and the packet-age bound hold on every
    # healthy configuration: the live checker must audit without raising,
    # both on its own interval and in a final end-of-run sweep.
    config = build_config(raw).with_(check_invariants=True)
    system = build_system(config)
    system.run()  # InvariantViolation here is the failure
    checker = system.invariant_checker
    assert checker.checks_run > 0
    checker.check(config.cycles)  # final full audit


@settings(max_examples=8, deadline=None)
@given(
    raw=config_strategy,
    rate=st.sampled_from([1e-4, 1e-3, 5e-3]),
)
def test_fault_runs_account_for_every_injected_fault(raw, rate):
    # Under any configuration and fault rate, the system must drain to
    # quiescence with the ledger balanced: every injected fault ends up
    # corrected, recovered, or charged to a surfaced request failure.
    config = build_config(raw).with_(faults=FaultConfig.uniform(rate))
    system = build_system(config)
    system.run()
    assert system.drain(), "fault run failed to reach quiescence"
    controller = system.resilience
    assert controller.unresolved == 0
    assert controller.injected_total == (
        controller.corrected + controller.recovered + controller.failed_faults
    )
