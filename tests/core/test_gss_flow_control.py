"""GSS flow controller tests, including the Fig. 1 scheduling scenario."""

from itertools import count

import pytest

from tests.helpers import make_request
from repro.core.gss_flow_control import (
    GssFlowController,
    PfsMemoryFlowController,
    SdramAwareFlowController,
)
from repro.noc.packet import request_packet
from repro.noc.topology import Port


def drain_schedule(controller, named_packets, burst_cycles=4):
    """Arbitrate until every packet is scheduled; return the name order."""
    candidates = []
    for port, (name, packet) in zip(
        [Port.LOCAL, Port.NORTH, Port.EAST, Port.SOUTH, Port.WEST,
         Port.LOCAL, Port.NORTH, Port.EAST],
        named_packets,
    ):
        controller.on_arrival(port, packet, 0)
        candidates.append((port, packet))
    names = {p.packet_id: name for name, p in named_packets}
    order = []
    cycle = 0
    while candidates:
        winner = controller.pick(candidates, cycle)
        assert winner is not None
        port, packet = winner
        controller.on_scheduled(port, packet, cycle)
        controller.on_delivered(packet, cycle + burst_cycles)
        order.append(names[packet.packet_id])
        candidates = [c for c in candidates if c[1] is not packet]
        cycle += burst_cycles
    return order


def fig1_packets():
    """Fig. 1(a)'s input buffer: 2 demands, 2 prefetches, 2 video requests.
    All reads, rows distinct except prefetch2/request2; demand2 conflicts
    with demand1 (same bank, different rows)."""
    ids = count(1)

    def build(name, bank, row, priority=False):
        return name, request_packet(
            next(ids),
            make_request(bank=bank, row=row, priority=priority,
                         demand=priority),
            1, 0, 0,
        )

    return [
        build("demand1", 1, 10, priority=True),
        build("prefetch1", 2, 20),
        build("request1", 3, 30),
        build("demand2", 1, 11, priority=True),
        build("prefetch2", 4, 40),
        build("request2", 4, 40),
    ]


class TestFig1:
    def test_priority_equal_delays_demand2(self, ddr2_timing):
        order = drain_schedule(SdramAwareFlowController(ddr2_timing),
                               fig1_packets())
        # Fig. 1(b): demand2 waits until its conflict with demand1 has aged out
        assert order.index("demand2") >= 3

    def test_priority_first_creates_adjacent_conflict(self, ddr2_timing):
        controller = PfsMemoryFlowController(SdramAwareFlowController(ddr2_timing))
        order = drain_schedule(controller, fig1_packets())
        # Fig. 1(c): both demands first, back to back (bank conflict)
        assert order[0] == "demand1" and order[1] == "demand2"

    def test_hybrid_serves_demands_early_without_adjacency(self, ddr2_timing):
        order = drain_schedule(GssFlowController(ddr2_timing, pct=5),
                               fig1_packets())
        # Fig. 1(d): demand1 first, demand2 within the first three, and the
        # two demands separated by a different-bank packet
        assert order[0] == "demand1"
        assert order.index("demand2") <= 2
        assert order[order.index("demand2") - 1] != "demand1" or \
            order.index("demand2") - order.index("demand1") > 1


class TestStiCounters:
    def test_write_arms_long_window(self, ddr3_timing):
        controller = GssFlowController(ddr3_timing, sti_enabled=True)
        write = request_packet(1, make_request(bank=0, row=1, is_read=False),
                               1, 0, 0)
        controller.on_arrival(Port.EAST, write, 0)
        controller.on_scheduled(Port.EAST, write, 0)
        controller.on_delivered(write, 10)
        blocked = make_request(bank=0, row=2)
        assert controller.state.sti_blocked(blocked, 10 + 5)
        assert controller.state.sti_blocked(blocked, 10 + 22)
        # past the tWR+tRP counter, the schedule-distance window still
        # holds until enough other packets have been scheduled
        assert controller.state.sti_blocked(blocked, 10 + 23)
        for i in range(controller.state.sti_distance):
            controller.state.note_scheduled(make_request(bank=3, row=i))
        assert not controller.state.sti_blocked(blocked, 10 + 23)

    def test_read_arms_trp_window(self, ddr3_timing):
        controller = GssFlowController(ddr3_timing, sti_enabled=True)
        read = request_packet(1, make_request(bank=0, row=1), 1, 0, 0)
        controller.on_arrival(Port.EAST, read, 0)
        controller.on_scheduled(Port.EAST, read, 0)
        controller.on_delivered(read, 10)
        blocked = make_request(bank=0, row=2)
        assert controller.state.sti_blocked(blocked, 10 + ddr3_timing.t_rp - 1)
        for i in range(controller.state.sti_distance):
            controller.state.note_scheduled(make_request(bank=3, row=i))
        assert not controller.state.sti_blocked(blocked, 10 + ddr3_timing.t_rp)

    def test_sti_distance_configured_from_timing(self, ddr3_timing):
        on = GssFlowController(ddr3_timing, sti_enabled=True)
        off = GssFlowController(ddr3_timing, sti_enabled=False)
        assert on.state.sti_distance == -(-ddr3_timing.write_to_precharge // 4)
        assert off.state.sti_distance == 0

    def test_sti_prefers_other_bank(self, ddr3_timing):
        controller = GssFlowController(ddr3_timing, sti_enabled=True)
        write = request_packet(1, make_request(bank=0, row=1, is_read=False),
                               1, 0, 0)
        controller.on_arrival(Port.EAST, write, 0)
        controller.on_scheduled(Port.EAST, write, 0)
        controller.on_delivered(write, 4)
        hot = request_packet(2, make_request(bank=0, row=2, is_read=False), 1, 0, 5)
        cold = request_packet(3, make_request(bank=5, row=2, is_read=False), 1, 0, 5)
        controller.on_arrival(Port.SOUTH, hot, 5)
        controller.on_arrival(Port.WEST, cold, 5)
        winner = controller.pick([(Port.SOUTH, hot), (Port.WEST, cold)], 6)
        assert winner[1] is cold


class TestBaselineVariants:
    def test_sdram_aware_forces_single_token(self, ddr2_timing):
        controller = SdramAwareFlowController(ddr2_timing, pct=5)
        priority = request_packet(1, make_request(priority=True), 1, 0, 0)
        controller.on_arrival(Port.EAST, priority, 0)
        assert controller.table.tokens(priority) == 1

    def test_sdram_aware_clears_exclusions(self, ddr2_timing):
        controller = SdramAwareFlowController(ddr2_timing)
        be = request_packet(1, make_request(bank=3), 1, 0, 0)
        pri = request_packet(2, make_request(bank=3, priority=True), 1, 0, 0)
        controller.on_arrival(Port.EAST, be, 0)
        controller.on_arrival(Port.SOUTH, pri, 1)
        assert not controller.table.is_excluded(be, Port.EAST)

    def test_pfs_wrapper_bypasses_scheduling(self, ddr2_timing):
        controller = PfsMemoryFlowController(SdramAwareFlowController(ddr2_timing))
        be = request_packet(1, make_request(bank=0, row=0), 1, 0, 0)
        pri = request_packet(2, make_request(bank=0, row=1, priority=True), 1, 0, 1)
        controller.on_arrival(Port.EAST, be, 0)
        controller.on_arrival(Port.SOUTH, pri, 1)
        # establish last = bank0/row0 so pri is a bank conflict
        controller.on_scheduled(Port.EAST, be, 2)
        winner = controller.pick([(Port.SOUTH, pri)], 3)
        assert winner[1] is pri  # scheduled regardless of the conflict

    def test_scheduled_count_increments(self, ddr2_timing):
        controller = GssFlowController(ddr2_timing)
        packet = request_packet(1, make_request(), 1, 0, 0)
        controller.on_arrival(Port.EAST, packet, 0)
        controller.on_scheduled(Port.EAST, packet, 0)
        assert controller.scheduled_count == 1

    def test_non_request_delivery_ignored(self, ddr2_timing):
        from repro.noc.packet import response_packet
        controller = GssFlowController(ddr2_timing)
        rsp = response_packet(1, make_request(), 0, 1, 0)
        rsp.request = None
        controller.on_delivered(rsp, 5)  # must not raise
