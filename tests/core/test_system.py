"""Full-system assembly and smoke-run tests."""

import pytest

from repro.core.gss_flow_control import (
    GssFlowController,
    PfsMemoryFlowController,
    SdramAwareFlowController,
)
from repro.core.system import build_system, run_config
from repro.noc.flow_control import (
    DualFlowController,
    PriorityFirstFlowController,
    RoundRobinFlowController,
)
from repro.noc.topology import Port
from repro.sim.config import DdrGeneration, NocDesign, SystemConfig


def small(**overrides):
    defaults = dict(app="bluray", cycles=2_500, warmup=500)
    defaults.update(overrides)
    return SystemConfig(**defaults)


class TestConstruction:
    def test_conv_uses_round_robin_everywhere(self):
        system = build_system(small(design=NocDesign.CONV))
        controller = system.network.router(4).outputs[Port.LOCAL].controller
        assert isinstance(controller, RoundRobinFlowController)

    def test_conv_pfs_uses_priority_first(self):
        system = build_system(small(design=NocDesign.CONV_PFS))
        controller = system.network.router(4).outputs[Port.LOCAL].controller
        assert isinstance(controller, PriorityFirstFlowController)

    def test_sdram_aware_uses_dual_with_baseline(self):
        system = build_system(small(design=NocDesign.SDRAM_AWARE))
        controller = system.network.router(0).outputs[Port.LOCAL].controller
        assert isinstance(controller, DualFlowController)
        assert isinstance(controller.memory, SdramAwareFlowController)

    def test_sdram_aware_pfs_wraps_baseline(self):
        system = build_system(small(design=NocDesign.SDRAM_AWARE_PFS))
        controller = system.network.router(0).outputs[Port.LOCAL].controller
        assert isinstance(controller.memory, PfsMemoryFlowController)

    def test_gss_design_deploys_gss_controllers(self):
        system = build_system(small(design=NocDesign.GSS))
        controller = system.network.router(0).outputs[Port.LOCAL].controller
        assert isinstance(controller.memory, GssFlowController)
        assert type(controller.memory) is GssFlowController

    def test_partial_gss_deployment(self):
        system = build_system(small(design=NocDesign.GSS, num_gss_routers=3,
                                    priority_enabled=True))
        assert len(system.gss_nodes) == 3
        # nearest-to-memory nodes first (memory at node 0 of a 3x3 mesh)
        assert system.gss_nodes == {0, 1, 3}
        far_controller = system.network.router(8).outputs[Port.LOCAL].controller
        assert isinstance(far_controller, PriorityFirstFlowController)

    def test_zero_gss_routers_is_conventional(self):
        system = build_system(small(design=NocDesign.GSS_SAGM,
                                    num_gss_routers=0))
        assert system.gss_nodes == set()

    def test_sagm_attaches_splitter(self):
        system = build_system(small(design=NocDesign.GSS_SAGM))
        assert system.core_interfaces[0].splitter is not None
        plain = build_system(small(design=NocDesign.GSS))
        assert plain.core_interfaces[0].splitter is None

    def test_memory_node_is_corner(self):
        system = build_system(small())
        assert system.placement.memory_node == 0

    def test_cores_fill_remaining_nodes(self):
        system = build_system(small(app="dual_dtv"))
        nodes = {ci.node for ci in system.core_interfaces}
        assert len(nodes) == 15
        assert 0 not in nodes

    def test_rate_scale_applied_per_generation(self):
        ddr2 = build_system(small(ddr=DdrGeneration.DDR2))
        ddr3 = build_system(small(ddr=DdrGeneration.DDR3, clock_mhz=533))
        gap2 = ddr2.cores[0].spec.gap_mean
        gap3 = ddr3.cores[0].spec.gap_mean
        assert gap3 == pytest.approx(gap2 * 1.4)


class TestSmokeRuns:
    @pytest.mark.parametrize("design", list(NocDesign))
    def test_every_design_serves_traffic(self, design):
        metrics = run_config(small(design=design, priority_enabled=True))
        assert metrics.completed > 10
        assert 0.0 < metrics.utilization <= 1.0
        assert metrics.latency_all > 0

    def test_deterministic_given_seed(self):
        a = run_config(small(design=NocDesign.GSS_SAGM, seed=7))
        b = run_config(small(design=NocDesign.GSS_SAGM, seed=7))
        assert a == b

    def test_seed_changes_results(self):
        a = run_config(small(design=NocDesign.GSS_SAGM, seed=7))
        b = run_config(small(design=NocDesign.GSS_SAGM, seed=8))
        assert a != b

    def test_priority_flag_changes_behaviour(self):
        base = run_config(small(design=NocDesign.GSS, priority_enabled=False))
        pri = run_config(small(design=NocDesign.GSS, priority_enabled=True))
        assert base != pri

    def test_run_uses_config_cycles(self):
        system = build_system(small())
        metrics = system.run()
        assert metrics.cycles == 2_500

    def test_explicit_cycle_override(self):
        system = build_system(small())
        metrics = system.run(cycles=1_000)
        assert metrics.cycles == 1_000
