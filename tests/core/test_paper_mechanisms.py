"""Mechanism-level checks that map 1:1 to the paper's claims.

Each test isolates one sentence of Sections III-IV and demonstrates it in
the model — the reproduction's 'claims ledger'.
"""

from itertools import count

import pytest

from tests.helpers import make_request
from repro.core.gss_flow_control import GssFlowController
from repro.core.sagm import SagmSplitter
from repro.dram.timing import DramTiming
from repro.noc.buffers import InputBuffer
from repro.noc.flow_control import PriorityFirstFlowController, DualFlowController
from repro.noc.packet import request_packet
from repro.noc.router import Router
from repro.noc.topology import Mesh, Port
from repro.sim.config import DdrGeneration


class TestSectionIIIB:
    """'If any long best-effort packet is already scheduled in a router, a
    priority packet may wait until the best-effort packet is completely
    transferred to the next router.'"""

    def build_router(self):
        mesh = Mesh(3, 3)
        router = Router(4, mesh, lambda n, p: PriorityFirstFlowController(),
                        buffer_flits=64)
        sink = InputBuffer(128)
        for port in router.ports:
            router.connect(port, InputBuffer(128))
        router.connect(Port.WEST, sink)
        return router, sink

    def wait_cycles(self, be_beats, splitter=None):
        router, sink = self.build_router()
        ids = count()
        pid = count()
        be_request = make_request(beats=be_beats, is_read=False)
        parts = splitter.split(be_request, ids) if splitter else [be_request]
        for part in parts:
            router.input_buffer(Port.EAST).push_complete(
                request_packet(next(pid), part, 4, 0, 0)
            )
        pri = request_packet(next(pid), make_request(priority=True), 4, 0, 1)
        router.tick(0)  # the best-effort transfer claims the channel first
        router.input_buffer(Port.SOUTH).push_complete(pri)
        for cycle in range(1, 200):
            router.tick(cycle)
            for entry in list(sink.entries):
                if entry.packet is pri and entry.fully_received:
                    return cycle
        pytest.fail("priority packet never delivered")

    def test_long_packet_blocks_priority(self):
        """A 64-beat (32-flit) best-effort write holds winner-take-all
        ownership; the priority packet waits roughly its whole length."""
        wait = self.wait_cycles(be_beats=64)
        assert wait >= 32

    def test_sagm_splitting_bounds_the_wait(self):
        """'If it is split like our approach, a priority packet waits until
        the maximum 2 bursts ... and then gets the next competition.'"""
        splitter = SagmSplitter(DdrGeneration.DDR2)
        wait = self.wait_cycles(be_beats=64, splitter=splitter)
        unsplit = self.wait_cycles(be_beats=64)
        assert wait < unsplit / 3  # blocked by at most one short part


class TestAlgorithm1Exclusion:
    """'Old best-effort packets that access the same bank as any priority
    packet are not scheduled until the priority packet is scheduled.'"""

    def test_same_bank_best_effort_yields_to_priority(self, ddr2_timing):
        controller = GssFlowController(ddr2_timing, pct=5)
        be = request_packet(1, make_request(bank=3, row=7), 1, 0, 0)
        pri = request_packet(2, make_request(bank=3, row=9, priority=True),
                             1, 0, 1)
        controller.on_arrival(Port.EAST, be, 0)
        controller.on_arrival(Port.SOUTH, pri, 1)
        # even alone, the excluded best-effort packet is not schedulable
        assert controller.pick([(Port.EAST, be)], 2) is None
        # once the priority packet is scheduled, the exclusion lifts
        winner = controller.pick([(Port.EAST, be), (Port.SOUTH, pri)], 2)
        assert winner[1] is pri
        controller.on_scheduled(Port.SOUTH, pri, 2)
        winner = controller.pick([(Port.EAST, be)], 3)
        assert winner[1] is be


class TestPctContinuum:
    """'If a single token is given to the priority packet, it is equal to a
    priority-equal scheduler and if the maximum tokens are given ... it is
    equal to a priority-first scheduler.'"""

    def schedule_position(self, pct, ddr2_timing):
        controller = GssFlowController(ddr2_timing, pct=pct)
        ids = count(1)
        # a conflicting priority packet behind three clean best-effort ones
        last = make_request(bank=0, row=0)
        controller.state.note_scheduled(last)
        candidates = []
        for i, port in enumerate([Port.EAST, Port.SOUTH, Port.WEST]):
            packet = request_packet(next(ids), make_request(bank=1 + i, row=0),
                                    1, 0, i)
            controller.on_arrival(port, packet, i)
            candidates.append((port, packet))
        pri = request_packet(next(ids),
                             make_request(bank=0, row=5, priority=True),
                             1, 0, 3)  # bank-conflicts with h(n)
        controller.on_arrival(Port.NORTH, pri, 3)
        candidates.append((Port.NORTH, pri))
        order = []
        cycle = 4
        while candidates:
            winner = controller.pick(candidates, cycle)
            controller.on_scheduled(winner[0], winner[1], cycle)
            order.append(winner[1])
            candidates = [c for c in candidates if c[1] is not winner[1]]
            cycle += 4
        return order.index(pri)

    def test_max_pct_schedules_conflicting_priority_first(self, ddr2_timing):
        """At PCT=6 the filter is bypassed: priority-first behaviour."""
        assert self.schedule_position(6, ddr2_timing) == 0

    def test_low_pct_defers_conflicting_priority(self, ddr2_timing):
        """At PCT=2 the bank-conflict filter still holds the priority
        packet back: priority-equal-like behaviour."""
        assert self.schedule_position(2, ddr2_timing) > 0


class TestSectionIVC:
    """'Since the relation of packets split is row-buffer hit, there is not
    any loss of memory performance' — split siblings chain."""

    def test_split_chain_preferred_over_interleaver(self, ddr2_timing):
        controller = GssFlowController(ddr2_timing, pct=5)
        ids = count(100)
        pid = count(1)
        parent = make_request(bank=2, row=4, beats=16)
        parts = SagmSplitter(DdrGeneration.DDR2).split(parent, ids)
        packets = [request_packet(next(pid), part, 1, 0, i)
                   for i, part in enumerate(parts)]
        other = request_packet(next(pid), make_request(bank=5, row=0), 1, 0, 0)
        for i, packet in enumerate(packets):
            controller.on_arrival(Port.EAST, packet, i)
        controller.on_arrival(Port.SOUTH, other, 0)
        # schedule the first split part
        controller.on_scheduled(Port.EAST, packets[0], 5)
        # next arbitration: the row-hitting sibling beats the older other-bank packet
        winner = controller.pick(
            [(Port.EAST, packets[1]), (Port.SOUTH, other)], 6
        )
        assert winner[1] is packets[1]
