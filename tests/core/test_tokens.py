"""TokenTable tests (Algorithm 1 lines 1-13 and 19-24)."""

import pytest

from tests.helpers import make_request
from repro.core.tokens import ARRIVAL_AGING_CAP, MAX_TOKENS, TokenTable
from repro.noc.packet import request_packet
from repro.noc.topology import Port


def pkt(pid, priority=False, bank=0):
    return request_packet(pid, make_request(priority=priority, bank=bank),
                          1, 0, 0)


class TestArrival:
    def test_best_effort_starts_with_one_token(self):
        table = TokenTable(pct=5)
        packet = pkt(1)
        table.on_arrival(Port.EAST, packet, 0)
        assert table.tokens(packet) == 1

    def test_priority_starts_with_pct(self):
        table = TokenTable(pct=5)
        packet = pkt(1, priority=True)
        table.on_arrival(Port.EAST, packet, 0)
        assert table.tokens(packet) == 5

    def test_arrival_ages_older_packets(self):
        table = TokenTable(pct=5)
        old = pkt(1)
        table.on_arrival(Port.EAST, old, 0)
        table.on_arrival(Port.SOUTH, pkt(2), 1)
        assert table.tokens(old) == 2

    def test_arrival_aging_saturates_at_cap(self):
        table = TokenTable(pct=5)
        old = pkt(1)
        table.on_arrival(Port.EAST, old, 0)
        for i in range(10):
            table.on_arrival(Port.SOUTH, pkt(2 + i), i + 1)
        assert table.tokens(old) == ARRIVAL_AGING_CAP

    def test_arrival_aging_never_lowers_priority_tokens(self):
        table = TokenTable(pct=6)
        priority = pkt(1, priority=True)
        table.on_arrival(Port.EAST, priority, 0)
        table.on_arrival(Port.SOUTH, pkt(2), 1)
        assert table.tokens(priority) == 6

    def test_pct_bounds(self):
        with pytest.raises(ValueError):
            TokenTable(pct=0)
        with pytest.raises(ValueError):
            TokenTable(pct=MAX_TOKENS + 1)

    def test_non_request_packet_rejected(self):
        from repro.noc.packet import response_packet
        table = TokenTable(pct=5)
        rsp = response_packet(1, make_request(), 0, 1, 0)
        rsp.request = None
        with pytest.raises(ValueError):
            table.on_arrival(Port.EAST, rsp, 0)


class TestEscapeLoop:
    def test_age_all_reaches_max(self):
        table = TokenTable(pct=5)
        packet = pkt(1)
        table.on_arrival(Port.EAST, packet, 0)
        for _ in range(MAX_TOKENS + 2):
            table.age_all()
        assert table.tokens(packet) == MAX_TOKENS


class TestExclusion:
    def test_same_bank_best_effort_excluded_from_other_port(self):
        table = TokenTable(pct=5)
        be = pkt(1, bank=3)
        table.on_arrival(Port.EAST, be, 0)
        table.on_arrival(Port.SOUTH, pkt(2, priority=True, bank=3), 1)
        assert table.is_excluded(be, Port.EAST)

    def test_same_port_not_excluded(self):
        """A packet ahead of the priority packet in its own in-order buffer
        must stay schedulable, or the channel deadlocks."""
        table = TokenTable(pct=5)
        be = pkt(1, bank=3)
        table.on_arrival(Port.SOUTH, be, 0)
        table.on_arrival(Port.SOUTH, pkt(2, priority=True, bank=3), 1)
        assert not table.is_excluded(be, Port.SOUTH)

    def test_different_bank_not_excluded(self):
        table = TokenTable(pct=5)
        be = pkt(1, bank=2)
        table.on_arrival(Port.EAST, be, 0)
        table.on_arrival(Port.SOUTH, pkt(2, priority=True, bank=3), 1)
        assert not table.is_excluded(be, Port.EAST)

    def test_priority_packet_never_excluded(self):
        table = TokenTable(pct=5)
        first = pkt(1, priority=True, bank=3)
        table.on_arrival(Port.EAST, first, 0)
        table.on_arrival(Port.SOUTH, pkt(2, priority=True, bank=3), 1)
        assert not table.is_excluded(first, Port.EAST)

    def test_exclusion_lifted_when_priority_scheduled(self):
        table = TokenTable(pct=5)
        be = pkt(1, bank=3)
        priority = pkt(2, priority=True, bank=3)
        table.on_arrival(Port.EAST, be, 0)
        table.on_arrival(Port.SOUTH, priority, 1)
        assert table.is_excluded(be, Port.EAST)
        table.on_scheduled(priority)
        assert not table.is_excluded(be, Port.EAST)

    def test_pending_priority_banks_listed(self):
        table = TokenTable(pct=5)
        table.on_arrival(Port.SOUTH, pkt(1, priority=True, bank=7), 0)
        assert table.pending_priority_banks == [7]


class TestRetirement:
    def test_scheduled_packet_dropped(self):
        table = TokenTable(pct=5)
        packet = pkt(1)
        table.on_arrival(Port.EAST, packet, 0)
        table.on_scheduled(packet)
        assert len(table) == 0
        with pytest.raises(KeyError):
            table.tokens(packet)

    def test_unknown_schedule_tolerated(self):
        TokenTable(pct=5).on_scheduled(pkt(99))
