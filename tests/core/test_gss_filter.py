"""Fig. 4 filter and cascade tests."""

import pytest

from tests.helpers import make_request
from repro.core.gss_filter import (
    SchedulerState,
    passes_filter,
    select,
    tier_conditions,
)
from repro.core.tokens import MAX_TOKENS, TokenTable
from repro.noc.packet import request_packet
from repro.noc.topology import Port


def pkt(pid, bank=0, row=0, is_read=True, priority=False):
    return request_packet(
        pid, make_request(bank=bank, row=row, is_read=is_read,
                          priority=priority), 1, 0, 0
    )


class TestTierConditions:
    def test_max_tier_unconditional(self):
        assert tier_conditions(MAX_TOKENS, sti_enabled=True) == (False, False, False)

    def test_tier5_checks_bank_conflict_only(self):
        assert tier_conditions(5, sti_enabled=True) == (True, False, False)

    def test_low_tiers_check_sti_as_filter(self):
        for t in (1, 2):
            assert tier_conditions(t, sti_enabled=True) == (True, True, True)
            assert tier_conditions(t, sti_enabled=False) == (True, True, False)

    def test_mid_tiers_drop_sti_filter(self):
        """At tiers 3-4 STI acts only as a cascade preference, not a
        filter (older packets are not starved by a busy bank)."""
        for t in (3, 4):
            assert tier_conditions(t, sti_enabled=True) == (True, True, False)

    def test_sti_released_at_tier5(self):
        assert tier_conditions(5, sti_enabled=True) == (True, False, False)


class TestSchedulerState:
    def test_conditions_relative_to_last(self):
        state = SchedulerState()
        request = make_request(bank=1, row=5)
        assert not state.bank_conflict(request)  # nothing scheduled yet
        state.note_scheduled(make_request(bank=1, row=4))
        assert state.bank_conflict(request)
        assert not state.data_contention(request)
        state.note_scheduled(make_request(bank=1, row=5, is_read=False))
        assert state.row_hit(make_request(bank=1, row=5))
        assert state.data_contention(make_request(is_read=True))

    def test_sti_counter_blocks_reactivation(self, ddr3_timing):
        state = SchedulerState()
        write = make_request(bank=2, row=1, is_read=False)
        state.note_scheduled(write)
        state.note_delivered(write, cycle=100,
                             write_window=ddr3_timing.write_to_precharge,
                             read_window=ddr3_timing.read_to_precharge)
        conflicting = make_request(bank=2, row=9)
        assert state.sti_blocked(conflicting, 100 + 5)
        assert not state.sti_blocked(conflicting, 100 + 23)

    def test_sti_ignores_row_hits(self, ddr3_timing):
        state = SchedulerState()
        write = make_request(bank=2, row=1, is_read=False)
        state.note_scheduled(write)
        state.note_delivered(write, 100, 23, 11)
        same_row = make_request(bank=2, row=1)
        assert not state.sti_blocked(same_row, 105)


class TestPassesFilter:
    def test_row_hit_always_passes(self):
        state = SchedulerState()
        state.note_scheduled(make_request(bank=1, row=5, is_read=False))
        hit_but_contending = make_request(bank=1, row=5, is_read=True)
        assert passes_filter(state, hit_but_contending, tokens=1, cycle=0,
                             sti_enabled=False)

    def test_bank_conflict_blocked_at_low_tiers(self):
        state = SchedulerState()
        state.note_scheduled(make_request(bank=1, row=4))
        conflict = make_request(bank=1, row=5)
        assert not passes_filter(state, conflict, 1, 0, False)
        assert passes_filter(state, conflict, MAX_TOKENS, 0, False)

    def test_data_contention_released_at_tier5(self):
        state = SchedulerState()
        state.note_scheduled(make_request(bank=1, row=4, is_read=False))
        read_other_bank = make_request(bank=2, row=0, is_read=True)
        assert not passes_filter(state, read_other_bank, 4, 0, False)
        assert passes_filter(state, read_other_bank, 5, 0, False)


def build(candidates_spec, pct=5):
    """candidates_spec: list of (port, packet) arriving in order."""
    table = TokenTable(pct=pct)
    candidates = []
    for i, (port, packet) in enumerate(candidates_spec):
        table.on_arrival(port, packet, i)
        candidates.append((port, packet))
    return table, candidates


class TestSelect:
    def test_priority_stage_wins(self):
        state = SchedulerState()
        be = pkt(1, bank=0)
        pri = pkt(2, bank=1, priority=True)
        table, candidates = build([(Port.EAST, be), (Port.SOUTH, pri)])
        winner = select(state, table, candidates, 0, sti_enabled=False)
        assert winner[1] is pri

    def test_row_hit_stage_preferred_over_age(self):
        state = SchedulerState()
        state.note_scheduled(make_request(bank=1, row=5))
        old = pkt(1, bank=2, row=0)
        hit = pkt(2, bank=1, row=5)
        table, candidates = build([(Port.EAST, old), (Port.SOUTH, hit)])
        winner = select(state, table, candidates, 0, sti_enabled=False)
        assert winner[1] is hit

    def test_row_hit_stage_disabled_prefers_oldest(self):
        state = SchedulerState()
        state.note_scheduled(make_request(bank=1, row=5))
        old = pkt(1, bank=2, row=0)
        hit = pkt(2, bank=1, row=5)
        table, candidates = build([(Port.EAST, old), (Port.SOUTH, hit)])
        winner = select(state, table, candidates, 0, sti_enabled=False,
                        row_hit_stage=False)
        assert winner[1] is old  # aged by hit's arrival -> more tokens

    def test_escape_loop_schedules_something(self):
        """When every candidate bank-conflicts, the line 19-24 loop ages
        them into permissive tiers and still picks one."""
        state = SchedulerState()
        state.note_scheduled(make_request(bank=1, row=0))
        a = pkt(1, bank=1, row=2)
        b = pkt(2, bank=1, row=3)
        table, candidates = build([(Port.EAST, a), (Port.SOUTH, b)])
        winner = select(state, table, candidates, 0, sti_enabled=False)
        assert winner is not None

    def test_excluded_candidates_not_schedulable(self):
        state = SchedulerState()
        be = pkt(1, bank=3)
        pri = pkt(2, bank=3, priority=True)
        table, _ = build([(Port.EAST, be), (Port.SOUTH, pri)])
        # only the excluded best-effort packet is a candidate
        winner = select(state, table, [(Port.EAST, be)], 0, sti_enabled=False)
        assert winner is None

    def test_priority_unaware_mode_ignores_priority(self):
        state = SchedulerState()
        be = pkt(1, bank=0)
        pri = pkt(2, bank=1, priority=True)
        table = TokenTable(pct=1)
        table.on_arrival(Port.EAST, be, 0)
        table.on_arrival(Port.SOUTH, pri, 1)
        winner = select(state, table, [(Port.EAST, be), (Port.SOUTH, pri)],
                        2, sti_enabled=False, priority_aware=False,
                        row_hit_stage=False)
        # be has aged to 2 tokens vs pri's 1: oldest-first wins
        assert winner[1] is be

    def test_empty_candidates(self):
        state = SchedulerState()
        table = TokenTable(pct=5)
        assert select(state, table, [], 0, sti_enabled=False) is None
