"""Router assembly factory tests."""

import pytest

from repro.core.gss_flow_control import (
    GssFlowController,
    PfsMemoryFlowController,
    SdramAwareFlowController,
)
from repro.core.gss_router import (
    conventional_controller,
    design_controller_factory,
    gss_controller,
    sdram_aware_controller,
    sdram_aware_pfs_controller,
)
from repro.noc.flow_control import (
    DualFlowController,
    PriorityFirstFlowController,
    RoundRobinFlowController,
)
from repro.noc.topology import Port
from repro.sim.config import NocDesign


class TestBuildingBlocks:
    def test_gss_controller_shape(self, ddr2_timing):
        controller = gss_controller(ddr2_timing, pct=4, sti=True)
        assert isinstance(controller, DualFlowController)
        assert isinstance(controller.memory, GssFlowController)
        assert controller.memory.sti_enabled
        assert controller.memory.table.pct == 4

    def test_sdram_aware_controller_shape(self, ddr2_timing):
        controller = sdram_aware_controller(ddr2_timing)
        assert isinstance(controller.memory, SdramAwareFlowController)

    def test_pfs_wrapper_shape(self, ddr2_timing):
        controller = sdram_aware_pfs_controller(ddr2_timing)
        assert isinstance(controller.memory, PfsMemoryFlowController)
        assert isinstance(controller.normal, PriorityFirstFlowController)

    def test_conventional_variants(self):
        assert isinstance(conventional_controller(True),
                          PriorityFirstFlowController)
        rr = conventional_controller(False)
        assert isinstance(rr, RoundRobinFlowController)
        assert not isinstance(rr, PriorityFirstFlowController)


class TestDesignFactory:
    def test_conv_everywhere(self, ddr2_timing):
        factory = design_controller_factory(NocDesign.CONV, ddr2_timing)
        controller = factory(3, Port.LOCAL)
        assert isinstance(controller, RoundRobinFlowController)

    def test_gss_partial_deployment(self, ddr2_timing):
        factory = design_controller_factory(
            NocDesign.GSS_SAGM, ddr2_timing, gss_nodes={0, 1},
            priority_enabled=True,
        )
        assert isinstance(factory(0, Port.LOCAL), DualFlowController)
        assert isinstance(factory(5, Port.LOCAL), PriorityFirstFlowController)

    def test_gss_without_priority_falls_back_to_rr(self, ddr2_timing):
        factory = design_controller_factory(
            NocDesign.GSS, ddr2_timing, gss_nodes=set(),
            priority_enabled=False,
        )
        fallback = factory(4, Port.EAST)
        assert isinstance(fallback, RoundRobinFlowController)
        assert not isinstance(fallback, PriorityFirstFlowController)

    def test_fresh_controller_per_call(self, ddr2_timing):
        """Every channel must get its own controller instance (they carry
        per-channel token state)."""
        factory = design_controller_factory(
            NocDesign.GSS, ddr2_timing, gss_nodes={0},
        )
        a = factory(0, Port.LOCAL)
        b = factory(0, Port.NORTH)
        assert a is not b
        assert a.memory is not b.memory

    def test_pct_and_sti_forwarded(self, ddr2_timing):
        factory = design_controller_factory(
            NocDesign.GSS, ddr2_timing, gss_nodes={0}, pct=6, sti=True,
        )
        controller = factory(0, Port.LOCAL)
        assert controller.memory.table.pct == 6
        assert controller.memory.sti_enabled
