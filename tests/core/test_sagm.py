"""SAGM splitter tests, including property-based invariants."""

from itertools import count

import pytest
from hypothesis import given, strategies as st

from tests.helpers import make_request
from repro.core.sagm import SagmSplitter, split_plan
from repro.sim.config import DdrGeneration


def split(request, ddr=DdrGeneration.DDR2, row_columns=1024):
    splitter = SagmSplitter(ddr, row_columns=row_columns)
    return splitter.split(request, count(1000))


class TestSplitPlan:
    def test_paper_bl9_example_ddr12(self):
        """Section IV-C: a 'BL 9' packet (9 data cycles = 18 beats) splits
        into 2+2+2+2+1 data-cycle chunks on DDR I/II."""
        assert split_plan(18, 4) == [4, 4, 4, 4, 2]

    def test_paper_bl9_example_ddr3(self):
        assert split_plan(18, 8) == [8, 8, 2]

    def test_small_requests_unsplit(self):
        assert split_plan(3, 4) == [3]

    def test_validation(self):
        with pytest.raises(ValueError):
            split_plan(0, 4)
        with pytest.raises(ValueError):
            split_plan(8, 0)

    @given(total=st.integers(1, 256), granularity=st.sampled_from([4, 8]))
    def test_plan_conserves_beats(self, total, granularity):
        plan = split_plan(total, granularity)
        assert sum(plan) == total
        assert all(0 < chunk <= granularity for chunk in plan)
        assert all(chunk == granularity for chunk in plan[:-1])


class TestSplitter:
    def test_granularity_per_generation(self):
        assert len(split(make_request(beats=16), DdrGeneration.DDR1)) == 4
        assert len(split(make_request(beats=16), DdrGeneration.DDR2)) == 4
        assert len(split(make_request(beats=16), DdrGeneration.DDR3)) == 2

    def test_columns_advance_within_row(self):
        parts = split(make_request(beats=16, column=100))
        assert [p.column for p in parts] == [100, 104, 108, 112]
        assert all(p.row == parts[0].row for p in parts)

    def test_lineage_preserved(self):
        request = make_request(beats=16, priority=True, demand=True)
        parts = split(request)
        assert all(p.parent_id == request.request_id for p in parts)
        assert [p.split_index for p in parts] == [0, 1, 2, 3]
        assert all(p.split_count == 4 for p in parts)
        assert all(p.is_priority and p.is_demand for p in parts)

    def test_ap_tag_only_at_row_boundary(self):
        mid_row = split(make_request(beats=16, column=0))
        assert not any(p.ap_tag for p in mid_row)
        row_end = split(make_request(beats=16, column=1008))
        assert [p.ap_tag for p in row_end] == [False, False, False, True]

    def test_single_packet_tagged_at_row_end(self):
        tagged = split(make_request(beats=4, column=1020))
        assert tagged[0].ap_tag
        untagged = split(make_request(beats=4, column=0))
        assert not untagged[0].ap_tag

    def test_fresh_ids_assigned(self):
        request = make_request(beats=16)
        parts = split(request)
        ids = [p.request_id for p in parts]
        assert len(set(ids)) == len(ids)
        assert request.request_id not in ids

    def test_invalid_row_columns(self):
        with pytest.raises(ValueError):
            SagmSplitter(DdrGeneration.DDR2, row_columns=0)

    @given(
        beats=st.integers(1, 128),
        column=st.integers(0, 1023),
        is_read=st.booleans(),
        ddr=st.sampled_from(list(DdrGeneration)),
    )
    def test_split_conserves_request(self, beats, column, is_read, ddr):
        beats = min(beats, 1024 - column)  # requests never span rows
        request = make_request(beats=beats, column=column, is_read=is_read)
        parts = split(request, ddr)
        assert sum(p.beats for p in parts) == beats
        assert all(p.is_read == is_read for p in parts)
        assert all(p.bank == request.bank and p.row == request.row
                   for p in parts)
        # contiguous, non-overlapping column coverage
        cursor = column
        for part in parts:
            assert part.column == cursor
            cursor += part.beats
        # at most the final part carries the AP tag
        assert sum(p.ap_tag for p in parts) <= 1
        if any(p.ap_tag for p in parts):
            assert parts[-1].ap_tag
