"""AddressMap decomposition tests, including property-based roundtrips."""

import pytest
from hypothesis import given, strategies as st

from repro.dram.address_map import AddressMap


@pytest.fixture
def amap():
    return AddressMap(banks=8)


class TestDecode:
    def test_sequential_addresses_walk_columns_first(self, amap):
        bank0, row0, col0 = amap.decode(0)
        bank1, row1, col1 = amap.decode(amap.bytes_per_beat)
        assert (bank0, row0) == (bank1, row1)
        assert col1 == col0 + 1

    def test_row_crossing_changes_bank(self, amap):
        end_of_row = amap.row_bytes - amap.bytes_per_beat
        bank_a, row_a, _ = amap.decode(end_of_row)
        bank_b, row_b, col_b = amap.decode(end_of_row + amap.bytes_per_beat)
        assert bank_b == bank_a + 1
        assert row_b == row_a
        assert col_b == 0

    def test_negative_rejected(self, amap):
        with pytest.raises(ValueError):
            amap.decode(-4)

    def test_capacity(self, amap):
        assert amap.capacity_bytes == (
            amap.banks * amap.rows * amap.columns * amap.bytes_per_beat
        )


class TestEncode:
    def test_encode_bounds_checked(self, amap):
        with pytest.raises(ValueError):
            amap.encode(bank=8, row=0, column=0)
        with pytest.raises(ValueError):
            amap.encode(bank=0, row=amap.rows, column=0)
        with pytest.raises(ValueError):
            amap.encode(bank=0, row=0, column=amap.columns)

    @given(
        bank=st.integers(0, 7),
        row=st.integers(0, 8191),
        column=st.integers(0, 1023),
    )
    def test_roundtrip(self, bank, row, column):
        amap = AddressMap(banks=8)
        address = amap.encode(bank, row, column)
        assert amap.decode(address) == (bank, row, column)

    @given(address=st.integers(0, 2**28))
    def test_decode_in_bounds(self, address):
        amap = AddressMap(banks=8)
        bank, row, column = amap.decode(address)
        assert 0 <= bank < amap.banks
        assert 0 <= row < amap.rows
        assert 0 <= column < amap.columns


def test_invalid_geometry_rejected():
    with pytest.raises(ValueError):
        AddressMap(banks=0)
    with pytest.raises(ValueError):
        AddressMap(banks=4, columns=0)
