"""Refresh support tests."""

import pytest

from tests.helpers import make_request
from repro.dram.controller import CommandEngine
from repro.dram.device import SdramDevice
from repro.dram.refresh import RefreshTimer, T_REFI_NS, T_RFC_NS


class TestTimer:
    def test_intervals_derived_from_clock(self, ddr2_timing):
        timer = RefreshTimer(ddr2_timing)
        assert timer.t_refi == pytest.approx(
            T_REFI_NS * ddr2_timing.clock_mhz / 1000, abs=1
        )
        assert timer.t_rfc == pytest.approx(
            T_RFC_NS * ddr2_timing.clock_mhz / 1000, abs=1
        )

    def test_due_after_trefi(self, ddr2_timing):
        timer = RefreshTimer(ddr2_timing)
        assert not timer.due(timer.t_refi - 1)
        assert timer.due(timer.t_refi)

    def test_start_schedules_next(self, ddr2_timing):
        timer = RefreshTimer(ddr2_timing)
        done = timer.start(timer.t_refi)
        assert done == timer.t_refi + timer.t_rfc
        assert timer.in_progress(done)
        assert not timer.in_progress(done + 1)
        assert not timer.due(done + 1)
        assert timer.due(timer.t_refi * 2)

    def test_disabled_timer_never_due(self, ddr2_timing):
        timer = RefreshTimer(ddr2_timing, enabled=False)
        assert not timer.due(10 ** 9)
        with pytest.raises(RuntimeError):
            timer.start(0)

    def test_overhead_fraction_small(self, ddr2_timing):
        timer = RefreshTimer(ddr2_timing)
        assert 0 < timer.overhead_fraction < 0.03


class TestEngineIntegration:
    def run_stream(self, ddr_timing, refresh, requests=80, horizon=40_000):
        device = SdramDevice(ddr_timing)
        engine = CommandEngine(device, burst_beats=8, refresh=refresh)
        pending = [
            make_request(bank=i % 4, row=i // 4, beats=8)
            for i in range(requests)
        ]
        # spread issues so the run spans several refresh intervals
        gap = horizon // (requests + 1)
        finished = []
        cycle = 0
        next_feed = 0
        while len(finished) < requests and cycle < horizon:
            if pending and cycle >= next_feed and engine.has_space:
                engine.accept(pending.pop(0), cycle)
                next_feed = cycle + gap
            engine.tick(cycle)
            finished.extend(engine.drain_finished())
            cycle += 1
        return finished, cycle

    def test_refreshes_issued_during_long_run(self, ddr2_timing):
        timer = RefreshTimer(ddr2_timing)
        finished, cycles = self.run_stream(ddr2_timing, timer)
        assert len(finished) == 80
        expected = cycles // timer.t_refi
        assert timer.refreshes_issued >= max(1, expected - 1)

    def test_no_requests_lost_across_refresh(self, ddr2_timing):
        timer = RefreshTimer(ddr2_timing)
        finished, _ = self.run_stream(ddr2_timing, timer, requests=40)
        ids = [f.request.request_id for f in finished]
        assert len(ids) == len(set(ids)) == 40

    def test_refresh_overhead_marginal(self, ddr2_timing):
        without, cycles_plain = self.run_stream(ddr2_timing, None, requests=60,
                                                horizon=30_000)
        timer = RefreshTimer(ddr2_timing)
        with_ref, cycles_ref = self.run_stream(ddr2_timing, timer, requests=60,
                                               horizon=30_000)
        assert len(with_ref) == len(without) == 60
        assert cycles_ref <= cycles_plain * 1.08
