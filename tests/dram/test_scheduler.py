"""Scheduler protocol: conformance, registry, and builder routing.

Every memory-arbiter backend — the three extracted from the original
subsystem code and the two new ones — must present the full
:data:`SCHEDULER_MEMBERS` surface, register under a stable name, and be
reachable both through ``SystemConfig.arbiter`` and through the design
defaults (which must route exactly as the pre-seam builder did).
"""

import pytest

from tests.helpers import make_request
from repro.dram.controller import PagePolicy
from repro.dram.scheduler import (
    SCHEDULER_MEMBERS,
    Scheduler,
    register_scheduler,
    registered_backends,
    resolve_backend,
)
from repro.dram.subsystem import (
    ConvMemorySubsystem,
    ThinMemorySubsystem,
    build_memory_subsystem,
    default_backend_for,
)
from repro.dram.dpq import DpqScheduler
from repro.dram.bankreg import BankRegulatedScheduler
from repro.sim.config import DdrGeneration, NocDesign, SystemConfig

ALL_BACKENDS = ("bank-reg", "databahn", "dpq", "engine", "memmax")


def build_backend(name, design=NocDesign.GSS_SAGM):
    config = SystemConfig(design=design, arbiter=name)
    return build_memory_subsystem(config)[1]


class TestRegistry:
    def test_builtins_registered(self):
        assert registered_backends() == list(ALL_BACKENDS)

    def test_resolve_unknown_lists_backends(self):
        with pytest.raises(KeyError) as excinfo:
            resolve_backend("tdm")
        message = str(excinfo.value)
        for name in ALL_BACKENDS:
            assert name in message

    def test_register_last_wins_and_restores(self):
        original = resolve_backend("dpq")

        @register_scheduler("dpq")
        def replacement(config, device, timing, tracer):  # pragma: no cover
            raise AssertionError("never built")

        try:
            assert resolve_backend("dpq") is replacement
        finally:
            register_scheduler("dpq")(original)
        assert resolve_backend("dpq") is original

    def test_default_backend_for(self):
        assert default_backend_for(NocDesign.CONV) == "memmax"
        assert default_backend_for(NocDesign.CONV_PFS) == "memmax"
        for design in (
            NocDesign.SDRAM_AWARE, NocDesign.GSS, NocDesign.GSS_SAGM
        ):
            assert default_backend_for(design) == "engine"


class TestConformance:
    @pytest.mark.parametrize("name", ALL_BACKENDS)
    def test_full_member_surface(self, name):
        backend = build_backend(name)
        for member in SCHEDULER_MEMBERS:
            assert hasattr(backend, member), f"{name} lacks {member}"
        assert isinstance(backend, Scheduler)

    @pytest.mark.parametrize("name", ALL_BACKENDS)
    def test_serves_traffic_and_reports_stats(self, name):
        backend = build_backend(name)
        requests = [
            make_request(master=i % 4, bank=i % 8, row=i, beats=8)
            for i in range(6)
        ]
        pending = list(requests)
        finished = []
        cycle = 0
        while (pending or not backend.idle) and cycle < 20_000:
            while pending and backend.can_accept(pending[0]):
                backend.enqueue(pending.pop(0), cycle)
            backend.tick(cycle)
            finished.extend(backend.drain_finished())
            cycle += 1
        assert len(finished) == 6, f"{name} completed {len(finished)}/6"
        stats = backend.scheduler_stats()
        assert stats["service.count"] == 6
        assert stats["service.p100"] >= stats["service.mean"] > 0
        assert backend.quiescent

    @pytest.mark.parametrize("name", ALL_BACKENDS)
    def test_event_contract_idle_none(self, name):
        backend = build_backend(name)
        assert backend.next_event_cycle(0) is None
        backend.on_cycles_skipped(0, 100)  # must be a safe no-op when idle
        assert backend.quiescent

    @pytest.mark.parametrize("name", ALL_BACKENDS)
    def test_next_event_soon_after_enqueue(self, name):
        backend = build_backend(name)
        backend.enqueue(make_request(beats=8), 0)
        wake = backend.next_event_cycle(0)
        assert wake is not None and wake >= 1

    def test_only_dpq_has_a_bound(self):
        for name in ALL_BACKENDS:
            backend = build_backend(name)
            backend.enqueue(make_request(beats=8), 0)
            bound = backend.latency_bound()
            if name == "dpq":
                assert bound is not None and bound > 0
            else:
                assert bound is None


class TestBuilderRouting:
    def test_none_arbiter_routes_by_design(self):
        _, conv = build_memory_subsystem(SystemConfig(design=NocDesign.CONV))
        assert isinstance(conv, ConvMemorySubsystem)
        _, sagm = build_memory_subsystem(
            SystemConfig(design=NocDesign.GSS_SAGM)
        )
        assert isinstance(sagm, ThinMemorySubsystem)
        assert sagm.engine.page_policy is PagePolicy.PARTIALLY_OPEN

    def test_explicit_arbiter_overrides_design_default(self):
        backend = build_backend("memmax", design=NocDesign.GSS_SAGM)
        assert isinstance(backend, ConvMemorySubsystem)
        assert not backend.scheduler.priority_first
        backend = build_backend("dpq", design=NocDesign.CONV)
        assert isinstance(backend, DpqScheduler)

    def test_memmax_backend_honours_pfs(self):
        backend = build_backend("memmax", design=NocDesign.CONV_PFS)
        assert backend.scheduler.priority_first

    def test_bankreg_backend_type(self):
        assert isinstance(build_backend("bank-reg"), BankRegulatedScheduler)

    def test_databahn_backend_matches_design_path(self):
        explicit = build_backend("databahn", design=NocDesign.GSS_SAGM)
        assert isinstance(explicit, ThinMemorySubsystem)
        assert type(explicit.engine).__name__ == "DatabahnController"

    def test_dpq_closed_page_serial_engine(self):
        backend = build_backend("dpq")
        assert backend.engine.page_policy is PagePolicy.CLOSED_PAGE
        assert backend.engine.window_size == 1
