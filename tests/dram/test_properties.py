"""Property-based tests of the DRAM substrate.

Random request streams through the command engine must always terminate,
conserve every request, respect the device's physical limits, and account
the data bus exactly — regardless of bank/row patterns, burst modes, page
policies, or request sizes.
"""

from hypothesis import given, settings, strategies as st

from tests.helpers import make_request
from repro.dram.controller import CommandEngine, PagePolicy
from repro.dram.device import SdramDevice
from repro.dram.timing import DramTiming
from repro.sim.config import DdrGeneration
from repro.sim.stats import StatsCollector

request_strategy = st.builds(
    dict,
    bank=st.integers(0, 7),
    row=st.integers(0, 31),
    column=st.sampled_from([0, 8, 64, 512, 1016]),
    beats=st.integers(1, 64),
    is_read=st.booleans(),
    ap_tag=st.booleans(),
)


def serve_all(generation, clock, burst, policy, otf, specs):
    timing = DramTiming.for_clock(generation, clock)
    stats = StatsCollector()
    device = SdramDevice(timing, stats=stats)
    engine = CommandEngine(device, burst_beats=burst, page_policy=policy,
                           otf=otf, window=4)
    pending = [
        make_request(**{
            **spec,
            "bank": spec["bank"] % timing.banks,
            "beats": min(spec["beats"], 1024 - spec["column"]),
        })
        for spec in specs
    ]
    expected = len(pending)
    expected_beats = sum(r.beats for r in pending)
    finished = []
    cycle = 0
    limit = 400 * max(1, expected) + 2_000
    while len(finished) < expected and cycle < limit:
        if pending and engine.has_space:
            engine.accept(pending.pop(0), cycle)
        engine.tick(cycle)
        finished.extend(engine.drain_finished())
        device.tick(cycle)
        cycle += 1
    return finished, stats, expected, expected_beats


@settings(max_examples=25, deadline=None)
@given(specs=st.lists(request_strategy, min_size=1, max_size=12))
def test_ddr2_open_page_serves_everything(specs):
    finished, stats, expected, expected_beats = serve_all(
        DdrGeneration.DDR2, 333, 8, PagePolicy.OPEN_PAGE, False, specs
    )
    assert len(finished) == expected
    assert stats.useful_beats == expected_beats


@settings(max_examples=25, deadline=None)
@given(specs=st.lists(request_strategy, min_size=1, max_size=12))
def test_ddr2_bl4_partially_open_serves_everything(specs):
    finished, stats, expected, expected_beats = serve_all(
        DdrGeneration.DDR2, 400, 4, PagePolicy.PARTIALLY_OPEN, False, specs
    )
    assert len(finished) == expected
    assert stats.useful_beats == expected_beats


@settings(max_examples=25, deadline=None)
@given(specs=st.lists(request_strategy, min_size=1, max_size=12))
def test_ddr3_otf_closed_page_serves_everything(specs):
    finished, stats, expected, expected_beats = serve_all(
        DdrGeneration.DDR3, 800, 8, PagePolicy.CLOSED_PAGE, True, specs
    )
    assert len(finished) == expected
    assert stats.useful_beats == expected_beats


@settings(max_examples=25, deadline=None)
@given(specs=st.lists(request_strategy, min_size=1, max_size=10))
def test_completion_order_matches_acceptance_order(specs):
    finished, _, expected, _ = serve_all(
        DdrGeneration.DDR1, 200, 8, PagePolicy.OPEN_PAGE, False, specs
    )
    ids = [f.request.request_id for f in finished]
    assert ids == sorted(ids, key=lambda rid: ids.index(rid))  # stable
    assert len(finished) == expected
    # in-order engine: data-ready cycles are monotonically non-decreasing
    ready = [f.data_ready_cycle for f in finished]
    assert ready == sorted(ready)


@settings(max_examples=20, deadline=None)
@given(specs=st.lists(request_strategy, min_size=2, max_size=10))
def test_bus_never_exceeds_capacity(specs):
    """Per-cycle accounting: at most 2 beats move per busy cycle, and the
    busy-cycle count can never exceed observed cycles by more than the
    in-flight burst tail."""
    finished, stats, expected, _ = serve_all(
        DdrGeneration.DDR2, 333, 8, PagePolicy.OPEN_PAGE, False, specs
    )
    assert len(finished) == expected
    total_beats = stats.useful_beats + stats.wasted_beats
    assert total_beats <= stats.busy_cycles * 2
    assert stats.busy_cycles <= stats.observed_cycles + 8
