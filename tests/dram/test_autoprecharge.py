"""Fig. 5 — command congestion in short-BL modes and the AP fix.

In BL 4 mode a row-missing access needs three commands (ACT, CAS, PRE) per
two data cycles, so the single command bus congests; executing the CAS
with auto-precharge removes the PRE from the command stream entirely.
"""

import pytest

from tests.helpers import make_request
from repro.dram.controller import CommandEngine, PagePolicy
from repro.dram.device import SdramDevice
from repro.sim.stats import StatsCollector


def serve_conflicting_stream(ddr_timing, page_policy, n=12):
    """Every request misses (same banks, alternating rows): worst case for
    command traffic in BL 4 mode."""
    stats = StatsCollector()
    device = SdramDevice(ddr_timing, stats=stats)
    engine = CommandEngine(device, burst_beats=4, page_policy=page_policy,
                           window=8)
    requests = [
        make_request(bank=i % 2, row=i, beats=4, ap_tag=True)
        for i in range(n)
    ]
    pending = list(requests)
    cycle = 0
    served = 0
    while served < n and cycle < 10_000:
        if pending and engine.has_space:
            engine.accept(pending.pop(0), cycle)
        engine.tick(cycle)
        served += len(engine.drain_finished())
        device.tick(cycle)
        cycle += 1
    return stats, cycle


def test_ap_eliminates_pre_commands(ddr2_timing):
    open_stats, _ = serve_conflicting_stream(ddr2_timing, PagePolicy.OPEN_PAGE)
    ap_stats, _ = serve_conflicting_stream(ddr2_timing, PagePolicy.CLOSED_PAGE)
    assert open_stats.commands_issued.get("PRE", 0) > 0
    assert ap_stats.commands_issued.get("PRE", 0) == 0


def test_ap_not_slower_than_demand_precharge(ddr2_timing):
    _, open_cycles = serve_conflicting_stream(ddr2_timing, PagePolicy.OPEN_PAGE)
    _, ap_cycles = serve_conflicting_stream(ddr2_timing, PagePolicy.CLOSED_PAGE)
    # Fig. 5(c): with AP neither the PRE nor the CAS is delayed, so the
    # conflicting stream completes at least as fast.
    assert ap_cycles <= open_cycles + 2


def test_partially_open_closes_only_tagged(ddr2_timing):
    stats = StatsCollector()
    device = SdramDevice(ddr2_timing, stats=stats)
    engine = CommandEngine(device, burst_beats=4,
                           page_policy=PagePolicy.PARTIALLY_OPEN)
    tagged = make_request(bank=0, row=0, beats=4, ap_tag=True)
    untagged = make_request(bank=1, row=0, beats=4)
    follow_tagged = make_request(bank=0, row=0, beats=4)    # bank closed: ACT
    follow_untagged = make_request(bank=1, row=0, beats=4)  # row open: hit
    pending = [tagged, untagged, follow_tagged, follow_untagged]
    cycle = 0
    served = 0
    while served < 4 and cycle < 2000:
        if pending and engine.has_space:
            engine.accept(pending.pop(0), cycle)
        engine.tick(cycle)
        served += len(engine.drain_finished())
        cycle += 1
    assert stats.commands_issued["ACT"] == 3  # bank0 twice, bank1 once
    assert stats.row_hits == 1


def test_ap_total_commands_lower(ddr2_timing):
    open_stats, _ = serve_conflicting_stream(ddr2_timing, PagePolicy.OPEN_PAGE)
    ap_stats, _ = serve_conflicting_stream(ddr2_timing, PagePolicy.CLOSED_PAGE)
    total = lambda s: sum(s.commands_issued.values())
    assert total(ap_stats) < total(open_stats)
