"""Bank state-machine tests: legality windows and auto-precharge."""

import pytest

from repro.dram.bank import Bank, BankState, TimingViolation


@pytest.fixture
def bank(ddr2_timing):
    return Bank(0, ddr2_timing)


class TestActivate:
    def test_activate_opens_row(self, bank):
        bank.activate(0, row=5)
        assert bank.state is BankState.ACTIVE
        assert bank.open_row == 5
        assert bank.activations == 1

    def test_cannot_activate_active_bank(self, bank):
        bank.activate(0, row=5)
        assert not bank.can_activate(100)
        with pytest.raises(TimingViolation):
            bank.activate(100, row=6)

    def test_trcd_gates_cas(self, bank, ddr2_timing):
        bank.activate(0, row=5)
        assert not bank.can_cas(ddr2_timing.t_rcd - 1, row=5)
        assert bank.can_cas(ddr2_timing.t_rcd, row=5)

    def test_cas_requires_matching_row(self, bank, ddr2_timing):
        bank.activate(0, row=5)
        assert not bank.can_cas(ddr2_timing.t_rcd, row=6)


class TestPrecharge:
    def test_tras_gates_precharge(self, bank, ddr2_timing):
        bank.activate(0, row=5)
        assert not bank.can_precharge(ddr2_timing.t_ras - 1)
        assert bank.can_precharge(ddr2_timing.t_ras)

    def test_precharge_closes_and_respects_trp(self, bank, ddr2_timing):
        bank.activate(0, row=5)
        cycle = ddr2_timing.t_ras
        bank.precharge(cycle)
        assert bank.state is BankState.IDLE
        assert bank.open_row is None
        assert not bank.can_activate(cycle + ddr2_timing.t_rp - 1)
        assert bank.can_activate(cycle + ddr2_timing.t_rp)

    def test_write_recovery_extends_precharge(self, bank, ddr2_timing):
        bank.activate(0, row=5)
        cas_cycle = ddr2_timing.t_rcd
        data_end = cas_cycle + ddr2_timing.write_latency + 3
        bank.cas(cas_cycle, row=5, is_write=True, data_end=data_end,
                 auto_precharge=False)
        earliest = data_end + ddr2_timing.t_wr + 1
        assert not bank.can_precharge(earliest - 1)
        assert bank.can_precharge(max(earliest, ddr2_timing.t_ras))

    def test_precharge_on_idle_bank_illegal(self, bank):
        with pytest.raises(TimingViolation):
            bank.precharge(0)


class TestAutoPrecharge:
    def test_ap_closes_bank_after_window(self, bank, ddr2_timing):
        bank.activate(0, row=5)
        cas_cycle = ddr2_timing.t_rcd
        data_end = cas_cycle + ddr2_timing.cas_latency + 3
        bank.cas(cas_cycle, row=5, is_write=False, data_end=data_end,
                 auto_precharge=True)
        close_at = data_end + ddr2_timing.t_rp + 1
        assert not bank.can_activate(close_at - 1)
        assert bank.can_activate(close_at)
        # the AP consumed no PRE command but still counts as a precharge
        assert bank.precharges == 1

    def test_ap_blocks_further_cas(self, bank, ddr2_timing):
        bank.activate(0, row=5)
        cas_cycle = ddr2_timing.t_rcd
        data_end = cas_cycle + ddr2_timing.cas_latency + 1
        bank.cas(cas_cycle, row=5, is_write=False, data_end=data_end,
                 auto_precharge=True)
        assert not bank.can_cas(cas_cycle + 1, row=5)

    def test_write_ap_uses_write_recovery(self, bank, ddr2_timing):
        bank.activate(0, row=5)
        cas_cycle = ddr2_timing.t_rcd
        data_end = cas_cycle + ddr2_timing.write_latency + 1
        bank.cas(cas_cycle, row=5, is_write=True, data_end=data_end,
                 auto_precharge=True)
        close_at = data_end + ddr2_timing.t_wr + ddr2_timing.t_rp + 1
        assert not bank.can_activate(close_at - 1)
        assert bank.can_activate(close_at)

    def test_row_is_open_false_with_pending_ap(self, bank, ddr2_timing):
        bank.activate(0, row=5)
        cas_cycle = ddr2_timing.t_rcd
        data_end = cas_cycle + ddr2_timing.cas_latency + 1
        assert bank.row_is_open(5, cas_cycle)
        bank.cas(cas_cycle, row=5, is_write=False, data_end=data_end,
                 auto_precharge=True)
        assert not bank.row_is_open(5, cas_cycle + 1)


def test_cas_before_activate_illegal(bank):
    with pytest.raises(TimingViolation):
        bank.cas(0, row=5, is_write=False, data_end=10, auto_precharge=False)
