"""Databahn-flavoured controller tests."""

import pytest

from tests.helpers import make_request
from repro.dram.controller import PagePolicy
from repro.dram.databahn import DATABAHN_LOOKAHEAD, DatabahnController
from repro.dram.device import SdramDevice


def test_defaults_match_product_description(ddr2_timing):
    controller = DatabahnController(SdramDevice(ddr2_timing))
    assert controller.window_size == DATABAHN_LOOKAHEAD
    assert controller.page_policy is PagePolicy.OPEN_PAGE
    assert controller.burst_beats == 8


def test_lookahead_prepares_pages_in_advance(ddr2_timing):
    """With a deep window, the ACT for a later request issues while an
    earlier burst still owns the data bus."""
    device = SdramDevice(ddr2_timing)
    controller = DatabahnController(device)
    requests = [make_request(bank=i, row=i, beats=32) for i in range(4)]
    log = []
    pending = list(requests)
    cycle = 0
    served = 0
    while served < 4 and cycle < 2_000:
        while pending and controller.has_space:
            controller.accept(pending.pop(0), cycle)
        command = controller.tick(cycle)
        if command is not None:
            log.append((cycle, command))
        served += len(controller.drain_finished())
        cycle += 1
    act_cycles = {c.bank: cycle for cycle, c in log if c.kind.value == "ACT"}
    first_cas_per_bank = {}
    for cycle, c in log:
        if c.kind.is_cas and c.bank not in first_cas_per_bank:
            first_cas_per_bank[c.bank] = cycle
    # bank 3's activation happens before bank 0 finishes its 4 bursts
    last_bank0_cas = max(cycle for cycle, c in log
                         if c.kind.is_cas and c.bank == 0)
    assert act_cycles[3] < last_bank0_cas


def test_deep_window_accepts_more_than_thin_engine(ddr2_timing):
    controller = DatabahnController(SdramDevice(ddr2_timing))
    for i in range(DATABAHN_LOOKAHEAD):
        controller.accept(make_request(bank=i % 8), 0)
    assert not controller.has_space
    with pytest.raises(RuntimeError):
        controller.accept(make_request(), 0)
