"""Fig. 2 — access granularity mismatch accounting.

An 8-byte (2-beat) request against a BL 8 device burst moves 16 bytes;
the other 8 bytes are fetched and thrown away.  These tests pin down the
waste accounting that SAGM then eliminates.
"""

import pytest

from tests.helpers import make_request
from repro.dram.controller import CommandEngine, PagePolicy
from repro.dram.device import SdramDevice
from repro.sim.stats import StatsCollector


def serve(ddr_timing, burst_beats, requests, page_policy=PagePolicy.OPEN_PAGE,
          otf=False):
    stats = StatsCollector()
    device = SdramDevice(ddr_timing, stats=stats)
    engine = CommandEngine(device, burst_beats=burst_beats,
                           page_policy=page_policy, otf=otf)
    pending = list(requests)
    cycle = 0
    served = 0
    while served < len(requests) and cycle < 5000:
        if pending and engine.has_space:
            engine.accept(pending.pop(0), cycle)
        engine.tick(cycle)
        served += len(engine.drain_finished())
        device.tick(cycle)
        cycle += 1
    return stats, cycle


def test_short_request_wastes_most_of_bl8(ddr2_timing):
    stats, _ = serve(ddr2_timing, 8, [make_request(beats=2)])
    assert stats.useful_beats == 2
    assert stats.wasted_beats == 6


def test_bl4_quarters_the_waste(ddr2_timing):
    stats, _ = serve(ddr2_timing, 4, [make_request(beats=2)])
    assert stats.useful_beats == 2
    assert stats.wasted_beats == 2


def test_exact_multiple_has_no_waste(ddr2_timing):
    stats, _ = serve(ddr2_timing, 8, [make_request(beats=16)])
    assert stats.wasted_beats == 0
    assert stats.useful_beats == 16


def test_fig2_example_8_bytes_in_16_byte_granularity(ddr2_timing):
    """Fig. 2: a 16-bit-bus BL 8 device always moves 16 bytes; an 8-byte
    codec request throws half away.  With our 32-bit bus the same ratio is
    a 4-beat request in a BL 8 burst."""
    stats, _ = serve(ddr2_timing, 8, [make_request(beats=4)])
    assert stats.useful_beats == stats.wasted_beats == 4


def test_waste_ratio_across_codec_mix(ddr2_timing):
    """A stream of 1/2/4-beat requests (H.264 motion compensation sizes)
    wastes the majority of BL 8 bandwidth."""
    requests = [make_request(bank=i % 4, row=0, column=8 * i, beats=b)
                for i, b in enumerate([1, 2, 4, 2, 1, 4])]
    stats, _ = serve(ddr2_timing, 8, requests)
    assert stats.useful_beats == 14
    assert stats.wasted_beats == 6 * 8 - 14


def test_ddr3_otf_trailing_bl4_reduces_waste(ddr3_timing):
    full, _ = serve(ddr3_timing, 8, [make_request(beats=12)])
    otf, _ = serve(ddr3_timing, 8, [make_request(beats=12)], otf=True)
    assert full.wasted_beats == 4
    assert otf.wasted_beats == 0
