"""Per-bank bandwidth regulation unit tests."""

import pytest

from tests.helpers import make_request
from repro.dram.bankreg import BankRegulatedScheduler
from repro.dram.device import SdramDevice


def make_reg(timing, **kwargs):
    kwargs.setdefault("window_cycles", 100)
    kwargs.setdefault("budget_beats", 16)
    return BankRegulatedScheduler(SdramDevice(timing), timing, **kwargs)


def drive(scheduler, requests, max_cycles=50_000):
    pending = list(requests)
    finished = []
    cycle = 0
    while (pending or not scheduler.idle) and cycle < max_cycles:
        while pending and scheduler.can_accept(pending[0]):
            scheduler.enqueue(pending.pop(0), cycle)
        scheduler.tick(cycle)
        finished.extend(scheduler.drain_finished())
        cycle += 1
    return finished, cycle


class TestBudgets:
    def test_release_charges_master_bank_pair(self, ddr2_timing):
        reg = make_reg(ddr2_timing)
        reg.enqueue(make_request(master=0, bank=0, beats=8), 0)
        assert reg._release() is not None
        assert reg.spent[(0, 0)] == 8

    def test_overdrawn_pair_blocks_until_next_window(self, ddr2_timing):
        reg = make_reg(ddr2_timing)  # budget 16 beats / 100 cycles
        reg.enqueue(make_request(master=0, bank=0, beats=8), 0)
        reg.enqueue(make_request(master=0, bank=0, beats=8), 0)
        reg.enqueue(make_request(master=0, bank=0, beats=8), 0)
        assert reg._release().beats == 8
        assert reg._release().beats == 8
        # Third release would overdraw (16 + 8 > 16): blocked.
        assert reg._release() is None
        assert reg.throttled_releases == 1
        # The window boundary replenishes the pair.
        reg._refill(100)
        assert reg._release() is not None

    def test_other_bank_not_blocked(self, ddr2_timing):
        reg = make_reg(ddr2_timing)
        reg.spent[(0, 0)] = 16  # pair exhausted
        reg.enqueue(make_request(master=0, bank=1, beats=8), 0)
        released = reg._release()
        assert released is not None and released.bank == 1

    def test_other_master_not_blocked(self, ddr2_timing):
        reg = make_reg(ddr2_timing)
        reg.spent[(0, 0)] = 16
        reg.enqueue(make_request(master=0, bank=0, beats=8), 0)
        reg.enqueue(make_request(master=1, bank=0, beats=8), 0)
        released = reg._release()
        assert released is not None and released.master == 1
        # Master 0's head stays queued, blocked on its own budget only.
        assert len(reg.queues[0]) == 1

    def test_oversized_request_uses_fresh_window(self, ddr2_timing):
        """A request larger than the whole budget still releases (first
        release of the window is unconditional) — no deadlock."""
        reg = make_reg(ddr2_timing)  # budget 16
        reg.enqueue(make_request(master=0, bank=0, beats=64), 0)
        released = reg._release()
        assert released is not None and released.beats == 64
        assert reg.spent[(0, 0)] == 64  # overdrawn: pair blocked now
        reg.enqueue(make_request(master=0, bank=0, beats=8), 0)
        assert reg._release() is None

    def test_lazy_refill_is_fast_forward_safe(self, ddr2_timing):
        reg = make_reg(ddr2_timing)
        reg.spent[(0, 0)] = 16
        reg._refill(50)  # same epoch: nothing changes
        assert reg.spent
        reg._refill(1_000)  # ten windows later, one refill call
        assert not reg.spent


class TestFairnessAndWake:
    def test_round_robin_rotates_start(self, ddr2_timing):
        reg = make_reg(ddr2_timing)
        for master in (0, 1, 2):
            reg.enqueue(make_request(master=master, bank=master, beats=8), 0)
            reg.enqueue(make_request(master=master, bank=master, beats=8), 0)
        assert [reg._release().master for _ in range(6)] == [0, 1, 2, 0, 1, 2]

    def test_wake_at_window_boundary_when_blocked(self, ddr2_timing):
        reg = make_reg(ddr2_timing)
        reg.enqueue(make_request(master=0, bank=0, beats=8), 0)
        reg.spent[(0, 0)] = 16  # head is budget-blocked, engine empty
        assert reg.next_event_cycle(42) == 100

    def test_wake_immediate_when_releasable(self, ddr2_timing):
        reg = make_reg(ddr2_timing)
        reg.enqueue(make_request(master=0, bank=0, beats=8), 0)
        assert reg.next_event_cycle(42) == 43

    def test_wake_none_when_idle(self, ddr2_timing):
        reg = make_reg(ddr2_timing)
        assert reg.next_event_cycle(42) is None

    def test_constructor_validation(self, ddr2_timing):
        device = SdramDevice(ddr2_timing)
        with pytest.raises(ValueError):
            BankRegulatedScheduler(device, ddr2_timing, window_cycles=0)
        with pytest.raises(ValueError):
            BankRegulatedScheduler(device, ddr2_timing, budget_beats=0)
        with pytest.raises(ValueError):
            BankRegulatedScheduler(device, ddr2_timing, queue_capacity=0)

    def test_backpressure_per_master(self, ddr2_timing):
        reg = make_reg(ddr2_timing, queue_capacity=1)
        reg.enqueue(make_request(master=0), 0)
        assert not reg.can_accept(make_request(master=0))
        assert reg.can_accept(make_request(master=1))
        with pytest.raises(RuntimeError):
            reg.enqueue(make_request(master=0), 0)


class TestEndToEnd:
    def test_serves_saturating_mix(self, ddr2_timing):
        reg = make_reg(ddr2_timing)
        requests = [
            make_request(
                master=i % 3, bank=i % 8, row=i % 4,
                beats=8, is_read=bool(i % 2),
            )
            for i in range(24)
        ]
        finished, _ = drive(reg, requests)
        assert len(finished) == 24
        assert reg.quiescent
        stats = reg.scheduler_stats()
        assert stats["releases"] == 24.0
        assert stats["masters"] == 3.0
        assert stats["service.count"] == 24

    def test_storm_is_throttled(self, ddr2_timing):
        """One master hammering one bank gets stalled at window
        boundaries — visible as throttled releases."""
        reg = make_reg(ddr2_timing)
        requests = [
            make_request(master=0, bank=0, row=i % 2, beats=8)
            for i in range(16)
        ]
        finished, cycles = drive(reg, requests)
        assert len(finished) == 16
        assert reg.throttled_releases > 0
        # 16 requests x 8 beats = 128 beats at 16/window: >= 8 windows.
        assert cycles >= 700
