"""DPQ arbiter unit tests: grant order, serial service, bound math."""

import pytest

from tests.helpers import make_request
from repro.dram.device import SdramDevice
from repro.dram.dpq import (
    DPQ_QUEUE_CAPACITY,
    DpqScheduler,
    dpq_latency_bound,
    service_slot_cycles,
)


def make_dpq(timing, **kwargs):
    return DpqScheduler(SdramDevice(timing), timing, **kwargs)


def drive(scheduler, requests, max_cycles=50_000):
    pending = list(requests)
    finished = []
    cycle = 0
    while (pending or not scheduler.idle) and cycle < max_cycles:
        while pending and scheduler.can_accept(pending[0]):
            scheduler.enqueue(pending.pop(0), cycle)
        scheduler.tick(cycle)
        finished.extend(scheduler.drain_finished())
        cycle += 1
    return finished, cycle


class TestGrantOrder:
    def test_served_requestor_drops_to_tail(self, ddr2_timing):
        dpq = make_dpq(ddr2_timing)
        for master in (0, 1, 2):
            dpq.enqueue(make_request(master=master, bank=master), 0)
            dpq.enqueue(make_request(master=master, bank=master), 0)
        first = dpq._grant()
        assert first.master == 0
        assert dpq.order == [1, 2, 0]
        second = dpq._grant()
        assert second.master == 1
        assert dpq.order == [2, 0, 1]

    def test_at_most_n_minus_1_foreign_grants_between_own(self, ddr2_timing):
        """The DPQ invariant the bound rests on: between two consecutive
        grants to one requestor, every other requestor is granted at most
        once — checked over a full saturated grant trace."""
        dpq = make_dpq(ddr2_timing)
        masters = (0, 1, 2, 3)
        trace = []
        backlog = {
            m: [make_request(master=m, bank=m % 8, row=i) for i in range(20)]
            for m in masters
        }
        for _ in range(60):
            for m in masters:  # keep every FIFO topped up
                while backlog[m] and dpq.can_accept(backlog[m][0]):
                    dpq.enqueue(backlog[m].pop(0), 0)
            granted = dpq._grant()
            assert granted is not None
            trace.append(granted.master)
        for m in masters:
            own = [i for i, g in enumerate(trace) if g == m]
            for a, b in zip(own, own[1:]):
                between = trace[a + 1:b]
                assert len(between) <= len(masters) - 1
                assert len(set(between)) == len(between)

    def test_empty_fifo_skipped_without_reorder(self, ddr2_timing):
        dpq = make_dpq(ddr2_timing)
        dpq.enqueue(make_request(master=0), 0)
        dpq.enqueue(make_request(master=1), 0)
        # Drain master 0's only request; order is now [1, 0].
        assert dpq._grant().master == 0
        # Master 0's FIFO is empty: grant falls through to master 1 and
        # only master 1 moves to the tail.
        assert dpq._grant().master == 1
        assert dpq.order == [0, 1]

    def test_grant_none_when_all_empty(self, ddr2_timing):
        dpq = make_dpq(ddr2_timing)
        assert dpq._grant() is None


class TestService:
    def test_serial_single_outstanding(self, ddr2_timing):
        dpq = make_dpq(ddr2_timing)
        assert dpq.engine.window_size == 1

    def test_serves_all_requestors(self, ddr2_timing):
        dpq = make_dpq(ddr2_timing)
        requests = [
            make_request(master=i % 3, bank=i % 8, row=i) for i in range(9)
        ]
        finished, _ = drive(dpq, requests)
        assert len(finished) == 9
        assert dpq.quiescent
        stats = dpq.scheduler_stats()
        assert stats["requestors"] == 3.0
        assert sum(
            stats[f"requestor{m}.grants"] for m in range(3)
        ) == 9.0

    def test_backpressure_per_requestor(self, ddr2_timing):
        dpq = make_dpq(ddr2_timing, queue_capacity=2)
        dpq.enqueue(make_request(master=0), 0)
        dpq.enqueue(make_request(master=0), 0)
        assert not dpq.can_accept(make_request(master=0))
        assert dpq.can_accept(make_request(master=1))
        with pytest.raises(RuntimeError):
            dpq.enqueue(make_request(master=0), 0)

    def test_queue_capacity_positive(self, ddr2_timing):
        with pytest.raises(ValueError):
            make_dpq(ddr2_timing, queue_capacity=0)


class TestBound:
    def test_slot_covers_all_constraints(self, ddr2_timing):
        slot = service_slot_cycles(ddr2_timing, burst_beats=8, max_beats=8)
        t = ddr2_timing
        assert slot >= t.t_rcd + t.t_ras + t.t_rp
        assert slot >= t.burst_cycles(8) + max(t.cas_latency, t.write_latency)

    def test_slot_scales_with_beats(self, ddr2_timing):
        small = service_slot_cycles(ddr2_timing, 8, 8)
        large = service_slot_cycles(ddr2_timing, 8, 64)
        per_burst = max(
            ddr2_timing.t_ccd,
            ddr2_timing.burst_cycles(8),
            ddr2_timing.t_rrd,
        )
        assert large - small == 7 * per_burst

    def test_bound_formula(self, ddr2_timing):
        slot = service_slot_cycles(ddr2_timing, 8, 8)
        assert dpq_latency_bound(
            ddr2_timing, requestors=3, queue_capacity=4,
            burst_beats=8, max_beats=8,
        ) == (4 * 3 + 1) * slot

    def test_bound_requires_requestors(self, ddr2_timing):
        with pytest.raises(ValueError):
            dpq_latency_bound(ddr2_timing, 0, 4, 8, 8)

    def test_latency_bound_none_before_traffic(self, ddr2_timing):
        dpq = make_dpq(ddr2_timing)
        assert dpq.latency_bound() is None

    def test_latency_bound_tracks_admitted_population(self, ddr2_timing):
        dpq = make_dpq(ddr2_timing)
        dpq.enqueue(make_request(master=0, beats=8), 0)
        one = dpq.latency_bound()
        assert one == dpq_latency_bound(
            ddr2_timing, 1, DPQ_QUEUE_CAPACITY, 8, 8
        )
        dpq.enqueue(make_request(master=1, beats=32), 0)
        two = dpq.latency_bound()
        assert two == dpq_latency_bound(
            ddr2_timing, 2, DPQ_QUEUE_CAPACITY, 8, 32
        )
        assert two > one

    def test_measured_worst_case_within_bound(self, ddr2_timing):
        """Deterministic end-to-end check of the soundness claim (the
        hypothesis test randomizes it): saturate four requestors with a
        row-conflict-heavy mix and compare p100 against the bound."""
        dpq = make_dpq(ddr2_timing)
        requests = [
            make_request(
                master=i % 4,
                bank=i % 8,
                row=i * 7 % 32,
                beats=8 if i % 3 else 32,
                is_read=bool(i % 2),
            )
            for i in range(48)
        ]
        finished, _ = drive(dpq, requests)
        assert len(finished) == 48
        assert dpq.service_latency.p100 <= dpq.latency_bound()
