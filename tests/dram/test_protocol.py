"""Protocol checker tests: it flags seeded violations and passes the
command engine's real output (an independent referee for the device)."""

import pytest
from hypothesis import given, settings, strategies as st

from tests.helpers import make_request
from repro.dram.commands import CommandKind, DramCommand
from repro.dram.controller import CommandEngine, PagePolicy
from repro.dram.device import SdramDevice
from repro.dram.protocol import ProtocolChecker, audit_engine
from repro.dram.timing import DramTiming
from repro.sim.config import DdrGeneration


def act(bank, row):
    return DramCommand(kind=CommandKind.ACTIVATE, bank=bank, row=row)


def rd(bank, row, burst=8, ap=False):
    return DramCommand(kind=CommandKind.READ, bank=bank, row=row, column=0,
                       burst_beats=burst, auto_precharge=ap, useful_beats=burst)


def wr(bank, row, burst=8):
    return DramCommand(kind=CommandKind.WRITE, bank=bank, row=row, column=0,
                       burst_beats=burst, useful_beats=burst)


def pre(bank):
    return DramCommand(kind=CommandKind.PRECHARGE, bank=bank)


@pytest.fixture
def checker(ddr2_timing):
    return ProtocolChecker(ddr2_timing)


class TestSeededViolations:
    def test_clean_sequence_passes(self, checker, ddr2_timing):
        t = ddr2_timing
        log = [
            (0, act(0, 5)),
            (t.t_rcd, rd(0, 5)),
        ]
        assert checker.check(log) == []
        assert checker.clean

    def test_cas_before_trcd_flagged(self, checker, ddr2_timing):
        log = [(0, act(0, 5)), (1, rd(0, 5))]
        violations = checker.check(log)
        assert any(v.rule == "tRCD" for v in violations)

    def test_two_commands_same_cycle_flagged(self, checker):
        log = [(0, act(0, 5)), (0, act(1, 5))]
        violations = checker.check(log)
        assert any(v.rule == "command-bus" for v in violations)

    def test_act_on_active_bank_flagged(self, checker, ddr2_timing):
        log = [(0, act(0, 5)), (ddr2_timing.t_rrd, act(0, 6))]
        violations = checker.check(log)
        assert any(v.rule == "act-on-active" for v in violations)

    def test_row_mismatch_flagged(self, checker, ddr2_timing):
        log = [(0, act(0, 5)), (ddr2_timing.t_rcd, rd(0, 6))]
        violations = checker.check(log)
        assert any(v.rule == "row-mismatch" for v in violations)

    def test_premature_precharge_flagged(self, checker, ddr2_timing):
        log = [(0, act(0, 5)), (2, pre(0))]
        violations = checker.check(log)
        assert any(v.rule == "tRAS/recovery" for v in violations)

    def test_write_to_read_turnaround_flagged(self, checker, ddr2_timing):
        t = ddr2_timing
        cas_cycle = t.t_rcd
        log = [
            (0, act(0, 5)),
            (cas_cycle, wr(0, 5)),
            (cas_cycle + 1, rd(0, 5)),
        ]
        violations = checker.check(log)
        assert any(v.rule in ("tWTR", "tCCD/data-bus") for v in violations)

    def test_cas_after_auto_precharge_flagged(self, checker, ddr2_timing):
        t = ddr2_timing
        cas_cycle = t.t_rcd
        late = cas_cycle + 200
        log = [
            (0, act(0, 5)),
            (cas_cycle, rd(0, 5, ap=True)),
            (late, rd(0, 5)),
        ]
        violations = checker.check(log)
        assert any(v.rule == "cas-on-idle" for v in violations)

    def test_trrd_flagged(self, checker):
        log = [(0, act(0, 5)), (1, act(1, 5))]
        violations = checker.check(log)
        assert any(v.rule == "tRRD" for v in violations)

    def test_unknown_bank_flagged(self, checker):
        log = [(0, act(42, 5))]
        violations = checker.check(log)
        assert any(v.rule == "bank-range" for v in violations)

    def test_out_of_order_log_flagged(self, checker, ddr2_timing):
        log = [(10, act(0, 5)), (3, act(1, 6))]
        violations = checker.check(log)
        assert any(v.rule == "log-order" for v in violations)

    def test_violation_str_mentions_rule(self, checker):
        violations = checker.check([(0, act(42, 5))])
        assert "bank-range" in str(violations[0])


class TestEngineAudit:
    """The real command engine must emit protocol-clean streams."""

    @pytest.mark.parametrize("policy", list(PagePolicy))
    def test_engine_streams_are_clean(self, ddr2_timing, policy):
        device = SdramDevice(ddr2_timing)
        engine = CommandEngine(device, burst_beats=8, page_policy=policy)
        requests = [
            make_request(bank=i % 8, row=i % 5, column=(i * 24) % 1024,
                         beats=8 + 8 * (i % 3), is_read=(i % 3 != 0),
                         ap_tag=(i % 4 == 0))
            for i in range(24)
        ]
        finished, violations = audit_engine(engine, requests)
        assert len(finished) == 24
        assert violations == []

    @settings(max_examples=15, deadline=None)
    @given(
        generation=st.sampled_from(list(DdrGeneration)),
        seed_specs=st.lists(
            st.tuples(st.integers(0, 3), st.integers(0, 9),
                      st.integers(1, 48), st.booleans(), st.booleans()),
            min_size=1, max_size=10,
        ),
    )
    def test_engine_clean_under_random_traffic(self, generation, seed_specs):
        clock = {DdrGeneration.DDR1: 200, DdrGeneration.DDR2: 400,
                 DdrGeneration.DDR3: 800}[generation]
        timing = DramTiming.for_clock(generation, clock)
        device = SdramDevice(timing)
        engine = CommandEngine(device, burst_beats=8,
                               page_policy=PagePolicy.PARTIALLY_OPEN)
        requests = [
            make_request(bank=bank % timing.banks, row=row, beats=beats,
                         is_read=is_read, ap_tag=ap)
            for bank, row, beats, is_read, ap in seed_specs
        ]
        finished, violations = audit_engine(engine, requests)
        assert len(finished) == len(seed_specs)
        assert violations == []

    def test_bl4_mode_clean(self, ddr2_timing):
        device = SdramDevice(ddr2_timing)
        engine = CommandEngine(device, burst_beats=4,
                               page_policy=PagePolicy.PARTIALLY_OPEN, window=8)
        requests = [make_request(bank=i % 4, row=i % 3, beats=4,
                                 ap_tag=(i % 2 == 0)) for i in range(20)]
        finished, violations = audit_engine(engine, requests)
        assert len(finished) == 20
        assert violations == []
