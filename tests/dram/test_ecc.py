"""(72, 64) SEC-DED Hamming code: bit-exact correction and detection."""

import random

import pytest

from repro.dram.ecc import (
    CHECK_BITS,
    CODEWORD_BITS,
    DATA_BITS,
    EccOutcome,
    SecDedEcc,
    decode,
    encode,
)

WORDS = [
    0,
    1,
    (1 << DATA_BITS) - 1,
    0xDEADBEEF_CAFEF00D,
    *(random.Random(2010).getrandbits(DATA_BITS) for _ in range(4)),
]


class TestCodeShape:
    def test_geometry(self):
        assert DATA_BITS == 64
        assert CHECK_BITS == 7
        assert CODEWORD_BITS == 72

    def test_encode_range_checked(self):
        with pytest.raises(ValueError):
            encode(1 << DATA_BITS)
        with pytest.raises(ValueError):
            encode(-1)

    def test_decode_range_checked(self):
        with pytest.raises(ValueError):
            decode(1 << CODEWORD_BITS)

    def test_codeword_parity_is_even(self):
        for word in WORDS:
            assert bin(encode(word)).count("1") % 2 == 0


class TestRoundTrip:
    @pytest.mark.parametrize("word", WORDS)
    def test_clean_codeword_decodes_clean(self, word):
        decoded, outcome = decode(encode(word))
        assert decoded == word
        assert outcome is EccOutcome.CLEAN


class TestSingleBitCorrection:
    @pytest.mark.parametrize("word", WORDS[:3])
    def test_every_position_corrects(self, word):
        codeword = encode(word)
        for position in range(CODEWORD_BITS):
            decoded, outcome = decode(codeword ^ (1 << position))
            assert outcome is EccOutcome.CORRECTED, f"position {position}"
            assert decoded == word, f"position {position}"


class TestDoubleBitDetection:
    def test_all_pairs_detected_never_miscorrected(self):
        word = 0xDEADBEEF_CAFEF00D
        codeword = encode(word)
        for first in range(CODEWORD_BITS):
            for second in range(first + 1, CODEWORD_BITS):
                flipped = codeword ^ (1 << first) ^ (1 << second)
                _, outcome = decode(flipped)
                assert outcome is EccOutcome.DETECTED, (first, second)


class TestAccountant:
    def test_classification_and_counters(self):
        ecc = SecDedEcc()
        assert ecc.classify(0) is EccOutcome.CLEAN
        assert ecc.classify(1) is EccOutcome.CORRECTED
        assert ecc.classify(2) is EccOutcome.DETECTED
        assert ecc.classify(3) is EccOutcome.DETECTED
        assert (ecc.clean_bursts, ecc.corrected, ecc.detected) == (1, 1, 2)

    def test_negative_bits_rejected(self):
        with pytest.raises(ValueError):
            SecDedEcc().classify(-1)
