"""SdramDevice tests: shared command/data bus constraints."""

import pytest

from repro.dram.bank import TimingViolation
from repro.dram.commands import CommandKind, DramCommand
from repro.dram.device import SdramDevice
from repro.sim.stats import StatsCollector


def act(bank, row):
    return DramCommand(kind=CommandKind.ACTIVATE, bank=bank, row=row)


def cas(bank, row, write=False, burst=8, ap=False, useful=None, request_id=None):
    return DramCommand(
        kind=CommandKind.WRITE if write else CommandKind.READ,
        bank=bank, row=row, column=0, burst_beats=burst,
        auto_precharge=ap, useful_beats=useful if useful is not None else burst,
        request_id=request_id,
    )


def pre(bank):
    return DramCommand(kind=CommandKind.PRECHARGE, bank=bank)


@pytest.fixture
def device(ddr2_timing):
    return SdramDevice(ddr2_timing)


def open_row(device, bank, row, start=0):
    """Issue ACT and return the first CAS-legal cycle."""
    device.issue(start, act(bank, row))
    return start + device.timing.t_rcd


class TestCommandBus:
    def test_one_command_per_cycle(self, device):
        device.issue(0, act(0, 0))
        assert not device.can_issue(0, act(1, 0))
        # the CAS occupies the command bus in its cycle too
        ready = device.timing.t_rcd
        device.issue(ready, cas(0, 0))
        assert not device.can_issue(ready, act(1, 1))

    def test_trrd_gates_back_to_back_activates(self, device):
        device.issue(0, act(0, 0))
        assert not device.can_issue(1, act(1, 1))
        assert device.can_issue(device.timing.t_rrd, act(1, 1))

    def test_nop_always_legal(self, device):
        assert device.can_issue(0, DramCommand(kind=CommandKind.NOP, bank=0))


class TestDataBus:
    def test_tccd_spaces_cas_commands(self, device):
        ready = open_row(device, 0, 0)
        device.issue(ready, cas(0, 0, burst=8))
        gap = max(device.timing.t_ccd, device.timing.burst_cycles(8))
        assert not device.can_issue(ready + gap - 1, cas(0, 0, burst=8))
        assert device.can_issue(ready + gap, cas(0, 0, burst=8))

    def test_burst_occupies_bus(self, device):
        ready = open_row(device, 0, 0)
        completion = device.issue(ready, cas(0, 0, burst=8))
        assert completion.data_start == ready + device.timing.cas_latency
        assert completion.data_end == completion.data_start + 3  # BL8 = 4 cycles
        assert device.data_bus_free_at == completion.data_end + 1

    def test_write_to_read_turnaround(self, device):
        ready = open_row(device, 0, 0)
        completion = device.issue(ready, cas(0, 0, write=True, burst=8))
        # a read CAS is illegal until tWTR after the last write beat
        earliest = completion.data_end + device.timing.t_wtr + 1
        assert not device.can_issue(earliest - 1, cas(0, 0))
        assert device.can_issue(earliest, cas(0, 0))

    def test_read_to_write_bus_turnaround(self, device):
        ready = open_row(device, 0, 0)
        completion = device.issue(ready, cas(0, 0, burst=8))
        # write data may not start until the read data has left plus a gap
        write = cas(0, 0, write=True, burst=8)
        wl = device.timing.write_latency
        limit = completion.data_end + device.timing.t_rtw
        too_early = limit - wl
        assert not device.can_issue(too_early, write)

    def test_illegal_issue_raises(self, device):
        with pytest.raises(TimingViolation):
            device.issue(0, cas(0, 0))


class TestAccounting:
    def test_stats_record_useful_and_waste(self, ddr2_timing):
        stats = StatsCollector()
        device = SdramDevice(ddr2_timing, stats=stats)
        ready = open_row(device, 0, 0)
        device.issue(ready, cas(0, 0, burst=8, useful=2))
        assert stats.useful_beats == 2
        assert stats.wasted_beats == 6
        assert stats.busy_cycles == 4

    def test_completions_drained_once(self, device):
        ready = open_row(device, 0, 0)
        device.issue(ready, cas(0, 0, request_id=42))
        done = device.drain_completions()
        assert len(done) == 1 and done[0].request_id == 42
        assert device.drain_completions() == []

    def test_tick_counts_observed_cycles(self, ddr2_timing):
        stats = StatsCollector()
        device = SdramDevice(ddr2_timing, stats=stats)
        for cycle in range(10):
            device.tick(cycle)
        assert stats.observed_cycles == 10

    def test_issued_command_counter(self, device):
        device.issue(0, act(0, 0))
        ready = device.timing.t_rcd
        device.issue(ready, cas(0, 0))
        assert device.issued_commands == 2


class TestBankInterleaving:
    def test_second_bank_prepares_during_first_burst(self, device):
        """The core benefit of multiple banks: ACT to bank 1 can issue while
        bank 0's data is still on the bus."""
        ready = open_row(device, 0, 0)
        completion = device.issue(ready, cas(0, 0, burst=8))
        act_cycle = max(ready + 1, device.timing.t_rrd)
        assert device.can_issue(act_cycle, act(1, 7))
        device.issue(act_cycle, act(1, 7))
        # bank 1 CAS becomes legal tRCD later, regardless of bank 0's burst
        cas_cycle = max(act_cycle + device.timing.t_rcd,
                        ready + max(device.timing.t_ccd, 4))
        assert device.can_issue(cas_cycle, cas(1, 7))
