"""DramCommand validation tests."""

import pytest

from repro.dram.commands import CommandKind, DramCommand


def test_cas_kinds_flagged():
    assert CommandKind.READ.is_cas
    assert CommandKind.WRITE.is_cas
    assert not CommandKind.ACTIVATE.is_cas
    assert not CommandKind.PRECHARGE.is_cas


def test_activate_requires_row():
    with pytest.raises(ValueError):
        DramCommand(kind=CommandKind.ACTIVATE, bank=0)
    DramCommand(kind=CommandKind.ACTIVATE, bank=0, row=5)


def test_cas_requires_burst():
    with pytest.raises(ValueError):
        DramCommand(kind=CommandKind.READ, bank=0, row=0, column=0)
    DramCommand(kind=CommandKind.READ, bank=0, row=0, column=0, burst_beats=8)


def test_auto_precharge_only_on_cas():
    with pytest.raises(ValueError):
        DramCommand(kind=CommandKind.PRECHARGE, bank=0, auto_precharge=True)
    DramCommand(
        kind=CommandKind.WRITE, bank=0, row=0, column=0,
        burst_beats=8, auto_precharge=True,
    )


def test_useful_beats_bounded_by_burst():
    with pytest.raises(ValueError):
        DramCommand(
            kind=CommandKind.READ, bank=0, row=0, column=0,
            burst_beats=4, useful_beats=5,
        )


def test_negative_bank_rejected():
    with pytest.raises(ValueError):
        DramCommand(kind=CommandKind.PRECHARGE, bank=-1)


def test_str_mentions_ap_and_burst():
    command = DramCommand(
        kind=CommandKind.READ, bank=2, row=7, column=0,
        burst_beats=4, auto_precharge=True,
    )
    text = str(command)
    assert "RD" in text and "b2" in text and "BL4" in text and "AP" in text


def test_read_write_flags():
    read = DramCommand(kind=CommandKind.READ, bank=0, row=0, column=0, burst_beats=4)
    write = DramCommand(kind=CommandKind.WRITE, bank=0, row=0, column=0, burst_beats=4)
    assert read.is_read and not read.is_write
    assert write.is_write and not write.is_read
