"""Property test: the DPQ analytic latency bound is sound.

The arbiter's claim (and satellite #4 of the scheduler-seam PR): for
*any* traffic mix, fault rate, and timing set, the measured worst-case
service latency (p100, admission → final data beat) never exceeds
:func:`repro.dram.dpq.dpq_latency_bound`.  Two layers:

* a direct-drive property that hammers the scheduler with randomized
  request streams across every (DDR generation, clock) point the paper
  uses, and
* a full-system property that runs complete simulations — NoC, faults,
  refresh and all — with ``arbiter="dpq"`` and compares the reported
  ``service_p100`` against ``wcet_bound``.
"""

from hypothesis import given, settings, strategies as st

from tests.helpers import make_request
from repro.core.system import build_system
from repro.dram.device import SdramDevice
from repro.dram.dpq import DpqScheduler
from repro.dram.timing import DramTiming
from repro.resilience.faults import FaultConfig
from repro.sim.config import DdrGeneration, NocDesign, SystemConfig

#: Every (generation, clock) point exercised by the paper's tables.
TIMING_POINTS = (
    (DdrGeneration.DDR1, 133),
    (DdrGeneration.DDR1, 166),
    (DdrGeneration.DDR2, 333),
    (DdrGeneration.DDR3, 667),
    (DdrGeneration.DDR3, 800),
)

request_params = st.tuples(
    st.integers(min_value=0, max_value=3),    # master
    st.integers(min_value=0, max_value=7),    # bank
    st.integers(min_value=0, max_value=63),   # row
    st.sampled_from((4, 8, 16, 32, 64)),      # beats
    st.booleans(),                            # is_read
)


@settings(max_examples=25, deadline=None)
@given(
    point=st.sampled_from(TIMING_POINTS),
    stream=st.lists(request_params, min_size=1, max_size=40),
    queue_capacity=st.integers(min_value=1, max_value=4),
)
def test_bound_holds_direct_drive(point, stream, queue_capacity):
    ddr, mhz = point
    timing = DramTiming.for_clock(ddr, mhz)
    device = SdramDevice(timing)
    dpq = DpqScheduler(device, timing, queue_capacity=queue_capacity)
    banks = len(device.banks)  # 4 on DDR1, 8 on DDR2/DDR3
    pending = [
        make_request(
            master=m, bank=b % banks, row=r, beats=beats, is_read=rd
        )
        for m, b, r, beats, rd in stream
    ]
    total = len(pending)
    finished = []
    cycle = 0
    while (pending or not dpq.idle) and cycle < 500_000:
        while pending and dpq.can_accept(pending[0]):
            dpq.enqueue(pending.pop(0), cycle)
        dpq.tick(cycle)
        finished.extend(dpq.drain_finished())
        cycle += 1
    assert len(finished) == total, "DPQ failed to drain the stream"
    bound = dpq.latency_bound()
    assert bound is not None
    assert dpq.service_latency.p100 <= bound, (
        f"p100 {dpq.service_latency.p100} exceeds bound {bound} "
        f"({ddr.value}@{mhz}MHz, Q={queue_capacity}, {total} requests)"
    )


@settings(max_examples=8, deadline=None)
@given(
    point=st.sampled_from(TIMING_POINTS),
    app=st.sampled_from(("bluray", "single_dtv", "dual_dtv")),
    fault_rate=st.sampled_from((0.0, 1e-3, 5e-3)),
    seed=st.integers(min_value=1, max_value=2**16),
)
def test_bound_holds_full_system(point, app, fault_rate, seed):
    ddr, mhz = point
    config = SystemConfig(
        app=app,
        ddr=ddr,
        clock_mhz=mhz,
        design=NocDesign.GSS_SAGM,
        arbiter="dpq",
        cycles=2_500,
        warmup=300,
        seed=seed,
        faults=FaultConfig.uniform(fault_rate) if fault_rate else None,
    )
    system = build_system(config)
    metrics = system.run()
    if metrics.wcet_bound is None:
        return  # no traffic reached the arbiter in this short run
    assert metrics.service_p100 <= metrics.wcet_bound, (
        f"{app}/{ddr.value}@{mhz}MHz seed={seed} rate={fault_rate}: "
        f"p100 {metrics.service_p100} exceeds bound {metrics.wcet_bound}"
    )
