"""Waveform capture/rendering tests."""

import pytest

from tests.helpers import make_request
from repro.dram.controller import CommandEngine, PagePolicy
from repro.dram.device import SdramDevice
from repro.dram.waveform import WaveformCapture, attach


def run_with_capture(ddr_timing, requests, **engine_kwargs):
    device = SdramDevice(ddr_timing)
    capture = attach(device)
    engine = CommandEngine(device, **engine_kwargs)
    pending = list(requests)
    cycle = 0
    while (pending or not engine.idle) and cycle < 2_000:
        if pending and engine.has_space:
            engine.accept(pending.pop(0), cycle)
        engine.tick(cycle)
        engine.drain_finished()
        cycle += 1
    return capture


class TestCapture:
    def test_commands_and_bursts_recorded(self, ddr2_timing):
        capture = run_with_capture(ddr2_timing, [make_request(beats=8)],
                                   burst_beats=8)
        kinds = [cmd.kind.value for _, cmd in capture.commands]
        assert kinds == ["ACT", "RD"]
        assert len(capture.data_intervals) == 1
        start, end, is_write = capture.data_intervals[0]
        assert end - start + 1 == 4  # BL8 = 4 data cycles
        assert not is_write

    def test_horizon_covers_last_event(self, ddr2_timing):
        capture = run_with_capture(ddr2_timing, [make_request(beats=8)],
                                   burst_beats=8)
        assert capture.horizon > capture.data_intervals[0][1]


class TestRender:
    def test_lanes_present(self, ddr2_timing):
        capture = run_with_capture(
            ddr2_timing,
            [make_request(bank=0, beats=8), make_request(bank=1, beats=8)],
            burst_beats=8,
        )
        text = capture.render()
        assert "cmd" in text and "bank0" in text and "bank1" in text
        assert "data" in text
        assert "A" in text and "R" in text

    def test_auto_precharge_lowercase(self, ddr2_timing):
        capture = run_with_capture(
            ddr2_timing,
            [make_request(beats=4, ap_tag=True)],
            burst_beats=4,
            page_policy=PagePolicy.PARTIALLY_OPEN,
        )
        text = capture.render()
        assert "r" in text  # lowercase CAS = auto-precharge

    def test_write_bursts_marked(self, ddr2_timing):
        capture = run_with_capture(
            ddr2_timing, [make_request(beats=8, is_read=False)], burst_beats=8
        )
        data_line = next(line for line in capture.render().splitlines()
                         if line.startswith("data"))
        assert "W" in data_line

    def test_window_selection(self, ddr2_timing):
        capture = run_with_capture(ddr2_timing, [make_request(beats=8)],
                                   burst_beats=8)
        windowed = capture.render(start=0, end=3)
        full = capture.render()
        assert len(windowed.splitlines()[2]) < len(full.splitlines()[2])

    def test_empty_window_rejected(self, ddr2_timing):
        capture = run_with_capture(ddr2_timing, [make_request(beats=8)],
                                   burst_beats=8)
        with pytest.raises(ValueError):
            capture.render(start=10, end=10)

    def test_bank_filter(self, ddr2_timing):
        capture = run_with_capture(
            ddr2_timing,
            [make_request(bank=0, beats=8), make_request(bank=1, beats=8)],
            burst_beats=8,
        )
        text = capture.render(banks=[1])
        assert "bank1" in text and "bank0" not in text


class TestGolden:
    def test_bl4_partially_open_schedule(self, ddr2_timing):
        """Golden rendering of a small BL 4 schedule (Fig. 5 territory).

        Two BL 4 reads to the same row: one ACT, two CAS (tCCD apart), the
        second carrying the SAGM auto-precharge tag (lowercase ``r``), and
        their data back-to-back on the bus.  Pins the exact command
        placement *and* the renderer's output format — a change to either
        shows up as a readable diff.
        """
        capture = run_with_capture(
            ddr2_timing,
            [
                make_request(request_id=0, bank=0, row=1, column=0, beats=4),
                make_request(
                    request_id=1, bank=0, row=1, column=4, beats=4,
                    ap_tag=True,
                ),
            ],
            burst_beats=4,
            page_policy=PagePolicy.PARTIALLY_OPEN,
        )
        expected = "\n".join(
            [
                "cycle      0         1         2   ",
                "           012345678901234567890123",
                "cmd        A....R.r................",
                "bank0      A....R.r................",
                "data       ..........RRRR..........",
                "           A=ACT R/W=CAS (lowercase = auto-precharge) P=PRE",
            ]
        )
        assert capture.render(end=24) == expected
