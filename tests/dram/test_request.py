"""MemoryRequest tests: the Section IV-B scheduling relations."""

import pytest

from tests.helpers import make_request
from repro.dram.request import MemoryRequest, ServiceClass


class TestRelations:
    def test_bank_conflict_same_bank_different_row(self):
        a = make_request(bank=1, row=10)
        b = make_request(bank=1, row=11)
        assert a.bank_conflict_with(b)
        assert b.bank_conflict_with(a)

    def test_no_conflict_on_row_hit(self):
        a = make_request(bank=1, row=10)
        b = make_request(bank=1, row=10)
        assert not a.bank_conflict_with(b)
        assert a.row_hit_with(b)

    def test_no_conflict_across_banks(self):
        a = make_request(bank=1, row=10)
        b = make_request(bank=2, row=10)
        assert not a.bank_conflict_with(b)
        assert a.bank_interleaves_with(b)
        assert not a.row_hit_with(b)

    def test_data_contention_on_direction_flip(self):
        read = make_request(is_read=True)
        write = make_request(is_read=False)
        assert read.data_contention_with(write)
        assert not read.data_contention_with(make_request(is_read=True))


class TestValidation:
    def test_positive_beats_required(self):
        with pytest.raises(ValueError):
            make_request(beats=0)

    def test_negative_coordinates_rejected(self):
        with pytest.raises(ValueError):
            make_request(bank=-1)
        with pytest.raises(ValueError):
            make_request(row=-1)

    def test_split_index_bounds(self):
        with pytest.raises(ValueError):
            make_request(split_index=2, split_count=2)


class TestProperties:
    def test_priority_flag(self):
        assert make_request(priority=True).is_priority
        assert not make_request().is_priority

    def test_write_flag(self):
        assert make_request(is_read=False).is_write
        assert not make_request(is_read=True).is_write

    def test_split_lineage(self):
        part = make_request(parent_id=1, split_index=2, split_count=4)
        assert part.is_split
        assert not part.is_last_split
        last = make_request(parent_id=1, split_index=3, split_count=4)
        assert last.is_last_split
        assert not make_request().is_split

    def test_str_shows_ap_and_class(self):
        req = make_request(priority=True, ap_tag=True, is_read=False)
        text = str(req)
        assert "[P]" in text and "WR" in text and "/AP" in text
