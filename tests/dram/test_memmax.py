"""MemMax thread scheduler tests."""

import pytest

from tests.helpers import make_request
from repro.dram.memmax import MemMaxScheduler, ThreadQueue


class TestThreadQueue:
    def test_write_occupies_data_buffer(self):
        queue = ThreadQueue(0, capacity_flits=32)
        write = make_request(is_read=False, beats=64)
        assert queue.can_accept(write)
        queue.push(write)
        assert queue.data_occupancy_flits == 32
        # data buffer now full: another write is refused, a read accepted
        assert not queue.can_accept(make_request(is_read=False, beats=2))
        assert queue.can_accept(make_request(is_read=True, beats=64))

    def test_request_buffer_bounded(self):
        queue = ThreadQueue(0, capacity_flits=4)
        for _ in range(4):
            queue.push(make_request(is_read=True))
        assert not queue.can_accept(make_request(is_read=True))

    def test_pop_restores_capacity(self):
        queue = ThreadQueue(0, capacity_flits=32)
        queue.push(make_request(is_read=False, beats=64))
        queue.pop()
        assert queue.data_occupancy_flits == 0
        assert queue.can_accept(make_request(is_read=False, beats=64))

    def test_overflow_raises(self):
        queue = ThreadQueue(0, capacity_flits=1)
        queue.push(make_request())
        with pytest.raises(RuntimeError):
            queue.push(make_request())


class TestScheduler:
    def test_masters_hash_to_threads(self):
        scheduler = MemMaxScheduler(threads=4)
        assert scheduler.thread_for(make_request(master=0)).index == 0
        assert scheduler.thread_for(make_request(master=5)).index == 1

    def test_round_robin_across_threads(self):
        scheduler = MemMaxScheduler(threads=4)
        for master in range(4):
            scheduler.push(make_request(master=master, bank=master, row=0))
        order = [scheduler.pop_next().master for _ in range(4)]
        assert order == [0, 1, 2, 3]

    def test_empty_pop_returns_none(self):
        assert MemMaxScheduler().pop_next() is None

    def test_in_order_within_thread(self):
        scheduler = MemMaxScheduler(threads=4)
        first = make_request(master=0, bank=0, row=0)
        second = make_request(master=0, bank=1, row=0)
        scheduler.push(first)
        scheduler.push(second)
        assert scheduler.pop_next() is first
        assert scheduler.pop_next() is second

    def test_priority_first_mode(self):
        scheduler = MemMaxScheduler(threads=4, priority_first=True)
        scheduler.push(make_request(master=0, bank=0))
        priority = make_request(master=1, bank=1, priority=True)
        scheduler.push(priority)
        assert scheduler.pop_next() is priority

    def test_sdram_friendly_skip_avoids_conflict(self):
        scheduler = MemMaxScheduler(threads=4, sdram_friendly_skip=True)
        scheduler.push(make_request(master=0, bank=0, row=0))
        conflicting = make_request(master=1, bank=0, row=1)
        clean = make_request(master=2, bank=3, row=0)
        scheduler.push(conflicting)
        scheduler.push(clean)
        scheduler.pop_next()  # master 0 establishes last = (bank0, row0)
        assert scheduler.pop_next() is clean

    def test_bandwidth_regulated_mode_ignores_sdram_state(self):
        scheduler = MemMaxScheduler(threads=4, sdram_friendly_skip=False)
        scheduler.push(make_request(master=0, bank=0, row=0))
        conflicting = make_request(master=1, bank=0, row=1)
        clean = make_request(master=2, bank=3, row=0)
        scheduler.push(conflicting)
        scheduler.push(clean)
        scheduler.pop_next()
        # strict round-robin: thread 1 is next regardless of the conflict
        assert scheduler.pop_next() is conflicting

    def test_starvation_override(self):
        scheduler = MemMaxScheduler(threads=2, sdram_friendly_skip=True)
        starved = make_request(master=1, bank=0, row=99)
        scheduler.push(starved)
        # keep feeding thread 0 with clean requests; thread 1's head
        # conflicts forever but must eventually win by aging
        winners = []
        for i in range(MemMaxScheduler.STARVATION_ROUNDS + 2):
            scheduler.push(make_request(master=0, bank=0, row=0))
            winners.append(scheduler.pop_next())
        assert starved in winners

    def test_pending_counts_all_threads(self):
        scheduler = MemMaxScheduler(threads=4)
        scheduler.push(make_request(master=0))
        scheduler.push(make_request(master=1))
        assert scheduler.pending == 2

    def test_needs_at_least_one_thread(self):
        with pytest.raises(ValueError):
            MemMaxScheduler(threads=0)


class TestSkipFallbacks:
    def test_skip_falls_back_to_no_conflict(self):
        """When every head contends on direction, the arbiter still avoids
        the bank conflict (second fallback tier)."""
        scheduler = MemMaxScheduler(threads=4, sdram_friendly_skip=True)
        scheduler.push(make_request(master=0, bank=0, row=0, is_read=True))
        # both remaining heads flip direction; one also bank-conflicts
        conflicting = make_request(master=1, bank=0, row=9, is_read=False)
        turnaround_only = make_request(master=2, bank=5, row=0, is_read=False)
        scheduler.push(conflicting)
        scheduler.push(turnaround_only)
        scheduler.pop_next()  # establishes last = bank0/row0 read
        assert scheduler.pop_next() is turnaround_only

    def test_skip_last_resort_takes_conflict(self):
        scheduler = MemMaxScheduler(threads=4, sdram_friendly_skip=True)
        scheduler.push(make_request(master=0, bank=0, row=0))
        conflicting = make_request(master=1, bank=0, row=9)
        scheduler.push(conflicting)
        scheduler.pop_next()
        assert scheduler.pop_next() is conflicting
