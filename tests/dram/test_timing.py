"""DDR timing derivation tests."""

import pytest

from repro.dram.timing import DramTiming, GENERATION_TIMING
from repro.sim.config import DdrGeneration


class TestClockDerivation:
    def test_paper_example_ddr3_800_write_to_precharge(self):
        """Section IV-B: at 800 MHz DDR III it takes 23 cycles to deactivate
        a bank after writing data (tWR + tRP = 12 + 11)."""
        timing = DramTiming.for_clock(DdrGeneration.DDR3, 800)
        assert timing.t_wr == 12
        assert timing.t_rp == 11
        assert timing.write_to_precharge == 23

    def test_cycles_grow_with_clock(self):
        low = DramTiming.for_clock(DdrGeneration.DDR3, 533)
        high = DramTiming.for_clock(DdrGeneration.DDR3, 800)
        for field in ("t_rcd", "t_rp", "t_ras", "t_wr", "cas_latency"):
            assert getattr(high, field) >= getattr(low, field)

    @pytest.mark.parametrize("generation,clock", [
        (DdrGeneration.DDR1, 133), (DdrGeneration.DDR1, 200),
        (DdrGeneration.DDR2, 266), (DdrGeneration.DDR2, 400),
        (DdrGeneration.DDR3, 533), (DdrGeneration.DDR3, 800),
    ])
    def test_all_paper_clock_points_build(self, generation, clock):
        timing = DramTiming.for_clock(generation, clock)
        assert timing.t_rcd >= 1
        assert timing.cas_latency >= timing.write_latency
        assert timing.banks in (4, 8)

    def test_rejects_nonpositive_clock(self):
        with pytest.raises(ValueError):
            DramTiming.for_clock(DdrGeneration.DDR2, 0)

    def test_bank_counts_per_generation(self):
        assert DramTiming.for_clock(DdrGeneration.DDR1, 200).banks == 4
        assert DramTiming.for_clock(DdrGeneration.DDR2, 400).banks == 8
        assert DramTiming.for_clock(DdrGeneration.DDR3, 800).banks == 8

    def test_tccd_floors_per_generation(self):
        """Section V-A: DDR III's tCCD=4 makes it behave like BL 8 even in
        BL 4 mode — the reason SAGM gains less there."""
        assert DramTiming.for_clock(DdrGeneration.DDR1, 200).t_ccd == 1
        assert DramTiming.for_clock(DdrGeneration.DDR2, 400).t_ccd == 2
        assert DramTiming.for_clock(DdrGeneration.DDR3, 800).t_ccd == 4


class TestBurstSupport:
    def test_burst_cycles_two_beats_per_cycle(self):
        timing = DramTiming.for_clock(DdrGeneration.DDR2, 333)
        assert timing.burst_cycles(8) == 4
        assert timing.burst_cycles(4) == 2
        assert timing.burst_cycles(1) == 1

    def test_burst_cycles_rejects_nonpositive(self):
        timing = DramTiming.for_clock(DdrGeneration.DDR2, 333)
        with pytest.raises(ValueError):
            timing.burst_cycles(0)

    def test_supported_bursts(self):
        ddr1 = DramTiming.for_clock(DdrGeneration.DDR1, 200)
        ddr1.validate_burst(2)
        ddr1.validate_burst(4)
        ddr1.validate_burst(8)
        ddr3 = DramTiming.for_clock(DdrGeneration.DDR3, 800)
        ddr3.validate_burst(4)
        ddr3.validate_burst(8)
        with pytest.raises(ValueError):
            ddr3.validate_burst(2)

    def test_read_to_precharge_is_trp(self):
        timing = DramTiming.for_clock(DdrGeneration.DDR2, 333)
        assert timing.read_to_precharge == timing.t_rp


def test_generation_table_covers_all_generations():
    assert set(GENERATION_TIMING) == set(DdrGeneration)
