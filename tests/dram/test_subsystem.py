"""Memory subsystem assembly tests."""

import pytest

from tests.helpers import make_request
from repro.dram.controller import PagePolicy
from repro.dram.device import SdramDevice
from repro.dram.subsystem import (
    ConvMemorySubsystem,
    ThinMemorySubsystem,
    build_memory_subsystem,
)
from repro.sim.config import DdrGeneration, NocDesign, SystemConfig


def drive(subsystem, requests, max_cycles=5000):
    pending = list(requests)
    finished = []
    cycle = 0
    while (pending or not subsystem.idle) and cycle < max_cycles:
        while pending and subsystem.can_accept(pending[0]):
            subsystem.enqueue(pending.pop(0), cycle)
        subsystem.tick(cycle)
        finished.extend(subsystem.drain_finished())
        cycle += 1
    return finished, cycle


class TestThinSubsystem:
    def test_serves_batch_in_order(self, ddr2_timing):
        device = SdramDevice(ddr2_timing)
        subsystem = ThinMemorySubsystem(device)
        requests = [make_request(bank=i % 4, row=i, beats=8) for i in range(10)]
        ids = [r.request_id for r in requests]
        finished, _ = drive(subsystem, requests)
        assert [f.request.request_id for f in finished] == ids

    def test_backpressure_when_full(self, ddr2_timing):
        device = SdramDevice(ddr2_timing)
        subsystem = ThinMemorySubsystem(device, input_capacity=2)
        subsystem.enqueue(make_request(), 0)
        subsystem.enqueue(make_request(), 0)
        assert not subsystem.can_accept(make_request())
        with pytest.raises(RuntimeError):
            subsystem.enqueue(make_request(), 0)

    def test_input_capacity_positive(self, ddr2_timing):
        with pytest.raises(ValueError):
            ThinMemorySubsystem(SdramDevice(ddr2_timing), input_capacity=0)

    def test_idle_reflects_pending_work(self, ddr2_timing):
        device = SdramDevice(ddr2_timing)
        subsystem = ThinMemorySubsystem(device)
        assert subsystem.idle
        subsystem.enqueue(make_request(), 0)
        assert not subsystem.idle


class TestConvSubsystem:
    def test_serves_batch(self, ddr2_timing):
        device = SdramDevice(ddr2_timing)
        subsystem = ConvMemorySubsystem(device)
        requests = [make_request(master=i % 4, bank=i % 8, beats=8)
                    for i in range(12)]
        finished, _ = drive(subsystem, requests)
        assert len(finished) == 12

    def test_pipeline_latency_added(self, ddr2_timing):
        thin_device = SdramDevice(ddr2_timing)
        conv_device = SdramDevice(ddr2_timing)
        thin = ThinMemorySubsystem(thin_device)
        conv = ConvMemorySubsystem(conv_device)
        request = make_request(beats=8)
        thin_done, _ = drive(thin, [make_request(beats=8)])
        conv_done, _ = drive(conv, [make_request(beats=8)])
        extra = conv_done[0].data_ready_cycle - thin_done[0].data_ready_cycle
        staging = (8 + 1) // 2
        assert extra == ConvMemorySubsystem.PIPELINE_LATENCY + staging

    def test_large_write_admitted(self, ddr2_timing):
        device = SdramDevice(ddr2_timing)
        subsystem = ConvMemorySubsystem(device)
        big = make_request(is_read=False, beats=64)
        assert subsystem.can_accept(big)
        finished, _ = drive(subsystem, [big])
        assert len(finished) == 1


class TestBuilder:
    def test_conv_designs_get_memmax(self):
        config = SystemConfig(design=NocDesign.CONV)
        _, subsystem = build_memory_subsystem(config)
        assert isinstance(subsystem, ConvMemorySubsystem)
        assert not subsystem.scheduler.priority_first

    def test_conv_pfs_enables_priority(self):
        config = SystemConfig(design=NocDesign.CONV_PFS)
        _, subsystem = build_memory_subsystem(config)
        assert subsystem.scheduler.priority_first

    def test_sdram_aware_gets_thin_open_page(self):
        config = SystemConfig(design=NocDesign.SDRAM_AWARE)
        _, subsystem = build_memory_subsystem(config)
        assert isinstance(subsystem, ThinMemorySubsystem)
        assert subsystem.engine.page_policy is PagePolicy.OPEN_PAGE
        assert subsystem.engine.burst_beats == 8

    def test_sagm_ddr2_uses_bl4_partially_open(self):
        config = SystemConfig(design=NocDesign.GSS_SAGM, ddr=DdrGeneration.DDR2)
        _, subsystem = build_memory_subsystem(config)
        assert subsystem.engine.burst_beats == 4
        assert subsystem.engine.page_policy is PagePolicy.PARTIALLY_OPEN
        assert not subsystem.engine.otf

    def test_sagm_ddr3_uses_otf(self):
        config = SystemConfig(
            design=NocDesign.GSS_SAGM, ddr=DdrGeneration.DDR3, clock_mhz=800
        )
        _, subsystem = build_memory_subsystem(config)
        assert subsystem.engine.burst_beats == 8
        assert subsystem.engine.otf

    def test_sagm_window_scaled_by_data_time(self):
        bl4 = build_memory_subsystem(
            SystemConfig(design=NocDesign.GSS_SAGM, ddr=DdrGeneration.DDR2)
        )[1]
        bl8 = build_memory_subsystem(
            SystemConfig(design=NocDesign.GSS, ddr=DdrGeneration.DDR2)
        )[1]
        assert bl4.engine.window_size == 2 * bl8.engine.window_size
