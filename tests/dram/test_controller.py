"""CommandEngine tests: windowed in-order PRE/RAS/CAS pipelining."""

import pytest

from tests.helpers import make_request
from repro.dram.controller import CommandEngine, PagePolicy
from repro.dram.commands import CommandKind
from repro.dram.device import SdramDevice
from repro.sim.stats import StatsCollector


def run_engine(engine, requests, max_cycles=3000):
    """Feed requests as window space allows; return finished + command log."""
    pending = list(requests)
    finished = []
    log = []
    cycle = 0
    while (pending or not engine.idle) and cycle < max_cycles:
        while pending and engine.has_space:
            engine.accept(pending.pop(0), cycle)
        command = engine.tick(cycle)
        if command is not None:
            log.append((cycle, command))
        finished.extend(engine.drain_finished())
        cycle += 1
    return finished, log, cycle


@pytest.fixture
def device(ddr2_timing):
    return SdramDevice(ddr2_timing, stats=StatsCollector())


class TestBasicService:
    def test_single_read_completes(self, device):
        engine = CommandEngine(device, burst_beats=8)
        finished, log, _ = run_engine(engine, [make_request(beats=8)])
        assert len(finished) == 1
        kinds = [c.kind for _, c in log]
        assert kinds == [CommandKind.ACTIVATE, CommandKind.READ]

    def test_multi_burst_request(self, device):
        engine = CommandEngine(device, burst_beats=8)
        finished, log, _ = run_engine(engine, [make_request(beats=24)])
        assert len(finished) == 1
        reads = [c for _, c in log if c.kind is CommandKind.READ]
        assert len(reads) == 3  # 24 beats = 3 x BL8
        # column advances burst by burst
        assert [c.column for c in reads] == [0, 8, 16]

    def test_cas_strictly_in_order(self, device):
        engine = CommandEngine(device, burst_beats=8)
        requests = [make_request(bank=i % 4, row=i, beats=8) for i in range(6)]
        ids = [r.request_id for r in requests]
        finished, _, _ = run_engine(engine, requests)
        assert [f.request.request_id for f in finished] == ids

    def test_finished_reports_data_ready_cycle(self, device):
        engine = CommandEngine(device, burst_beats=8)
        finished, log, _ = run_engine(engine, [make_request(beats=8)])
        cas_cycle = [c for c in log if c[1].kind is CommandKind.READ][0][0]
        expected_end = cas_cycle + device.timing.cas_latency + 3
        assert finished[0].data_ready_cycle == expected_end


class TestPipelining:
    def test_act_for_younger_overlaps_older_burst(self, device):
        engine = CommandEngine(device, burst_beats=8, window=4)
        a = make_request(bank=0, row=0, beats=32)
        b = make_request(bank=1, row=1, beats=8)
        _, log, _ = run_engine(engine, [a, b])
        act_b = next(c for cycle, c in log
                     if c.kind is CommandKind.ACTIVATE and c.bank == 1)
        last_read_a = max(cycle for cycle, c in log
                          if c.kind is CommandKind.READ and c.bank == 0)
        act_b_cycle = next(cycle for cycle, c in log
                           if c.kind is CommandKind.ACTIVATE and c.bank == 1)
        assert act_b_cycle < last_read_a  # prep overlapped service

    def test_demand_precharge_waits_for_older_row_user(self, device):
        """PRE for a younger conflicting request must not close a row an
        older queued request still needs."""
        engine = CommandEngine(device, burst_beats=8, window=4)
        first = make_request(bank=0, row=5, beats=8)
        second = make_request(bank=0, row=5, beats=8)   # same row (hit)
        third = make_request(bank=0, row=9, beats=8)    # conflict
        _, log, _ = run_engine(engine, [first, second, third])
        pre_cycle = next(cycle for cycle, c in log
                         if c.kind is CommandKind.PRECHARGE)
        second_cas = sorted(cycle for cycle, c in log
                            if c.kind is CommandKind.READ)[1]
        assert pre_cycle > second_cas

    def test_interleaved_banks_faster_than_conflicts(self, device):
        interleaved = [make_request(bank=i % 4, row=0, beats=8) for i in range(8)]
        engine = CommandEngine(device, burst_beats=8)
        _, _, cycles_interleaved = run_engine(engine, interleaved)

        device2 = SdramDevice(device.timing)
        conflicting = [make_request(bank=0, row=i, beats=8) for i in range(8)]
        engine2 = CommandEngine(device2, burst_beats=8)
        _, _, cycles_conflicting = run_engine(engine2, conflicting)
        assert cycles_interleaved < cycles_conflicting


class TestPagePolicies:
    def test_closed_page_sets_ap_on_every_cas(self, device):
        engine = CommandEngine(device, burst_beats=8,
                               page_policy=PagePolicy.CLOSED_PAGE)
        _, log, _ = run_engine(engine, [make_request(beats=8),
                                        make_request(bank=1, beats=8)])
        cas = [c for _, c in log if c.kind.is_cas]
        assert all(c.auto_precharge for c in cas)
        assert not any(c.kind is CommandKind.PRECHARGE for _, c in log)

    def test_partially_open_honors_ap_tag(self, device):
        engine = CommandEngine(device, burst_beats=8,
                               page_policy=PagePolicy.PARTIALLY_OPEN)
        tagged = make_request(bank=0, row=0, beats=8, ap_tag=True)
        untagged = make_request(bank=1, row=0, beats=8)
        _, log, _ = run_engine(engine, [tagged, untagged])
        cas = {c.bank: c for _, c in log if c.kind.is_cas}
        assert cas[0].auto_precharge
        assert not cas[1].auto_precharge

    def test_ap_only_on_last_burst_of_multiburst(self, device):
        engine = CommandEngine(device, burst_beats=8,
                               page_policy=PagePolicy.CLOSED_PAGE)
        _, log, _ = run_engine(engine, [make_request(beats=24)])
        cas = [c for _, c in log if c.kind.is_cas]
        assert [c.auto_precharge for c in cas] == [False, False, True]

    def test_open_page_row_hits_skip_activation(self, device):
        engine = CommandEngine(device, burst_beats=8)
        hits = [make_request(bank=0, row=0, column=i * 8, beats=8)
                for i in range(4)]
        _, log, _ = run_engine(engine, hits)
        acts = [c for _, c in log if c.kind is CommandKind.ACTIVATE]
        assert len(acts) == 1
        assert device.stats.row_hits == 3
        assert device.stats.row_misses == 1


class TestOtfMode:
    def test_trailing_chunk_uses_bl4(self, ddr3_timing):
        device = SdramDevice(ddr3_timing)
        engine = CommandEngine(device, burst_beats=8, otf=True)
        _, log, _ = run_engine(engine, [make_request(beats=12)])
        bursts = [c.burst_beats for _, c in log if c.kind.is_cas]
        assert bursts == [8, 4]

    def test_small_request_uses_bl4(self, ddr3_timing):
        device = SdramDevice(ddr3_timing)
        engine = CommandEngine(device, burst_beats=8, otf=True)
        _, log, _ = run_engine(engine, [make_request(beats=3)])
        bursts = [c.burst_beats for _, c in log if c.kind.is_cas]
        assert bursts == [4]


class TestValidation:
    def test_window_must_be_positive(self, device):
        with pytest.raises(ValueError):
            CommandEngine(device, burst_beats=8, window=0)

    def test_burst_must_be_supported(self, device):
        with pytest.raises(ValueError):
            CommandEngine(device, burst_beats=16)

    def test_accept_beyond_window_raises(self, device):
        engine = CommandEngine(device, burst_beats=8, window=1)
        engine.accept(make_request(), 0)
        with pytest.raises(RuntimeError):
            engine.accept(make_request(), 0)


def test_accept_validates_bank_range(ddr1_timing):
    """A request addressing a bank the device does not have is rejected at
    acceptance, not deep inside command selection (hypothesis-found)."""
    device = SdramDevice(ddr1_timing)
    engine = CommandEngine(device, burst_beats=8)
    with pytest.raises(ValueError, match="bank"):
        engine.accept(make_request(bank=7), 0)  # DDR I has 4 banks
