"""Vector-vs-scalar identity for the numpy DRAM bank datapath.

The vectorized gate must be bit-identical to the scalar predicates and to
the scalar ``next_attempt_cycle`` bound on any reachable engine state, and
the feature flag must fall back to pure Python cleanly.
"""

import copy
import random

import pytest

from tests.helpers import make_request
from repro.dram.controller import CommandEngine, PagePolicy
from repro.dram.device import SdramDevice
from repro.dram import vectorized
from repro.dram.vectorized import VectorBankGate, make_gate, resolve_mode
from repro.sim.stats import StatsCollector

numpy_required = pytest.mark.skipif(
    not vectorized.numpy_available(), reason="numpy not installed"
)


def random_requests(rng, count, banks=8, rows=16):
    return [
        make_request(
            bank=rng.randrange(banks),
            row=rng.randrange(rows),
            beats=rng.choice([8, 16, 64]),
            is_read=rng.random() < 0.7,
        )
        for _ in range(count)
    ]


def drive(engine, requests, cycles, probe):
    """Feed ``requests`` through ``engine``; call ``probe(engine, cycle)``
    every cycle before the tick (the decision point)."""
    pending = list(requests)
    for cycle in range(cycles):
        while pending and engine.has_space:
            engine.accept(pending.pop(0), cycle)
        probe(engine, cycle)
        engine.tick(cycle)
        engine.drain_finished()


class TestFlagResolution:
    def test_off_disables(self, ddr2_timing, monkeypatch):
        monkeypatch.setenv("REPRO_DRAM_VECTOR", "off")
        device = SdramDevice(ddr2_timing)
        assert make_gate(device) is None
        engine = CommandEngine(device, burst_beats=8)
        assert engine._vector_gate is None

    def test_auto_stays_scalar_below_crossover(self, ddr2_timing, monkeypatch):
        # The shipped 8-bank configs sit below the measured crossover.
        monkeypatch.setenv("REPRO_DRAM_VECTOR", "auto")
        assert resolve_mode() == "auto"
        assert make_gate(SdramDevice(ddr2_timing)) is None

    def test_unknown_value_falls_back_to_auto(self, monkeypatch):
        monkeypatch.setenv("REPRO_DRAM_VECTOR", "definitely-not-a-mode")
        assert resolve_mode() == "auto"

    @numpy_required
    def test_on_enables(self, ddr2_timing, monkeypatch):
        monkeypatch.setenv("REPRO_DRAM_VECTOR", "on")
        device = SdramDevice(ddr2_timing)
        assert isinstance(make_gate(device), VectorBankGate)

    def test_on_without_numpy_falls_back(self, ddr2_timing, monkeypatch):
        monkeypatch.setenv("REPRO_DRAM_VECTOR", "on")
        monkeypatch.setattr(vectorized, "_np", None)
        assert make_gate(SdramDevice(ddr2_timing)) is None


@numpy_required
class TestMaskIdentity:
    """Masks equal the scalar Bank predicates on every reachable state."""

    def test_masks_match_scalar_predicates(self, ddr3_timing, monkeypatch):
        monkeypatch.setenv("REPRO_DRAM_VECTOR", "off")
        rng = random.Random(20100613)
        device = SdramDevice(ddr3_timing, stats=StatsCollector())
        engine = CommandEngine(
            device, burst_beats=8, page_policy=PagePolicy.PARTIALLY_OPEN,
            otf=True,
        )
        gate = VectorBankGate(device)
        rows = [rng.randrange(16) for _ in device.banks]

        def probe(engine, cycle):
            gate.refresh()
            # Scalar predicates retire expired APs (a state mutation), so
            # evaluate them on a deep copy of each bank.
            reference = [copy.deepcopy(bank) for bank in device.banks]
            act = gate.can_activate_mask(cycle)
            cas = gate.can_cas_mask(cycle, rows)
            pre = gate.can_precharge_mask(cycle)
            for index, bank in enumerate(reference):
                assert bool(act[index]) == bank.can_activate(cycle)
            for index, bank in enumerate(reference):
                fresh = copy.deepcopy(device.banks[index])
                assert bool(cas[index]) == fresh.can_cas(cycle, rows[index])
            for index in range(len(reference)):
                fresh = copy.deepcopy(device.banks[index])
                assert bool(pre[index]) == fresh.can_precharge(cycle)

        drive(engine, random_requests(rng, 48), 1200, probe)


@numpy_required
class TestBoundIdentity:
    """Vector ``next_attempt_cycle`` == scalar, cycle by cycle."""

    @pytest.mark.parametrize("policy", list(PagePolicy))
    def test_next_attempt_cycle_identical(self, ddr2_timing, policy,
                                          monkeypatch):
        rng = random.Random(sum(map(ord, policy.value)))
        monkeypatch.setenv("REPRO_DRAM_VECTOR", "off")
        device = SdramDevice(ddr2_timing, stats=StatsCollector())
        engine = CommandEngine(device, burst_beats=8, page_policy=policy)
        assert engine._vector_gate is None
        gate = VectorBankGate(device)

        def probe(engine, cycle):
            scalar = engine.next_attempt_cycle(cycle)
            engine._vector_gate = gate
            try:
                vector = engine.next_attempt_cycle(cycle)
            finally:
                engine._vector_gate = None
            assert vector == scalar, (
                f"cycle {cycle}: vector {vector} != scalar {scalar}"
            )

        drive(engine, random_requests(rng, 64), 2000, probe)

    def test_full_engine_run_identical_under_flag(self, ddr2_timing,
                                                  monkeypatch):
        """Whole-run identity: same request stream, flag off vs on, same
        finished order and data timing (scalar fallback when no numpy)."""
        def run(mode):
            monkeypatch.setenv("REPRO_DRAM_VECTOR", mode)
            rng = random.Random(77)
            device = SdramDevice(ddr2_timing, stats=StatsCollector())
            engine = CommandEngine(device, burst_beats=8)
            finished = []
            queue = random_requests(rng, 64)
            for cycle in range(4000):
                while queue and engine.has_space:
                    engine.accept(queue.pop(0), cycle)
                engine.tick(cycle)
                finished.extend(
                    # Not request_id: the make_request id counter advances
                    # between the two runs; bank/row/timing pin identity.
                    (f.request.bank, f.request.row, f.data_ready_cycle)
                    for f in engine.drain_finished()
                )
            return finished

        assert run("on") == run("off")
