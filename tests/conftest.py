"""Shared fixtures for the test suite."""

import pytest

from repro.dram.timing import DramTiming
from repro.sim.config import DdrGeneration


@pytest.fixture
def ddr2_timing():
    return DramTiming.for_clock(DdrGeneration.DDR2, 333)


@pytest.fixture
def ddr3_timing():
    return DramTiming.for_clock(DdrGeneration.DDR3, 800)


@pytest.fixture
def ddr1_timing():
    return DramTiming.for_clock(DdrGeneration.DDR1, 133)
