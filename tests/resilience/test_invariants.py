"""InvariantChecker: silent on healthy fabrics, loud on corrupted state."""

import pytest

from repro.core.system import build_system
from repro.core.tokens import MAX_TOKENS
from repro.resilience.invariants import InvariantChecker, InvariantViolation
from repro.sim.config import NocDesign, SystemConfig


def _running_system(design=NocDesign.GSS_SAGM, cycles=400, **overrides):
    config = SystemConfig(
        cycles=1_200, warmup=200, seed=2010, design=design, **overrides
    )
    system = build_system(config)
    for _ in range(cycles):
        system.simulator.step()
    return system


class _StubController:
    def __init__(self, tracked, counts=()):
        self._tracked = tracked
        self._counts = counts

    def tracked_packet_ids(self):
        return self._tracked

    def token_counts(self):
        return self._counts


class TestHealthyRuns:
    @pytest.mark.parametrize("design", [
        NocDesign.CONV, NocDesign.GSS, NocDesign.GSS_SAGM,
    ])
    def test_checker_never_fires_fault_free(self, design):
        config = SystemConfig(
            cycles=1_500, warmup=300, seed=2010, design=design,
            check_invariants=True,
        )
        system = build_system(config)
        system.run()  # raises InvariantViolation on any audit failure
        assert system.invariant_checker.checks_run > 0

    def test_final_manual_audit_passes(self):
        system = _running_system()
        checker = InvariantChecker(system.network)
        checker.check(400)
        assert checker.checks_run == 1


class TestConstruction:
    def test_interval_validated(self):
        system = _running_system(cycles=1)
        with pytest.raises(ValueError):
            InvariantChecker(system.network, interval=0)
        with pytest.raises(ValueError):
            InvariantChecker(system.network, max_packet_age=0)

    def test_on_cycle_respects_interval(self):
        system = _running_system(cycles=1)
        checker = InvariantChecker(system.network, interval=64)
        checker.on_cycle(63)
        assert checker.checks_run == 0
        checker.on_cycle(128)
        assert checker.checks_run == 1


class TestViolations:
    def test_negative_reserved_slots_is_credit_violation(self):
        system = _running_system()
        checker = InvariantChecker(system.network)
        buffer = next(iter(system.network.local_sinks.values()))
        buffer._reserved_slots = -1
        with pytest.raises(InvariantViolation) as excinfo:
            checker.check(400)
        assert excinfo.value.kind == "credit"
        assert excinfo.value.cycle == 400

    def test_inconsistent_flit_counters_is_credit_violation(self):
        system = _running_system()
        checker = InvariantChecker(system.network)
        entry = None
        for router in system.network.routers:
            for lanes in router.inputs.values():
                for buffer in lanes:
                    if buffer.entries:
                        entry = buffer.entries[0]
                        break
        assert entry is not None, "no resident packet after 400 cycles"
        entry.sent = entry.received + 1
        with pytest.raises(InvariantViolation) as excinfo:
            checker.check(400)
        assert excinfo.value.kind == "credit"

    def test_tracked_ghost_is_token_violation(self):
        system = _running_system()
        router = system.network.routers[0]
        port = next(iter(router.outputs))
        router.outputs[port].controller = _StubController(tracked={10**9})
        checker = InvariantChecker(system.network)
        with pytest.raises(InvariantViolation) as excinfo:
            checker.check(400)
        assert excinfo.value.kind == "token"
        assert str(10**9) in excinfo.value.detail

    def test_token_count_outside_band_is_token_violation(self):
        system = _running_system()
        router = system.network.routers[0]
        port = next(iter(router.outputs))
        router.outputs[port].controller = _StubController(
            tracked=set(), counts=(((MAX_TOKENS + 1), "packet"),)
        )
        checker = InvariantChecker(system.network)
        with pytest.raises(InvariantViolation) as excinfo:
            checker.check(400)
        assert excinfo.value.kind == "token"

    def test_stale_packet_is_age_violation(self):
        system = _running_system()
        checker = InvariantChecker(system.network, max_packet_age=1)
        resident = any(
            buffer.entries
            for router in system.network.routers
            for lanes in router.inputs.values()
            for buffer in lanes
        )
        assert resident, "no resident packet after 400 cycles"
        with pytest.raises(InvariantViolation) as excinfo:
            checker.check(100_000)
        assert excinfo.value.kind == "packet-age"

    def test_violation_is_assertion_error_with_context(self):
        violation = InvariantViolation("token", 42, "ghost packet")
        assert isinstance(violation, AssertionError)
        assert violation.kind == "token"
        assert violation.cycle == 42
        assert "ghost packet" in str(violation)
        assert "@cycle 42" in str(violation)
