"""FaultConfig validation and FaultInjector determinism / independence."""

import pytest

from repro.core.system import build_system
from repro.resilience.faults import (
    FaultConfig,
    FaultInjector,
    FaultSite,
    ScheduledFault,
)
from repro.sim.config import ConfigError, SystemConfig


class _FakeRequest:
    def __init__(self, request_id=1):
        self.request_id = request_id


class _FakePacket:
    """Just enough of a Packet for the injector's link hook."""

    def __init__(self, packet_id):
        self.packet_id = packet_id
        self.corrupted = False
        self.fault_bits = 0
        self.request = _FakeRequest(packet_id)


class TestFaultConfigValidation:
    @pytest.mark.parametrize("field", [
        "link_corrupt_rate", "link_drop_rate",
        "buffer_flip_rate", "sdram_bit_rate",
    ])
    def test_rates_bounded(self, field):
        with pytest.raises(ConfigError) as excinfo:
            FaultConfig(**{field: 1.5})
        assert excinfo.value.field == field
        with pytest.raises(ConfigError):
            FaultConfig(**{field: -0.1})

    def test_double_bit_fraction_bounded(self):
        with pytest.raises(ConfigError) as excinfo:
            FaultConfig(sdram_double_bit_fraction=2.0)
        assert excinfo.value.field == "sdram_double_bit_fraction"

    def test_schedule_must_be_tuple_of_faults(self):
        with pytest.raises(ConfigError) as excinfo:
            FaultConfig(schedule=[ScheduledFault(0, FaultSite.LINK_DROP)])
        assert excinfo.value.field == "schedule"
        with pytest.raises(ConfigError):
            FaultConfig(schedule=("not a fault",))

    def test_scheduled_fault_validation(self):
        with pytest.raises(ConfigError):
            ScheduledFault(cycle=-1, site=FaultSite.LINK_CORRUPT)
        with pytest.raises(ConfigError):
            ScheduledFault(cycle=0, site="link-corrupt")
        with pytest.raises(ConfigError):
            ScheduledFault(cycle=0, site=FaultSite.SDRAM_BIT, bits=0)

    @pytest.mark.parametrize("field,value", [
        ("crc_retry_limit", 0),
        ("retry_backoff_base", 0),
        ("dram_retry_limit", 0),
        ("watchdog_timeout", 0),
        ("watchdog_retry_limit", -1),
        ("max_packet_age", 0),
    ])
    def test_protection_knobs_validated(self, field, value):
        with pytest.raises(ConfigError) as excinfo:
            FaultConfig(**{field: value})
        assert excinfo.value.field == field

    def test_backoff_cap_must_cover_base(self):
        with pytest.raises(ConfigError) as excinfo:
            FaultConfig(retry_backoff_base=16, retry_backoff_cap=8)
        assert excinfo.value.field == "retry_backoff_cap"

    def test_config_error_is_value_error(self):
        with pytest.raises(ValueError):
            FaultConfig(link_drop_rate=3.0)


class TestFaultConfigBehavior:
    def test_uniform_scales_rates(self):
        config = FaultConfig.uniform(1e-2)
        assert config.link_corrupt_rate == 1e-2
        assert config.link_drop_rate == pytest.approx(2.5e-3)
        assert config.buffer_flip_rate == pytest.approx(1.25e-3)
        assert config.sdram_bit_rate == 1e-2

    def test_uniform_overrides(self):
        config = FaultConfig.uniform(1e-3, crc_retry_limit=2, sdram_bit_rate=0.0)
        assert config.crc_retry_limit == 2
        assert config.sdram_bit_rate == 0.0

    def test_uniform_rejects_bad_rate(self):
        with pytest.raises(ConfigError):
            FaultConfig.uniform(1.5)

    def test_backoff_exponential_with_cap(self):
        config = FaultConfig(retry_backoff_base=4, retry_backoff_cap=64)
        assert [config.backoff(n) for n in range(1, 7)] == [4, 8, 16, 32, 64, 64]
        with pytest.raises(ValueError):
            config.backoff(0)

    def test_any_faults(self):
        assert not FaultConfig().any_faults
        assert FaultConfig(link_drop_rate=1e-4).any_faults
        assert FaultConfig(
            schedule=(ScheduledFault(5, FaultSite.BUFFER_FLIP),)
        ).any_faults


class TestInjectorStreams:
    def _corrupted_ids(self, config, seed, flits=3000):
        injector = FaultInjector(config, seed=seed)
        hit = []
        for i in range(flits):
            packet = _FakePacket(i)
            injector.on_link_flit(0, node=0, port=None, packet=packet)
            if packet.corrupted:
                hit.append(i)
        return hit

    def test_same_seed_same_faults(self):
        config = FaultConfig(link_corrupt_rate=5e-3)
        assert self._corrupted_ids(config, 7) == self._corrupted_ids(config, 7)

    def test_different_seed_different_faults(self):
        config = FaultConfig(link_corrupt_rate=5e-3)
        assert self._corrupted_ids(config, 7) != self._corrupted_ids(config, 8)

    def test_config_seed_overrides_run_seed(self):
        config = FaultConfig(link_corrupt_rate=5e-3, seed=99)
        assert self._corrupted_ids(config, 1) == self._corrupted_ids(config, 2)

    def test_sites_sample_independently(self):
        # Enabling drops must not perturb the corrupt stream: each site
        # draws from its own derived RNG.
        corrupt_only = FaultConfig(link_corrupt_rate=5e-3)
        both = FaultConfig(link_corrupt_rate=5e-3, link_drop_rate=5e-3)
        only_ids = self._corrupted_ids(corrupt_only, 7)
        injector = FaultInjector(both, seed=7)
        for i in range(3000):
            packet = _FakePacket(i)
            injector.on_link_flit(0, node=0, port=None, packet=packet)
        assert injector.injected[FaultSite.LINK_CORRUPT] == len(only_ids)

    def test_disabled_injector_samples_nothing(self):
        injector = FaultInjector(FaultConfig(link_corrupt_rate=1.0), seed=7)
        injector.enabled = False
        packet = _FakePacket(0)
        injector.on_link_flit(0, node=0, port=None, packet=packet)
        assert not packet.corrupted
        assert injector.total_injected == 0

    def test_buffer_flip_without_network_is_noop(self):
        config = FaultConfig(
            schedule=(ScheduledFault(0, FaultSite.BUFFER_FLIP),)
        )
        injector = FaultInjector(config, seed=7)
        injector.tick(0)
        assert injector.total_injected == 0


class TestScheduledInjection:
    def test_forced_link_fault_poisons_next_flit(self):
        config = FaultConfig(
            schedule=(ScheduledFault(10, FaultSite.LINK_DROP),)
        )
        injector = FaultInjector(config, seed=7)
        injector.tick(10)
        packet = _FakePacket(0)
        injector.on_link_flit(10, node=2, port=None, packet=packet)
        assert packet.corrupted and packet.fault_bits == 1
        assert injector.injected[FaultSite.LINK_DROP] == 1
        # one-shot: the next flit is clean
        clean = _FakePacket(1)
        injector.on_link_flit(10, node=2, port=None, packet=clean)
        assert not clean.corrupted

    def test_node_restricted_fault_waits_for_its_node(self):
        config = FaultConfig(
            schedule=(ScheduledFault(0, FaultSite.LINK_CORRUPT, node=3),)
        )
        injector = FaultInjector(config, seed=7)
        injector.tick(0)
        elsewhere = _FakePacket(0)
        injector.on_link_flit(0, node=1, port=None, packet=elsewhere)
        assert not elsewhere.corrupted
        here = _FakePacket(1)
        injector.on_link_flit(0, node=3, port=None, packet=here)
        assert here.corrupted

    def test_forced_sdram_fault_reports_bits(self):
        config = FaultConfig(
            schedule=(ScheduledFault(0, FaultSite.SDRAM_BIT, bits=2),)
        )
        injector = FaultInjector(config, seed=7)
        injector.tick(0)
        assert injector.sdram_read_bits(0, _FakeRequest()) == 2
        assert injector.sdram_read_bits(0, _FakeRequest()) == 0
        assert injector.injected[FaultSite.SDRAM_BIT] == 1


class TestSystemLevelDeterminism:
    def _metrics(self, seed):
        config = SystemConfig(
            cycles=1_500, warmup=300, seed=seed,
            faults=FaultConfig.uniform(2e-3),
        )
        system = build_system(config)
        metrics = system.run()
        return metrics, dict(system.fault_injector.injected)

    def test_fault_runs_are_reproducible(self):
        a_metrics, a_injected = self._metrics(2010)
        b_metrics, b_injected = self._metrics(2010)
        assert a_metrics == b_metrics
        assert a_injected == b_injected
