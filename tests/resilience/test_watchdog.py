"""RequestWatchdog: timeout detection, re-issue, stale epochs, failure."""

from repro.core.system import build_system
from repro.resilience.faults import FaultConfig, FaultInjector
from repro.resilience.protection import ResilienceController
from repro.resilience.watchdog import CHECK_INTERVAL, RequestWatchdog
from repro.sim.config import SystemConfig


class _Tracker:
    def __init__(self, last_activity):
        self.last_activity = last_activity


class _FakeGenerator:
    master = 3


class _FakeInterface:
    def __init__(self):
        self._reassembly = {}
        self.generator = _FakeGenerator()
        self.reissued = []
        self.failed = []

    def reissue(self, parent, cycle):
        self.reissued.append((parent, cycle))
        self._reassembly[parent].last_activity = cycle

    def fail_request(self, parent, cycle):
        self._reassembly.pop(parent, None)
        self.failed.append(parent)
        return True


def _watchdog(timeout=100, retries=1):
    config = FaultConfig(watchdog_timeout=timeout, watchdog_retry_limit=retries)
    controller = ResilienceController(FaultInjector(config, seed=0), config)
    interface = _FakeInterface()
    controller.register_core(3, interface)
    return RequestWatchdog(controller, [interface], config), interface, controller


class TestWatchdogUnit:
    def test_scans_only_on_interval(self):
        watchdog, interface, _ = _watchdog(timeout=10)
        interface._reassembly[1] = _Tracker(last_activity=0)
        watchdog.tick(CHECK_INTERVAL + 1)
        assert interface.reissued == []
        watchdog.tick(CHECK_INTERVAL)
        assert interface.reissued == [(1, CHECK_INTERVAL)]

    def test_healthy_request_untouched(self):
        watchdog, interface, _ = _watchdog(timeout=1_000)
        interface._reassembly[1] = _Tracker(last_activity=0)
        watchdog.tick(CHECK_INTERVAL * 4)
        assert interface.reissued == []

    def test_timeout_reissues_then_fails(self):
        watchdog, interface, controller = _watchdog(timeout=10, retries=1)
        interface._reassembly[1] = _Tracker(last_activity=0)
        watchdog.tick(CHECK_INTERVAL)          # first expiry: re-issue
        assert interface.reissued == [(1, CHECK_INTERVAL)]
        assert controller.watchdog_reissues == 1
        watchdog.tick(CHECK_INTERVAL * 3)      # expired again: budget spent
        assert interface.failed == [1]
        assert controller.failed_requests == 1

    def test_zero_retry_limit_fails_immediately(self):
        watchdog, interface, controller = _watchdog(timeout=10, retries=0)
        interface._reassembly[1] = _Tracker(last_activity=0)
        watchdog.tick(CHECK_INTERVAL)
        assert interface.reissued == []
        assert interface.failed == [1]

    def test_progress_resets_the_clock(self):
        watchdog, interface, _ = _watchdog(timeout=100, retries=2)
        tracker = _Tracker(last_activity=0)
        interface._reassembly[1] = tracker
        tracker.last_activity = CHECK_INTERVAL * 2  # a part arrived
        watchdog.tick(CHECK_INTERVAL * 3)
        assert interface.reissued == []


class TestReissueEndToEnd:
    def test_reissued_request_completes_and_system_quiesces(self):
        # Force a mid-run re-issue of a live request: the clone (epoch 1)
        # must complete, any stale epoch-0 responses must be dropped, and
        # the system must still drain to quiescence.
        config = SystemConfig(
            cycles=2_000, warmup=400, seed=2010, faults=FaultConfig(),
        )
        system = build_system(config)
        interface = system.core_interfaces[0]
        reissued_parent = None
        for _ in range(2_000):
            cycle = system.simulator.step()
            if reissued_parent is None and interface._reassembly:
                reissued_parent = next(iter(interface._reassembly))
                interface.reissue(reissued_parent, cycle)
        assert reissued_parent is not None
        assert system.drain()
        assert interface._reassembly == {}
        assert system.resilience.unresolved == 0
