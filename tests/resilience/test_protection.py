"""ResilienceController: NACK/retry, ECC path, fault ledger, failure."""

import pytest

from repro.core.system import build_system
from repro.dram.ecc import EccOutcome
from repro.dram.request import MemoryRequest
from repro.obs import MetricsRegistry
from repro.resilience.faults import (
    FaultConfig,
    FaultInjector,
    FaultSite,
    ScheduledFault,
)
from repro.resilience.protection import ResilienceController
from repro.sim.config import SystemConfig


class _FakeCore:
    def __init__(self):
        self.retransmitted = []
        self.failed = []

    def retransmit_request(self, part, cycle):
        self.retransmitted.append((part.request_id, cycle))

    def fail_request(self, parent, cycle):
        self.failed.append(parent)
        return True


class _FakeMemory:
    def __init__(self):
        self.resent = []

    def resend_response(self, request, cycle):
        self.resent.append((request.request_id, cycle))


class _FakePacket:
    def __init__(self, request, fault_bits=1, packet_id=0):
        self.request = request
        self.fault_bits = fault_bits
        self.packet_id = packet_id
        self.corrupted = True


def _request(request_id=7, master=0, parent=None, is_read=True):
    return MemoryRequest(
        request_id=request_id, master=master, bank=0, row=0, column=0,
        beats=4, is_read=is_read, parent_id=parent,
    )


def _controller(config=None, seed=1):
    config = config or FaultConfig()
    injector = FaultInjector(config, seed=seed)
    controller = ResilienceController(injector, config)
    core = _FakeCore()
    memory = _FakeMemory()
    controller.register_core(0, core)
    controller.attach_memory(memory)
    return controller, core, memory


class TestCrcRetry:
    def test_nack_schedules_retransmit_after_backoff(self):
        config = FaultConfig(retry_backoff_base=4, retry_backoff_cap=64)
        controller, core, _ = _controller(config)
        request = _request()
        controller.on_corrupt_request(100, _FakePacket(request))
        assert controller.crc_retries == 1
        controller.tick(100 + config.backoff(1) - 1)
        assert core.retransmitted == []
        controller.tick(100 + config.backoff(1))
        assert core.retransmitted == [(request.request_id, 104)]

    def test_corrupt_response_retransmits_from_memory(self):
        controller, _, memory = _controller()
        request = _request()
        controller.on_corrupt_response(50, _FakePacket(request))
        controller.tick(200)
        assert memory.resent and memory.resent[0][0] == request.request_id

    def test_clean_delivery_settles_faults_as_recovered(self):
        controller, _, _ = _controller()
        request = _request()
        controller.on_corrupt_response(0, _FakePacket(request, fault_bits=2))
        assert controller.recovered == 0
        controller.on_response_delivered(request)
        assert controller.recovered == 2

    def test_retry_cap_fails_the_parent_request(self):
        config = FaultConfig(crc_retry_limit=2)
        controller, core, _ = _controller(config)
        request = _request(request_id=9)
        for _ in range(2):
            controller.on_corrupt_request(0, _FakePacket(request))
        assert core.failed == []
        controller.on_corrupt_request(0, _FakePacket(request))
        assert core.failed == [9]
        assert controller.failed_requests == 1
        assert controller.failed_faults == 3  # all charged bits settle failed
        assert controller.crc_retries == 2   # the third attempt never retried

    def test_straggler_of_failed_parent_settles_without_retry(self):
        controller, core, _ = _controller()
        controller.fail_request(10, parent=42, master=0, reason="watchdog")
        straggler = _request(request_id=43, parent=42)
        controller.on_corrupt_response(20, _FakePacket(straggler, fault_bits=1))
        assert controller.failed_faults == 1
        assert controller.crc_retries == 0
        assert not controller.busy

    def test_pending_retransmit_dropped_when_parent_fails(self):
        controller, core, _ = _controller()
        request = _request(request_id=5, parent=4)
        controller.on_corrupt_request(0, _FakePacket(request))
        controller.fail_request(1, parent=4, master=0, reason="crc")
        controller.tick(500)
        assert core.retransmitted == []


class TestDramPath:
    def _scheduled(self, *bits_list, **config_overrides):
        schedule = tuple(
            ScheduledFault(0, FaultSite.SDRAM_BIT, bits=b) for b in bits_list
        )
        config = FaultConfig(schedule=schedule, **config_overrides)
        controller, core, memory = _controller(config)
        controller.injector.tick(0)
        return controller, core

    def test_single_bit_corrected_in_flight(self):
        controller, _ = self._scheduled(1)
        outcome = controller.on_dram_burst(0, _request())
        assert outcome is EccOutcome.CORRECTED
        assert controller.corrected == 1
        assert controller.unresolved == 0  # ledger closed immediately

    def test_double_bit_queues_reread_then_recovers(self):
        controller, _ = self._scheduled(2)
        request = _request()
        assert controller.on_dram_burst(0, request) is EccOutcome.DETECTED
        assert list(controller.dram_retries) == [request]
        assert controller.dram_reread_count == 1
        assert controller.busy
        # the re-read comes back clean
        controller.dram_retries.clear()
        assert controller.on_dram_burst(10, request) is EccOutcome.CLEAN
        assert controller.recovered == 1
        assert controller.unresolved == 0

    def test_reread_cap_fails_the_request(self):
        controller, core = self._scheduled(2, 2, dram_retry_limit=1)
        request = _request(request_id=11)
        controller.on_dram_burst(0, request)
        controller.dram_retries.clear()
        controller.on_dram_burst(5, request)
        assert core.failed == [11]
        assert controller.failed_faults == 2
        assert controller.unresolved == 0

    def test_write_bursts_bypass_ecc(self):
        controller, _ = self._scheduled(2)
        outcome = controller.on_dram_burst(0, _request(is_read=False))
        assert outcome is EccOutcome.CLEAN
        assert controller.ecc.clean_bursts == 0  # not even counted


class TestFailureIdempotence:
    def test_fail_request_is_idempotent(self):
        controller, core, _ = _controller()
        controller.fail_request(0, parent=1, master=0, reason="crc")
        controller.fail_request(0, parent=1, master=0, reason="watchdog")
        assert core.failed == [1]
        assert controller.failed_requests == 1

    def test_metrics_published_under_resilience_prefix(self):
        controller, _, _ = _controller()
        controller.fail_request(0, parent=1, master=0, reason="crc")
        registry = MetricsRegistry()
        controller.metrics_into(registry)
        assert registry.counter("resilience.failed_requests").value == 1
        assert "resilience.injected.total" in registry
        assert "resilience.injected.link-corrupt" in registry


class TestEndToEnd:
    def _run(self, faults, cycles=3_000, warmup=500, seed=2010):
        config = SystemConfig(
            cycles=cycles, warmup=warmup, seed=seed, faults=faults,
        )
        system = build_system(config)
        metrics = system.run()
        quiesced = system.drain()
        return system, metrics, quiesced

    def test_uniform_fault_run_accounts_for_every_fault(self):
        system, _, quiesced = self._run(FaultConfig.uniform(5e-3))
        controller = system.resilience
        assert quiesced
        assert controller.injected_total > 0
        assert controller.unresolved == 0
        assert controller.injected_total == (
            controller.corrected + controller.recovered + controller.failed_faults
        )

    def test_scheduled_link_fault_recovers_via_crc_retry(self):
        faults = FaultConfig(
            schedule=(ScheduledFault(600, FaultSite.LINK_CORRUPT),)
        )
        system, _, quiesced = self._run(faults)
        controller = system.resilience
        assert quiesced
        assert controller.injected_total == 1
        assert controller.recovered == 1
        assert controller.crc_retries >= 1
        assert controller.failed_requests == 0

    def test_zero_rate_protection_stack_does_not_perturb_results(self):
        # The full protection stack at rate zero must be behaviorally
        # invisible: identical metrics to a system built without it.
        config = SystemConfig(cycles=2_000, warmup=400, seed=2010)
        bare = build_system(config).run()
        with_stack = build_system(config.with_(faults=FaultConfig())).run()
        assert bare == with_stack
