"""Result store: content-addressed keys, persistence, hit accounting."""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.sweep import Job, ResultStore, job_key, make_record
from repro.sweep.store import SCHEMA_VERSION

PARAMS = {"app": "bluray", "cycles": 2000, "seed": 2010, "rate": 1e-3}


def record_for(params, status="ok", result=None):
    job = Job(kind="echo", params=params, label="t")
    return make_record(
        job, status=status,
        result=result if result is not None else {"v": 1},
        error=None if status == "ok" else "boom",
    )


class TestKeys:
    def test_key_ignores_dict_insertion_order(self):
        shuffled = dict(reversed(list(PARAMS.items())))
        assert job_key("echo", PARAMS) == job_key("echo", shuffled)

    def test_key_changes_on_any_field_change(self):
        base = job_key("echo", PARAMS)
        for field, value in [
            ("app", "single_dtv"), ("cycles", 2001),
            ("seed", 2011), ("rate", 1e-4),
        ]:
            assert job_key("echo", {**PARAMS, field: value}) != base
        assert job_key("echo", {**PARAMS, "extra": 1}) != base

    def test_key_changes_with_kind_and_schema(self):
        assert job_key("echo", PARAMS) != job_key("other", PARAMS)
        assert job_key("echo", PARAMS) != job_key(
            "echo", PARAMS, schema=SCHEMA_VERSION + 1
        )

    def test_key_is_stable_across_processes(self):
        # Hash randomization (fresh PYTHONHASHSEED per process) must not
        # leak into the content address.
        script = (
            "from repro.sweep import job_key; "
            f"print(job_key('echo', {PARAMS!r}))"
        )
        src = Path(__file__).resolve().parents[2] / "src"
        env = dict(os.environ, PYTHONPATH=str(src), PYTHONHASHSEED="random")
        out = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, check=True, env=env,
        ).stdout.strip()
        assert out == job_key("echo", PARAMS)

    def test_nan_rejected_from_key_material(self):
        with pytest.raises(ValueError):
            job_key("echo", {"x": float("nan")})


class TestStore:
    def test_memory_store_roundtrip(self):
        store = ResultStore()
        record = record_for(PARAMS)
        store.put(record)
        assert store.get(record["key"]) == record
        assert len(store) == 1

    def test_hit_and_miss_counters(self):
        store = ResultStore()
        record = record_for(PARAMS)
        assert store.get(record["key"]) is None
        store.put(record)
        store.get(record["key"])
        assert (store.hits, store.misses) == (1, 1)
        # contains() must not perturb the counters
        assert record["key"] in store
        assert (store.hits, store.misses) == (1, 1)

    def test_persists_across_instances(self, tmp_path):
        path = tmp_path / "store.jsonl"
        record = record_for(PARAMS)
        ResultStore(path).put(record)
        reloaded = ResultStore(path)
        assert reloaded.get(record["key"]) == record

    def test_last_write_wins_on_same_key(self, tmp_path):
        path = tmp_path / "store.jsonl"
        store = ResultStore(path)
        store.put(record_for(PARAMS, result={"v": 1}))
        store.put(record_for(PARAMS, result={"v": 2}))
        reloaded = ResultStore(path)
        assert len(reloaded) == 1
        key = job_key("echo", PARAMS)
        assert reloaded.get(key)["result"] == {"v": 2}

    def test_corrupt_tail_line_skipped(self, tmp_path):
        # An interrupted append leaves a truncated last line; loading
        # must skip it and keep every complete record.
        path = tmp_path / "store.jsonl"
        store = ResultStore(path)
        store.put(record_for(PARAMS))
        with path.open("a") as handle:
            handle.write('{"key": "abc", "trunca')
        reloaded = ResultStore(path)
        assert len(reloaded) == 1
        assert reloaded.corrupt_lines == 1

    def test_failed_records_store_error_and_partial_result(self):
        store = ResultStore()
        record = record_for(PARAMS, status="failed", result={"partial": 1})
        store.put(record)
        stored = store.get(record["key"])
        assert stored["status"] == "failed"
        assert stored["error"] == "boom"
        assert stored["result"] == {"partial": 1}

    def test_unknown_status_rejected(self):
        job = Job(kind="echo", params=PARAMS)
        with pytest.raises(ValueError, match="status"):
            make_record(job, status="meh", result=None)

    def test_file_is_json_lines(self, tmp_path):
        path = tmp_path / "store.jsonl"
        store = ResultStore(path)
        store.put(record_for(PARAMS))
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["kind"] == "echo"

    def test_fsync_append_is_functional(self, tmp_path):
        path = tmp_path / "store.jsonl"
        record = record_for(PARAMS)
        ResultStore(path, fsync=True).put(record)
        assert ResultStore(path).get(record["key"]) == record


class TestRepair:
    def put_two(self, path):
        store = ResultStore(path)
        a = record_for(PARAMS)
        b = record_for({**PARAMS, "seed": 2011})
        store.put(a)
        store.put(b)
        return a, b

    def test_truncates_unterminated_tail(self, tmp_path, caplog):
        path = tmp_path / "store.jsonl"
        self.put_two(path)
        clean_size = path.stat().st_size
        with path.open("a") as handle:
            handle.write('{"key": "abc", "trunca')  # no newline: torn
        store = ResultStore(path)
        assert store.corrupt_lines == 1
        with caplog.at_level("WARNING", logger="repro.sweep.store"):
            removed = store.repair()
        assert removed == len('{"key": "abc", "trunca')
        assert path.stat().st_size == clean_size
        assert len(store) == 2 and store.corrupt_lines == 0
        assert "truncated" in caplog.text and "22" in caplog.text
        # Fresh load after repair sees no damage.
        assert ResultStore(path).corrupt_lines == 0

    def test_everything_after_first_tear_dropped(self, tmp_path):
        # An append-only log has no valid data past its first corrupt
        # line — even a parseable record after it is suspect.
        path = tmp_path / "store.jsonl"
        a, _ = self.put_two(path)
        clean_size = path.stat().st_size
        with path.open("r+") as handle:
            lines = handle.readlines()
        with path.open("w") as handle:
            handle.write(lines[0])
            handle.write("not json at all\n")
            handle.write(lines[1])
        store = ResultStore(path)
        removed = store.repair()
        assert removed == len("not json at all\n") + len(lines[1])
        # Only the pre-tear record survives.
        assert len(store) == 1
        assert store.get(a["key"]) == a
        assert clean_size > path.stat().st_size

    def test_clean_file_is_a_noop(self, tmp_path):
        path = tmp_path / "store.jsonl"
        a, b = self.put_two(path)
        size = path.stat().st_size
        store = ResultStore(path)
        assert store.repair() == 0
        assert path.stat().st_size == size
        assert store.get(a["key"]) == a and store.get(b["key"]) == b

    def test_memory_store_and_missing_file_are_noops(self, tmp_path):
        assert ResultStore().repair() == 0
        assert ResultStore(tmp_path / "never-written.jsonl").repair() == 0
