"""Sweep telemetry: lifecycle streams across process boundaries, the
progress line, and the monitor rendering the result."""

import io
import sys

import pytest

from repro.obs.monitor import MonitorState, render
from repro.obs.stream import TelemetryWriter, read_stream, validate_stream
from repro.sweep import Job, ProgressPrinter, ResultStore, run_sweep
from repro.sweep.orchestrator import execute_job

# Runners are registered module-wide by the orchestrator tests; reuse
# the simple one here (fork workers inherit the registration).
from tests.sweep.test_orchestrator import echo_jobs, needs_fork


class TestSerialTelemetry:
    def test_lifecycle_records(self, tmp_path):
        path = tmp_path / "sweep.ndjson"
        with TelemetryWriter(path) as telemetry:
            report = run_sweep(echo_jobs([1, 2, 3]), telemetry=telemetry)
        assert report.executed == 3
        counts = validate_stream(read_stream(path))
        assert counts["sweep_start"] == 1
        assert counts["job_start"] == 3  # serial path emits them too
        assert counts["job_done"] == 3
        assert counts["sweep_progress"] == 3
        assert counts["sweep_end"] == 1
        assert counts["heartbeat"] == 6  # start + done per job

    def test_cached_rerun_emits_hits(self, tmp_path):
        path = tmp_path / "sweep.ndjson"
        store = ResultStore(tmp_path / "store.jsonl")
        jobs = echo_jobs([1, 2])
        run_sweep(jobs, store=store)
        with TelemetryWriter(path) as telemetry:
            report = run_sweep(jobs, store=store, telemetry=telemetry)
        assert report.all_cached
        counts = validate_stream(read_stream(path))
        assert counts["job_hit"] == 2
        assert "job_done" not in counts
        assert counts["sweep_end"] == 1

    def test_failures_stream_as_job_fail(self, tmp_path):
        path = tmp_path / "sweep.ndjson"
        jobs = [Job(kind="explode", params={"x": 1}, label="boom")]
        with TelemetryWriter(path) as telemetry:
            report = run_sweep(jobs, telemetry=telemetry)
        assert report.failed == 1
        records = read_stream(path)
        fails = [r for r in records if r["type"] == "job_fail"]
        assert len(fails) == 1
        assert "boom" in fails[0]["label"]
        assert fails[0]["error"]

    def test_progress_records_carry_throughput(self, tmp_path):
        path = tmp_path / "sweep.ndjson"
        with TelemetryWriter(path) as telemetry:
            run_sweep(echo_jobs([1, 2]), telemetry=telemetry)
        progress = [
            r for r in read_stream(path) if r["type"] == "sweep_progress"
        ]
        assert progress[-1]["done"] == progress[-1]["total"] == 2
        assert progress[-1]["jobs_per_s"] > 0
        assert progress[-1]["eta_s"] == 0.0  # nothing remaining


@needs_fork
class TestParallelTelemetry:
    def test_two_worker_stream_parses_and_renders(self, tmp_path):
        """The acceptance path: a 2-worker sweep emits a stream that
        validates and that the monitor renders."""
        path = tmp_path / "sweep.ndjson"
        with TelemetryWriter(path) as telemetry:
            report = run_sweep(
                echo_jobs([1, 2, 3, 4]), workers=2, telemetry=telemetry
            )
        assert report.executed == 4 and report.failed == 0
        records = read_stream(path)
        counts = validate_stream(records)
        assert counts["job_start"] == 4
        assert counts["job_done"] == 4
        assert counts["heartbeat"] == 8
        workers = {
            r["worker"] for r in records if r["type"] == "heartbeat"
        }
        assert len(workers) >= 1  # >=1 worker pids wrote heartbeats

        state = MonitorState()
        for record in records:
            state.apply(record)
        assert state.finished
        assert state.sweep_done == 4
        text = render(state)
        assert "4/4 done" in text
        assert "workers" in text


class TestExecuteJobTelemetry:
    def test_without_path_emits_nothing(self, tmp_path):
        payload = execute_job("echo", {"x": 5})
        assert payload["status"] == "ok"

    def test_with_path_appends_worker_records(self, tmp_path):
        path = tmp_path / "t.ndjson"
        path.write_text("")
        payload = execute_job(
            "echo", {"x": 5}, str(path), key="k1", label="x=5"
        )
        assert payload["status"] == "ok"
        records = read_stream(path)
        types = [r["type"] for r in records]
        assert types == ["job_start", "heartbeat", "heartbeat"]
        assert records[0]["key"] == "k1"
        assert records[-1]["status"] == "ok"

    def test_emission_failure_never_breaks_the_job(self, tmp_path):
        # A directory is unwritable as a file: the OSError is swallowed.
        payload = execute_job(
            "echo", {"x": 5}, str(tmp_path), key="k", label="l"
        )
        assert payload["status"] == "ok"


class FakeTty(io.StringIO):
    def isatty(self):
        return True


class TestProgressPrinter:
    def _record(self, status="ok"):
        return {"status": status, "elapsed_s": 0.1}

    def test_tty_redraws_one_line(self):
        stream = FakeTty()
        printer = ProgressPrinter(stream)
        job = Job(kind="echo", params={"x": 1}, label="x=1")
        printer(job, self._record(), False, 1, 3)
        printer(job, self._record(), True, 2, 3)
        printer(job, self._record("failed"), False, 3, 3)
        printer.close()
        text = stream.getvalue()
        assert text.count("\r") == 3
        assert text.endswith("\n")
        assert "3/3" in text
        assert "1 cached" in text
        assert "1 failed" in text

    def test_non_tty_prints_milestones_only(self):
        stream = io.StringIO()
        printer = ProgressPrinter(stream)
        job = Job(kind="echo", params={"x": 1}, label="x=1")
        total = 40
        for done in range(1, total + 1):
            printer(job, self._record(), False, done, total)
        printer.close()
        lines = [l for l in stream.getvalue().splitlines() if l]
        assert len(lines) <= 12  # ~10 milestones, not 40 lines
        assert "\r" not in stream.getvalue()
        assert f"{total}/{total}" in lines[-1]

    def test_eta_counts_only_executed_jobs(self):
        printer = ProgressPrinter(io.StringIO())
        job = Job(kind="echo", params={"x": 1}, label="x=1")
        printer(job, self._record(), True, 1, 10)  # cache hit: free
        assert printer.eta_s(1, 10) is None
        printer(job, self._record(), False, 2, 10)
        assert printer.eta_s(2, 10) is not None
        assert printer.eta_s(10, 10) is None

    def test_close_without_output_is_silent(self):
        stream = io.StringIO()
        ProgressPrinter(stream).close()
        assert stream.getvalue() == ""
