"""Canonical grids: parallel sweeps bit-identical to the serial drivers.

The acceptance bar for the orchestrator: a sharded run must produce the
exact FaultSweepPoint / Fig8Curve values the serial experiment code
computes — same floats, bit for bit — and a re-run must be served
entirely from the store.
"""

import sys

import pytest

from repro.experiments import cached_runs, run_once
from repro.experiments.fault_sweep import run_fault_sweep
from repro.experiments.fig8 import run_fig8
from repro.experiments.runner import experiment_config
from repro.sweep import (
    ResultStore,
    config_grid_spec,
    fault_points,
    fault_sweep_spec,
    metrics_job,
    run_fault_sweep_grid,
    run_fig8_grid,
    run_sweep,
)

needs_fork = pytest.mark.skipif(
    sys.platform == "win32", reason="fork start method required"
)

TINY = dict(cycles=1_500, warmup=300)
RATES = (0.0, 1e-3)


@pytest.fixture(scope="module")
def serial_points():
    return run_fault_sweep(rates=RATES, seed=2010, **TINY)


@needs_fork
class TestFaultGridGolden:
    def test_two_worker_sweep_bit_identical_to_serial(self, serial_points):
        store = ResultStore()
        points, report = run_fault_sweep_grid(
            store=store, workers=2, rates=RATES, seeds=(2010,), **TINY
        )
        assert report.executed == len(RATES)
        assert [p for _, p in points] == serial_points

    def test_rerun_is_all_cache_hits(self, serial_points):
        store = ResultStore()
        run_fault_sweep_grid(
            store=store, workers=2, rates=RATES, seeds=(2010,), **TINY
        )
        points, report = run_fault_sweep_grid(
            store=store, workers=2, rates=RATES, seeds=(2010,), **TINY
        )
        assert report.all_cached
        assert [p for _, p in points] == serial_points


class TestFaultGrid:
    def test_spec_resolves_defaults_into_key_material(self):
        # cycles/warmup left as None must resolve to the experiment
        # defaults so the key covers the actual horizon.
        spec = fault_sweep_spec(rates=(0.0,), seeds=(2010,))
        params = spec.expand()[0].params
        assert params["cycles"] == 20_000 and params["warmup"] == 3_000

    def test_hung_point_surfaces_as_failed_job(self, monkeypatch):
        from repro.experiments import fault_sweep as fs

        real = fs.run_fault_point

        def hang(rate, **kwargs):
            import dataclasses

            point = real(rate, **kwargs)
            if rate > 0:
                point = dataclasses.replace(point, quiesced=False)
            return point

        monkeypatch.setattr(fs, "run_fault_point", hang)
        store = ResultStore()
        spec = fault_sweep_spec(rates=RATES, seeds=(2010,), **TINY)
        report = run_sweep(spec, store=store)  # workers=1: in-process
        assert report.failed == 1
        failed = [o for o in report.outcomes if not o.ok][0]
        assert failed.record["status"] == "failed"
        # the error names the rate and the exhausted drain budget
        assert "rate=0.001" in failed.record["error"]
        assert "50000-cycle drain budget" in failed.record["error"]
        # the partial metrics are still reconstructable, not silent
        points = fault_points(store, spec)
        assert [p.quiesced for _, p in points] == [True, False]


@needs_fork
class TestFig8GridGolden:
    def test_two_worker_grid_bit_identical_to_serial(self):
        kwargs = dict(cycles=1_000, warmup=200, seeds=(2010,), max_routers=1)
        serial = run_fig8(**kwargs)
        store = ResultStore()
        curves, report = run_fig8_grid(store=store, workers=2, **kwargs)
        assert curves == serial
        assert report.executed == 6  # 3 operating points x 2 counts
        again, report2 = run_fig8_grid(store=store, workers=2, **kwargs)
        assert report2.all_cached and again == serial


class TestConfigGrid:
    def test_fault_rate_pseudo_field_expands_to_uniform_profile(self):
        spec = config_grid_spec(
            base={"cycles": 1_000, "warmup": 200, "seed": 7},
            axes={"fault_rate": [0.0, 1e-3]},
        )
        clean, faulty = [job.params for job in spec.expand()]
        assert clean["faults"] is None
        assert faulty["faults"]["link_corrupt_rate"] == 1e-3

    def test_payload_covers_defaulted_fields(self):
        spec = config_grid_spec(
            base={"cycles": 1_000, "warmup": 200, "seed": 7},
            axes={"app": ["bluray"]},
        )
        params = spec.expand()[0].params
        # key material must include fields the grid never mentioned
        assert params["design"] == "gss+sagm"
        assert params["link_buffer_flits"] == 12


@needs_fork
class TestArbiterMatrixGolden:
    ARBITERS = ("engine", "dpq", "bank-reg")

    def test_two_worker_matrix_bit_identical_to_serial(self):
        from repro.sweep import run_arbiter_matrix_grid

        serial = [
            run_once(
                experiment_config(seed=2010, arbiter=arbiter, **TINY)
            ).metrics
            for arbiter in self.ARBITERS
        ]
        store = ResultStore()
        rows, report = run_arbiter_matrix_grid(
            store=store, workers=2, arbiters=self.ARBITERS,
            seeds=(2010,), **TINY
        )
        assert report.executed == len(self.ARBITERS)
        assert [name for name, _, _ in rows] == list(self.ARBITERS)
        assert [m for _, _, m in rows] == serial
        again, report2 = run_arbiter_matrix_grid(
            store=store, workers=2, arbiters=self.ARBITERS,
            seeds=(2010,), **TINY
        )
        assert report2.all_cached
        assert [m for _, _, m in again] == serial

    def test_matrix_spec_keys_cover_the_arbiter_field(self):
        from repro.sweep import arbiter_matrix_spec

        spec = arbiter_matrix_spec(
            arbiters=("engine", "dpq"), seeds=(2010,), **TINY
        )
        params = [job.params for job in spec.expand()]
        assert [p["arbiter"] for p in params] == ["engine", "dpq"]
        assert params[0]["cycles"] == TINY["cycles"]


class TestExhibitCache:
    def test_run_once_serves_identical_metrics_from_store(self):
        config = experiment_config(app="bluray", seed=2010, **TINY)
        store = ResultStore()
        with cached_runs(store):
            fresh = run_once(config)
            cached = run_once(config)
        assert store.hits == 1
        assert cached.metrics == fresh.metrics

    def test_exhibit_and_sweep_share_keys(self):
        # A point simulated by run_once must be a hit for the sweep
        # orchestrator (and vice versa): same job, same key.
        config = experiment_config(app="bluray", seed=2010, **TINY)
        store = ResultStore()
        with cached_runs(store):
            run_once(config)
        report = run_sweep([metrics_job(config)], store=store)
        assert report.all_cached

    def test_cache_scope_restored_on_exit(self):
        from repro.experiments import active_store

        store = ResultStore()
        with cached_runs(store):
            assert active_store() is store
        assert active_store() is None
