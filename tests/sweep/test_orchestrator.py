"""Orchestrator: sharding, caching, failure containment, crash isolation.

The test runners registered here are inherited by worker processes via
the fork start context the orchestrator uses by default, so parallel
cases exercise the real multiprocess path.
"""

import os
import sys

import pytest

from repro.sweep import (
    Job,
    JobFailure,
    ResultStore,
    SweepSpec,
    register_runner,
    run_sweep,
)

needs_fork = pytest.mark.skipif(
    sys.platform == "win32", reason="fork start method required"
)


@register_runner("echo")
def _echo(params):
    return {"value": params["x"] * 10}


@register_runner("explode")
def _explode(params):
    raise RuntimeError(f"boom on {params['x']}")


@register_runner("domain-failure")
def _domain_failure(params):
    raise JobFailure("point diverged", result={"partial": params["x"]})


@register_runner("crash")
def _crash(params):
    if params["x"] == 2:
        os._exit(13)  # hard worker death: no exception, no cleanup
    return {"value": params["x"]}


def echo_jobs(values):
    return [Job(kind="echo", params={"x": v}, label=f"x={v}") for v in values]


class TestSerial:
    def test_all_jobs_resolve_in_order(self):
        report = run_sweep(echo_jobs([1, 2, 3]))
        assert [o.record["result"]["value"] for o in report.outcomes] \
            == [10, 20, 30]
        assert report.executed == 3 and report.hits == 0

    def test_spec_accepted_directly(self):
        spec = SweepSpec(name="s", kind="echo", axes={"x": [1, 2]})
        assert run_sweep(spec).total == 2

    def test_runner_exception_contained_as_failed_record(self):
        jobs = echo_jobs([1]) + [Job(kind="explode", params={"x": 9})]
        report = run_sweep(jobs)
        assert report.failed == 1
        failed = report.outcomes[1]
        assert failed.record["status"] == "failed"
        assert "boom on 9" in failed.record["error"]
        # the healthy job still completed
        assert report.outcomes[0].ok

    def test_job_failure_keeps_partial_result(self):
        report = run_sweep([Job(kind="domain-failure", params={"x": 5})])
        record = report.outcomes[0].record
        assert record["status"] == "failed"
        assert record["error"] == "point diverged"
        assert record["result"] == {"partial": 5}

    def test_unknown_kind_is_failed_not_fatal(self):
        report = run_sweep([Job(kind="no-such-kind", params={})])
        assert report.failed == 1
        assert "unknown job kind" in report.outcomes[0].record["error"]

    def test_workers_validated(self):
        with pytest.raises(ValueError):
            run_sweep([], workers=0)


class TestCaching:
    def test_second_run_is_all_hits(self):
        store = ResultStore()
        first = run_sweep(echo_jobs([1, 2]), store=store)
        second = run_sweep(echo_jobs([1, 2]), store=store)
        assert first.executed == 2
        assert second.all_cached and second.hits == 2
        assert [o.record["result"] for o in second.outcomes] \
            == [o.record["result"] for o in first.outcomes]

    def test_any_param_change_misses(self):
        store = ResultStore()
        run_sweep(echo_jobs([1]), store=store)
        report = run_sweep(echo_jobs([2]), store=store)
        assert report.executed == 1

    def test_no_cache_forces_execution(self):
        store = ResultStore()
        run_sweep(echo_jobs([1]), store=store)
        report = run_sweep(echo_jobs([1]), store=store, use_cache=False)
        assert report.executed == 1

    def test_failed_records_served_unless_retry_failed(self):
        store = ResultStore()
        jobs = [Job(kind="domain-failure", params={"x": 1})]
        run_sweep(jobs, store=store)
        cached = run_sweep(jobs, store=store)
        assert cached.all_cached and cached.failed == 1
        retried = run_sweep(jobs, store=store, retry_failed=True)
        assert retried.executed == 1

    def test_duplicate_jobs_run_once(self):
        store = ResultStore()
        report = run_sweep(echo_jobs([1, 1, 1]), store=store)
        assert report.total == 1
        assert report.duplicates == 2
        assert report.executed == 1

    def test_resume_after_interruption(self):
        # Simulate an interrupted sweep: only a prefix of the grid made
        # it into the store; the re-run executes exactly the remainder.
        store = ResultStore()
        grid = echo_jobs([1, 2, 3, 4])
        run_sweep(grid[:2], store=store)
        resumed = run_sweep(grid, store=store)
        assert resumed.hits == 2
        assert resumed.executed == 2
        assert [o.record["result"]["value"] for o in resumed.outcomes] \
            == [10, 20, 30, 40]

    def test_progress_callback_sees_every_outcome(self):
        seen = []
        store = ResultStore()
        run_sweep(
            echo_jobs([1, 2]), store=store,
            progress=lambda job, rec, cached, done, total:
                seen.append((job.label, cached, total)),
        )
        run_sweep(
            echo_jobs([1, 2]), store=store,
            progress=lambda job, rec, cached, done, total:
                seen.append((job.label, cached, total)),
        )
        assert seen == [
            ("x=1", False, 2), ("x=2", False, 2),
            ("x=1", True, 2), ("x=2", True, 2),
        ]


@needs_fork
class TestParallel:
    def test_parallel_matches_serial(self):
        serial = run_sweep(echo_jobs(range(6)))
        parallel = run_sweep(echo_jobs(range(6)), workers=3)
        assert [o.record["result"] for o in serial.outcomes] \
            == [o.record["result"] for o in parallel.outcomes]

    def test_runner_exception_in_worker_contained(self):
        jobs = echo_jobs([1, 2]) + [Job(kind="explode", params={"x": 3})]
        report = run_sweep(jobs, workers=2)
        assert report.failed == 1
        assert sum(o.ok for o in report.outcomes) == 2

    def test_worker_crash_isolated_to_its_job(self):
        # x == 2 kills its worker process outright; the pool breaks,
        # the orchestrator re-runs unfinished jobs in isolation, and
        # only the crasher is marked failed.
        jobs = [
            Job(kind="crash", params={"x": v}, label=f"x={v}")
            for v in [1, 2, 3, 4]
        ]
        report = run_sweep(jobs, workers=2)
        by_label = {o.job.label: o for o in report.outcomes}
        assert not by_label["x=2"].ok
        assert "worker process died" in by_label["x=2"].record["error"]
        for label in ("x=1", "x=3", "x=4"):
            assert by_label[label].ok, label
            assert by_label[label].record["result"]["value"] \
                == int(label[2:])

    def test_crashed_point_cached_as_failure(self):
        store = ResultStore()
        jobs = [Job(kind="crash", params={"x": 2})]
        run_sweep(jobs, store=store, workers=2)
        second = run_sweep(jobs, store=store, workers=2)
        assert second.all_cached and second.failed == 1
