"""Crash tolerance: kill -9 + resume, timeouts, retries, drain, drops.

The scenarios ISSUE 9 calls out: a SIGKILLed worker must not poison the
sweep, and re-running with the same store must converge to a store
bit-identical to an uninterrupted run; the ``metrics`` runner must
resume mid-job from its own snapshot (and survive a torn one); wall
clock deadlines and retries must be bounded, counted, and — because the
backoff jitter is derived from the job key — deterministic.
"""

import multiprocessing
import os
import signal
import sys
import time

import pytest

from repro.core.system import build_system
from repro.sim.checkpoint import CheckpointError, load_checkpoint, save_checkpoint
from repro.sim.config import SystemConfig
from repro.sweep import Job, JobFailure, ResultStore, register_runner, run_sweep
from repro.sweep.orchestrator import execute_job
from repro.sweep.runners import config_from_payload, metrics_job, retry_backoff_s

needs_fork = pytest.mark.skipif(
    sys.platform == "win32", reason="fork start method required"
)

#: Record fields that legitimately differ between two runs of the same
#: job (wall-clock stamps); everything else must be bit-identical.
VOLATILE = ("stored_at", "elapsed_s")


def stable(record):
    return {k: v for k, v in record.items() if k not in VOLATILE}


@register_runner("cr-armed-kill")
def _armed_kill(params):
    # SIGKILL the worker outright while the sentinel file exists — the
    # hardest crash there is: no exception, no atexit, no cleanup.
    if params["x"] == 2 and os.path.exists(params["sentinel"]):
        os.kill(os.getpid(), signal.SIGKILL)
    return {"value": params["x"] * 10}


@register_runner("cr-sleepy")
def _sleepy(params):
    time.sleep(params["sleep_s"])
    return {"value": 1}


@register_runner("cr-flaky")
def _flaky(params):
    # Cross-attempt state via a counter file: fail the first
    # ``fail_times`` calls, then succeed.  Retries re-execute in the
    # same process, but a file survives worker replacement too.
    counter = params["counter"]
    with open(counter, "a") as handle:
        handle.write("x\n")
    with open(counter) as handle:
        calls = len(handle.readlines())
    if calls <= params["fail_times"]:
        raise RuntimeError(f"transient failure on call {calls}")
    return {"calls": calls}


@register_runner("cr-domain-fail")
def _domain_fail(params):
    with open(params["counter"], "a") as handle:
        handle.write("x\n")
    raise JobFailure("point diverged deterministically")


@register_runner("cr-sigint-self")
def _sigint_self(params):
    # Simulate a user ^C arriving while job 1 runs: with
    # handle_signals=True the orchestrator's handler records it and the
    # serial loop drains before starting the next job.
    os.kill(os.getpid(), signal.SIGINT)
    return {"value": params["x"]}


@register_runner("cr-echo")
def _echo(params):
    return {"value": params["x"]}


def kill_jobs(sentinel):
    return [
        Job(
            kind="cr-armed-kill",
            params={"x": v, "sentinel": str(sentinel)},
            label=f"x={v}",
        )
        for v in (1, 2, 3)
    ]


# ---------------------------------------------------------------------- #
# kill -9 a worker, then --resume: store converges bit-identically
# ---------------------------------------------------------------------- #


@needs_fork
class TestKillResume:
    def test_sigkilled_worker_recorded_then_resume_bit_identical(
        self, tmp_path
    ):
        sentinel = tmp_path / "armed"
        sentinel.touch()
        jobs = kill_jobs(sentinel)
        store_path = tmp_path / "store.jsonl"

        # Sweep 1: the armed job SIGKILLs its worker.  The pool breaks,
        # innocents are re-run isolated and complete; the crasher is
        # identified by its own broken single-worker pool.
        report = run_sweep(jobs, store=ResultStore(store_path), workers=2)
        assert report.total == 3
        assert report.failed == 1
        crashed = report.record_for(jobs[1])
        assert crashed["status"] == "failed"
        assert "worker process died" in crashed["error"]
        for job in (jobs[0], jobs[2]):
            assert report.record_for(job)["status"] == "ok"

        # Disarm and resume against the same store (what the CLI's
        # --resume does: reload, repair, re-run with retry_failed).
        sentinel.unlink()
        resumed_store = ResultStore(store_path)
        assert resumed_store.repair() == 0  # parent-side appends are whole
        resumed = run_sweep(
            jobs, store=resumed_store, workers=2, retry_failed=True
        )
        assert resumed.failed == 0
        assert resumed.hits == 2 and resumed.executed == 1

        # A never-crashed control sweep over the same jobs.
        clean_store = ResultStore(tmp_path / "clean.jsonl")
        run_sweep(jobs, store=clean_store, workers=2)

        resumed_index = {
            r["key"]: stable(r) for r in resumed_store.records()
        }
        clean_index = {r["key"]: stable(r) for r in clean_store.records()}
        assert resumed_index == clean_index

    def test_resumed_store_reloads_cleanly(self, tmp_path):
        sentinel = tmp_path / "armed"
        sentinel.touch()
        jobs = kill_jobs(sentinel)
        store_path = tmp_path / "store.jsonl"
        run_sweep(jobs, store=ResultStore(store_path), workers=2)
        sentinel.unlink()
        run_sweep(
            jobs, store=ResultStore(store_path), workers=2,
            retry_failed=True,
        )
        # Fresh load: last-write-wins resolves the failed row, nothing
        # corrupt, all three points served from cache.
        final = ResultStore(store_path)
        assert final.corrupt_lines == 0
        replay = run_sweep(jobs, store=final, workers=2)
        assert replay.all_cached and replay.failed == 0


# ---------------------------------------------------------------------- #
# Mid-job checkpointing in the metrics runner
# ---------------------------------------------------------------------- #


class TestMidJobCheckpoint:
    CONFIG = SystemConfig(
        app="single_dtv", cycles=1_200, warmup=200, seed=7
    )

    def clean_result(self):
        job = metrics_job(self.CONFIG)
        payload = execute_job("metrics", dict(job.params), key=job.key)
        assert payload["status"] == "ok"
        return job, payload["result"]

    def test_resumes_from_partial_snapshot_bit_identical(self, tmp_path):
        job, clean = self.clean_result()
        # A crashed worker's leavings: the job ran to cycle 500 and
        # snapshotted before dying.
        partial = build_system(config_from_payload(job.params))
        partial.simulator.run(500)
        ckpt = tmp_path / f"{job.key}.ckpt"
        save_checkpoint(ckpt, partial)

        payload = execute_job(
            "metrics", dict(job.params), key=job.key,
            checkpoint_dir=str(tmp_path),
        )
        assert payload["status"] == "ok"
        assert payload["result"] == clean
        assert not ckpt.exists()  # deleted on success

    def test_torn_snapshot_discarded_job_starts_over(self, tmp_path):
        job, clean = self.clean_result()
        ckpt = tmp_path / f"{job.key}.ckpt"
        ckpt.write_bytes(b"REPROCKP" + b"\x00" * 40)  # torn mid-write
        with pytest.raises(CheckpointError):
            load_checkpoint(ckpt)
        payload = execute_job(
            "metrics", dict(job.params), key=job.key,
            checkpoint_dir=str(tmp_path),
        )
        assert payload["status"] == "ok"
        assert payload["result"] == clean
        assert not ckpt.exists()

    def test_without_checkpoint_dir_no_snapshot_files(self, tmp_path):
        job, _ = self.clean_result()
        assert list(tmp_path.iterdir()) == []


# ---------------------------------------------------------------------- #
# Deadlines, retries, attempt accounting
# ---------------------------------------------------------------------- #


class TestTimeoutAndRetry:
    def test_timeout_fails_with_attempt_count(self):
        payload = execute_job(
            "cr-sleepy", {"sleep_s": 30.0},
            key="t-timeout", timeout_s=0.2, retries=1,
        )
        assert payload["status"] == "failed"
        assert payload["attempts"] == 2
        assert "deadline" in payload["error"]
        assert "JobTimeout" in payload["traceback"]

    def test_transient_failure_retried_to_success(self, tmp_path):
        counter = tmp_path / "calls"
        payload = execute_job(
            "cr-flaky", {"counter": str(counter), "fail_times": 1},
            key="t-flaky", retries=1,
        )
        assert payload["status"] == "ok"
        assert payload["attempts"] == 2
        assert payload["result"] == {"calls": 2}
        assert payload["traceback"] is None

    def test_retries_exhausted_keeps_last_traceback(self, tmp_path):
        counter = tmp_path / "calls"
        payload = execute_job(
            "cr-flaky", {"counter": str(counter), "fail_times": 5},
            key="t-exhaust", retries=2,
        )
        assert payload["status"] == "failed"
        assert payload["attempts"] == 3
        assert "transient failure on call 3" in payload["error"]
        assert "RuntimeError" in payload["traceback"]

    def test_job_failure_never_retried(self, tmp_path):
        counter = tmp_path / "calls"
        payload = execute_job(
            "cr-domain-fail", {"counter": str(counter)},
            key="t-domain", retries=3,
        )
        assert payload["status"] == "failed"
        assert payload["attempts"] == 1
        assert counter.read_text() == "x\n"  # exactly one execution

    def test_attempts_and_traceback_reach_the_store(self, tmp_path):
        counter = tmp_path / "calls"
        job = Job(
            kind="cr-flaky",
            params={"counter": str(counter), "fail_times": 1},
            label="flaky",
        )
        store = ResultStore(tmp_path / "store.jsonl")
        report = run_sweep([job], store=store, job_retries=1)
        record = report.outcomes[0].record
        assert record["status"] == "ok"
        assert record["attempts"] == 2
        assert record["traceback"] is None
        # And a stored failure keeps its last traceback for debugging.
        bad = Job(kind="cr-domain-fail", params={"counter": str(counter)})
        report = run_sweep([bad], store=store)
        record = report.outcomes[0].record
        assert record["attempts"] == 1
        assert "JobFailure" in record["traceback"]


class TestBackoff:
    def test_deterministic_for_same_key_and_attempt(self):
        assert retry_backoff_s("k", 1) == retry_backoff_s("k", 1)
        assert retry_backoff_s("k", 2) == retry_backoff_s("k", 2)

    def test_varies_with_key_and_attempt(self):
        assert retry_backoff_s("k", 1) != retry_backoff_s("other", 1)
        assert retry_backoff_s("k", 1) != retry_backoff_s("k", 2)

    def test_jitter_window_and_cap(self):
        for attempt in range(1, 12):
            delay = retry_backoff_s("k", attempt, base_s=0.25, cap_s=8.0)
            ceiling = min(8.0, 0.25 * 2 ** (attempt - 1))
            assert 0.5 * ceiling <= delay <= 1.5 * ceiling
        # Deep attempts stay capped, never overflow.
        assert retry_backoff_s("k", 200) <= 1.5 * 8.0

    def test_rejects_nonpositive_attempt(self):
        with pytest.raises(ValueError, match="attempt"):
            retry_backoff_s("k", 0)


# ---------------------------------------------------------------------- #
# Heartbeat-drop accounting
# ---------------------------------------------------------------------- #


class _StubTelemetry:
    """Minimal telemetry double: a path workers will fail to append to
    (it is a directory), and an emit() sink for lifecycle records."""

    def __init__(self, path):
        self.path = path
        self.records = []

    def emit(self, record_type, **fields):
        self.records.append((record_type, fields))


class TestHeartbeatDrops:
    def test_execute_job_counts_its_drop_delta(self, tmp_path):
        payload = execute_job(
            "cr-echo", {"x": 1}, telemetry_path=str(tmp_path), key="k",
        )
        # job_start+heartbeat is one guarded emission, the done-side
        # heartbeat the other: two drops against a directory path.
        assert payload["status"] == "ok"
        assert payload["heartbeat_drops"] == 2

    def test_report_aggregates_drops_across_jobs(self, tmp_path):
        telemetry = _StubTelemetry(tmp_path)
        jobs = [
            Job(kind="cr-echo", params={"x": v}, label=f"x={v}")
            for v in (1, 2, 3)
        ]
        report = run_sweep(jobs, telemetry=telemetry)
        assert report.heartbeat_drops == 6
        assert "6 heartbeat drop(s)" in report.summary()
        end = dict(telemetry.records[-1][1])
        assert telemetry.records[-1][0] == "sweep_end"
        assert end["heartbeat_drops"] == 6

    def test_no_telemetry_no_drops(self):
        report = run_sweep(
            [Job(kind="cr-echo", params={"x": 1})]
        )
        assert report.heartbeat_drops == 0
        assert "heartbeat" not in report.summary()


# ---------------------------------------------------------------------- #
# Graceful drain on SIGINT
# ---------------------------------------------------------------------- #


class TestGracefulDrain:
    def test_serial_drain_stores_finished_skips_queued(self, tmp_path):
        jobs = [
            Job(kind="cr-sigint-self", params={"x": 1}, label="first"),
            Job(kind="cr-echo", params={"x": 2}, label="second"),
            Job(kind="cr-echo", params={"x": 3}, label="third"),
        ]
        store = ResultStore(tmp_path / "store.jsonl")
        previous = signal.getsignal(signal.SIGINT)
        report = run_sweep(jobs, store=store, handle_signals=True)
        # The orchestrator restored the process handler on the way out.
        assert signal.getsignal(signal.SIGINT) is previous

        assert report.interrupted
        assert "INTERRUPTED" in report.summary()
        # Job 1 finished (its ^C arrived mid-run) and was stored; the
        # queued jobs never started and have no outcome.
        assert report.total == 1
        assert report.outcomes[0].ok
        assert len(store) == 1

        # Re-running the same sweep resumes: one hit, two executions.
        resumed = run_sweep(jobs, store=ResultStore(store.path))
        assert resumed.hits == 1 and resumed.executed == 2
        assert not resumed.interrupted

    def test_without_handle_signals_flag_not_set(self, tmp_path):
        report = run_sweep(
            [Job(kind="cr-echo", params={"x": 1})],
            store=ResultStore(tmp_path / "store.jsonl"),
        )
        assert not report.interrupted
        assert "INTERRUPTED" not in report.summary()


# ---------------------------------------------------------------------- #
# Parallel drain (fork): cancel queued futures, keep running work
# ---------------------------------------------------------------------- #


@needs_fork
def test_parallel_drain_cancels_queued_jobs(tmp_path):
    # Far more jobs than workers: the pool prefetches a few work items
    # (which become uncancellable), so only a deep queue guarantees the
    # drain catches some.  The first job SIGINTs the *parent* (fork
    # shares no handlers; os.kill targets the orchestrating pid).
    parent = os.getpid()
    jobs = [
        Job(
            kind="cr-parent-sigint",
            params={"x": 1, "parent": parent},
            label="signaler",
        )
    ] + [
        Job(kind="cr-slow-echo", params={"x": v}, label=f"x={v}")
        for v in range(2, 18)
    ]
    store = ResultStore(tmp_path / "store.jsonl")
    report = run_sweep(
        jobs, store=store, workers=2, handle_signals=True
    )
    assert report.interrupted
    # Everything that DID run was stored; queued jobs were cancelled.
    assert 1 <= report.total < len(jobs)
    assert all(outcome.ok for outcome in report.outcomes)
    assert len(store) == report.total


@register_runner("cr-parent-sigint")
def _parent_sigint(params):
    os.kill(params["parent"], signal.SIGINT)
    time.sleep(0.3)  # stay "running" while the drain decision is made
    return {"value": params["x"]}


@register_runner("cr-slow-echo")
def _slow_echo(params):
    time.sleep(0.2)
    return {"value": params["x"]}
