"""SweepSpec expansion: grid shape, seed derivation, validation."""

import pytest

from repro.sim.rng import derive_seed
from repro.sweep import Job, SweepSpec, dedupe


class TestExpansion:
    def test_full_cross_product(self):
        spec = SweepSpec(
            name="g", kind="echo",
            axes={"a": [1, 2, 3], "b": ["x", "y"]},
        )
        jobs = spec.expand()
        assert len(jobs) == spec.size == 6
        coords = [(j.params["a"], j.params["b"]) for j in jobs]
        assert coords == [
            (1, "x"), (1, "y"), (2, "x"), (2, "y"), (3, "x"), (3, "y"),
        ]

    def test_base_fields_pinned_on_every_job(self):
        spec = SweepSpec(
            name="g", kind="echo", base={"cycles": 500},
            axes={"a": [1, 2]},
        )
        assert all(j.params["cycles"] == 500 for j in spec.expand())

    def test_labels_name_the_coordinates(self):
        spec = SweepSpec(name="g", kind="echo", axes={"rate": [0.0, 0.5]})
        assert [j.label for j in spec.expand()] == ["rate=0.0", "rate=0.5"]

    def test_resolver_maps_final_params(self):
        spec = SweepSpec(
            name="g", kind="echo", axes={"a": [1]},
            resolver=lambda p: {"doubled": p["a"] * 2, "seed": p["seed"]},
        )
        job = spec.expand()[0]
        assert job.params["doubled"] == 2


class TestSeeds:
    def test_explicit_seed_axis_passes_through(self):
        spec = SweepSpec(
            name="g", kind="echo", axes={"seed": [2010, 2011]},
        )
        assert [j.params["seed"] for j in spec.expand()] == [2010, 2011]

    def test_derived_seeds_match_derive_seed(self):
        spec = SweepSpec(name="g", kind="echo", axes={"a": [7]},
                         root_seed=99)
        job = spec.expand()[0]
        assert job.params["seed"] == derive_seed(99, "sweep", "g", "a=7", 0)

    def test_replicates_get_distinct_seeds(self):
        spec = SweepSpec(
            name="g", kind="echo", axes={"a": [1, 2]}, replicates=3,
        )
        jobs = spec.expand()
        assert len(jobs) == 6
        seeds = {j.params["seed"] for j in jobs}
        assert len(seeds) == 6

    def test_derivation_is_stable_across_expansions(self):
        make = lambda: SweepSpec(  # noqa: E731
            name="g", kind="echo", axes={"a": [1, 2]}, replicates=2,
        ).expand()
        assert [j.params for j in make()] == [j.params for j in make()]


class TestValidation:
    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError, match="no values"):
            SweepSpec(name="g", axes={"a": []})

    def test_base_axis_overlap_rejected(self):
        with pytest.raises(ValueError, match="both base and axes"):
            SweepSpec(name="g", base={"a": 1}, axes={"a": [1, 2]})

    def test_explicit_seed_with_replicates_rejected(self):
        with pytest.raises(ValueError, match="replicates"):
            SweepSpec(name="g", axes={"seed": [1]}, replicates=2)

    def test_unserializable_job_params_rejected(self):
        with pytest.raises(TypeError):
            Job(kind="echo", params={"x": object()})


class TestDedupe:
    def test_duplicate_keys_collapse_first_kept(self):
        a = Job(kind="echo", params={"x": 1}, label="first")
        b = Job(kind="echo", params={"x": 1}, label="second")
        c = Job(kind="echo", params={"x": 2})
        unique = dedupe([a, b, c])
        assert len(unique) == 2
        assert unique[0].label == "first"
