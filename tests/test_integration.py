"""Cross-module integration tests: full-system invariants.

These exercise the complete stack — generators, SAGM, wormhole mesh, GSS
flow control, memory subsystem, SDRAM device — and check conservation and
behavioural properties that no single module can guarantee alone.
"""

import pytest

from repro.core.system import build_system
from repro.sim.config import DdrGeneration, NocDesign, SystemConfig


def run_system(design, cycles=4_000, **overrides):
    config = SystemConfig(
        app=overrides.pop("app", "single_dtv"),
        design=design,
        cycles=cycles,
        warmup=overrides.pop("warmup", 500),
        **overrides,
    )
    system = build_system(config)
    metrics = system.run()
    return system, metrics


class TestConservation:
    @pytest.mark.parametrize("design", [
        NocDesign.CONV, NocDesign.SDRAM_AWARE, NocDesign.GSS_SAGM,
    ])
    def test_system_drains_when_generation_stops(self, design):
        """Every issued request eventually completes once cores go quiet:
        no packet is lost anywhere in the NoC or the memory pipeline."""
        system, _ = run_system(design, cycles=3_000)
        for core in system.cores:
            core.spec.max_outstanding = 0  # stop issuing
        for extra in range(10_000):
            system.simulator.step()
            if (
                all(ci.outstanding == 0 for ci in system.core_interfaces)
                and system.memory_interface.idle
                and system.network.in_flight_packets == 0
            ):
                break
        assert all(ci.outstanding == 0 for ci in system.core_interfaces)
        issued = sum(core.issued for core in system.cores)
        completed = sum(core.completed for core in system.cores)
        assert issued == completed

    def test_completions_match_interfaces(self):
        system, metrics = run_system(NocDesign.GSS_SAGM)
        ni_completions = sum(ci.completed_requests for ci in system.core_interfaces)
        core_completions = sum(core.completed for core in system.cores)
        assert ni_completions == core_completions

    def test_every_admitted_request_answered(self):
        system, _ = run_system(NocDesign.SDRAM_AWARE)
        mi = system.memory_interface
        # responses sent can lag admissions only by the in-flight window
        assert mi.responses_sent <= mi.admitted
        assert mi.admitted - mi.responses_sent < 40


class TestMetricsSanity:
    @pytest.mark.parametrize("design", list(NocDesign))
    def test_utilization_bounded(self, design):
        _, metrics = run_system(design)
        assert 0.0 < metrics.utilization <= 1.0
        assert metrics.utilization <= metrics.raw_utilization + 1e-9

    def test_sagm_reduces_waste(self):
        _, plain = run_system(NocDesign.GSS)
        _, sagm = run_system(NocDesign.GSS_SAGM)
        waste_plain = plain.raw_utilization - plain.utilization
        waste_sagm = sagm.raw_utilization - sagm.utilization
        assert waste_sagm < waste_plain

    def test_sagm_boosts_row_hits(self):
        _, plain = run_system(NocDesign.GSS)
        _, sagm = run_system(NocDesign.GSS_SAGM)
        assert sagm.row_hit_rate > plain.row_hit_rate

    def test_latency_floor_physical(self):
        """No request can complete faster than the DRAM access itself."""
        system, metrics = run_system(NocDesign.GSS_SAGM)
        timing = system.timing
        floor = timing.t_rcd + timing.cas_latency
        assert metrics.latency_all > floor


class TestPriorityService:
    def test_gss_priority_beats_best_effort(self):
        """Under GSS with priority enabled, demand packets are served
        faster than the average packet."""
        _, metrics = run_system(
            NocDesign.GSS_SAGM, cycles=8_000, warmup=1_500,
            priority_enabled=True, app="bluray",
        )
        assert metrics.latency_demand < metrics.latency_all * 1.05

    def test_priority_disabled_no_preference(self):
        _, with_pri = run_system(
            NocDesign.GSS, cycles=6_000, warmup=1_000, priority_enabled=True,
            app="bluray",
        )
        _, without = run_system(
            NocDesign.GSS, cycles=6_000, warmup=1_000, priority_enabled=False,
            app="bluray",
        )
        # enabling priority should not hurt demand latency
        assert with_pri.latency_demand <= without.latency_demand * 1.15


class TestDdrGenerations:
    @pytest.mark.parametrize("ddr,clock", [
        (DdrGeneration.DDR1, 133),
        (DdrGeneration.DDR2, 266),
        (DdrGeneration.DDR3, 533),
    ])
    def test_all_generations_run(self, ddr, clock):
        _, metrics = run_system(
            NocDesign.GSS_SAGM, app="bluray", ddr=ddr, clock_mhz=clock,
        )
        assert metrics.completed > 50

    def test_higher_clock_longer_cycles_latency(self):
        """Fixed analog latencies cost more cycles at higher clocks —
        the paper's across-generation latency trend."""
        _, low = run_system(NocDesign.SDRAM_AWARE, app="bluray",
                            ddr=DdrGeneration.DDR1, clock_mhz=133,
                            cycles=6_000, warmup=1_000)
        _, high = run_system(NocDesign.SDRAM_AWARE, app="bluray",
                             ddr=DdrGeneration.DDR3, clock_mhz=533,
                             cycles=6_000, warmup=1_000)
        assert high.latency_all > low.latency_all


class TestPartialDeployment:
    def test_more_gss_routers_never_crashes(self):
        for k in (0, 1, 3, 9):
            _, metrics = run_system(
                NocDesign.GSS_SAGM, num_gss_routers=k, priority_enabled=True,
                cycles=2_500, warmup=400,
            )
            assert metrics.completed > 10

    def test_full_equals_explicit_max(self):
        _, implicit = run_system(NocDesign.GSS, cycles=2_500, warmup=400)
        _, explicit = run_system(NocDesign.GSS, num_gss_routers=9,
                                 cycles=2_500, warmup=400)
        assert implicit == explicit
