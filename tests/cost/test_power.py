"""Power model tests: Table V scaling behaviour."""

import pytest

from repro.cost.power import TABLE5_POINTS, estimate_power, table5


class TestScaling:
    def test_power_scales_with_clock(self):
        low = estimate_power("conv", "bluray", 200).watts
        high = estimate_power("conv", "bluray", 400).watts
        assert high == pytest.approx(2 * low)

    def test_bigger_mesh_burns_more(self):
        small = estimate_power("conv", "bluray", 400).watts
        big = estimate_power("conv", "dual_dtv", 400).watts
        assert big > small

    def test_design_ordering(self):
        for app, mhz in TABLE5_POINTS:
            conv = estimate_power("conv", app, mhz).watts
            baseline = estimate_power("sdram-aware", app, mhz).watts
            ours = estimate_power("gss+sagm+sti", app, mhz).watts
            assert ours < baseline < conv

    def test_conv_ratio_in_paper_range(self):
        """Table V: CONV burns ~1.3-1.55x the proposed design."""
        for app, mhz in TABLE5_POINTS:
            ratio = (
                estimate_power("conv", app, mhz).watts
                / estimate_power("gss+sagm+sti", app, mhz).watts
            )
            assert 1.25 < ratio < 1.6


class TestActivity:
    def test_higher_activity_more_power(self):
        idle = estimate_power("conv", "bluray", 400, activity=0.2).watts
        busy = estimate_power("conv", "bluray", 400, activity=0.9).watts
        assert busy > idle

    def test_activity_bounds_checked(self):
        with pytest.raises(ValueError):
            estimate_power("conv", "bluray", 400, activity=1.5)

    def test_nominal_matches_calibration_activity(self):
        nominal = estimate_power("conv", "bluray", 400).watts
        explicit = estimate_power("conv", "bluray", 400, activity=0.65).watts
        assert explicit == pytest.approx(nominal)


class TestValidation:
    def test_unknown_app(self):
        with pytest.raises(ValueError):
            estimate_power("conv", "mystery", 400)

    def test_nonpositive_clock(self):
        with pytest.raises(ValueError):
            estimate_power("conv", "bluray", 0)


class TestTable5:
    def test_shape(self):
        data = table5()
        assert len(data) == 3
        for row in data.values():
            assert set(row) == {"conv", "sdram-aware", "gss+sagm+sti"}
            assert all(v > 0 for v in row.values())

    def test_milliwatt_conversion(self):
        estimate = estimate_power("conv", "bluray", 400)
        assert estimate.milliwatts == pytest.approx(estimate.watts * 1e3)
