"""Gate-count model tests: structural orderings of Table IV."""

import pytest

from repro.cost.gate_count import (
    app_aware_memory_subsystem,
    conv_flow_controller,
    conv_memory_subsystem,
    full_noc,
    gss_flow_controller,
    router,
    sdram_aware_flow_controller,
    sdram_aware_memory_subsystem,
    table4,
)


class TestFlowControllers:
    def test_conv_is_smallest(self):
        conv = conv_flow_controller().total
        assert conv < gss_flow_controller().total
        assert conv < sdram_aware_flow_controller().total

    def test_gss_smaller_than_sdram_aware(self):
        """Table IV: the event-driven GSS controller is ~9 % smaller than
        [4]'s despite richer function."""
        gss = gss_flow_controller().total
        baseline = sdram_aware_flow_controller().total
        assert gss < baseline
        assert 0.85 < gss / baseline < 0.98

    def test_sti_counters_cost_area(self):
        with_sti = gss_flow_controller(sti=True).total
        without = gss_flow_controller(sti=False).total
        assert with_sti > without

    def test_more_ports_cost_more(self):
        assert gss_flow_controller(ports=7).total > gss_flow_controller(ports=5).total


class TestMemorySubsystems:
    def test_conv_dominated_by_reorder_machinery(self):
        conv = conv_memory_subsystem()
        assert conv.items["reorder_buffers"] > conv.total * 0.4

    def test_conv_roughly_3x_of_proposed(self):
        ratio = conv_memory_subsystem().total / app_aware_memory_subsystem().total
        assert 2.5 < ratio < 3.8  # Table IV reports 3.28

    def test_ap_shrinks_pre_buffer(self):
        base = sdram_aware_memory_subsystem()
        proposed = app_aware_memory_subsystem()
        assert proposed.items["pre_buffer"] < base.items["pre_buffer"]
        assert proposed.total < base.total


class TestFullNoc:
    def test_orderings(self):
        conv = full_noc("conv").total
        baseline = full_noc("sdram-aware").total
        proposed = full_noc("gss+sagm+sti").total
        assert proposed < baseline < conv

    def test_conv_ratio_matches_paper_ballpark(self):
        ratio = full_noc("conv").total / full_noc("gss+sagm+sti").total
        assert 1.3 < ratio < 1.7  # Table IV reports 1.51

    def test_partial_gss_deployment_cheaper_than_full(self):
        three = full_noc("gss+sagm+sti", gss_routers=3).total
        nine = full_noc("gss+sagm+sti", gss_routers=9).total
        assert three < nine

    def test_unknown_design_rejected(self):
        with pytest.raises(ValueError):
            full_noc("mystery")


class TestTable4:
    def test_covers_all_modules_and_designs(self):
        data = table4()
        assert set(data) == {
            "flow_controller", "router", "memory_subsystem", "noc_3x3"
        }
        for row in data.values():
            assert set(row) == {"conv", "sdram-aware", "gss+sagm+sti"}

    def test_module_totals_positive(self):
        for row in table4().values():
            assert all(v > 0 for v in row.values())

    def test_itemization_sums_to_total(self):
        module = gss_flow_controller()
        assert module.total == sum(module.items.values())
