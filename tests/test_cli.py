"""CLI tests."""

import pytest

from repro.cli import build_parser, main
from repro.sim.config import DdrGeneration, NocDesign


class TestParser:
    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.design is NocDesign.GSS_SAGM
        assert args.ddr is DdrGeneration.DDR2

    def test_design_parsing(self):
        args = build_parser().parse_args(["run", "--design", "sdram-aware"])
        assert args.design is NocDesign.SDRAM_AWARE

    def test_bad_design_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--design", "bogus"])

    def test_bad_ddr_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--ddr", "ddr9"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_run_prints_metrics(self, capsys):
        code = main(["run", "--app", "bluray", "--cycles", "1500",
                     "--warmup", "200"])
        assert code == 0
        out = capsys.readouterr().out
        assert "utilization" in out
        assert "completed" in out

    def test_run_with_flags(self, capsys):
        code = main([
            "run", "--cycles", "1200", "--warmup", "200", "--priority",
            "--sti", "--adaptive", "--gss-routers", "2", "--pct", "4",
        ])
        assert code == 0
        assert "gss+sagm+sti" in capsys.readouterr().out

    def test_run_percentiles(self, capsys):
        code = main(["run", "--cycles", "1500", "--warmup", "200",
                     "--percentiles"])
        assert code == 0
        out = capsys.readouterr().out
        assert "percentiles" in out
        assert "p50=" in out and "p95=" in out and "p99=" in out

    def test_run_without_percentiles_omits_line(self, capsys):
        assert main(["run", "--cycles", "1200", "--warmup", "200"]) == 0
        assert "percentiles" not in capsys.readouterr().out

    def test_run_with_arbiter_prints_wcet(self, capsys):
        code = main(["run", "--cycles", "2500", "--warmup", "300",
                     "--arbiter", "dpq"])
        assert code == 0
        out = capsys.readouterr().out
        assert "/dpq" in out
        assert "service p100" in out
        assert "analytic bound" in out

    def test_run_engine_arbiter_has_no_bound_line(self, capsys):
        code = main(["run", "--cycles", "1500", "--warmup", "300",
                     "--arbiter", "engine"])
        assert code == 0
        out = capsys.readouterr().out
        assert "service p100" in out
        assert "analytic bound" not in out

    def test_run_rejects_unknown_arbiter(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--arbiter", "bogus"])

    def test_arbiters_command_renders_wcet_table(self, capsys):
        code = main([
            "arbiters", "--cycles", "1500", "--warmup", "300",
            "--seeds", "2010", "--apps", "single_dtv",
            "--arbiters", "engine", "dpq",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Memory-arbiter comparison" in out
        assert "dpq:wcet" in out
        assert "BOUND VIOLATIONS" not in out

    def test_table4_renders(self, capsys):
        assert main(["table4"]) == 0
        assert "Table IV" in capsys.readouterr().out

    def test_table5_renders(self, capsys):
        assert main(["table5"]) == 0
        assert "Table V" in capsys.readouterr().out

    def test_table3_small(self, capsys):
        code = main(["table3", "--cycles", "1200", "--warmup", "200",
                     "--seeds", "2010"])
        assert code == 0
        assert "Table III" in capsys.readouterr().out

    def test_fig8_small(self, capsys):
        code = main(["fig8", "--cycles", "1000", "--warmup", "200",
                     "--seeds", "2010", "--max-routers", "1"])
        assert code == 0
        assert "#GSS" in capsys.readouterr().out


class TestFaultCommands:
    def test_run_without_faults_prints_no_ledger(self, capsys):
        assert main(["run", "--cycles", "1200", "--warmup", "200"]) == 0
        assert "faults" not in capsys.readouterr().out

    def test_run_with_fault_rate_prints_ledger(self, capsys):
        code = main(["run", "--cycles", "2000", "--warmup", "400",
                     "--fault-rate", "1e-3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "faults" in out
        assert "unresolved=0" in out
        assert "recovery" in out

    def test_run_with_invariant_checking(self, capsys):
        code = main(["run", "--cycles", "1200", "--warmup", "200",
                     "--check-invariants"])
        assert code == 0

    def test_bad_fault_rate_rejected(self):
        with pytest.raises(ValueError, match="rate"):
            main(["run", "--cycles", "1200", "--warmup", "200",
                  "--fault-rate", "2.0"])

    def test_faults_sweep_renders_and_exits_clean(self, capsys):
        code = main(["faults", "--cycles", "1500", "--warmup", "300",
                     "--rates", "0", "1e-3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Fault-rate sweep" in out
        assert "unres" in out


class TestExhibitCommands:
    def test_table1_small(self, capsys):
        code = main(["table1", "--cycles", "700", "--warmup", "100",
                     "--seeds", "2010"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Table I" in out and "Ratio" in out

    def test_export_small(self, capsys, tmp_path):
        path = tmp_path / "out.json"
        code = main(["export", str(path), "--cycles", "700",
                     "--warmup", "100", "--seeds", "2010"])
        assert code == 0
        assert path.exists()


class TestTraceCommand:
    def test_trace_writes_valid_chrome_json(self, capsys, tmp_path):
        import json

        from repro.obs.events import LIFECYCLE_EVENT_TYPES
        from repro.obs.exporters import validate_chrome_trace

        path = tmp_path / "trace.json"
        code = main(["trace", "--cycles", "2500", "-o", str(path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "events" in out and "latency breakdown" in out
        document = json.loads(path.read_text())
        validate_chrome_trace(document)
        names = {
            record["name"]
            for record in document["traceEvents"]
            if record["ph"] != "M"
        }
        assert names == {t.value for t in LIFECYCLE_EVENT_TYPES}

    def test_trace_jsonl_dump(self, capsys, tmp_path):
        from repro.obs.exporters import read_jsonl

        trace = tmp_path / "trace.json"
        jsonl = tmp_path / "events.jsonl"
        code = main(["trace", "--cycles", "1500", "-o", str(trace),
                     "--jsonl", str(jsonl)])
        assert code == 0
        records = read_jsonl(str(jsonl))
        assert records
        assert all("type" in r and "cycle" in r for r in records)

    def test_trace_limit_reports_drops(self, capsys, tmp_path):
        path = tmp_path / "trace.json"
        code = main(["trace", "--cycles", "2000", "-o", str(path),
                     "--limit", "50"])
        assert code == 0
        assert "dropped" in capsys.readouterr().out


class TestProfileCommand:
    def test_profile_reports_component_shares(self, capsys):
        code = main(["profile", "--cycles", "1500", "--window", "500"])
        assert code == 0
        out = capsys.readouterr().out
        assert "simulator profile" in out
        assert "MeshNetwork" in out
        assert "component class" in out
        assert "windows" in out


class TestSweepCommand:
    def fault_args(self, store, extra=()):
        return [
            "sweep", "fault", "--cycles", "1200", "--warmup", "200",
            "--rates", "0", "1e-3", "--seeds", "2010", "--jobs", "1",
            "--store", str(store), "--quiet", *extra,
        ]

    def test_parser_requires_grid(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep"])

    def test_parser_sweep_defaults(self):
        args = build_parser().parse_args(["sweep", "fault"])
        assert args.jobs >= 1
        assert args.format == "table"
        assert not args.no_cache

    def test_fault_sweep_runs_and_renders(self, capsys, tmp_path):
        store = tmp_path / "store.jsonl"
        assert main(self.fault_args(store)) == 0
        out = capsys.readouterr().out
        assert "seed 2010" in out
        assert "Fault-rate sweep" in out
        assert "2 executed" in out
        assert store.exists()

    def test_second_pass_is_all_cache_hits(self, capsys, tmp_path):
        store = tmp_path / "store.jsonl"
        assert main(self.fault_args(store)) == 0
        capsys.readouterr()
        assert main(self.fault_args(store, ["--require-all-cached"])) == 0
        assert "2 cache hit(s), 0 executed" in capsys.readouterr().out

    def test_require_all_cached_fails_on_cold_store(self, capsys, tmp_path):
        store = tmp_path / "store.jsonl"
        code = main(self.fault_args(store, ["--require-all-cached"]))
        assert code == 2
        assert "--require-all-cached" in capsys.readouterr().err

    def test_json_format_documents_summary_and_records(
        self, capsys, tmp_path
    ):
        import json

        store = tmp_path / "store.jsonl"
        assert main(self.fault_args(store, ["--format", "json"])) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["summary"]["total"] == 2
        assert len(document["records"]) == 2
        assert all(r["status"] == "ok" for r in document["records"])

    def test_grid_command_sweeps_arbitrary_fields(self, capsys, tmp_path):
        store = tmp_path / "store.jsonl"
        code = main([
            "sweep", "grid",
            "--axis", "app=bluray,single_dtv",
            "--axis", "fault_rate=0,1e-3",
            "--set", "cycles=1200", "--set", "warmup=200",
            "--set", "seed=7",
            "--jobs", "1", "--store", str(store), "--quiet",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "4 job(s)" in out
        assert out.count("ok") >= 4

    def test_grid_without_axes_is_an_error(self, capsys, tmp_path):
        code = main([
            "sweep", "grid", "--jobs", "1",
            "--store", str(tmp_path / "s.jsonl"), "--quiet",
        ])
        assert code == 2
        assert "--axis" in capsys.readouterr().err

    def test_grid_rejects_unknown_field(self, tmp_path):
        with pytest.raises(Exception):
            main([
                "sweep", "grid", "--axis", "bogus_field=1,2",
                "--jobs", "1", "--store", str(tmp_path / "s.jsonl"),
                "--quiet",
            ])

    def test_grid_sweeps_arbiter_axis(self, capsys, tmp_path):
        store = tmp_path / "store.jsonl"
        code = main([
            "sweep", "grid",
            "--axis", "arbiter=engine,dpq",
            "--set", "cycles=1200", "--set", "warmup=200",
            "--set", "seed=7",
            "--jobs", "1", "--store", str(store), "--quiet",
        ])
        assert code == 0
        assert "2 job(s)" in capsys.readouterr().out

    def test_grid_rejects_unknown_arbiter(self, tmp_path):
        with pytest.raises(Exception, match="memory-arbiter"):
            main([
                "sweep", "grid", "--axis", "arbiter=bogus",
                "--jobs", "1", "--store", str(tmp_path / "s.jsonl"),
                "--quiet",
            ])

    def test_fig8_sweep_small(self, capsys, tmp_path):
        store = tmp_path / "store.jsonl"
        code = main([
            "sweep", "fig8", "--cycles", "800", "--warmup", "200",
            "--seeds", "2010", "--max-routers", "0",
            "--jobs", "1", "--store", str(store), "--quiet",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "#GSS" in out
        assert "3 job(s)" in out


class TestAllCachedCommand:
    def test_all_parser_has_cache_flags(self):
        args = build_parser().parse_args(["all"])
        assert args.store.endswith("results.jsonl")
        assert not args.no_cache


class TestTelemetryCommands:
    def test_run_telemetry_writes_stream(self, capsys, tmp_path):
        from repro.obs.stream import read_stream, validate_stream

        path = tmp_path / "run.ndjson"
        main([
            "run", "--cycles", "2500", "--warmup", "300",
            "--telemetry", str(path), "--sample-interval", "500",
        ])
        out = capsys.readouterr().out
        assert "telemetry" in out
        records = read_stream(path)
        counts = validate_stream(records)
        assert counts["run_start"] == 1
        assert counts["run_end"] == 1
        assert counts["sample"] >= 4
        manifest = records[0]
        assert manifest["type"] == "run_start"
        assert manifest["sample_interval"] == 500
        assert "host" in manifest and "config_key" in manifest
        summary = records[-1]
        assert summary["type"] == "run_end"
        assert summary["completed"] > 0

    def test_run_rejects_bad_sample_interval(self, tmp_path):
        with pytest.raises(SystemExit):
            main([
                "run", "--cycles", "1000", "--warmup", "0",
                "--telemetry", str(tmp_path / "x.ndjson"),
                "--sample-interval", "0",
            ])

    def test_run_prom_snapshot(self, capsys, tmp_path):
        path = tmp_path / "run.prom"
        main([
            "run", "--cycles", "2000", "--warmup", "200",
            "--prom", str(path),
        ])
        assert "prometheus" in capsys.readouterr().out
        text = path.read_text()
        assert "# TYPE repro_dram_commands counter" in text
        assert 'repro_latency_all{quantile="0.95"}' in text

    def test_monitor_parser_flags(self):
        args = build_parser().parse_args(
            ["monitor", "s.ndjson", "--follow", "--refresh", "0.5"]
        )
        assert args.stream == "s.ndjson"
        assert args.follow and not args.once
        assert args.refresh == 0.5

    def test_monitor_once_renders_run_stream(self, capsys, tmp_path):
        path = tmp_path / "run.ndjson"
        main([
            "run", "--cycles", "2000", "--warmup", "200",
            "--telemetry", str(path),
        ])
        capsys.readouterr()
        assert main(["monitor", str(path), "--once"]) == 0
        out = capsys.readouterr().out
        assert "run done" in out
        assert "cycle" in out

    def test_monitor_empty_stream_exits_one(self, capsys, tmp_path):
        path = tmp_path / "empty.ndjson"
        path.write_text("")
        assert main(["monitor", str(path), "--once"]) == 1

    def test_sweep_telemetry_stream(self, capsys, tmp_path):
        from repro.obs.stream import read_stream, validate_stream

        path = tmp_path / "sweep.ndjson"
        store = tmp_path / "store.jsonl"
        assert main([
            "sweep", "grid", "--axis", "seed=2010,2011",
            "--set", "cycles=1200", "--set", "warmup=200",
            "--jobs", "1", "--store", str(store), "--quiet",
            "--telemetry", str(path),
        ]) == 0
        counts = validate_stream(read_stream(path))
        assert counts["sweep_start"] == 1
        assert counts["job_done"] == 2
        assert counts["sweep_end"] == 1
        capsys.readouterr()
        assert main(["monitor", str(path), "--once"]) == 0
        assert "2/2 done" in capsys.readouterr().out

    def test_bench_parser_telemetry_flag(self):
        args = build_parser().parse_args(
            ["bench", "--telemetry", "b.ndjson"]
        )
        assert args.telemetry == "b.ndjson"
