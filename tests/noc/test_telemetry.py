"""NoC telemetry tests."""

import pytest

from repro.core.system import build_system
from repro.noc.telemetry import (
    hottest_links,
    link_stats,
    node_throughput,
    render_link_report,
)
from repro.noc.topology import Port
from repro.sim.config import NocDesign, SystemConfig


@pytest.fixture(scope="module")
def ran_system():
    system = build_system(SystemConfig(app="single_dtv", cycles=3_000,
                                       warmup=500,
                                       design=NocDesign.SDRAM_AWARE))
    system.run()
    return system


class TestLinkStats:
    def test_one_entry_per_output_channel(self, ran_system):
        stats = link_stats(ran_system.network, 3_000)
        expected = sum(
            len(router.outputs) for router in ran_system.network.routers
        )
        assert len(stats) == expected

    def test_utilization_bounded_by_capacity(self, ran_system):
        for stat in link_stats(ran_system.network, 3_000):
            assert 0.0 <= stat.utilization <= 1.0

    def test_flit_conservation_per_channel(self, ran_system):
        for stat in link_stats(ran_system.network, 3_000):
            assert stat.flits >= stat.packets  # every packet has >= 1 flit

    def test_cycles_must_be_positive(self, ran_system):
        with pytest.raises(ValueError):
            link_stats(ran_system.network, 0)


class TestHotspots:
    def test_memory_funnel_is_hottest(self, ran_system):
        """All memory traffic exits through node 0's LOCAL channel."""
        hottest = hottest_links(ran_system.network, 3_000, top=3)
        assert any(
            s.node == 0 and s.port in (Port.LOCAL, Port.EAST, Port.SOUTH)
            for s in hottest
        )

    def test_top_bound(self, ran_system):
        assert len(hottest_links(ran_system.network, 3_000, top=2)) == 2
        with pytest.raises(ValueError):
            hottest_links(ran_system.network, 3_000, top=0)

    def test_node_throughput_covers_all_nodes(self, ran_system):
        totals = node_throughput(ran_system.network, 3_000)
        assert set(totals) == set(ran_system.network.mesh.nodes())

    def test_report_renders(self, ran_system):
        text = render_link_report(ran_system.network, 3_000)
        assert "per-node" in text
        assert "LOCAL" in text
