"""NoC telemetry tests."""

import pytest

from repro.core.system import build_system
from repro.noc.telemetry import (
    buffer_highwater,
    hottest_links,
    link_stats,
    node_throughput,
    register_metrics,
    render_link_report,
)
from repro.noc.topology import Port
from repro.obs.metrics import MetricsRegistry
from repro.sim.config import NocDesign, SystemConfig


@pytest.fixture(scope="module")
def ran_system():
    system = build_system(SystemConfig(app="single_dtv", cycles=3_000,
                                       warmup=500,
                                       design=NocDesign.SDRAM_AWARE))
    system.run()
    return system


class TestLinkStats:
    def test_one_entry_per_output_channel(self, ran_system):
        stats = link_stats(ran_system.network, 3_000)
        expected = sum(
            len(router.outputs) for router in ran_system.network.routers
        )
        assert len(stats) == expected

    def test_utilization_bounded_by_capacity(self, ran_system):
        for stat in link_stats(ran_system.network, 3_000):
            assert 0.0 <= stat.utilization <= 1.0

    def test_flit_conservation_per_channel(self, ran_system):
        for stat in link_stats(ran_system.network, 3_000):
            assert stat.flits >= stat.packets  # every packet has >= 1 flit

    def test_cycles_must_be_positive(self, ran_system):
        with pytest.raises(ValueError):
            link_stats(ran_system.network, 0)


class TestHotspots:
    def test_memory_funnel_is_hottest(self, ran_system):
        """All memory traffic exits through node 0's LOCAL channel."""
        hottest = hottest_links(ran_system.network, 3_000, top=3)
        assert any(
            s.node == 0 and s.port in (Port.LOCAL, Port.EAST, Port.SOUTH)
            for s in hottest
        )

    def test_top_bound(self, ran_system):
        assert len(hottest_links(ran_system.network, 3_000, top=2)) == 2
        with pytest.raises(ValueError):
            hottest_links(ran_system.network, 3_000, top=0)

    def test_node_throughput_covers_all_nodes(self, ran_system):
        totals = node_throughput(ran_system.network, 3_000)
        assert set(totals) == set(ran_system.network.mesh.nodes())

    def test_report_renders(self, ran_system):
        text = render_link_report(ran_system.network, 3_000)
        assert "per-node" in text
        assert "LOCAL" in text


class TestHottestOrdering:
    def test_sorted_by_flits_descending(self, ran_system):
        ordered = hottest_links(ran_system.network, 3_000, top=10)
        flits = [stat.flits for stat in ordered]
        assert flits == sorted(flits, reverse=True)

    def test_ties_break_by_node_then_port(self, ran_system):
        all_links = hottest_links(ran_system.network, 3_000, top=10_000)
        for earlier, later in zip(all_links, all_links[1:]):
            if earlier.flits == later.flits:
                assert (earlier.node, earlier.port.name) < (
                    later.node,
                    later.port.name,
                )

    def test_idle_links_tie_deterministically(self, ran_system):
        """Repeated calls return the identical ordering (no set/dict-order
        or sort-stability dependence), including the all-zero tail."""
        first = hottest_links(ran_system.network, 3_000, top=10_000)
        second = hottest_links(ran_system.network, 3_000, top=10_000)
        assert [(s.node, s.port) for s in first] == [
            (s.node, s.port) for s in second
        ]


class TestBufferHighwater:
    def test_one_mark_per_input_lane(self, ran_system):
        marks = buffer_highwater(ran_system.network)
        expected = sum(
            len(lanes)
            for router in ran_system.network.routers
            for lanes in router.inputs.values()
        )
        assert len(marks) == expected

    def test_marks_bounded_by_capacity(self, ran_system):
        marks = buffer_highwater(ran_system.network)
        for (node, port, lane), mark in marks.items():
            router = ran_system.network.routers[node]
            buffer = router.inputs[Port[port]][lane]
            assert 0 <= mark <= buffer.capacity_flits

    def test_traffic_raised_some_mark(self, ran_system):
        assert any(mark > 0 for mark in buffer_highwater(ran_system.network).values())


class TestRegisterMetrics:
    def test_registers_links_and_highwater(self, ran_system):
        registry = MetricsRegistry()
        register_metrics(ran_system.network, registry, 3_000)
        assert registry.names("noc.link.flits")
        assert registry.names("noc.link.packets")
        assert registry.names("noc.buffer.highwater")

    def test_flit_counts_match_link_stats(self, ran_system):
        registry = MetricsRegistry()
        register_metrics(ran_system.network, registry, 3_000)
        total = sum(
            registry.get(name).value
            for name in registry.names("noc.link.flits")
        )
        assert total == sum(
            stat.flits for stat in link_stats(ran_system.network, 3_000)
        )
