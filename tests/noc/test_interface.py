"""Network interface tests: injection, reassembly, memory-side service."""

from itertools import count

import pytest

from tests.helpers import make_request
from repro.core.sagm import SagmSplitter
from repro.dram.device import SdramDevice
from repro.dram.subsystem import ThinMemorySubsystem
from repro.dram.timing import DramTiming
from repro.noc.buffers import InputBuffer
from repro.noc.interface import CoreInterface, MemoryInterface
from repro.sim.config import DdrGeneration
from repro.sim.stats import StatsCollector


class ScriptedGenerator:
    """Issues a fixed list of requests, one per call."""

    def __init__(self, requests, master=0):
        self.master = master
        self.pending = list(requests)
        self.completions = []

    def generate(self, cycle):
        if self.pending:
            return [self.pending.pop(0)]
        return []

    def on_complete(self, request_id, cycle):
        self.completions.append((request_id, cycle))


def build_core_interface(requests, splitter=None, stats=None):
    stats = stats or StatsCollector()
    generator = ScriptedGenerator(requests)
    injection = InputBuffer(256)
    sink = InputBuffer(256)
    ni = CoreInterface(
        node=1, memory_node=0, generator=generator,
        injection_buffer=injection, sink=sink, stats=stats,
        packet_ids=count(), request_ids=count(1000), splitter=splitter,
    )
    return ni, generator, injection, sink, stats


class TestCoreInterface:
    def test_injects_request_packet(self):
        ni, _, injection, _, _ = build_core_interface([make_request()])
        ni.tick(0)
        assert ni.injected_packets == 1
        entry = injection.head()
        assert entry.packet.request is not None

    def test_sagm_splits_before_injection(self):
        request = make_request(beats=16)
        splitter = SagmSplitter(DdrGeneration.DDR2)
        ni, _, injection, _, _ = build_core_interface([request], splitter)
        ni.tick(0)
        assert ni.injected_packets == 4  # 16 beats / 4-beat granularity

    def test_completion_recorded_on_last_part(self):
        from repro.noc.packet import response_packet
        request = make_request(beats=16)
        splitter = SagmSplitter(DdrGeneration.DDR2)
        ni, generator, injection, sink, stats = build_core_interface(
            [request], splitter
        )
        ni.tick(0)
        parts = [injection.pop_complete().request for _ in range(4)]
        for i, part in enumerate(parts):
            sink.push_complete(response_packet(100 + i, part, 0, 1, 10))
            ni.tick(10 + i)
            if i < 3:
                assert stats.all_packets.count == 0
        assert stats.all_packets.count == 1
        assert generator.completions[0][0] == request.request_id

    def test_unknown_response_raises(self):
        from repro.noc.packet import response_packet
        ni, _, _, sink, _ = build_core_interface([])
        sink.push_complete(response_packet(1, make_request(), 0, 1, 0))
        with pytest.raises(RuntimeError):
            ni.tick(0)

    def test_injection_respects_buffer_space(self):
        big = make_request(beats=64, is_read=False)  # 32 flits
        requests = [big, make_request(beats=64, is_read=False)]
        generator = ScriptedGenerator(requests)
        injection = InputBuffer(32)
        ni = CoreInterface(
            node=1, memory_node=0, generator=generator,
            injection_buffer=injection, sink=InputBuffer(64),
            stats=StatsCollector(), packet_ids=count(), request_ids=count(),
        )
        ni.tick(0)
        ni.tick(1)
        assert ni.injected_packets == 1  # second blocked until space frees
        assert len(ni._pending) == 1


def build_memory_interface(ddr=DdrGeneration.DDR2, clock=333):
    timing = DramTiming.for_clock(ddr, clock)
    device = SdramDevice(timing)
    subsystem = ThinMemorySubsystem(device)
    sink = InputBuffer(64)
    injection = InputBuffer(256)
    ni = MemoryInterface(
        node=0, subsystem=subsystem, sink=sink, injection_buffer=injection,
        master_nodes={0: 1, 1: 2}, packet_ids=count(),
    )
    return ni, sink, injection


class TestMemoryInterface:
    def test_read_produces_data_response(self):
        from repro.noc.packet import request_packet
        ni, sink, injection = build_memory_interface()
        request = make_request(beats=8, is_read=True)
        sink.push_complete(request_packet(1, request, 1, 0, 0))
        for cycle in range(100):
            ni.tick(cycle)
            response = injection.pop_complete()
            if response is not None:
                assert response.request is request
                assert response.size_flits == 4
                assert response.dst == 1
                return
        pytest.fail("no response produced")

    def test_write_produces_single_flit_ack(self):
        from repro.noc.packet import request_packet
        ni, sink, injection = build_memory_interface()
        request = make_request(beats=16, is_read=False, master=1)
        sink.push_complete(request_packet(1, request, 2, 0, 0))
        for cycle in range(100):
            ni.tick(cycle)
            response = injection.pop_complete()
            if response is not None:
                assert response.size_flits == 1
                assert response.dst == 2
                return
        pytest.fail("no ack produced")

    def test_response_not_before_data_ready(self):
        from repro.noc.packet import request_packet
        ni, sink, injection = build_memory_interface()
        request = make_request(beats=8)
        sink.push_complete(request_packet(1, request, 1, 0, 0))
        timing = ni.subsystem.device.timing
        floor = timing.t_rcd + timing.cas_latency + timing.burst_cycles(8) - 1
        for cycle in range(200):
            ni.tick(cycle)
            if injection.pop_complete() is not None:
                assert cycle > floor
                return
        pytest.fail("no response produced")

    def test_admission_respects_subsystem_backpressure(self):
        from repro.noc.packet import request_packet
        ni, sink, injection = build_memory_interface()
        capacity = ni.subsystem.input_capacity
        for i in range(capacity + 3):
            packet = request_packet(i, make_request(beats=8), 1, 0, 0)
            if sink.can_inject(packet):
                sink.push_complete(packet)
        ni._admit(0)
        assert ni.admitted <= capacity

    def test_idle_when_drained(self):
        ni, sink, injection = build_memory_interface()
        assert ni.idle
        from repro.noc.packet import request_packet
        sink.push_complete(request_packet(1, make_request(), 1, 0, 0))
        assert not ni.idle
        for cycle in range(200):
            ni.tick(cycle)
        injection.pop_complete()
        assert ni.idle
