"""3-D mesh (p = 7) tests: topology, XYZ routing, end-to-end delivery."""

import pytest
from hypothesis import given, strategies as st

from tests.helpers import make_request
from repro.noc.flow_control import RoundRobinFlowController
from repro.noc.network import MeshNetwork
from repro.noc.packet import request_packet
from repro.noc.routing import xy_route
from repro.noc.topology import Mesh3D, Port


@pytest.fixture
def mesh():
    return Mesh3D(3, 3, 2)


class TestTopology:
    def test_layer_major_numbering(self, mesh):
        assert mesh.node_at(0, 0, 0) == 0
        assert mesh.node_at(2, 2, 0) == 8
        assert mesh.node_at(0, 0, 1) == 9
        assert mesh.coordinates(13) == (1, 1, 1)

    def test_up_down_neighbors(self, mesh):
        center_low = mesh.node_at(1, 1, 0)
        center_high = mesh.node_at(1, 1, 1)
        assert mesh.neighbor(center_low, Port.DOWN) == center_high
        assert mesh.neighbor(center_high, Port.UP) == center_low
        assert mesh.neighbor(center_low, Port.UP) is None
        assert mesh.neighbor(center_high, Port.DOWN) is None

    def test_interior_node_has_seven_ports(self):
        mesh = Mesh3D(3, 3, 3)
        center = mesh.node_at(1, 1, 1)
        assert len(mesh.ports(center)) == 7  # the paper's p = 7

    def test_opposite_includes_vertical(self):
        assert Mesh3D.opposite(Port.UP) is Port.DOWN
        assert Mesh3D.opposite(Port.DOWN) is Port.UP

    def test_hop_distance_manhattan_3d(self, mesh):
        a = mesh.node_at(0, 0, 0)
        b = mesh.node_at(2, 2, 1)
        assert mesh.hop_distance(a, b) == 5

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            Mesh3D(3, 3, 0)


class TestXyzRouting:
    def test_dimension_order_x_y_z(self, mesh):
        src = mesh.node_at(0, 0, 0)
        dst = mesh.node_at(2, 2, 1)
        assert xy_route(mesh, src, dst) is Port.EAST
        aligned_x = mesh.node_at(2, 0, 0)
        assert xy_route(mesh, aligned_x, dst) is Port.SOUTH
        aligned_xy = mesh.node_at(2, 2, 0)
        assert xy_route(mesh, aligned_xy, dst) is Port.DOWN

    def test_local_at_destination(self, mesh):
        assert xy_route(mesh, 5, 5) is Port.LOCAL

    @given(st.data())
    def test_every_hop_reduces_distance(self, data):
        mesh = Mesh3D(3, 2, 2)
        src = data.draw(st.integers(0, mesh.num_nodes - 1))
        dst = data.draw(st.integers(0, mesh.num_nodes - 1))
        node = src
        steps = 0
        while node != dst:
            port = xy_route(mesh, node, dst)
            nxt = mesh.neighbor(node, port)
            assert nxt is not None
            assert mesh.hop_distance(nxt, dst) == mesh.hop_distance(node, dst) - 1
            node = nxt
            steps += 1
            assert steps <= mesh.num_nodes


class TestNetwork3D:
    def test_all_pairs_deliver(self):
        network = MeshNetwork(
            Mesh3D(2, 2, 2),
            controller_factory=lambda n, p: RoundRobinFlowController(),
            buffer_flits=12,
            local_buffer_flits=64,
        )
        pid = 0
        expected = {}
        for src in network.mesh.nodes():
            for dst in network.mesh.nodes():
                if src == dst:
                    continue
                pid += 1
                packet = request_packet(pid, make_request(beats=2), src, dst, 0)
                if network.injection_buffer(src).can_inject(packet):
                    network.injection_buffer(src).push_complete(packet)
                    expected.setdefault(dst, set()).add(pid)
        received = {dst: set() for dst in expected}
        for cycle in range(400):
            network.tick(cycle)
            for dst in expected:
                popped = network.local_sink(dst).pop_complete()
                if popped is not None:
                    received[dst].add(popped.packet_id)
        assert received == expected

    def test_vertical_links_wired_both_ways(self):
        network = MeshNetwork(
            Mesh3D(2, 2, 2),
            controller_factory=lambda n, p: RoundRobinFlowController(),
            buffer_flits=12,
        )
        low = network.mesh.node_at(0, 0, 0)
        high = network.mesh.node_at(0, 0, 1)
        down_out = network.router(low).outputs[Port.DOWN]
        assert down_out.downstream == network.router(high).input_lanes(Port.UP)
