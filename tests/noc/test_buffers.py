"""Wormhole buffer tests: credits, entries, slots, retiring exposure."""

import pytest

from tests.helpers import make_request
from repro.noc.buffers import FlitEntry, InputBuffer
from repro.noc.packet import request_packet


def pkt(size_beats=8, pid=1, write=True):
    request = make_request(beats=size_beats, is_read=not write)
    return request_packet(pid, request, src=1, dst=0, cycle=0)


class TestCredits:
    def test_occupancy_tracks_resident_flits(self):
        buffer = InputBuffer(8)
        entry = buffer.open_entry(pkt(size_beats=8))
        assert buffer.occupancy_flits == 0
        buffer.commit_flit(entry)
        buffer.commit_flit(entry)
        assert buffer.occupancy_flits == 2
        # Occupancy is maintained incrementally, so flit departures must go
        # through send_flit (the router's commit path does).
        buffer.send_flit(entry)
        assert buffer.occupancy_flits == 1
        assert entry.sent == 1

    def test_credit_exhausted_at_capacity(self):
        buffer = InputBuffer(2)
        entry = buffer.open_entry(pkt(size_beats=8))
        buffer.commit_flit(entry)
        buffer.commit_flit(entry)
        assert not buffer.has_credit()
        with pytest.raises(RuntimeError):
            buffer.commit_flit(entry)

    def test_commit_past_packet_end_rejected(self):
        buffer = InputBuffer(8)
        entry = buffer.open_entry(pkt(size_beats=2))  # 1 flit
        buffer.commit_flit(entry)
        with pytest.raises(RuntimeError):
            buffer.commit_flit(entry)


class TestInjection:
    def test_push_complete_needs_full_room(self):
        buffer = InputBuffer(4)
        assert buffer.can_inject(pkt(size_beats=8))  # 4 flits
        buffer.push_complete(pkt(size_beats=8))
        assert not buffer.can_inject(pkt(size_beats=2))
        with pytest.raises(RuntimeError):
            buffer.push_complete(pkt(size_beats=2))

    def test_injected_packet_fully_received(self):
        buffer = InputBuffer(8)
        buffer.push_complete(pkt(size_beats=8))
        head = buffer.head()
        assert head is not None and head.fully_received


class TestPacketSlots:
    def test_slot_limit_bounds_entries(self):
        buffer = InputBuffer(32, max_packets=2)
        buffer.push_complete(pkt(size_beats=2, pid=1))
        buffer.push_complete(pkt(size_beats=2, pid=2))
        assert not buffer.can_inject(pkt(size_beats=2, pid=3))
        assert not buffer.can_open_entry()

    def test_reserve_slot_consumed_by_open(self):
        buffer = InputBuffer(32, max_packets=2)
        buffer.reserve_slot()
        buffer.reserve_slot()
        with pytest.raises(RuntimeError):
            buffer.reserve_slot()
        buffer.open_entry(pkt(pid=1))   # consumes one reservation
        assert not buffer.can_open_entry()

    def test_slot_freed_by_pop(self):
        buffer = InputBuffer(32, max_packets=1)
        buffer.push_complete(pkt(size_beats=2, pid=1))
        assert not buffer.can_open_entry()
        buffer.pop_complete()
        assert buffer.can_open_entry()

    def test_invalid_slot_count(self):
        with pytest.raises(ValueError):
            InputBuffer(8, max_packets=0)


class TestCandidates:
    def test_head_candidate_needs_head_flit(self):
        buffer = InputBuffer(8)
        entry = buffer.open_entry(pkt())
        assert buffer.head_candidate() is None
        buffer.commit_flit(entry)
        assert buffer.head_candidate() is entry

    def test_claimed_head_hides_candidate(self):
        buffer = InputBuffer(8)
        entry = buffer.open_entry(pkt())
        buffer.commit_flit(entry)
        entry.claimed = True
        assert buffer.head_candidate() is None

    def test_retiring_head_exposes_successor(self):
        buffer = InputBuffer(8)
        first = buffer.open_entry(pkt(pid=1, size_beats=2))
        buffer.commit_flit(first)
        second = buffer.open_entry(pkt(pid=2, size_beats=2))
        buffer.commit_flit(second)
        first.claimed = True
        assert buffer.head_candidate() is None
        first.retiring = True
        assert buffer.head_candidate() is second

    def test_pop_complete_requires_full_arrival(self):
        buffer = InputBuffer(8)
        entry = buffer.open_entry(pkt(size_beats=8))  # 4 flits
        buffer.commit_flit(entry)
        assert buffer.pop_complete() is None
        for _ in range(3):
            buffer.commit_flit(entry)
        popped = buffer.pop_complete()
        assert popped is entry.packet

    def test_retire_head_requires_fully_sent(self):
        buffer = InputBuffer(8)
        entry = buffer.open_entry(pkt(size_beats=2))
        buffer.commit_flit(entry)
        with pytest.raises(RuntimeError):
            buffer.retire_head()
        entry.sent = 1
        assert buffer.retire_head() is entry.packet


def test_arrivals_drained_once():
    buffer = InputBuffer(8)
    buffer.push_complete(pkt(pid=7, size_beats=2))
    arrivals = buffer.drain_arrivals()
    assert [p.packet_id for p in arrivals] == [7]
    assert buffer.drain_arrivals() == []


def test_flit_entry_repr_mentions_state():
    entry = FlitEntry(pkt(), received=1)
    assert "received=1" in repr(entry)
