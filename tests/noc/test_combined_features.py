"""Feature-combination tests: VCs x adaptive routing x 3-D meshes.

Each feature is tested alone elsewhere; these make sure the combinations
compose (the classic place for integration bugs in NoC simulators).
"""

import pytest

from tests.helpers import make_request
from repro.core.system import build_system, run_config
from repro.noc.flow_control import PriorityFirstFlowController
from repro.noc.network import MeshNetwork
from repro.noc.packet import request_packet
from repro.noc.routing import RoutingPolicy
from repro.noc.topology import Mesh, Mesh3D
from repro.sim.config import NocDesign, SystemConfig


def drive_all_pairs(network, beats=4, horizon=500):
    pid = 0
    expected = {}
    for src in network.mesh.nodes():
        for dst in network.mesh.nodes():
            if src == dst:
                continue
            pid += 1
            packet = request_packet(
                pid,
                make_request(beats=beats, is_read=False,
                             priority=(pid % 2 == 0)),
                src, dst, 0,
            )
            if network.injection_buffer(src).can_inject(packet):
                network.injection_buffer(src).push_complete(packet)
                expected.setdefault(dst, set()).add(pid)
    received = {dst: set() for dst in expected}
    for cycle in range(horizon):
        network.tick(cycle)
        for dst in expected:
            popped = network.local_sink(dst).pop_complete()
            if popped is not None:
                received[dst].add(popped.packet_id)
    return expected, received


class TestCombinations:
    def test_vcs_with_adaptive_routing(self):
        network = MeshNetwork(
            Mesh(3, 3),
            controller_factory=lambda n, p: PriorityFirstFlowController(),
            buffer_flits=12, local_buffer_flits=64,
            routing_policy=RoutingPolicy.WEST_FIRST,
            virtual_channels=2,
        )
        expected, received = drive_all_pairs(network)
        assert received == expected

    def test_vcs_on_3d_mesh(self):
        network = MeshNetwork(
            Mesh3D(2, 2, 2),
            controller_factory=lambda n, p: PriorityFirstFlowController(),
            buffer_flits=12, local_buffer_flits=64,
            virtual_channels=2,
        )
        expected, received = drive_all_pairs(network)
        assert received == expected

    def test_full_system_all_features(self):
        metrics = run_config(SystemConfig(
            app="bluray", design=NocDesign.GSS_SAGM,
            priority_enabled=True, sti=True, adaptive_routing=True,
            virtual_channels=2, num_gss_routers=3,
            cycles=3_000, warmup=500,
        ))
        assert metrics.completed > 50
        assert 0 < metrics.utilization <= 1

    def test_all_features_drain_cleanly(self):
        system = build_system(SystemConfig(
            app="bluray", design=NocDesign.GSS_SAGM,
            priority_enabled=True, sti=True, adaptive_routing=True,
            virtual_channels=2, cycles=2_000, warmup=300,
        ))
        system.run()
        for core in system.cores:
            core.spec.max_outstanding = 0
        for _ in range(20_000):
            system.simulator.step()
            if (
                all(ci.outstanding == 0 for ci in system.core_interfaces)
                and system.memory_interface.idle
                and system.network.in_flight_packets == 0
            ):
                break
        issued = sum(core.issued for core in system.cores)
        completed = sum(core.completed for core in system.cores)
        assert issued == completed
