"""MeshNetwork wiring and end-to-end delivery tests."""

import pytest

from tests.helpers import make_request
from repro.noc.flow_control import RoundRobinFlowController
from repro.noc.network import MeshNetwork
from repro.noc.packet import request_packet
from repro.noc.topology import Mesh, Port


def build_network(width=3, height=3, **kwargs):
    return MeshNetwork(
        Mesh(width, height),
        controller_factory=lambda n, p: RoundRobinFlowController(),
        **kwargs,
    )


class TestWiring:
    def test_links_connect_opposite_ports(self):
        network = build_network()
        east_out = network.router(0).outputs[Port.EAST]
        assert east_out.downstream == network.router(1).input_lanes(Port.WEST)

    def test_every_node_has_local_sink(self):
        network = build_network()
        for node in network.mesh.nodes():
            assert network.local_sink(node) is not None
            local_out = network.router(node).outputs[Port.LOCAL]
            assert local_out.downstream == [network.local_sink(node)]

    def test_sink_overrides(self):
        network = build_network(sink_flits={0: (36, 4)})
        assert network.local_sink(0).capacity_flits == 36
        assert network.local_sink(0).max_packets == 4
        assert network.local_sink(4).max_packets is None


class TestDelivery:
    def test_corner_to_corner(self):
        network = build_network()
        packet = request_packet(1, make_request(), src=8, dst=0, cycle=0)
        network.injection_buffer(8).push_complete(packet)
        received = None
        for cycle in range(40):
            network.tick(cycle)
            received = network.local_sink(0).pop_complete()
            if received is not None:
                break
        assert received is packet

    def test_all_pairs_deliver(self):
        network = build_network(width=2, height=2)
        pid = 0
        expected = {}
        for src in network.mesh.nodes():
            for dst in network.mesh.nodes():
                if src == dst:
                    continue
                pid += 1
                packet = request_packet(pid, make_request(beats=2), src, dst, 0)
                if network.injection_buffer(src).can_inject(packet):
                    network.injection_buffer(src).push_complete(packet)
                    expected.setdefault(dst, set()).add(pid)
        received = {dst: set() for dst in expected}
        for cycle in range(200):
            network.tick(cycle)
            for dst in expected:
                popped = network.local_sink(dst).pop_complete()
                if popped is not None:
                    received[dst].add(popped.packet_id)
        assert received == expected

    def test_in_flight_accounting(self):
        network = build_network()
        packet = request_packet(1, make_request(), src=8, dst=0, cycle=0)
        network.injection_buffer(8).push_complete(packet)
        assert network.in_flight_packets == 1
        for cycle in range(40):
            network.tick(cycle)
        # packet now sits in the destination sink
        assert network.in_flight_packets == 1
        network.local_sink(0).pop_complete()
        assert network.in_flight_packets == 0


class TestConservation:
    def test_no_packet_loss_under_load(self):
        """Inject a burst of packets from every node toward node 0 and
        check every one arrives exactly once."""
        network = build_network()
        injected = set()
        pid = 0
        for wave in range(4):
            for src in range(1, 9):
                pid += 1
                packet = request_packet(
                    pid, make_request(beats=4, is_read=False), src, 0, 0
                )
                if network.injection_buffer(src).can_inject(packet):
                    network.injection_buffer(src).push_complete(packet)
                    injected.add(pid)
        arrived = []
        for cycle in range(600):
            network.tick(cycle)
            popped = network.local_sink(0).pop_complete()
            if popped is not None:
                arrived.append(popped.packet_id)
        assert sorted(arrived) == sorted(injected)
        assert len(set(arrived)) == len(arrived)
