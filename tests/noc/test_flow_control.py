"""Conventional flow controller tests: RR, PFS, the dual split."""

import pytest

from tests.helpers import make_request
from repro.noc.flow_control import (
    DualFlowController,
    MemoryFlowController,
    PriorityFirstFlowController,
    RoundRobinFlowController,
)
from repro.noc.packet import request_packet, response_packet
from repro.noc.topology import Port


def req_pkt(pid, priority=False, cycle=0):
    return request_packet(pid, make_request(priority=priority), 1, 0, cycle)


def rsp_pkt(pid, priority=False, cycle=0):
    return response_packet(pid, make_request(priority=priority), 0, 1, cycle)


class TestRoundRobin:
    def test_rotates_across_ports(self):
        controller = RoundRobinFlowController()
        candidates = [(Port.NORTH, req_pkt(1)), (Port.EAST, req_pkt(2)),
                      (Port.SOUTH, req_pkt(3))]
        winners = []
        for _ in range(3):
            port, packet = controller.pick(candidates, 0)
            controller.on_scheduled(port, packet, 0)
            candidates = [c for c in candidates if c[0] is not port]
            winners.append(port)
        assert winners == [Port.NORTH, Port.EAST, Port.SOUTH]

    def test_pointer_skips_served_port(self):
        controller = RoundRobinFlowController()
        a = [(Port.NORTH, req_pkt(1)), (Port.EAST, req_pkt(2))]
        port, packet = controller.pick(a, 0)
        controller.on_scheduled(port, packet, 0)
        port2, _ = controller.pick(a, 1)
        assert port2 is not port

    def test_empty_returns_none(self):
        assert RoundRobinFlowController().pick([], 0) is None


class TestPriorityFirst:
    def test_priority_beats_round_robin(self):
        controller = PriorityFirstFlowController()
        candidates = [(Port.NORTH, req_pkt(1)), (Port.EAST, req_pkt(2, priority=True))]
        port, packet = controller.pick(candidates, 0)
        assert packet.packet_id == 2

    def test_oldest_priority_wins(self):
        controller = PriorityFirstFlowController()
        old = req_pkt(1, priority=True, cycle=0)
        new = req_pkt(2, priority=True, cycle=5)
        _, packet = controller.pick([(Port.NORTH, new), (Port.EAST, old)], 10)
        assert packet is old

    def test_falls_back_to_rr_without_priority(self):
        controller = PriorityFirstFlowController()
        winner = controller.pick([(Port.NORTH, req_pkt(1))], 0)
        assert winner is not None


class RecordingMemoryController(MemoryFlowController):
    """Test double: always picks the first memory candidate."""

    def __init__(self):
        self.arrivals = []
        self.scheduled = []
        self.delivered = []

    def on_arrival(self, port, packet, cycle):
        self.arrivals.append(packet.packet_id)

    def pick(self, candidates, cycle):
        return candidates[0]

    def on_scheduled(self, port, packet, cycle):
        self.scheduled.append(packet.packet_id)

    def on_delivered(self, packet, cycle):
        self.delivered.append(packet.packet_id)


class TestDual:
    def test_requests_routed_to_memory_controller(self):
        inner = RecordingMemoryController()
        dual = DualFlowController(inner)
        dual.on_arrival(Port.NORTH, req_pkt(1), 0)
        dual.on_arrival(Port.NORTH, rsp_pkt(2), 0)
        assert inner.arrivals == [1]

    def test_memory_winner_competes_with_normals(self):
        inner = RecordingMemoryController()
        dual = DualFlowController(inner)
        candidates = [(Port.NORTH, req_pkt(1)), (Port.EAST, rsp_pkt(2))]
        winner = dual.pick(candidates, 0)
        assert winner is not None
        # both classes reachable: run twice removing winner
        rest = [c for c in candidates if c[1] is not winner[1]]
        dual.on_scheduled(*winner, 0)
        second = dual.pick(rest, 1)
        assert {winner[1].packet_id, second[1].packet_id} == {1, 2}

    def test_normal_only_candidates_skip_memory_controller(self):
        inner = RecordingMemoryController()
        dual = DualFlowController(inner)
        winner = dual.pick([(Port.EAST, rsp_pkt(5))], 0)
        assert winner[1].packet_id == 5

    def test_delivery_routed_by_kind(self):
        inner = RecordingMemoryController()
        dual = DualFlowController(inner)
        dual.on_delivered(req_pkt(1), 0)
        dual.on_delivered(rsp_pkt(2), 0)
        assert inner.delivered == [1]

    def test_scheduled_forwarded_to_memory_controller(self):
        inner = RecordingMemoryController()
        dual = DualFlowController(inner)
        dual.on_scheduled(Port.NORTH, req_pkt(9), 0)
        assert inner.scheduled == [9]

    def test_empty_candidates(self):
        dual = DualFlowController(RecordingMemoryController())
        assert dual.pick([], 0) is None
