"""Mesh topology tests."""

import pytest
from hypothesis import given, strategies as st

from repro.noc.topology import Mesh, Port


@pytest.fixture
def mesh():
    return Mesh(3, 3)


class TestGeometry:
    def test_node_numbering_row_major(self, mesh):
        assert mesh.node_at(0, 0) == 0
        assert mesh.node_at(2, 0) == 2
        assert mesh.node_at(0, 1) == 3
        assert mesh.coordinates(8) == (2, 2)

    def test_num_nodes(self, mesh):
        assert mesh.num_nodes == 9
        assert list(mesh.nodes()) == list(range(9))

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            Mesh(0, 3)

    def test_out_of_range_lookups(self, mesh):
        with pytest.raises(ValueError):
            mesh.coordinates(9)
        with pytest.raises(ValueError):
            mesh.node_at(3, 0)


class TestNeighbors:
    def test_interior_node_has_all_neighbors(self):
        mesh = Mesh(3, 3)
        center = mesh.node_at(1, 1)
        assert mesh.neighbor(center, Port.NORTH) == mesh.node_at(1, 0)
        assert mesh.neighbor(center, Port.SOUTH) == mesh.node_at(1, 2)
        assert mesh.neighbor(center, Port.EAST) == mesh.node_at(2, 1)
        assert mesh.neighbor(center, Port.WEST) == mesh.node_at(0, 1)

    def test_corner_has_two_neighbors(self, mesh):
        assert mesh.neighbor(0, Port.NORTH) is None
        assert mesh.neighbor(0, Port.WEST) is None
        assert mesh.neighbor(0, Port.EAST) == 1
        assert mesh.neighbor(0, Port.SOUTH) == 3

    def test_local_has_no_neighbor(self, mesh):
        assert mesh.neighbor(4, Port.LOCAL) is None

    def test_ports_lists_usable_only(self, mesh):
        corner_ports = mesh.ports(0)
        assert Port.LOCAL in corner_ports
        assert Port.EAST in corner_ports and Port.SOUTH in corner_ports
        assert Port.NORTH not in corner_ports
        center_ports = mesh.ports(4)
        assert len(center_ports) == 5

    def test_opposite(self):
        assert Mesh.opposite(Port.NORTH) is Port.SOUTH
        assert Mesh.opposite(Port.EAST) is Port.WEST
        with pytest.raises(ValueError):
            Mesh.opposite(Port.LOCAL)


class TestDistance:
    def test_hop_distance_manhattan(self, mesh):
        assert mesh.hop_distance(0, 8) == 4
        assert mesh.hop_distance(0, 0) == 0
        assert mesh.hop_distance(2, 6) == 4

    @given(st.integers(1, 6), st.integers(1, 6), st.data())
    def test_neighbor_symmetry(self, width, height, data):
        mesh = Mesh(width, height)
        node = data.draw(st.integers(0, mesh.num_nodes - 1))
        for port in (Port.NORTH, Port.EAST, Port.SOUTH, Port.WEST):
            neighbor = mesh.neighbor(node, port)
            if neighbor is not None:
                assert mesh.neighbor(neighbor, Mesh.opposite(port)) == node

    @given(st.integers(1, 6), st.integers(1, 6), st.data())
    def test_distance_symmetric_and_triangle(self, width, height, data):
        mesh = Mesh(width, height)
        a = data.draw(st.integers(0, mesh.num_nodes - 1))
        b = data.draw(st.integers(0, mesh.num_nodes - 1))
        c = data.draw(st.integers(0, mesh.num_nodes - 1))
        assert mesh.hop_distance(a, b) == mesh.hop_distance(b, a)
        assert mesh.hop_distance(a, c) <= (
            mesh.hop_distance(a, b) + mesh.hop_distance(b, c)
        )
