"""XY routing tests: minimality, dimension order, livelock freedom."""

from hypothesis import given, strategies as st

from repro.noc.routing import route_path, xy_route
from repro.noc.topology import Mesh, Port


def test_local_delivery_at_destination():
    mesh = Mesh(3, 3)
    assert xy_route(mesh, 4, 4) is Port.LOCAL


def test_x_resolved_before_y():
    mesh = Mesh(3, 3)
    # from (0,0) to (2,2): move east first
    assert xy_route(mesh, 0, 8) is Port.EAST
    # from (2,0) to (2,2): x aligned, move south
    assert xy_route(mesh, 2, 8) is Port.SOUTH


def test_westward_and_northward():
    mesh = Mesh(3, 3)
    assert xy_route(mesh, 8, 0) is Port.WEST
    assert xy_route(mesh, 6, 0) is Port.NORTH


def test_route_path_endpoints():
    mesh = Mesh(3, 3)
    path = route_path(mesh, 2, 6)
    assert path[0] == 2 and path[-1] == 6


def test_route_path_dimension_order():
    mesh = Mesh(4, 4)
    path = route_path(mesh, mesh.node_at(3, 0), mesh.node_at(0, 3))
    xs = [mesh.coordinates(n)[0] for n in path]
    ys = [mesh.coordinates(n)[1] for n in path]
    # X strictly resolves before any Y movement
    first_y_move = next(i for i in range(1, len(ys)) if ys[i] != ys[i - 1])
    assert all(x == xs[first_y_move - 1] for x in xs[first_y_move - 1:])


@given(st.integers(1, 6), st.integers(1, 6), st.data())
def test_paths_are_minimal(width, height, data):
    mesh = Mesh(width, height)
    src = data.draw(st.integers(0, mesh.num_nodes - 1))
    dst = data.draw(st.integers(0, mesh.num_nodes - 1))
    path = route_path(mesh, src, dst)
    assert len(path) - 1 == mesh.hop_distance(src, dst)


@given(st.integers(1, 6), st.integers(1, 6), st.data())
def test_every_hop_reduces_distance(width, height, data):
    """Livelock freedom: each hop strictly approaches the destination."""
    mesh = Mesh(width, height)
    src = data.draw(st.integers(0, mesh.num_nodes - 1))
    dst = data.draw(st.integers(0, mesh.num_nodes - 1))
    node = src
    steps = 0
    while node != dst:
        port = xy_route(mesh, node, dst)
        nxt = mesh.neighbor(node, port)
        assert nxt is not None
        assert mesh.hop_distance(nxt, dst) == mesh.hop_distance(node, dst) - 1
        node = nxt
        steps += 1
        assert steps <= mesh.num_nodes
