"""West-first minimal adaptive routing tests."""

import pytest
from hypothesis import given, strategies as st

from tests.helpers import make_request
from repro.noc.flow_control import RoundRobinFlowController
from repro.noc.network import MeshNetwork
from repro.noc.packet import request_packet
from repro.noc.routing import RoutingPolicy, admissible_ports, xy_route
from repro.noc.topology import Mesh, Port


class TestAdmissiblePorts:
    def test_xy_returns_single_port(self):
        mesh = Mesh(3, 3)
        ports = admissible_ports(mesh, 4, 0, RoutingPolicy.XY)
        assert ports == [xy_route(mesh, 4, 0)]

    def test_local_at_destination(self):
        mesh = Mesh(3, 3)
        for policy in RoutingPolicy:
            assert admissible_ports(mesh, 4, 4, policy) == [Port.LOCAL]

    def test_westward_is_deterministic(self):
        """West-first: all west hops first, no adaptivity while west remains."""
        mesh = Mesh(3, 3)
        assert admissible_ports(mesh, 5, 0, RoutingPolicy.WEST_FIRST) == [Port.WEST]

    def test_east_south_quadrant_is_adaptive(self):
        mesh = Mesh(3, 3)
        ports = admissible_ports(mesh, 0, 8, RoutingPolicy.WEST_FIRST)
        assert set(ports) == {Port.EAST, Port.SOUTH}

    def test_aligned_destinations_single_port(self):
        mesh = Mesh(3, 3)
        assert admissible_ports(mesh, 0, 2, RoutingPolicy.WEST_FIRST) == [Port.EAST]
        assert admissible_ports(mesh, 0, 6, RoutingPolicy.WEST_FIRST) == [Port.SOUTH]

    @given(st.integers(2, 5), st.integers(2, 5), st.data())
    def test_all_admissible_ports_are_minimal(self, width, height, data):
        mesh = Mesh(width, height)
        node = data.draw(st.integers(0, mesh.num_nodes - 1))
        dst = data.draw(st.integers(0, mesh.num_nodes - 1))
        for port in admissible_ports(mesh, node, dst, RoutingPolicy.WEST_FIRST):
            if port is Port.LOCAL:
                assert node == dst
                continue
            nxt = mesh.neighbor(node, port)
            assert nxt is not None
            assert mesh.hop_distance(nxt, dst) == mesh.hop_distance(node, dst) - 1

    @given(st.integers(2, 5), st.integers(2, 5), st.data())
    def test_turn_model_never_turns_into_west(self, width, height, data):
        """The west-first invariant: WEST is only admissible while *all*
        remaining movement west is pending, i.e. no packet ever turns from
        N/S/E travel back into WEST — the cycles that would deadlock."""
        mesh = Mesh(width, height)
        node = data.draw(st.integers(0, mesh.num_nodes - 1))
        dst = data.draw(st.integers(0, mesh.num_nodes - 1))
        ports = admissible_ports(mesh, node, dst, RoutingPolicy.WEST_FIRST)
        if Port.WEST in ports:
            assert ports == [Port.WEST]


class TestAdaptiveNetwork:
    def build(self):
        return MeshNetwork(
            Mesh(3, 3),
            controller_factory=lambda n, p: RoundRobinFlowController(),
            buffer_flits=12,
            local_buffer_flits=64,
            routing_policy=RoutingPolicy.WEST_FIRST,
        )

    def test_delivery_all_pairs(self):
        network = self.build()
        pid = 0
        expected = {}
        for src in range(9):
            for dst in range(9):
                if src == dst:
                    continue
                pid += 1
                packet = request_packet(pid, make_request(beats=2), src, dst, 0)
                if network.injection_buffer(src).can_inject(packet):
                    network.injection_buffer(src).push_complete(packet)
                    expected.setdefault(dst, set()).add(pid)
        received = {dst: set() for dst in expected}
        for cycle in range(400):
            network.tick(cycle)
            for dst in expected:
                popped = network.local_sink(dst).pop_complete()
                if popped is not None:
                    received[dst].add(popped.packet_id)
        assert received == expected

    def test_heavy_corner_traffic_drains(self):
        """Many-to-one traffic toward the corner must not deadlock."""
        network = self.build()
        pid = 0
        injected = 0
        for wave in range(6):
            for src in range(1, 9):
                pid += 1
                packet = request_packet(
                    pid, make_request(beats=8, is_read=False), src, 0, 0
                )
                if network.injection_buffer(src).can_inject(packet):
                    network.injection_buffer(src).push_complete(packet)
                    injected += 1
        arrived = 0
        for cycle in range(2_000):
            network.tick(cycle)
            if network.local_sink(0).pop_complete() is not None:
                arrived += 1
        assert arrived == injected
