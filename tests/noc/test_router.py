"""Router tests: wormhole pipelining, winner-take-all, backpressure."""

import pytest

from tests.helpers import make_request
from repro.noc.buffers import InputBuffer
from repro.noc.flow_control import RoundRobinFlowController
from repro.noc.packet import request_packet, response_packet
from repro.noc.router import Router
from repro.noc.topology import Mesh, Port


def build_router(node=4, mesh=None, buffer_flits=16):
    mesh = mesh or Mesh(3, 3)
    router = Router(node, mesh, lambda n, p: RoundRobinFlowController(),
                    buffer_flits)
    sinks = {}
    for port in router.ports:
        sink = InputBuffer(64)
        sinks[port] = sink
        router.connect(port, sink)
    return router, sinks


def tick(router, cycles, start=0):
    for cycle in range(start, start + cycles):
        router.tick(cycle)
    return start + cycles


class TestForwarding:
    def test_single_flit_packet_latency(self):
        router, sinks = build_router()
        packet = request_packet(1, make_request(), src=4, dst=0, cycle=0)
        router.input_buffer(Port.EAST).push_complete(packet)
        # cycle 0: arbitration claims; cycle 1: flit moves
        router.tick(0)
        assert len(sinks[Port.WEST]) == 0 or sinks[Port.WEST].head().received == 0
        router.tick(1)
        assert sinks[Port.WEST].pop_complete() is packet

    def test_routes_by_xy(self):
        router, sinks = build_router(node=4)
        # dst 0 is north-west of node 4: XY goes WEST first
        packet = request_packet(1, make_request(), src=4, dst=0, cycle=0)
        router.input_buffer(Port.LOCAL).push_complete(packet)
        tick(router, 3)
        assert sinks[Port.WEST].pop_complete() is packet

    def test_local_delivery(self):
        router, sinks = build_router(node=4)
        packet = response_packet(1, make_request(), src=0, dst=4, cycle=0)
        router.input_buffer(Port.NORTH).push_complete(packet)
        tick(router, 2 + packet.size_flits)
        assert sinks[Port.LOCAL].pop_complete() is packet

    def test_multiflit_transfer_one_flit_per_cycle(self):
        router, sinks = build_router()
        packet = request_packet(
            1, make_request(beats=16, is_read=False), src=4, dst=0, cycle=0
        )  # 8 flits
        router.input_buffer(Port.EAST).push_complete(packet)
        router.tick(0)  # claim
        for cycle in range(1, 8):
            router.tick(cycle)
            assert sinks[Port.WEST].pop_complete() is None
        router.tick(8)
        assert sinks[Port.WEST].pop_complete() is packet


class TestWinnerTakeAll:
    def test_channel_held_until_tail(self):
        router, sinks = build_router()
        big = request_packet(1, make_request(beats=16, is_read=False),
                             src=4, dst=0, cycle=0)  # 8 flits
        small = request_packet(2, make_request(), src=4, dst=0, cycle=0)
        router.input_buffer(Port.EAST).push_complete(big)
        router.tick(0)
        # small arrives later on another port but must wait for big's tail
        router.input_buffer(Port.SOUTH).push_complete(small)
        tick(router, 8, start=1)
        west = sinks[Port.WEST]
        first = west.pop_complete()
        assert first is big
        tick(router, 3, start=9)
        assert west.pop_complete() is small

    def test_different_outputs_transfer_concurrently(self):
        router, sinks = build_router()
        west_bound = request_packet(1, make_request(), src=4, dst=3, cycle=0)
        east_bound = response_packet(2, make_request(), src=4, dst=5, cycle=0)
        router.input_buffer(Port.LOCAL).push_complete(west_bound)
        router.input_buffer(Port.NORTH).push_complete(east_bound)
        tick(router, 2 + east_bound.size_flits)
        assert sinks[Port.WEST].pop_complete() is west_bound
        assert sinks[Port.EAST].pop_complete() is east_bound


class TestBackpressure:
    def test_stalls_without_downstream_credit(self):
        router, sinks = build_router()
        tiny_sink = InputBuffer(1)
        router.connect(Port.WEST, tiny_sink)
        packet = request_packet(1, make_request(beats=8, is_read=False),
                                src=4, dst=0, cycle=0)  # 4 flits
        router.input_buffer(Port.EAST).push_complete(packet)
        tick(router, 10)
        # only one flit fits downstream; the rest are stalled
        head = tiny_sink.head()
        assert head is not None and head.received == 1

    def test_resumes_when_credit_returns(self):
        router, sinks = build_router()
        small_sink = InputBuffer(2)
        router.connect(Port.WEST, small_sink)
        packet = request_packet(1, make_request(beats=8, is_read=False),
                                src=4, dst=0, cycle=0)
        router.input_buffer(Port.EAST).push_complete(packet)
        cycle = tick(router, 6)
        # drain downstream by consuming flits (simulate next hop); credit
        # is tracked incrementally, so departures go through send_flit
        entry = small_sink.head()
        while not entry.fully_received:
            if entry.resident_flits > 0:
                small_sink.send_flit(entry)
            router.tick(cycle)
            cycle += 1
            if cycle > 40:
                pytest.fail("transfer never completed")
        assert entry.packet is packet


class TestPipelining:
    def test_cut_through_across_two_routers(self):
        """A long packet's head reaches the second hop before its tail has
        left the first (wormhole), so total latency is hops + flits."""
        mesh = Mesh(3, 1)
        r0 = Router(0, mesh, lambda n, p: RoundRobinFlowController(), 64)
        r1 = Router(1, mesh, lambda n, p: RoundRobinFlowController(), 64)
        sink = InputBuffer(64)
        r0.connect(Port.EAST, r1.input_buffer(Port.WEST))
        r1.connect(Port.EAST, InputBuffer(64))
        r1.connect(Port.LOCAL, sink)
        packet = request_packet(1, make_request(beats=32, is_read=False),
                                src=0, dst=1, cycle=0)  # 16 flits
        r0.input_buffer(Port.LOCAL).push_complete(packet)
        cycle = 0
        while sink.pop_complete() is None and cycle < 60:
            r0.plan(cycle); r1.plan(cycle)
            r0.commit(cycle); r1.commit(cycle)
            cycle += 1
        # store-and-forward would need ~32+ cycles; cut-through ~19
        assert cycle < 26
