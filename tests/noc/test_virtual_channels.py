"""Virtual-channel buffering tests (Section IV-A's second organization)."""

import pytest

from tests.helpers import make_request
from repro.noc.buffers import InputBuffer
from repro.noc.flow_control import PriorityFirstFlowController
from repro.noc.network import MeshNetwork
from repro.noc.packet import request_packet
from repro.noc.router import Router
from repro.noc.topology import Mesh, Port


def build_vc_router(node=4, vcs=2):
    mesh = Mesh(3, 3)
    router = Router(node, mesh, lambda n, p: PriorityFirstFlowController(),
                    buffer_flits=16, local_buffer_flits=64,
                    virtual_channels=vcs)
    sinks = {}
    for port in router.ports:
        lanes = [InputBuffer(64) for _ in range(vcs)]
        sinks[port] = lanes
        router.connect(port, lanes)
    return router, sinks


class TestLaneStructure:
    def test_inter_router_ports_get_lanes(self):
        router, _ = build_vc_router(vcs=2)
        assert len(router.input_lanes(Port.EAST)) == 2
        # LOCAL injection stays single-lane
        assert len(router.input_lanes(Port.LOCAL)) == 1

    def test_lane_for_routes_priority_to_second_lane(self):
        router, _ = build_vc_router(vcs=2)
        output = router.outputs[Port.WEST]
        be = request_packet(1, make_request(), 4, 0, 0)
        pri = request_packet(2, make_request(priority=True), 4, 0, 0)
        assert output.lane_for(be) is output.downstream[0]
        assert output.lane_for(pri) is output.downstream[1]

    def test_single_lane_serves_everything(self):
        router, _ = build_vc_router(vcs=1)
        output = router.outputs[Port.WEST]
        pri = request_packet(2, make_request(priority=True), 4, 0, 0)
        assert output.lane_for(pri) is output.downstream[0]

    def test_vc_count_validated(self):
        mesh = Mesh(3, 3)
        with pytest.raises(ValueError):
            Router(4, mesh, lambda n, p: PriorityFirstFlowController(),
                   buffer_flits=16, virtual_channels=0)


class TestPriorityBypass:
    def test_priority_overtakes_blocked_best_effort_same_port(self):
        """The VC payoff: a best-effort packet stalled for downstream
        credit no longer blocks a priority packet in the same input port."""
        router, sinks = build_vc_router(vcs=2)
        # choke the best-effort lane of the WEST output
        tiny = [InputBuffer(2), InputBuffer(64)]
        router.connect(Port.WEST, tiny)
        big_be = request_packet(1, make_request(beats=32, is_read=False),
                                4, 0, 0)  # 16 flits, BE lane is 2 deep
        pri = request_packet(2, make_request(priority=True), 4, 0, 0)
        router.input_lanes(Port.EAST)[0].push_complete(big_be)
        router.input_lanes(Port.EAST)[1].push_complete(pri)
        delivered_pri = None
        for cycle in range(30):
            router.tick(cycle)
            head = tiny[1].pop_complete()
            if head is not None:
                delivered_pri = (cycle, head)
                break
        assert delivered_pri is not None and delivered_pri[1] is pri
        # the best-effort packet has not made it through the choked lane
        assert tiny[0].pop_complete() is None

    def test_single_vc_priority_blocks_behind_best_effort(self):
        router, sinks = build_vc_router(vcs=1)
        tiny = [InputBuffer(2)]
        router.connect(Port.WEST, tiny)
        big_be = request_packet(1, make_request(beats=16, is_read=False),
                                4, 0, 0)  # 8 flits
        pri = request_packet(2, make_request(priority=True), 4, 0, 0)
        router.input_lanes(Port.EAST)[0].push_complete(big_be)
        # priority arrives behind the BE packet in the same FIFO
        router.input_lanes(Port.EAST)[0].push_complete(pri)
        for cycle in range(30):
            router.tick(cycle)
        # neither escaped: BE holds the channel, priority waits behind it
        assert tiny[0].head() is not None
        assert tiny[0].head().packet is big_be


class TestVcNetwork:
    def test_conservation_with_vcs(self):
        network = MeshNetwork(
            Mesh(3, 3),
            controller_factory=lambda n, p: PriorityFirstFlowController(),
            buffer_flits=12,
            local_buffer_flits=64,
            virtual_channels=2,
        )
        injected = set()
        pid = 0
        for wave in range(4):
            for src in range(1, 9):
                pid += 1
                packet = request_packet(
                    pid, make_request(beats=4, is_read=False,
                                      priority=(pid % 3 == 0)), src, 0, 0
                )
                if network.injection_buffer(src).can_inject(packet):
                    network.injection_buffer(src).push_complete(packet)
                    injected.add(pid)
        arrived = set()
        for cycle in range(800):
            network.tick(cycle)
            popped = network.local_sink(0).pop_complete()
            if popped is not None:
                arrived.add(popped.packet_id)
        assert arrived == injected

    def test_full_system_with_vcs(self):
        from repro.core.system import run_config
        from repro.sim.config import NocDesign, SystemConfig

        metrics = run_config(SystemConfig(
            app="bluray", design=NocDesign.GSS_SAGM, virtual_channels=2,
            priority_enabled=True, cycles=3_000, warmup=500,
        ))
        assert metrics.completed > 50

    def test_vcs_improve_priority_latency(self):
        from repro.core.system import run_config
        from repro.sim.config import NocDesign, SystemConfig

        base = SystemConfig(app="single_dtv", design=NocDesign.GSS_SAGM,
                            priority_enabled=True, cycles=6_000, warmup=1_000)
        one = run_config(base)
        two = run_config(base.with_(virtual_channels=2))
        assert two.latency_demand < one.latency_demand
