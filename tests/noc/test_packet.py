"""Packet sizing tests (Section IV-C flit accounting)."""

import pytest
from hypothesis import given, strategies as st

from tests.helpers import make_request
from repro.noc.packet import (
    Packet,
    PacketKind,
    flits_for_beats,
    request_packet,
    response_packet,
)


class TestFlitSizing:
    def test_two_beats_per_flit(self):
        assert flits_for_beats(8) == 4
        assert flits_for_beats(7) == 4
        assert flits_for_beats(1) == 1
        assert flits_for_beats(0) == 1

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            flits_for_beats(-1)

    def test_read_request_is_one_flit(self):
        packet = request_packet(1, make_request(beats=64, is_read=True), 1, 0, 0)
        assert packet.size_flits == 1

    def test_write_request_carries_data(self):
        packet = request_packet(1, make_request(beats=64, is_read=False), 1, 0, 0)
        assert packet.size_flits == 32

    def test_read_response_carries_data(self):
        packet = response_packet(1, make_request(beats=64, is_read=True), 0, 1, 0)
        assert packet.size_flits == 32

    def test_write_ack_is_one_flit(self):
        packet = response_packet(1, make_request(beats=64, is_read=False), 0, 1, 0)
        assert packet.size_flits == 1

    @given(beats=st.integers(1, 128), is_read=st.booleans())
    def test_request_plus_response_carry_data_exactly_once(self, beats, is_read):
        request = make_request(beats=beats, is_read=is_read)
        req = request_packet(1, request, 1, 0, 0)
        rsp = response_packet(2, request, 0, 1, 0)
        data_flits = flits_for_beats(beats)
        assert req.size_flits + rsp.size_flits == data_flits + 1


class TestValidation:
    def test_request_packet_requires_request(self):
        with pytest.raises(ValueError):
            Packet(1, PacketKind.REQUEST, 0, 1, size_flits=1, created_cycle=0)

    def test_positive_size_required(self):
        with pytest.raises(ValueError):
            Packet(1, PacketKind.RESPONSE, 0, 1, size_flits=0, created_cycle=0)

    def test_priority_reflects_request_class(self):
        pri = request_packet(1, make_request(priority=True), 1, 0, 0)
        be = request_packet(2, make_request(), 1, 0, 0)
        assert pri.is_priority and not be.is_priority

    def test_kind_helpers(self):
        req = request_packet(1, make_request(), 1, 0, 0)
        rsp = response_packet(2, make_request(), 0, 1, 0)
        assert req.is_memory_request and not req.is_response
        assert rsp.is_response and not rsp.is_memory_request
