"""Shared factories for the test suite."""

from itertools import count

from repro.dram.request import MemoryRequest, ServiceClass

_ids = count(1)


def make_request(
    bank=0,
    row=0,
    column=0,
    beats=8,
    is_read=True,
    priority=False,
    demand=False,
    master=0,
    **kwargs,
):
    """Factory for MemoryRequests with sensible defaults."""
    return MemoryRequest(
        request_id=kwargs.pop("request_id", next(_ids)),
        master=master,
        bank=bank,
        row=row,
        column=column,
        beats=beats,
        is_read=is_read,
        service=ServiceClass.PRIORITY if priority else ServiceClass.BEST_EFFORT,
        is_demand=demand,
        **kwargs,
    )
