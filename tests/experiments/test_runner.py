"""Experiment runner tests."""

import pytest

from repro.experiments.runner import (
    AveragedMetrics,
    experiment_config,
    run_averaged,
    run_once,
)
from repro.sim.config import NocDesign, SystemConfig
from repro.sim.stats import RunMetrics


def _metrics(latency):
    return RunMetrics(
        utilization=0.5, raw_utilization=0.55, latency_all=latency,
        latency_demand=latency / 2, completed=100, row_hit_rate=0.4,
        cycles=1_000,
    )


class TestAveraging:
    def test_averages_fields(self):
        avg = AveragedMetrics.from_runs([_metrics(100), _metrics(200)])
        assert avg.latency_all == 150
        assert avg.latency_demand == 75
        assert avg.runs == 2

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            AveragedMetrics.from_runs([])


class TestRunning:
    def test_run_once_returns_result(self):
        config = SystemConfig(app="bluray", cycles=2_000, warmup=400)
        result = run_once(config)
        assert result.config is config
        assert result.metrics.completed > 0

    def test_run_averaged_uses_all_seeds(self):
        config = SystemConfig(app="bluray", cycles=2_000, warmup=400)
        averaged = run_averaged(config, seeds=(1, 2, 3))
        assert averaged.runs == 3

    def test_seed_averaging_between_extremes(self):
        config = SystemConfig(app="bluray", cycles=2_000, warmup=400)
        a = run_once(config.with_(seed=1)).metrics.latency_all
        b = run_once(config.with_(seed=2)).metrics.latency_all
        averaged = run_averaged(config, seeds=(1, 2))
        low, high = sorted((a, b))
        assert low <= averaged.latency_all <= high


class TestExperimentConfig:
    def test_defaults_applied(self):
        config = experiment_config(app="bluray")
        assert config.cycles == 20_000
        assert config.warmup == 3_000

    def test_overrides_win(self):
        config = experiment_config(app="bluray", cycles=500, warmup=100)
        assert config.cycles == 500

    def test_passes_through_design(self):
        config = experiment_config(design=NocDesign.GSS)
        assert config.design is NocDesign.GSS
