"""Arbiter-comparison experiment: cells, WCET pairing, rendering."""

import pytest

from repro.experiments.comparison import (
    ArbiterCell,
    ArbiterComparisonResult,
    DEFAULT_ARBITERS,
    render_arbiter_comparison,
    run_arbiter_comparison,
)
from repro.experiments.runner import AveragedMetrics
from repro.sim.config import DdrGeneration, NocDesign

TINY = dict(cycles=1_500, warmup=300, seeds=(2010,))


@pytest.fixture(scope="module")
def small_result():
    return run_arbiter_comparison(
        arbiters=("engine", "dpq"), apps=("single_dtv",), **TINY
    )


class TestRun:
    def test_one_cell_per_point_and_arbiter(self, small_result):
        # single_dtv has three clock points; two arbiters.
        assert len(small_result.cells) == 6
        cell = small_result.cell("single_dtv", DdrGeneration.DDR2, "dpq")
        assert cell.arbiter == "dpq"
        assert cell.metrics.completed > 0

    def test_dpq_cells_carry_a_bound(self, small_result):
        for ddr in (DdrGeneration.DDR1, DdrGeneration.DDR2, DdrGeneration.DDR3):
            dpq = small_result.cell("single_dtv", ddr, "dpq")
            assert dpq.metrics.wcet_bound is not None
            assert dpq.metrics.service_p100 <= dpq.metrics.wcet_bound
            engine = small_result.cell("single_dtv", ddr, "engine")
            assert engine.metrics.wcet_bound is None

    def test_no_bound_violations(self, small_result):
        assert small_result.bound_violations() == []

    def test_averages_cover_requested_arbiters(self, small_result):
        averages = small_result.averages()
        assert set(averages) == {"engine", "dpq"}
        assert averages["engine"]["utilization"] > 0

    def test_default_arbiters_are_all_builtins(self):
        assert DEFAULT_ARBITERS == (
            "engine", "memmax", "databahn", "dpq", "bank-reg"
        )


class TestRender:
    def test_table_has_wcet_columns(self, small_result):
        text = render_arbiter_comparison(small_result)
        assert "dpq:wcet" in text
        assert "engine:p100" in text
        assert "gss+sagm" in text
        assert "—" in text  # engine has no analytic bound

    def test_violations_rendered_loudly(self):
        metrics = AveragedMetrics(
            utilization=0.5, raw_utilization=0.5, latency_all=10.0,
            latency_demand=0.0, completed=10.0, row_hit_rate=0.5, runs=1,
            service_p100=999.0, wcet_bound=100.0,
        )
        result = ArbiterComparisonResult(
            design=NocDesign.GSS_SAGM, arbiters=["dpq"],
            cells=[
                ArbiterCell(
                    "single_dtv", DdrGeneration.DDR2, 333, "dpq", metrics
                )
            ],
        )
        assert len(result.bound_violations()) == 1
        text = render_arbiter_comparison(result)
        assert "BOUND VIOLATIONS" in text
        assert "p100 999 > bound 100" in text
