"""Miniature versions of every paper exhibit: shape and rendering checks.

These run the real experiment drivers at a tiny cycle count — enough to
verify plumbing, result shapes, and renderers, while the full-length runs
live in benchmarks/.
"""

import pytest

from repro.experiments.fig8 import knee_index, render as render_fig8, run_fig8
from repro.experiments.table1 import render as render_t1, run_table1
from repro.experiments.table2 import render as render_t2, run_table2
from repro.experiments.table3 import render as render_t3, run_table3
from repro.experiments.table4 import render as render_t4, run_table4
from repro.experiments.table5 import render as render_t5, run_table5
from repro.sim.config import DdrGeneration, NocDesign

TINY = dict(cycles=1_500, warmup=300, seeds=(2010,))


@pytest.fixture(scope="module")
def table1_result():
    return run_table1(**TINY)


class TestTable1:
    def test_covers_all_cells(self, table1_result):
        assert len(table1_result.cells) == 9 * 4

    def test_averages_have_all_designs(self, table1_result):
        averages = table1_result.averages()
        assert set(averages) == set(table1_result.designs)
        for values in averages.values():
            assert values["utilization"] > 0

    def test_ratio_normalized_to_baseline(self, table1_result):
        ratios = table1_result.ratios(NocDesign.SDRAM_AWARE)
        baseline = ratios[NocDesign.SDRAM_AWARE]
        assert all(v == pytest.approx(1.0) for v in baseline.values())

    def test_render_contains_rows(self, table1_result):
        text = render_t1(table1_result)
        assert "bluray" in text and "Ratio" in text

    def test_cell_lookup(self, table1_result):
        cell = table1_result.cell("bluray", DdrGeneration.DDR1,
                                  NocDesign.CONV)
        assert cell.clock_mhz == 133
        with pytest.raises(KeyError):
            table1_result.cell("bluray", DdrGeneration.DDR1, NocDesign.CONV_PFS)


class TestTable2:
    def test_runs_and_renders(self):
        result = run_table2(**TINY)
        assert len(result.comparison.cells) == 9 * 4
        ratios = result.ratios()
        assert NocDesign.GSS_SAGM in ratios
        text = render_t2(result)
        assert "Ratio vs Table I [4]" in text


class TestTable3:
    def test_three_rows_with_improvements(self):
        rows = run_table3(**TINY)
        assert len(rows) == 3
        for row in rows:
            assert row.with_sti.utilization > 0
            # improvements are finite percentages
            assert -1 < row.utilization_improvement < 1
        text = render_t3(rows)
        assert "Average" in text


class TestTable4:
    def test_static_model(self):
        data = run_table4()
        assert data["noc_3x3"]["conv"] > data["noc_3x3"]["gss+sagm+sti"]
        assert "Table IV" in render_t4(data)


class TestTable5:
    def test_static_model(self):
        data = run_table5()
        assert len(data) == 3
        assert "Table V" in render_t5(data)


class TestFig8:
    def test_sweep_shapes(self):
        curves = run_fig8(cycles=1_200, warmup=240, seeds=(2010,),
                          max_routers=3)
        assert len(curves) == 3
        for curve in curves:
            assert curve.gss_router_counts == [0, 1, 2, 3]
            assert len(curve.utilization) == 4
        text = render_fig8(curves)
        assert "#GSS" in text

    def test_knee_index_finds_threshold(self):
        from repro.experiments.fig8 import Fig8Curve
        curve = Fig8Curve(
            app="x", ddr=DdrGeneration.DDR1, clock_mhz=200,
            gss_router_counts=[0, 1, 2, 3, 4],
            utilization=[0.4, 0.55, 0.62, 0.64, 0.645],
            latency_all=[0] * 5, latency_priority=[0] * 5,
        )
        assert knee_index(curve) in (2, 3)

    def test_knee_with_flat_curve(self):
        from repro.experiments.fig8 import Fig8Curve
        curve = Fig8Curve(
            app="x", ddr=DdrGeneration.DDR1, clock_mhz=200,
            gss_router_counts=[0, 1], utilization=[0.5, 0.5],
            latency_all=[0, 0], latency_priority=[0, 0],
        )
        assert knee_index(curve) == 0
