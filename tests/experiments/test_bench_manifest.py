"""Bench harness metadata: host manifests, cross-host flagging, and the
per-repetition telemetry hook."""

import json

from repro.experiments import bench
from repro.obs.stream import TelemetryWriter, read_stream


class TestBestOfHook:
    def test_on_rep_sees_every_repetition(self):
        elapsed = iter([0.5, 0.3, 0.2, 0.4])
        seen = []
        best = bench._best_of(
            lambda: next(elapsed), reps=4, warmup_reps=1,
            on_rep=lambda rep, s, warm: seen.append((rep, s, warm)),
        )
        assert best == 0.2
        assert [entry[0] for entry in seen] == [0, 1, 2, 3]
        assert [entry[2] for entry in seen] == [True, False, False, False]

    def test_round_publisher_emits_bench_rounds(self, tmp_path):
        path = tmp_path / "bench.ndjson"
        with TelemetryWriter(path) as telemetry:
            hook = bench._round_publisher(telemetry, "dram_engine")
            hook(0, 0.5, True)
            hook(1, 0.4, False)
        records = read_stream(path)
        assert [r["type"] for r in records] == ["bench_round"] * 2
        assert records[0]["bench"] == "dram_engine"
        assert records[0]["warmup"] is True
        assert records[1]["wall_s"] == 0.4

    def test_publisher_none_without_telemetry(self):
        assert bench._round_publisher(None, "x") is None


class TestTrajectoryHostManifest:
    def test_write_trajectory_embeds_host(self, tmp_path):
        path = tmp_path / "BENCH_X.json"
        point = {"calibration_kops": 100.0}
        document = bench.write_trajectory(str(path), point)
        host = document["host"]
        for field in ("python", "numpy", "cpu_count", "git", "hostname"):
            assert field in host
        # And it round-trips through the file.
        assert json.loads(path.read_text())["host"]["python"] \
            == host["python"]

    def test_host_mismatch_flags_divergent_fields(self):
        recorded = {
            "python": "3.10.1", "implementation": "CPython",
            "numpy": True, "hostname": "ci-runner-1",
        }
        observed = dict(recorded, numpy=False, hostname="laptop")
        warnings = bench.host_mismatch(recorded, observed)
        assert len(warnings) == 2
        assert any("numpy" in w for w in warnings)
        assert any("hostname" in w for w in warnings)

    def test_identical_hosts_are_silent(self):
        manifest = {
            "python": "3.11.0", "implementation": "CPython",
            "numpy": True, "hostname": "same",
        }
        assert bench.host_mismatch(manifest, dict(manifest)) == []

    def test_missing_recorded_manifest_is_not_a_mismatch(self):
        assert bench.host_mismatch(None) == []
        assert bench.host_mismatch({}) == []

    def test_defaults_to_current_process_manifest(self):
        from repro.obs.stream import host_manifest

        assert bench.host_mismatch(host_manifest()) == []
