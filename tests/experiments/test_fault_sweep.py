"""Fault-rate sweep driver: shape, control row, ledger, rendering."""

import dataclasses

import pytest

from repro.experiments.fault_sweep import (
    DRAIN_CYCLES,
    FAULT_SWEEP_RATES,
    FaultSweepPoint,
    render,
    run_fault_point,
    run_fault_sweep,
)

TINY = dict(cycles=1_500, warmup=300)


@pytest.fixture(scope="module")
def sweep():
    return run_fault_sweep(rates=(0.0, 1e-3), **TINY)


class TestSweep:
    def test_default_rates_span_decades(self):
        assert FAULT_SWEEP_RATES[0] == 0.0
        assert list(FAULT_SWEEP_RATES) == sorted(FAULT_SWEEP_RATES)

    def test_one_point_per_rate(self, sweep):
        assert [p.rate for p in sweep] == [0.0, 1e-3]

    def test_control_row_injects_nothing(self, sweep):
        control = sweep[0]
        assert control.injected == 0
        assert control.accounted
        assert control.quiesced

    def test_fault_rows_quiesce_fully_accounted(self, sweep):
        for point in sweep[1:]:
            assert point.quiesced
            assert point.accounted
            assert point.injected > 0

    def test_all_points_serve_traffic(self, sweep):
        for point in sweep:
            assert point.completed > 0
            assert 0.0 < point.utilization <= 1.0

    def test_render_has_header_and_every_row(self, sweep):
        text = render(sweep)
        assert "Fault-rate sweep" in text
        assert "unres" in text
        assert len(text.splitlines()) == 2 + len(sweep)
        assert "[HUNG]" not in text


class TestAccountedProperty:
    def test_accounted_requires_balanced_ledger(self):
        kwargs = dict(
            rate=1e-3, utilization=0.5, latency_all=100.0, completed=10,
            corrected=1, recovered=2, failed_faults=1, unresolved=0,
            crc_retries=2, dram_rereads=0, watchdog_reissues=0,
            failed_requests=1, quiesced=True,
        )
        assert FaultSweepPoint(injected=4, **kwargs).accounted
        assert not FaultSweepPoint(injected=5, **kwargs).accounted
        unresolved = dict(kwargs, unresolved=1)
        assert not FaultSweepPoint(injected=4, **unresolved).accounted


class TestSinglePoint:
    def test_run_fault_point_matches_sweep_row(self, sweep):
        point = run_fault_point(1e-3, seed=2010, **TINY)
        assert point == sweep[1]


class TestFailureReason:
    def healthy(self):
        return FaultSweepPoint(
            rate=1e-2, utilization=0.5, latency_all=100.0, completed=10,
            injected=4, corrected=1, recovered=2, failed_faults=1,
            unresolved=0, crc_retries=2, dram_rereads=0,
            watchdog_reissues=0, failed_requests=1, quiesced=True,
            drain_budget=12_345,
        )

    def test_healthy_point_has_no_reason(self):
        assert self.healthy().failure_reason() is None

    def test_hung_reason_names_rate_and_drain_budget(self):
        hung = dataclasses.replace(self.healthy(), quiesced=False)
        reason = hung.failure_reason()
        assert "rate=0.01" in reason
        assert "12345-cycle drain budget" in reason

    def test_unaccounted_reason_names_rate_and_ledger(self):
        unbalanced = dataclasses.replace(self.healthy(), injected=9)
        reason = unbalanced.failure_reason()
        assert "rate=0.01" in reason
        assert "injected=9" in reason
        assert "unaccounted" in reason

    def test_default_drain_budget_is_module_constant(self):
        point = dataclasses.replace(self.healthy())
        assert FaultSweepPoint.__dataclass_fields__[
            "drain_budget"
        ].default == DRAIN_CYCLES
        assert point.drain_budget == 12_345

    def test_render_marks_hung_rows_with_budget(self):
        hung = dataclasses.replace(self.healthy(), quiesced=False)
        text = render([hung])
        assert "[HUNG >12345c]" in text
