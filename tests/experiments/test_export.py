"""JSON export tests."""

import json

from repro.experiments.export import (
    comparison_to_dict,
    export_all,
    fig8_to_dict,
    table3_to_dict,
)
from repro.experiments.fig8 import run_fig8
from repro.experiments.table1 import run_table1
from repro.experiments.table3 import run_table3

TINY = dict(cycles=1_200, warmup=200, seeds=(2010,))


def test_comparison_serializes():
    data = comparison_to_dict(run_table1(**TINY))
    assert len(data["cells"]) == 36
    assert "gss+sagm" in data["averages"]
    json.dumps(data)  # must be JSON-safe


def test_table3_serializes():
    data = table3_to_dict(run_table3(**TINY))
    assert len(data["rows"]) == 3
    json.dumps(data)


def test_fig8_serializes():
    data = fig8_to_dict(run_fig8(max_routers=1, **TINY))
    assert len(data["curves"]) == 3
    json.dumps(data)


def test_export_all_writes_document(tmp_path):
    path = tmp_path / "results.json"
    document = export_all(path, **TINY)
    assert path.exists()
    loaded = json.loads(path.read_text())
    assert set(loaded) == {
        "table1", "table2", "table3", "table4", "table5", "fig8"
    }
    assert loaded["table4"]["noc_3x3"]["conv"] > 0
    assert document["table1"]["averages"]
