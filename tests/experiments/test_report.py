"""Report formatting tests."""

from repro.experiments.report import format_series, format_table, ratio_footer


class TestFormatTable:
    def test_contains_title_headers_rows(self):
        text = format_table(
            "My Table", ["col1", "col2"], [["a", 1.5], ["b", 2.0]]
        )
        assert text.startswith("My Table")
        assert "col1" in text and "col2" in text
        assert "1.500" in text

    def test_footer_separated(self):
        text = format_table(
            "T", ["x"], [["row"]], footer=[["Average"]]
        )
        assert text.count("-") > 0
        assert "Average" in text

    def test_large_floats_one_decimal(self):
        text = format_table("T", ["x"], [[123.456]])
        assert "123.5" in text

    def test_columns_aligned(self):
        text = format_table("T", ["a", "b"], [["xxxxxxx", 1.0], ["y", 2.0]])
        lines = text.splitlines()[1:]
        positions = {line.index("b") if "b" in line else None
                     for line in lines[:1]}
        assert None not in positions


class TestFormatSeries:
    def test_series_rendered_per_x(self):
        text = format_series(
            "Fig", "k", {"util": [0.1, 0.2], "lat": [100.0, 90.0]}, [0, 1]
        )
        assert "util" in text and "lat" in text
        assert "0.100" in text and "90.0" in text


class TestRatioFooter:
    def test_ratios_vs_baseline(self):
        averages = {
            "conv": {"u": 0.5},
            "gss": {"u": 0.6},
        }
        rows = ratio_footer(averages, baseline="conv", metrics=["u"])
        assert rows[0][0] == "Average"
        assert rows[1][0] == "Ratio"
        assert rows[1][1] == 1.0
        assert rows[1][2] == 1.2

    def test_zero_baseline_safe(self):
        averages = {"conv": {"u": 0.0}, "gss": {"u": 1.0}}
        rows = ratio_footer(averages, baseline="conv", metrics=["u"])
        assert rows[1][1] == 0.0
