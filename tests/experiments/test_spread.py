"""Spread measurement tests."""

import pytest

from repro.experiments.spread import measure_spread, render
from repro.sim.config import SystemConfig


def test_spread_over_seeds():
    config = SystemConfig(app="bluray", cycles=1_500, warmup=300)
    spread = measure_spread(config, seeds=(1, 2, 3))
    util = spread["utilization"]
    assert util.samples == 3
    assert util.minimum <= util.mean <= util.maximum
    assert util.stdev >= 0
    assert 0 < util.mean < 1


def test_requires_multiple_seeds():
    config = SystemConfig(app="bluray", cycles=1_200, warmup=200)
    with pytest.raises(ValueError):
        measure_spread(config, seeds=(1,))


def test_render_lists_metrics():
    config = SystemConfig(app="bluray", cycles=1_200, warmup=200)
    text = render(measure_spread(config, seeds=(1, 2)))
    assert "utilization" in text and "latency_all" in text
