"""Trace record/replay tests."""

from itertools import count

from tests.helpers import make_request
from repro.dram.address_map import AddressMap
from repro.workloads.cores import SyntheticCore, h264_codec_core
from repro.workloads.trace import TraceEntry, TraceRecorder, TraceReplayer


def live_core(seed=3):
    return SyntheticCore(
        master=0, spec=h264_codec_core(), address_map=AddressMap(banks=8),
        region_index=0, region_count=8, request_ids=count(), seed=seed,
    )


def run_generator(generator, cycles, complete_immediately=True):
    issued = []
    for cycle in range(cycles):
        for request in generator.generate(cycle):
            issued.append((cycle, request))
            if complete_immediately:
                generator.on_complete(request.request_id, cycle)
    return issued


class TestRecorder:
    def test_records_every_issue(self):
        recorder = TraceRecorder(live_core())
        issued = run_generator(recorder, 500)
        assert len(recorder.entries) == len(issued)
        assert [e.cycle for e in recorder.entries] == [c for c, _ in issued]

    def test_recorded_requests_are_copies(self):
        recorder = TraceRecorder(live_core())
        issued = run_generator(recorder, 200)
        _, live_request = issued[0]
        recorded = recorder.entries[0].request
        assert recorded is not live_request
        assert recorded.bank == live_request.bank

    def test_passes_completions_through(self):
        inner = live_core()
        recorder = TraceRecorder(inner)
        run_generator(recorder, 300)
        assert inner.completed > 0


class TestReplayer:
    def test_replay_matches_recording(self):
        recorder = TraceRecorder(live_core())
        run_generator(recorder, 400)
        replayer = TraceReplayer(0, recorder.entries)
        replayed = run_generator(replayer, 400)
        original = [(e.cycle, e.request.bank, e.request.row, e.request.beats)
                    for e in recorder.entries]
        observed = [(c, r.bank, r.row, r.beats) for c, r in replayed]
        assert observed == original

    def test_outstanding_cap_gates_replay(self):
        entries = [
            TraceEntry(0, make_request(request_id=i)) for i in range(5)
        ]
        replayer = TraceReplayer(0, entries, max_outstanding=2)
        issued = run_generator(replayer, 10, complete_immediately=False)
        assert len(issued) == 2
        replayer.on_complete(issued[0][1].request_id, 10)
        more = run_generator(replayer, 1, complete_immediately=False)
        assert len(more) == 1

    def test_exhausted_flag(self):
        entries = [TraceEntry(0, make_request())]
        replayer = TraceReplayer(0, entries)
        assert not replayer.exhausted
        run_generator(replayer, 2)
        assert replayer.exhausted

    def test_requests_not_issued_early(self):
        entries = [TraceEntry(50, make_request())]
        replayer = TraceReplayer(0, entries)
        assert run_generator(replayer, 50) == []
        assert len(run_generator(replayer, 51)) == 1
