"""Synthetic core generator tests."""

from itertools import count

import pytest

from repro.dram.address_map import AddressMap
from repro.workloads.cores import (
    CoreSpec,
    Stream,
    SyntheticCore,
    cpu_core,
    enhancer_core,
    h264_codec_core,
)


def build_core(spec=None, master=0, seed=1, priority_demand=False):
    return SyntheticCore(
        master=master,
        spec=spec or h264_codec_core(),
        address_map=AddressMap(banks=8),
        region_index=master,
        region_count=8,
        request_ids=count(),
        seed=seed,
        priority_demand=priority_demand,
    )


def collect(core, cycles):
    requests = []
    for cycle in range(cycles):
        requests.extend(core.generate(cycle))
    return requests


class TestGeneration:
    def test_outstanding_cap_enforced(self):
        core = build_core()
        cap = core.spec.max_outstanding
        requests = collect(core, 2_000)
        assert len(requests) == cap
        core.on_complete(requests[0].request_id, 2_000)
        more = []
        for cycle in range(2_000, 4_000):
            more.extend(core.generate(cycle))
        assert len(more) == 1

    def test_gap_paces_issues(self):
        spec = h264_codec_core(gap_mean=50.0)
        spec = CoreSpec(name=spec.name, streams=spec.streams, gap_mean=50.0,
                        max_outstanding=100)
        core = build_core(spec)
        issues = []
        for cycle in range(3_000):
            for request in core.generate(cycle):
                issues.append(cycle)
        mean_gap = (issues[-1] - issues[0]) / (len(issues) - 1)
        assert 25 < mean_gap < 100

    def test_deterministic_per_seed(self):
        a = collect(build_core(seed=42), 500)
        b = collect(build_core(seed=42), 500)
        assert [(r.bank, r.row, r.column, r.beats) for r in a] == \
               [(r.bank, r.row, r.column, r.beats) for r in b]

    def test_different_seeds_differ(self):
        a = collect(build_core(seed=1), 500)
        b = collect(build_core(seed=2), 500)
        assert [(r.bank, r.row, r.column) for r in a] != \
               [(r.bank, r.row, r.column) for r in b]


class TestAddressing:
    def test_requests_stay_in_bank_set(self):
        core = build_core()
        requests = []
        for cycle in range(5_000):
            produced = core.generate(cycle)
            requests.extend(produced)
            for request in produced:
                core.on_complete(request.request_id, cycle)
        assert requests
        assert {r.bank for r in requests} <= set(core._bank_set)

    def test_bank_set_has_four_banks(self):
        core = build_core()
        assert len(core._bank_set) == 4

    def test_requests_never_cross_row_boundary(self):
        spec = enhancer_core(gap_mean=1.0)
        core = build_core(spec)
        for cycle in range(5_000):
            for request in core.generate(cycle):
                assert request.column + request.beats <= 1024
                core.on_complete(request.request_id, cycle)

    def test_sequential_stream_is_row_local(self):
        """Consecutive same-stream requests mostly hit the same row."""
        spec = enhancer_core(gap_mean=1.0)
        core = build_core(spec)
        requests = []
        for cycle in range(4_000):
            produced = core.generate(cycle)
            requests.extend(produced)
            for request in produced:
                core.on_complete(request.request_id, cycle)
        same = sum(
            1 for a, b in zip(requests, requests[1:])
            if (a.bank, a.row) == (b.bank, b.row)
        )
        assert same / len(requests) > 0.5


class TestDemandClass:
    def test_cpu_generates_demands(self):
        core = build_core(cpu_core(gap_mean=2.0), priority_demand=True)
        requests = []
        for cycle in range(4_000):
            produced = core.generate(cycle)
            requests.extend(produced)
            for request in produced:
                core.on_complete(request.request_id, cycle)
        demands = [r for r in requests if r.is_demand]
        assert demands
        assert all(r.is_priority for r in demands)
        assert any(not r.is_demand for r in requests)

    def test_priority_disabled_keeps_best_effort(self):
        core = build_core(cpu_core(gap_mean=2.0), priority_demand=False)
        requests = collect(core, 500)
        assert all(not r.is_priority for r in requests)

    def test_codec_has_no_demands(self):
        core = build_core(h264_codec_core(), priority_demand=True)
        requests = collect(core, 500)
        assert all(not r.is_demand for r in requests)


class TestRunBehaviour:
    def test_direction_runs_exist(self):
        """Stream runs: direction flips are rarer than per-request flips."""
        spec = enhancer_core(gap_mean=1.0)
        core = build_core(spec)
        requests = []
        for cycle in range(4_000):
            produced = core.generate(cycle)
            requests.extend(produced)
            for request in produced:
                core.on_complete(request.request_id, cycle)
        flips = sum(1 for a, b in zip(requests, requests[1:])
                    if a.is_read != b.is_read)
        assert flips / len(requests) < 0.4

    def test_completion_without_outstanding_raises(self):
        core = build_core()
        with pytest.raises(RuntimeError):
            core.on_complete(0, 0)
