"""A3MAP-style annealing mapper tests."""

import pytest

from repro.workloads.a3map import MappingProblem, anneal, map_application
from repro.workloads.apps import bluray_model, dual_dtv_model
from repro.workloads.mapping import MEMORY_NODE, place


class TestProblem:
    def test_memory_flows_default_to_bandwidth_weights(self):
        app = bluray_model()
        problem = MappingProblem(app=app)
        assert problem.memory_flows[0] == app.cores[0].bandwidth_weight

    def test_cost_counts_weighted_distance(self):
        app = bluray_model()
        problem = MappingProblem(app=app)
        placement = place(app)
        expected = sum(
            spec.bandwidth_weight
            * placement.mesh.hop_distance(
                MEMORY_NODE, placement.node_of_core(i))
            for i, spec in enumerate(app.cores)
        )
        assert problem.cost(placement) == pytest.approx(expected)

    def test_core_flow_validation(self):
        app = bluray_model()
        with pytest.raises(ValueError):
            MappingProblem(app=app, core_flows={(0, 99): 1.0})
        with pytest.raises(ValueError):
            MappingProblem(app=app, core_flows={(0, 1): -1.0})


class TestAnneal:
    def test_never_worse_than_greedy(self):
        for factory in (bluray_model, dual_dtv_model):
            app = factory()
            problem = MappingProblem(app=app)
            greedy_cost = problem.cost(place(app))
            annealed = anneal(problem, iterations=1_000)
            assert problem.cost(annealed) <= greedy_cost + 1e-9

    def test_deterministic_per_seed(self):
        app = dual_dtv_model()
        problem = MappingProblem(app=app)
        a = anneal(problem, seed=7, iterations=500)
        b = anneal(problem, seed=7, iterations=500)
        assert a.core_nodes == b.core_nodes

    def test_result_is_valid_permutation(self):
        app = dual_dtv_model()
        placement = anneal(MappingProblem(app=app), iterations=500)
        nodes = list(placement.core_nodes.values())
        assert len(nodes) == len(set(nodes)) == 15
        assert MEMORY_NODE not in nodes

    def test_zero_iterations_returns_greedy(self):
        app = bluray_model()
        problem = MappingProblem(app=app)
        assert anneal(problem, iterations=0).core_nodes == place(app).core_nodes

    def test_negative_iterations_rejected(self):
        with pytest.raises(ValueError):
            anneal(MappingProblem(app=bluray_model()), iterations=-1)

    def test_core_flows_pull_cores_together(self):
        """Two cores with heavy direct traffic end up adjacent."""
        app = bluray_model()
        # pick two light cores the memory objective doesn't constrain much
        light = sorted(
            range(len(app.cores)),
            key=lambda i: app.cores[i].bandwidth_weight,
        )[:2]
        flows = {(light[0], light[1]): 50.0}
        placement = map_application(app, core_flows=flows, iterations=3_000)
        distance = placement.mesh.hop_distance(
            placement.node_of_core(light[0]), placement.node_of_core(light[1])
        )
        assert distance <= 2
