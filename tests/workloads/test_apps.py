"""Application model tests."""

import pytest

from repro.workloads.apps import (
    APP_MODELS,
    AppModel,
    bluray_model,
    dual_dtv_model,
    get_app_model,
    single_dtv_model,
)
from repro.workloads.cores import cpu_core


class TestPaperModels:
    def test_mesh_shapes_match_paper(self):
        """Section V: 9, 9, and 16 nodes on 3x3 / 3x3 / 4x4 meshes."""
        assert bluray_model().num_nodes == 9
        assert single_dtv_model().num_nodes == 9
        assert dual_dtv_model().num_nodes == 16

    def test_core_counts_leave_room_for_memory(self):
        assert len(bluray_model().cores) == 8
        assert len(dual_dtv_model().cores) == 15

    def test_each_model_has_cpu_and_enhancer(self):
        for factory in (bluray_model, single_dtv_model, dual_dtv_model):
            names = [core.name for core in factory().cores]
            assert "cpu" in names
            assert "enhancer" in names

    def test_dual_dtv_has_two_channels(self):
        names = [core.name for core in dual_dtv_model().cores]
        assert names.count("enhancer") == 2
        assert names.count("format-conv") == 2
        assert names.count("display") == 2

    def test_models_built_fresh_each_call(self):
        a = bluray_model()
        b = bluray_model()
        assert a.cores[0] is not b.cores[0]


class TestRegistry:
    def test_lookup(self):
        assert get_app_model("bluray").name == "bluray"

    def test_unknown_raises_with_choices(self):
        with pytest.raises(ValueError, match="bluray"):
            get_app_model("unknown")

    def test_custom_registration(self):
        def tiny():
            return AppModel(
                name="tiny", mesh_width=2, mesh_height=2,
                cores=[cpu_core(), cpu_core(), cpu_core()],
            )

        APP_MODELS["tiny"] = tiny
        try:
            assert get_app_model("tiny").num_nodes == 4
        finally:
            del APP_MODELS["tiny"]


class TestValidation:
    def test_core_count_must_fill_mesh(self):
        with pytest.raises(ValueError, match="do not fill"):
            AppModel(name="bad", mesh_width=3, mesh_height=3,
                     cores=[cpu_core()])
