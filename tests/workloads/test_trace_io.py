"""Trace persistence and system capture/replay tests."""

import pytest

from tests.helpers import make_request
from repro.core.system import build_system
from repro.sim.config import NocDesign, SystemConfig
from repro.workloads.trace import (
    TraceEntry,
    load_traces,
    record_system,
    replay_into_system,
    save_traces,
)


def sample_traces():
    return {
        0: [TraceEntry(5, make_request(request_id=1, bank=2, row=3,
                                       beats=8, priority=True, demand=True))],
        3: [TraceEntry(9, make_request(request_id=2, master=3, is_read=False))],
    }


class TestPersistence:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "trace.json"
        original = sample_traces()
        save_traces(original, path)
        loaded = load_traces(path)
        assert set(loaded) == {0, 3}
        entry = loaded[0][0]
        assert entry.cycle == 5
        assert entry.request.bank == 2
        assert entry.request.is_priority
        assert entry.request.is_demand
        assert loaded[3][0].request.is_write

    def test_json_is_human_readable(self, tmp_path):
        path = tmp_path / "trace.json"
        save_traces(sample_traces(), path)
        text = path.read_text()
        assert '"bank": 2' in text


class TestSystemCapture:
    def test_record_system_captures_all_masters(self):
        system = build_system(SystemConfig(app="bluray", cycles=1_500,
                                           warmup=200))
        recorders = record_system(system)
        system.run()
        assert set(recorders) == {core.master for core in system.cores}
        assert sum(len(r.entries) for r in recorders.values()) > 20

    def test_replay_serves_the_same_requests(self):
        config = SystemConfig(app="bluray", cycles=2_000, warmup=300)
        reference = build_system(config)
        recorders = record_system(reference)
        reference.run()
        traces = {m: r.entries for m, r in recorders.items()}
        total = sum(len(entries) for entries in traces.values())

        replayed = build_system(config.with_(design=NocDesign.SDRAM_AWARE))
        replay_into_system(replayed, traces)
        metrics = replayed.run(cycles=6_000)
        # the replayed system must serve (nearly) the whole trace
        served = sum(core_if.completed_requests
                     for core_if in replayed.core_interfaces)
        assert served >= total * 0.95


class TestControlledComparison:
    def test_designs_fed_identical_traffic(self):
        from repro.experiments.controlled import render, run_controlled

        config = SystemConfig(app="bluray", cycles=2_500, warmup=400,
                              priority_enabled=True)
        result = run_controlled(
            config, [NocDesign.SDRAM_AWARE, NocDesign.GSS_SAGM]
        )
        assert set(result.metrics) == {NocDesign.SDRAM_AWARE, NocDesign.GSS_SAGM}
        for metrics in result.metrics.values():
            assert metrics.completed > 0
        text = render(result)
        assert "identical requests" in text
        assert "gss+sagm" in text
