"""Placement (Fig. 7 / A3MAP substitute) tests."""

from repro.workloads.apps import bluray_model, dual_dtv_model
from repro.workloads.mapping import MEMORY_NODE, gss_router_order, place


class TestPlacement:
    def test_memory_in_corner(self):
        placement = place(bluray_model())
        assert placement.memory_node == MEMORY_NODE == 0

    def test_every_core_gets_unique_node(self):
        placement = place(dual_dtv_model())
        nodes = list(placement.core_nodes.values())
        assert len(nodes) == len(set(nodes)) == 15
        assert MEMORY_NODE not in nodes

    def test_all_mesh_nodes_used(self):
        placement = place(bluray_model())
        used = set(placement.core_nodes.values()) | {placement.memory_node}
        assert used == set(placement.mesh.nodes())

    def test_heavy_cores_near_memory(self):
        app = bluray_model()
        placement = place(app)
        mesh = placement.mesh
        weights = {i: spec.bandwidth_weight for i, spec in enumerate(app.cores)}
        heaviest = max(weights, key=weights.get)
        lightest = min(weights, key=weights.get)
        d_heavy = mesh.hop_distance(MEMORY_NODE, placement.node_of_core(heaviest))
        d_light = mesh.hop_distance(MEMORY_NODE, placement.node_of_core(lightest))
        assert d_heavy <= d_light

    def test_nodes_by_core_ordering(self):
        placement = place(bluray_model())
        assert placement.nodes_by_core == [
            placement.core_nodes[i] for i in range(8)
        ]


class TestGssOrder:
    def test_order_monotonic_in_distance(self):
        placement = place(bluray_model())
        order = gss_router_order(placement)
        mesh = placement.mesh
        distances = [mesh.hop_distance(MEMORY_NODE, node) for node in order]
        assert distances == sorted(distances)

    def test_memory_router_first(self):
        placement = place(bluray_model())
        assert gss_router_order(placement)[0] == MEMORY_NODE

    def test_covers_all_routers(self):
        placement = place(dual_dtv_model())
        assert sorted(gss_router_order(placement)) == list(range(16))
