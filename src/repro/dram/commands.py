"""SDRAM command vocabulary (Section III-A).

The device understands three access commands — row access strobe (ACT,
"RAS" in the paper), column access strobe (READ/WRITE, "CAS"), and
precharge (PRE) — plus the auto-precharge (AP) variant of a CAS command
that the paper's SAGM controller leans on (Section IV-C)."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional


class CommandKind(enum.Enum):
    ACTIVATE = "ACT"
    READ = "RD"
    WRITE = "WR"
    PRECHARGE = "PRE"
    NOP = "NOP"

    @property
    def is_cas(self) -> bool:
        return self in _CAS_KINDS


_CAS_KINDS = frozenset((CommandKind.READ, CommandKind.WRITE))


@dataclass(frozen=True, slots=True)
class DramCommand:
    """One command on the (single, shared) command bus.

    ``auto_precharge`` may only be set on CAS commands; it closes the bank
    automatically ``tWR + tRP`` (write) or ``tRTP + tRP`` (read) after the
    burst, without occupying a command-bus slot for a PRE.
    """

    kind: CommandKind
    bank: int
    row: Optional[int] = None          # ACT only
    column: Optional[int] = None       # CAS only
    burst_beats: int = 0               # CAS only
    auto_precharge: bool = False
    useful_beats: int = 0              # CAS only: beats the core actually wanted
    request_id: Optional[int] = None   # CAS only: owning MemoryRequest

    def __post_init__(self) -> None:
        if self.bank < 0:
            raise ValueError("bank must be non-negative")
        if self.auto_precharge and not self.kind.is_cas:
            raise ValueError("auto-precharge is only legal on READ/WRITE")
        if self.kind is CommandKind.ACTIVATE and self.row is None:
            raise ValueError("ACT requires a row")
        if self.kind.is_cas:
            if self.burst_beats <= 0:
                raise ValueError("CAS requires a positive burst length")
            if not 0 <= self.useful_beats <= self.burst_beats:
                raise ValueError("useful beats exceed burst length")

    @property
    def is_read(self) -> bool:
        return self.kind is CommandKind.READ

    @property
    def is_write(self) -> bool:
        return self.kind is CommandKind.WRITE

    def __str__(self) -> str:
        parts = [self.kind.value, f"b{self.bank}"]
        if self.row is not None:
            parts.append(f"r{self.row}")
        if self.kind.is_cas:
            parts.append(f"BL{self.burst_beats}")
            if self.auto_precharge:
                parts.append("AP")
        return " ".join(parts)
