"""Per-bank state machine with next-legal-cycle bookkeeping.

Each bank tracks its open row and the earliest cycles at which the next
ACT / CAS / PRE become legal.  This register style (rather than an explicit
ticked FSM) is the standard cycle-level DRAM modelling idiom: a command is
legal iff the current cycle has reached the corresponding register.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from .timing import DramTiming


class BankState(enum.Enum):
    IDLE = "idle"
    ACTIVE = "active"


class TimingViolation(RuntimeError):
    """A command was issued before its timing constraints were satisfied."""


@dataclass(slots=True)
class Bank:
    """One SDRAM bank."""

    index: int
    timing: DramTiming
    state: BankState = BankState.IDLE
    open_row: Optional[int] = None
    idle_at: int = 0            # earliest cycle an ACT is legal (tRP done)
    cas_ready_at: int = 0       # earliest cycle a CAS is legal (tRCD done)
    precharge_ok_at: int = 0    # earliest cycle a PRE is legal (tRAS/tWR/tRTP)
    auto_precharge_at: Optional[int] = None  # pending AP completion cycle
    activations: int = 0
    precharges: int = 0

    # ------------------------------------------------------------------ #
    # Legality predicates
    # ------------------------------------------------------------------ #

    def can_activate(self, cycle: int) -> bool:
        self._apply_auto_precharge(cycle)
        return self.state is BankState.IDLE and cycle >= self.idle_at

    def can_cas(self, cycle: int, row: int) -> bool:
        self._apply_auto_precharge(cycle)
        return (
            self.state is BankState.ACTIVE
            and self.open_row == row
            and cycle >= self.cas_ready_at
            and self.auto_precharge_at is None
        )

    def can_precharge(self, cycle: int) -> bool:
        self._apply_auto_precharge(cycle)
        if self.state is not BankState.ACTIVE:
            return False
        return cycle >= self.precharge_ok_at and self.auto_precharge_at is None

    # ------------------------------------------------------------------ #
    # State transitions
    # ------------------------------------------------------------------ #

    def activate(self, cycle: int, row: int) -> None:
        if not self.can_activate(cycle):
            raise TimingViolation(
                f"bank {self.index}: ACT at {cycle} illegal "
                f"(state={self.state.value}, idle_at={self.idle_at})"
            )
        self.state = BankState.ACTIVE
        self.open_row = row
        self.cas_ready_at = cycle + self.timing.t_rcd
        self.precharge_ok_at = cycle + self.timing.t_ras
        self.activations += 1

    def cas(
        self,
        cycle: int,
        row: int,
        is_write: bool,
        data_end: int,
        auto_precharge: bool,
    ) -> None:
        """Record a READ/WRITE whose last data beat lands on ``data_end``."""
        if not self.can_cas(cycle, row):
            raise TimingViolation(
                f"bank {self.index}: CAS at {cycle} illegal "
                f"(state={self.state.value}, open_row={self.open_row}, "
                f"cas_ready_at={self.cas_ready_at})"
            )
        recovery = self.timing.t_wr if is_write else 0
        self.precharge_ok_at = max(self.precharge_ok_at, data_end + recovery + 1)
        if auto_precharge:
            # Self-timed precharge: bank is idle (re-activatable) tRP after
            # the write-recovery (or read) window — no PRE command needed.
            self.auto_precharge_at = data_end + recovery + self.timing.t_rp + 1

    def precharge(self, cycle: int) -> None:
        if not self.can_precharge(cycle):
            raise TimingViolation(
                f"bank {self.index}: PRE at {cycle} illegal "
                f"(state={self.state.value}, ok_at={self.precharge_ok_at})"
            )
        self.state = BankState.IDLE
        self.open_row = None
        self.idle_at = cycle + self.timing.t_rp
        self.precharges += 1

    # ------------------------------------------------------------------ #

    def _apply_auto_precharge(self, cycle: int) -> None:
        """Retire a pending auto-precharge once its self-timed window ends."""
        if self.auto_precharge_at is not None and cycle >= self.auto_precharge_at:
            self.state = BankState.IDLE
            self.open_row = None
            self.idle_at = self.auto_precharge_at
            self.auto_precharge_at = None
            self.precharges += 1

    def row_is_open(self, row: int, cycle: int) -> bool:
        self._apply_auto_precharge(cycle)
        return (
            self.state is BankState.ACTIVE
            and self.open_row == row
            and self.auto_precharge_at is None
        )

    @property
    def is_active(self) -> bool:
        return self.state is BankState.ACTIVE
