"""JEDEC-style DDR timing parameter sets.

The paper evaluates DDR I SDRAM at 133–200 MHz, DDR II at 266–400 MHz, and
DDR III at 533–800 MHz (memory-clock frequencies; the data bus moves two
beats per clock).  Timing constraints are physical (nanosecond) quantities,
so the cycle counts grow with clock frequency — which is exactly why the
paper finds bank conflicts and short turn-around bank interleaving far more
expensive on DDR III at 800 MHz than on DDR I at 133 MHz.

We therefore store the analog constraints in nanoseconds and derive cycle
counts for a given clock, with per-generation minimum cycle counts for the
constraints that are specified in cycles (CL, tCCD, tWTR).  The derived
DDR III numbers reproduce the paper's example: at 800 MHz it takes
``tWR + tRP = 12 + 11 = 23`` cycles to deactivate a bank after a write
(Section IV-B).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..sim.config import DdrGeneration


@dataclass(frozen=True)
class AnalogTiming:
    """Generation-level constraints in nanoseconds / minimum cycles."""

    ras_to_cas_ns: float        # tRCD
    row_precharge_ns: float     # tRP
    row_active_min_ns: float    # tRAS
    write_recovery_ns: float    # tWR
    cas_latency_ns: float       # CL as an analog latency
    min_cas_latency_cycles: int
    min_ccd_cycles: int         # CAS-to-CAS minimum (tCCD)
    min_wtr_cycles: int         # write-to-read turnaround (tWTR)
    wtr_ns: float
    banks: int
    supported_burst_beats: tuple


GENERATION_TIMING = {
    # DDR I: BL 2/4/8, 4 banks, CL ~= 15 ns (CL3 @ 200 MHz), tCCD = 1.
    DdrGeneration.DDR1: AnalogTiming(
        ras_to_cas_ns=15.0,
        row_precharge_ns=15.0,
        row_active_min_ns=40.0,
        write_recovery_ns=15.0,
        cas_latency_ns=15.0,
        min_cas_latency_cycles=2,
        min_ccd_cycles=1,
        min_wtr_cycles=1,
        wtr_ns=7.5,
        banks=4,
        supported_burst_beats=(2, 4, 8),
    ),
    # DDR II: BL 4/8, 8 banks, tCCD = 2.
    DdrGeneration.DDR2: AnalogTiming(
        ras_to_cas_ns=15.0,
        row_precharge_ns=15.0,
        row_active_min_ns=45.0,
        write_recovery_ns=15.0,
        cas_latency_ns=15.0,
        min_cas_latency_cycles=3,
        min_ccd_cycles=2,
        min_wtr_cycles=2,
        wtr_ns=7.5,
        banks=8,
        supported_burst_beats=(4, 8),
    ),
    # DDR III: BL 4(chop)/8 with OTF, 8 banks, tCCD = 4 — the tCCD=4 floor is
    # why SAGM gains less on DDR III (Section V-A).
    DdrGeneration.DDR3: AnalogTiming(
        ras_to_cas_ns=13.75,
        row_precharge_ns=13.75,
        row_active_min_ns=35.0,
        write_recovery_ns=15.0,
        cas_latency_ns=13.75,
        min_cas_latency_cycles=5,
        min_ccd_cycles=4,
        min_wtr_cycles=4,
        wtr_ns=7.5,
        banks=8,
        supported_burst_beats=(4, 8),
    ),
}


def _cycles(ns: float, clock_mhz: float, minimum: int = 1) -> int:
    """Convert a nanosecond constraint to (ceiling) clock cycles."""
    period_ns = 1000.0 / clock_mhz
    return max(minimum, math.ceil(round(ns / period_ns, 9)))


@dataclass(frozen=True)
class DramTiming:
    """All timing constraints of one device at one clock, in cycles."""

    generation: DdrGeneration
    clock_mhz: int
    banks: int
    t_rcd: int          # ACT -> READ/WRITE, same bank
    t_rp: int           # PRE -> ACT, same bank
    t_ras: int          # ACT -> PRE, same bank (minimum open time)
    t_wr: int           # end of write data -> PRE, same bank
    t_ccd: int          # CAS -> CAS, any bank
    t_wtr: int          # end of write data -> READ, any bank
    t_rtw: int          # READ -> WRITE bus-turnaround gap (data contention)
    cas_latency: int    # READ -> first data beat
    write_latency: int  # WRITE -> first data beat
    t_rrd: int          # ACT -> ACT, different banks
    supported_burst_beats: tuple

    @classmethod
    def for_clock(cls, generation: DdrGeneration, clock_mhz: int) -> "DramTiming":
        if clock_mhz <= 0:
            raise ValueError("clock_mhz must be positive")
        analog = GENERATION_TIMING[generation]
        cl = _cycles(
            analog.cas_latency_ns, clock_mhz, minimum=analog.min_cas_latency_cycles
        )
        if generation is DdrGeneration.DDR1:
            wl = 1                      # DDR I: write latency fixed at 1
        elif generation is DdrGeneration.DDR2:
            wl = max(1, cl - 1)         # DDR II: WL = CL - 1
        else:
            wl = max(1, cl - 2)         # DDR III: CWL a couple below CL
        return cls(
            generation=generation,
            clock_mhz=clock_mhz,
            banks=analog.banks,
            t_rcd=_cycles(analog.ras_to_cas_ns, clock_mhz),
            t_rp=_cycles(analog.row_precharge_ns, clock_mhz),
            t_ras=_cycles(analog.row_active_min_ns, clock_mhz),
            t_wr=_cycles(analog.write_recovery_ns, clock_mhz),
            t_ccd=analog.min_ccd_cycles,
            t_wtr=_cycles(analog.wtr_ns, clock_mhz, minimum=analog.min_wtr_cycles),
            t_rtw=2,
            cas_latency=cl,
            write_latency=wl,
            t_rrd=_cycles(7.5, clock_mhz, minimum=2),
            supported_burst_beats=analog.supported_burst_beats,
        )

    def burst_cycles(self, burst_beats: int) -> int:
        """Data-bus occupancy of one burst (2 beats per cycle, DDR)."""
        if burst_beats <= 0:
            raise ValueError("burst must transfer at least one beat")
        return max(1, (burst_beats + 1) // 2)

    @property
    def write_to_precharge(self) -> int:
        """Cycles from last write data beat until the bank may re-activate:
        the paper's short-turnaround write penalty ``tWR + tRP``."""
        return self.t_wr + self.t_rp

    @property
    def read_to_precharge(self) -> int:
        """Cycles from last read data beat until the bank may re-activate."""
        return self.t_rp

    def validate_burst(self, burst_beats: int) -> None:
        if burst_beats not in self.supported_burst_beats:
            raise ValueError(
                f"{self.generation.value} does not support BL{burst_beats} "
                f"(supported: {self.supported_burst_beats})"
            )
