"""ASCII timing diagrams of SDRAM activity (Fig. 5 style).

:class:`WaveformCapture` records the command stream and the data-bus
occupancy of a :class:`~repro.dram.device.SdramDevice` run and renders
them as per-bank lanes plus a data-bus lane — the view the paper uses in
Fig. 5 to show BL 4 command congestion and its auto-precharge fix::

    cycle      0         1         2
               0123456789012345678901234567
    cmd        A----A----R---R-A---R---
    bank0      |ACT........|RD=====|
    bank1           |ACT........|RD=====|
    data                  ####____####

Intended for debugging and documentation, not measurement — the numbers
come from :class:`~repro.sim.stats.StatsCollector`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .commands import CommandKind, DramCommand
from .device import SdramDevice

_CMD_GLYPH = {
    CommandKind.ACTIVATE: "A",
    CommandKind.READ: "R",
    CommandKind.WRITE: "W",
    CommandKind.PRECHARGE: "P",
    CommandKind.NOP: "-",
}


@dataclass
class WaveformCapture:
    """Records (cycle, command) events and data-bus busy intervals."""

    commands: List[Tuple[int, DramCommand]] = field(default_factory=list)
    data_intervals: List[Tuple[int, int, bool]] = field(default_factory=list)

    def record_command(self, cycle: int, command: DramCommand) -> None:
        if command.kind is CommandKind.NOP:
            return
        self.commands.append((cycle, command))
        if command.kind.is_cas:
            # reconstruct the burst interval like the device does
            pass  # filled in by attach() wrapper below

    def record_burst(self, start: int, end: int, is_write: bool) -> None:
        self.data_intervals.append((start, end, is_write))

    # ------------------------------------------------------------------ #

    @property
    def horizon(self) -> int:
        last_cmd = max((c for c, _ in self.commands), default=0)
        last_data = max((end for _, end, _ in self.data_intervals), default=0)
        return max(last_cmd, last_data) + 1

    def render(self, start: int = 0, end: Optional[int] = None,
               banks: Optional[List[int]] = None) -> str:
        """Render the captured window as ASCII lanes."""
        end = self.horizon if end is None else end
        if end <= start:
            raise ValueError("empty window")
        width = end - start
        seen_banks = sorted({cmd.bank for _, cmd in self.commands})
        lanes = banks if banks is not None else seen_banks

        def blank() -> List[str]:
            return ["."] * width

        ruler_tens = "".join(
            str(((start + i) // 10) % 10) if (start + i) % 10 == 0 else " "
            for i in range(width)
        )
        ruler_ones = "".join(str((start + i) % 10) for i in range(width))

        cmd_lane = blank()
        bank_lanes: Dict[int, List[str]] = {bank: blank() for bank in lanes}
        for cycle, command in self.commands:
            if not start <= cycle < end:
                continue
            offset = cycle - start
            glyph = _CMD_GLYPH[command.kind]
            if command.kind.is_cas and command.auto_precharge:
                glyph = glyph.lower()  # ap-tagged CAS rendered lowercase
            cmd_lane[offset] = glyph
            if command.bank in bank_lanes:
                bank_lanes[command.bank][offset] = glyph

        data_lane = blank()
        for burst_start, burst_end, is_write in self.data_intervals:
            for cycle in range(max(burst_start, start), min(burst_end + 1, end)):
                data_lane[cycle - start] = "W" if is_write else "R"

        label = max(10, *(len(f"bank{b}") for b in lanes)) if lanes else 10
        lines = [
            f"{'cycle':<{label}} {ruler_tens}",
            f"{'':<{label}} {ruler_ones}",
            f"{'cmd':<{label}} {''.join(cmd_lane)}",
        ]
        for bank in lanes:
            lines.append(f"{f'bank{bank}':<{label}} {''.join(bank_lanes[bank])}")
        lines.append(f"{'data':<{label}} {''.join(data_lane)}")
        lines.append(
            f"{'':<{label}} A=ACT R/W=CAS (lowercase = auto-precharge) P=PRE"
        )
        return "\n".join(lines)


def attach(device: SdramDevice) -> WaveformCapture:
    """Instrument ``device`` so every issued command and data burst is
    captured.  Returns the capture; detach by restoring ``device._apply``.

    Wraps ``_apply`` — the single funnel both :meth:`SdramDevice.issue`
    and the controller's pre-vetted :meth:`SdramDevice.issue_vetted` path
    go through — so the capture sees every command either way."""
    capture = WaveformCapture()
    original_apply = device._apply

    def _apply(cycle: int, command: DramCommand):
        completion = original_apply(cycle, command)
        capture.record_command(cycle, command)
        if completion is not None:
            capture.record_burst(
                completion.data_start, completion.data_end, not completion.is_read
            )
        return completion

    device._apply = _apply  # type: ignore[method-assign]
    return capture
