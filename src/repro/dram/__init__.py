"""SDRAM substrate: devices, timing, controllers, and memory subsystems."""

from .address_map import AddressMap
from .bank import Bank, BankState, TimingViolation
from .commands import CommandKind, DramCommand
from .controller import CommandEngine, FinishedRequest, PagePolicy, WindowEntry
from .databahn import DATABAHN_LOOKAHEAD, DatabahnController
from .device import BurstCompletion, SdramDevice
from .memmax import MemMaxScheduler, ThreadQueue
from .protocol import ProtocolChecker, Violation, audit_engine
from .refresh import RefreshTimer
from .waveform import WaveformCapture, attach as attach_waveform
from .request import MemoryRequest, ServiceClass
from .subsystem import (
    ConvMemorySubsystem,
    ThinMemorySubsystem,
    build_memory_subsystem,
)
from .timing import GENERATION_TIMING, AnalogTiming, DramTiming

__all__ = [
    "AddressMap",
    "AnalogTiming",
    "Bank",
    "BankState",
    "BurstCompletion",
    "CommandEngine",
    "CommandKind",
    "ConvMemorySubsystem",
    "DATABAHN_LOOKAHEAD",
    "DatabahnController",
    "DramCommand",
    "DramTiming",
    "FinishedRequest",
    "GENERATION_TIMING",
    "MemMaxScheduler",
    "MemoryRequest",
    "PagePolicy",
    "ProtocolChecker",
    "RefreshTimer",
    "Violation",
    "WaveformCapture",
    "SdramDevice",
    "ServiceClass",
    "ThinMemorySubsystem",
    "ThreadQueue",
    "TimingViolation",
    "WindowEntry",
    "attach_waveform",
    "audit_engine",
    "build_memory_subsystem",
]
