"""SDRAM substrate: devices, timing, controllers, and memory subsystems."""

from .address_map import AddressMap
from .bank import Bank, BankState, TimingViolation
from .bankreg import BankRegulatedScheduler
from .commands import CommandKind, DramCommand
from .controller import CommandEngine, FinishedRequest, PagePolicy, WindowEntry
from .databahn import DATABAHN_LOOKAHEAD, DatabahnController
from .device import BurstCompletion, SdramDevice
from .dpq import DpqScheduler, dpq_latency_bound, service_slot_cycles
from .memmax import MemMaxScheduler, ThreadQueue
from .protocol import ProtocolChecker, Violation, audit_engine
from .refresh import RefreshTimer
from .scheduler import (
    SCHEDULER_BACKENDS,
    SCHEDULER_MEMBERS,
    Scheduler,
    SchedulerSeam,
    register_scheduler,
    registered_backends,
    resolve_backend,
)
from .waveform import WaveformCapture, attach as attach_waveform
from .request import MemoryRequest, ServiceClass
from .subsystem import (
    ConvMemorySubsystem,
    ThinMemorySubsystem,
    build_memory_subsystem,
    default_backend_for,
)
from .timing import GENERATION_TIMING, AnalogTiming, DramTiming

__all__ = [
    "AddressMap",
    "AnalogTiming",
    "Bank",
    "BankRegulatedScheduler",
    "BankState",
    "BurstCompletion",
    "CommandEngine",
    "CommandKind",
    "ConvMemorySubsystem",
    "DATABAHN_LOOKAHEAD",
    "DatabahnController",
    "DpqScheduler",
    "DramCommand",
    "DramTiming",
    "FinishedRequest",
    "GENERATION_TIMING",
    "MemMaxScheduler",
    "MemoryRequest",
    "PagePolicy",
    "ProtocolChecker",
    "RefreshTimer",
    "SCHEDULER_BACKENDS",
    "SCHEDULER_MEMBERS",
    "Scheduler",
    "SchedulerSeam",
    "Violation",
    "WaveformCapture",
    "SdramDevice",
    "ServiceClass",
    "ThinMemorySubsystem",
    "ThreadQueue",
    "TimingViolation",
    "WindowEntry",
    "attach_waveform",
    "audit_engine",
    "build_memory_subsystem",
    "default_backend_for",
    "dpq_latency_bound",
    "register_scheduler",
    "registered_backends",
    "resolve_backend",
    "service_slot_cycles",
]
