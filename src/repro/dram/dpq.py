"""Dynamic Priority Queue arbiter with analytically bounded latency.

After Shah, Raabe and Knoll, "Dynamic priority queue: An SDRAM arbiter
with bounded access latencies for tight WCET calculation"
(arXiv 1207.1187).  Each requestor (core) owns a private FIFO; a dynamic
priority order over the requestors decides who is served next, and the
served requestor drops to the tail of the order.  Between two consecutive
grants to any requestor, every other requestor is therefore granted at
most once — which is the whole trick: the worst-case wait of a request is
a *product of counts*, not a property of the traffic.

Service is serial and closed-page (one request fully through a
window-of-1 :class:`~repro.dram.controller.CommandEngine` with
auto-precharge on the final burst), so one service slot's duration is
bounded by the timing set alone — no row-state history can stretch it.
:func:`dpq_latency_bound` composes the two:

    ``bound = (Q · N + 1) · T_slot``

with ``N`` requestors, per-requestor FIFO depth ``Q`` (a request admitted
to a full-but-one FIFO waits for Q grants to its own requestor, each
preceded by at most N−1 foreign grants), plus one slot for a request
already in flight at admission.  ``T_slot`` (:func:`service_slot_cycles`)
conservatively sums every timing constraint a slot can possibly pay —
bank recovery after a write (tWR+tRP), minimum row-open time (tRAS),
tRCD, per-burst CAS spacing, data latency, and both bus-turnaround gaps —
so the bound holds for any command interleaving the engine produces.
The bound is deliberately slack (each real slot pays only a subset of
those constraints); what matters is that it is *sound*, which the
hypothesis property test checks against the measured p100 service
latency across randomized traffic, fault rates, and timing sets.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional

from ..sim.config import SystemConfig
from .controller import CommandEngine, FinishedRequest, PagePolicy
from .device import SdramDevice
from .request import MemoryRequest
from .scheduler import SchedulerSeam, register_scheduler
from .timing import DramTiming

#: Device burst-length mode the DPQ programs (supported by every DDR
#: generation in the repo).
DPQ_BURST_BEATS = 8

#: Per-requestor FIFO depth.  Part of the bound: deeper queues admit more
#: traffic but linearly stretch the worst case.
DPQ_QUEUE_CAPACITY = 4


def service_slot_cycles(
    timing: DramTiming, burst_beats: int, max_beats: int
) -> int:
    """Worst-case duration of one closed-page service slot, in cycles.

    Sums every constraint a slot can pay, whether or not a given slot
    actually pays it: write recovery + precharge of the previously used
    row (tWR+tRP), minimum open time of that row (tRAS, covering the case
    where it gates the precharge instead), activate-to-CAS (tRCD), the
    CAS train for ``max_beats`` useful beats at ``burst_beats`` per CAS
    (each burst separated by the worst of tCCD / data occupancy / tRRD),
    the data latency of the final CAS (max of CL and WL), and both bus
    turnaround gaps (tWTR, tRTW) in case the slot switches direction.
    """
    bursts = max(1, -(-max_beats // burst_beats))
    per_burst = max(
        timing.t_ccd, timing.burst_cycles(burst_beats), timing.t_rrd
    )
    return (
        timing.t_wr
        + timing.t_rp
        + timing.t_ras
        + timing.t_rcd
        + bursts * per_burst
        + max(timing.cas_latency, timing.write_latency)
        + timing.t_wtr
        + timing.t_rtw
    )


def dpq_latency_bound(
    timing: DramTiming,
    requestors: int,
    queue_capacity: int,
    burst_beats: int,
    max_beats: int,
) -> int:
    """Worst-case admission→final-data-beat latency of any request.

    A request admitted as the ``Q``-th entry of its requestor's FIFO
    completes after at most ``Q`` grants to its own requestor; the DPQ
    tail-drop rule lets at most ``N − 1`` foreign grants precede each of
    them, and one foreign request may already be in flight at admission:
    ``(Q·(1 + (N−1)) + 1) = Q·N + 1`` slots.
    """
    if requestors <= 0:
        raise ValueError("bound needs at least one requestor")
    slots = queue_capacity * requestors + 1
    return slots * service_slot_cycles(timing, burst_beats, max_beats)


class DpqScheduler(SchedulerSeam):
    """Per-requestor FIFOs + dynamic priority order, serial closed-page
    service.  Satisfies the :class:`~repro.dram.scheduler.Scheduler`
    protocol; :meth:`latency_bound` reports the analytic worst case for
    the traffic actually admitted so far."""

    def __init__(
        self,
        device: SdramDevice,
        timing: DramTiming,
        queue_capacity: int = DPQ_QUEUE_CAPACITY,
        burst_beats: int = DPQ_BURST_BEATS,
        tracer=None,
    ) -> None:
        if queue_capacity <= 0:
            raise ValueError("queue_capacity must be positive")
        self.device = device
        self.timing = timing
        self.queue_capacity = queue_capacity
        self.burst_beats = burst_beats
        # Serial service: window of 1, closed page — the slot-duration
        # bound depends on never having two requests in the pipeline.
        self.engine = CommandEngine(
            device,
            burst_beats=burst_beats,
            page_policy=PagePolicy.CLOSED_PAGE,
            window=1,
            tracer=tracer,
        )
        #: requestor id -> private FIFO (created on first admission; once
        #: seen, a requestor stays in the priority order and in ``N``).
        self.queues: Dict[int, Deque[MemoryRequest]] = {}
        #: dynamic priority order, highest priority first.
        self.order: List[int] = []
        self.grants: Dict[int, int] = {}
        self.max_beats_seen = 0
        self.accepted = 0
        self._init_seam()

    # --- request admission ------------------------------------------- #

    def can_accept(self, request: MemoryRequest) -> bool:
        queue = self.queues.get(request.master)
        return queue is None or len(queue) < self.queue_capacity

    def enqueue(self, request: MemoryRequest, cycle: int) -> None:
        queue = self.queues.get(request.master)
        if queue is None:
            queue = self.queues[request.master] = deque()
            self.order.append(request.master)
            self.grants[request.master] = 0
        if len(queue) >= self.queue_capacity:
            raise RuntimeError("DPQ requestor queue full")
        queue.append(request)
        self.accepted += 1
        if request.beats > self.max_beats_seen:
            self.max_beats_seen = request.beats
        self._note_admitted(request, cycle)

    # --- per-cycle command selection --------------------------------- #

    def tick(self, cycle: int) -> None:
        while self.engine.has_space:
            granted = self._grant()
            if granted is None:
                break
            self.engine.accept(granted, cycle)
        self.engine.tick(cycle)
        self.device.tick(cycle)

    def _grant(self) -> Optional[MemoryRequest]:
        """Pop the head of the highest-priority non-empty FIFO and drop
        that requestor to the tail of the order."""
        for position, master in enumerate(self.order):
            queue = self.queues[master]
            if queue:
                request = queue.popleft()
                del self.order[position]
                self.order.append(master)
                self.grants[master] += 1
                return request
        return None

    def drain_finished(self) -> List[FinishedRequest]:
        done = self.engine.drain_finished()
        if done:
            self._note_finished(done)
        return done

    # --- occupancy / idle-skip contract ------------------------------ #

    @property
    def pending(self) -> int:
        return sum(len(q) for q in self.queues.values()) + self.engine.pending

    @property
    def idle(self) -> bool:
        return self.pending == 0

    @property
    def quiescent(self) -> bool:
        return (
            not self.engine.entries
            and not self.engine.finished
            and all(not q for q in self.queues.values())
        )

    def next_event_cycle(self, cycle: int) -> Optional[int]:
        if self.engine.finished:
            return cycle + 1
        queued = any(self.queues.values())
        if queued and self.engine.has_space:
            return cycle + 1
        if self.engine.entries:
            return self.engine.next_attempt_cycle(cycle)
        return None

    def on_cycles_skipped(self, start: int, stop: int) -> None:
        self.device.on_cycles_skipped(start, stop)

    # --- stats surface ----------------------------------------------- #

    @property
    def refresh(self):
        return self.engine.refresh

    def latency_bound(self) -> Optional[int]:
        """The analytic bound for the requestor population and largest
        request admitted so far (``None`` before any traffic)."""
        if not self.queues:
            return None
        return dpq_latency_bound(
            self.timing,
            requestors=len(self.queues),
            queue_capacity=self.queue_capacity,
            burst_beats=self.burst_beats,
            max_beats=max(self.max_beats_seen, 1),
        )

    def scheduler_stats(self) -> Dict[str, float]:
        stats = self._seam_stats()
        stats["accepted"] = float(self.accepted)
        stats["requestors"] = float(len(self.queues))
        stats["max_beats"] = float(self.max_beats_seen)
        for master, grants in sorted(self.grants.items()):
            stats[f"requestor{master}.grants"] = float(grants)
        return stats


@register_scheduler("dpq")
def build_dpq_backend(
    config: SystemConfig,
    device: SdramDevice,
    timing: DramTiming,
    tracer=None,
) -> DpqScheduler:
    return DpqScheduler(device, timing, tracer=tracer)
