"""Cycle-level multi-bank SDRAM device model.

Models the device-global resources the paper's scheduling conditions hinge
on (Section III-A):

* a single shared **command bus** — one command per cycle, which is what
  makes short bursts command-bound without auto-precharge (Fig. 5);
* a single shared bidirectional **data bus** — back-to-back read/write in
  opposite directions collide, so turnaround gaps (tWTR / read-to-write) are
  enforced: the paper's *data contention*;
* per-bank row buffers and activate/precharge timing — *bank conflict* and
  *short turn-around bank interleaving*;
* tCCD between CAS commands — why DDR III behaves like BL 8 even when
  issuing BL 4 bursts (Section V-A).

The device does not interpret addresses or store data — workloads are
synthetic — but it faithfully accounts when every data beat moves, which is
what latency and utilization are computed from.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..obs.events import EventType
from ..sim.stats import StatsCollector
from .bank import Bank, BankState, TimingViolation
from .commands import CommandKind, DramCommand
from .timing import DramTiming


@dataclass(frozen=True)
class BurstCompletion:
    """Outcome of an accepted CAS: when its data finishes on the bus."""

    request_id: Optional[int]
    is_read: bool
    data_start: int
    data_end: int
    useful_beats: int
    burst_beats: int


class SdramDevice:
    """One DDR SDRAM device behind a single command/data bus pair."""

    def __init__(
        self,
        timing: DramTiming,
        stats: Optional[StatsCollector] = None,
        tracer=None,
    ):
        self.timing = timing
        self.stats = stats
        self.tracer = tracer
        self.banks: List[Bank] = [Bank(i, timing) for i in range(timing.banks)]
        self._last_command_cycle = -1
        self._next_cas_ok = 0              # tCCD across all banks
        self._next_act_ok = 0              # tRRD across banks
        self._bus_free_at = 0              # first cycle the data bus is free
        self._last_data_was_write = False
        self._last_write_data_end = -1
        self._last_read_data_end = -1
        self._completions: List[BurstCompletion] = []
        self.issued_commands = 0

    # ------------------------------------------------------------------ #
    # Legality
    # ------------------------------------------------------------------ #

    def can_issue(self, cycle: int, command: DramCommand) -> bool:
        """True iff ``command`` violates no constraint at ``cycle``."""
        if command.kind is CommandKind.NOP:
            return True
        if cycle <= self._last_command_cycle:
            return False  # one command per cycle on the shared command bus
        if not 0 <= command.bank < len(self.banks):
            return False
        bank = self.banks[command.bank]
        if command.kind is CommandKind.ACTIVATE:
            return cycle >= self._next_act_ok and bank.can_activate(cycle)
        if command.kind is CommandKind.PRECHARGE:
            return bank.can_precharge(cycle)
        # READ / WRITE
        if command.row is not None and not bank.row_is_open(command.row, cycle):
            return False
        if command.row is None and bank.state is not BankState.ACTIVE:
            return False
        row = command.row if command.row is not None else bank.open_row
        if row is None or not bank.can_cas(cycle, row):
            return False
        if cycle < self._next_cas_ok:
            return False
        data_start = cycle + (
            self.timing.write_latency if command.is_write
            else self.timing.cas_latency
        )
        if data_start < self._bus_free_at:
            return False
        if command.is_read and self._last_write_data_end >= 0:
            # write -> read turnaround (tWTR from last write data beat)
            if cycle <= self._last_write_data_end + self.timing.t_wtr:
                return False
        if command.is_write and self._last_read_data_end >= 0:
            # read -> write bus turnaround (data contention gap)
            if data_start <= self._last_read_data_end + self.timing.t_rtw:
                return False
        return True

    # ------------------------------------------------------------------ #
    # Issue
    # ------------------------------------------------------------------ #

    def issue(self, cycle: int, command: DramCommand) -> Optional[BurstCompletion]:
        """Apply ``command`` at ``cycle``; return the burst completion for CAS."""
        if not self.can_issue(cycle, command):
            raise TimingViolation(f"cannot issue {command} at cycle {cycle}")
        return self._apply(cycle, command)

    def issue_vetted(self, cycle: int, command: DramCommand) -> Optional[BurstCompletion]:
        """Apply a command the caller has *just* vetted with
        :meth:`can_issue` at the same cycle — skips the redundant second
        legality pass :meth:`issue` would run.  The independent
        :class:`~repro.dram.protocol.ProtocolChecker` still audits the
        resulting command stream in the test suite."""
        return self._apply(cycle, command)

    def _apply(self, cycle: int, command: DramCommand) -> Optional[BurstCompletion]:
        if command.kind is CommandKind.NOP:
            return None
        self._last_command_cycle = cycle
        self.issued_commands += 1
        bank = self.banks[command.bank]
        if self.stats is not None:
            self.stats.record_command(cycle, command.kind.value)

        if command.kind is CommandKind.ACTIVATE:
            assert command.row is not None
            bank.activate(cycle, command.row)
            self._next_act_ok = cycle + self.timing.t_rrd
            return None

        if command.kind is CommandKind.PRECHARGE:
            bank.precharge(cycle)
            return None

        # READ / WRITE burst
        self.timing.validate_burst(command.burst_beats)
        row = command.row if command.row is not None else bank.open_row
        assert row is not None
        burst_cycles = self.timing.burst_cycles(command.burst_beats)
        latency = (
            self.timing.write_latency if command.is_write
            else self.timing.cas_latency
        )
        data_start = cycle + latency
        data_end = data_start + burst_cycles - 1
        bank.cas(cycle, row, command.is_write, data_end, command.auto_precharge)
        self._next_cas_ok = cycle + max(self.timing.t_ccd, burst_cycles)
        self._bus_free_at = data_end + 1
        if command.is_write:
            self._last_write_data_end = data_end
        else:
            self._last_read_data_end = data_end
        completion = BurstCompletion(
            request_id=command.request_id,
            is_read=command.is_read,
            data_start=data_start,
            data_end=data_end,
            useful_beats=command.useful_beats,
            burst_beats=command.burst_beats,
        )
        self._completions.append(completion)
        if self.stats is not None:
            self._account_burst(completion)
        tracer = self.tracer
        if tracer:
            tracer.emit(
                EventType.DATA_BEAT,
                data_start,
                f"bank{command.bank}",
                request_id=command.request_id,
                data_end=data_end,
                beats=command.burst_beats,
                useful=command.useful_beats,
                write=command.is_write,
            )
        return completion

    def _account_burst(self, completion: BurstCompletion) -> None:
        """Spread the burst's useful/total beats over its bus cycles."""
        assert self.stats is not None
        cycles = completion.data_end - completion.data_start + 1
        remaining_useful = completion.useful_beats
        remaining_total = completion.burst_beats
        for offset in range(cycles):
            beats = min(2, remaining_total)
            useful = min(beats, remaining_useful)
            self.stats.record_bus_cycle(
                completion.data_start + offset, useful, beats
            )
            remaining_total -= beats
            remaining_useful -= useful

    # ------------------------------------------------------------------ #
    # Observation helpers
    # ------------------------------------------------------------------ #

    def tick(self, cycle: int) -> None:
        """Per-cycle accounting (observed-cycle counter for utilization)."""
        if self.stats is not None:
            self.stats.record_idle_cycle(cycle)

    def on_cycles_skipped(self, start: int, stop: int) -> None:
        """Account for fast-forwarded cycles ``[start, stop)`` the device
        was never ticked for (idle by definition)."""
        if self.stats is not None:
            self.stats.record_idle_cycles(start, stop)

    def row_is_open(self, bank: int, row: int, cycle: int) -> bool:
        return self.banks[bank].row_is_open(row, cycle)

    def bank_state(self, bank: int) -> BankState:
        return self.banks[bank].state

    def drain_completions(self) -> List[BurstCompletion]:
        """Return and clear the bursts accepted since the last drain."""
        done, self._completions = self._completions, []
        return done

    @property
    def data_bus_free_at(self) -> int:
        return self._bus_free_at

    @property
    def next_cas_ok(self) -> int:
        """Earliest cycle a CAS can pass the device-global tCCD gate."""
        return self._next_cas_ok

    @property
    def next_act_ok(self) -> int:
        """Earliest cycle an ACT can pass the device-global tRRD gate."""
        return self._next_act_ok
