"""Optional numpy-vectorized DRAM bank-state/timing datapath.

The per-bank timing registers (:class:`~repro.dram.bank.Bank`) are plain
Python attributes; the command engine's legality predicates and its
event-dispatch stall bound (:meth:`CommandEngine.next_attempt_cycle`)
evaluate them bank-by-bank in Python loops.  This module mirrors those
registers into numpy int64 arrays so the same checks run as a handful of
array operations — **bit-identical** to the scalar code by construction
(every comparison and max() below transcribes one line of the scalar
predicate it replaces; the identity suite in ``tests/dram`` asserts the
equivalence on randomized engine states).

Feature flag
------------

``REPRO_DRAM_VECTOR`` ∈ ``{auto, on, off}`` (default ``auto``):

* ``off`` — never vectorize; the pure-Python scalar path runs.
* ``on``  — vectorize whenever numpy imports (still falls back to scalar
  when it does not; nothing in the suite *requires* numpy).
* ``auto`` — vectorize only when the device has at least
  :data:`AUTO_MIN_BANKS` banks.  Measured on the shipped 8-bank DDR2/DDR3
  configurations the array gather costs more than the 8-iteration Python
  loop it replaces, so ``auto`` keeps them scalar; wide devices (or
  rank-interleaved futures) cross over.  The threshold is deliberately an
  honest measurement artifact, not a tuning knob.

The gate is *pure*: like ``next_attempt_cycle`` it reads pending
auto-precharge windows without retiring them (an expired AP is modeled as
an IDLE bank whose ``idle_at`` equals the AP window end — exactly what
``Bank._apply_auto_precharge`` will write when the scalar code next
touches the bank).
"""

from __future__ import annotations

import os
from typing import List, Optional

try:  # numpy is an optional dependency throughout the repo
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on numpy-less installs
    _np = None

#: Sentinel for "never" (no pending AP / no admissible candidate); far past
#: any simulated horizon and safe to compare with int64 arithmetic.
NEVER = 1 << 60

#: ``auto`` enables vectorization from this bank count upward (see module
#: docstring: below it the gather dominates the loop it replaces).
AUTO_MIN_BANKS = 32


def numpy_available() -> bool:
    return _np is not None


def resolve_mode() -> str:
    """The effective flag value (unknown strings fall back to ``auto``)."""
    mode = os.environ.get("REPRO_DRAM_VECTOR", "auto").strip().lower()
    if mode not in ("auto", "on", "off"):
        return "auto"
    return mode


def make_gate(device) -> Optional["VectorBankGate"]:
    """Build a :class:`VectorBankGate` for ``device`` per the feature flag,
    or ``None`` when the scalar path should run (flag off, numpy missing,
    or ``auto`` below the measured crossover)."""
    mode = resolve_mode()
    if mode == "off" or _np is None:
        return None
    if mode == "auto" and len(device.banks) < AUTO_MIN_BANKS:
        return None
    return VectorBankGate(device)


class VectorBankGate:
    """Vectorized mirror of one device's per-bank timing registers.

    Call :meth:`refresh` to re-gather the mirror from the live ``Bank``
    objects, then any number of mask/bound queries against it.  The mirror
    is a snapshot — it is *not* updated by command issue — so refresh once
    per decision point, exactly where the scalar code would re-read the
    registers.
    """

    def __init__(self, device) -> None:
        if _np is None:  # pragma: no cover - guarded by make_gate
            raise RuntimeError("numpy is not available")
        self.device = device
        count = len(device.banks)
        self._active = _np.zeros(count, dtype=bool)
        self._open_row = _np.full(count, -1, dtype=_np.int64)
        self._idle_at = _np.zeros(count, dtype=_np.int64)
        self._cas_ready_at = _np.zeros(count, dtype=_np.int64)
        self._precharge_ok_at = _np.zeros(count, dtype=_np.int64)
        self._ap_at = _np.full(count, NEVER, dtype=_np.int64)

    def refresh(self) -> None:
        active = self._active
        open_row = self._open_row
        idle_at = self._idle_at
        cas_ready_at = self._cas_ready_at
        precharge_ok_at = self._precharge_ok_at
        ap_at = self._ap_at
        for index, bank in enumerate(self.device.banks):
            active[index] = bank.is_active
            row = bank.open_row
            open_row[index] = -1 if row is None else row
            idle_at[index] = bank.idle_at
            cas_ready_at[index] = bank.cas_ready_at
            precharge_ok_at[index] = bank.precharge_ok_at
            ap = bank.auto_precharge_at
            ap_at[index] = NEVER if ap is None else ap

    # ------------------------------------------------------------------ #
    # Effective state with pending APs modeled (not retired)
    # ------------------------------------------------------------------ #

    def _ap_expired(self, cycle: int):
        return self._ap_at <= cycle

    def _effective_idle(self, cycle: int):
        """Banks IDLE after modeling expired APs, and when each re-ACTs."""
        expired = self._ap_expired(cycle)
        idle = ~self._active | expired
        idle_at = _np.where(expired, self._ap_at, self._idle_at)
        return idle, idle_at

    # ------------------------------------------------------------------ #
    # Legality masks (vector mirrors of the Bank predicates)
    # ------------------------------------------------------------------ #

    def can_activate_mask(self, cycle: int):
        """``bank.can_activate(cycle)`` for every bank, as a bool array
        (without the device-global tRRD gate, which is scalar state)."""
        idle, idle_at = self._effective_idle(cycle)
        return idle & (idle_at <= cycle)

    def can_cas_mask(self, cycle: int, rows):
        """``bank.can_cas(cycle, rows[i])`` for every bank ``i``.

        Any pending AP — expired (bank about to retire to IDLE) or not
        (``auto_precharge_at is not None``) — makes the scalar predicate
        False, so one ``== NEVER`` test covers both branches.
        """
        rows = _np.asarray(rows, dtype=_np.int64)
        return (
            self._active
            & (self._ap_at == NEVER)
            & (self._open_row == rows)
            & (self._cas_ready_at <= cycle)
        )

    def can_precharge_mask(self, cycle: int):
        """``bank.can_precharge(cycle)`` for every bank (same AP note as
        :meth:`can_cas_mask`)."""
        return (
            self._active
            & (self._ap_at == NEVER)
            & (self._precharge_ok_at <= cycle)
        )

    # ------------------------------------------------------------------ #
    # Event-dispatch stall bound (per-bank ACT/PRE candidates)
    # ------------------------------------------------------------------ #

    def act_pre_bounds(self, bank_indices: List[int], wanted_rows: List[int],
                       order_blocked: List[bool]):
        """The per-bank candidate cycles of
        :meth:`CommandEngine.next_attempt_cycle`, vectorized.

        ``bank_indices``/``wanted_rows``/``order_blocked`` describe the
        first window entry per distinct bank, in scan order.  Returns an
        int64 array with :data:`NEVER` where the scalar loop ``continue``s
        (row already open, or older-entry order block).
        """
        banks = _np.asarray(bank_indices, dtype=_np.intp)
        rows = _np.asarray(wanted_rows, dtype=_np.int64)
        blocked = _np.asarray(order_blocked, dtype=bool)
        next_act_ok = self.device._next_act_ok
        ap_at = self._ap_at[banks]
        active = self._active[banks]
        open_row = self._open_row[banks]
        ap_pending = ap_at < NEVER
        # AP pending: self-closes at the window end, then re-ACT.
        ap_bound = _np.maximum(next_act_ok, ap_at)
        # ACTIVE, other row: demand precharge when ordering allows.
        row_open = active & (open_row == rows)
        pre_bound = self._precharge_ok_at[banks]
        # IDLE: plain ACT.
        act_bound = _np.maximum(next_act_ok, self._idle_at[banks])
        bounds = _np.where(
            ap_pending,
            ap_bound,
            _np.where(
                active,
                _np.where(row_open | blocked, NEVER, pre_bound),
                act_bound,
            ),
        )
        return bounds

    def min_act_pre_bound(self, bank_indices, wanted_rows,
                          order_blocked) -> Optional[int]:
        """Smallest admissible candidate, or ``None`` when every bank is
        order-blocked (mirrors the scalar loop's ``bound is None``)."""
        if not bank_indices:
            return None
        bounds = self.act_pre_bounds(bank_indices, wanted_rows, order_blocked)
        best = int(bounds.min())
        return None if best >= NEVER else best
