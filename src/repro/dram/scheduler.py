"""The memory-arbiter seam: one ``Scheduler`` protocol, many backends.

Every memory subsystem in the repo — the paper's thin Fig. 6 controller,
the MemMax/Databahn CONV pipeline, and the newer arbiters from the
related work (the Dynamic Priority Queue of Shah/Raabe/Knoll,
arXiv 1207.1187, and the per-bank bandwidth regulator of Sullivan et
al., arXiv 2603.26054) — presents the same surface to the memory-side
network interface:

* **request admission** — ``can_accept`` / ``enqueue`` with backpressure;
* **per-cycle command selection** — ``tick`` issues at most one SDRAM
  command per cycle and ``drain_finished`` reports requests whose final
  data beat has a known bus cycle;
* **bank-state queries** — ``open_rows`` exposes the per-bank open row
  (or ``None``) so observers never reach into backend internals;
* **stats surface** — ``scheduler_stats`` (flat counters for the metrics
  registry), the always-on ``service_latency`` series (admission →
  final data beat, the latency an arbiter actually controls), and
  ``latency_bound`` (the analytic worst-case access latency for
  backends that have one; ``None`` otherwise).

Backends self-register in :data:`SCHEDULER_BACKENDS` under a short name
(``engine``, ``memmax``, ``databahn``, ``dpq``, ``bank-reg``); the
``arbiter`` field of :class:`~repro.sim.config.SystemConfig` selects one
by name (validated at config-construction time), and ``None`` — the
default — keeps the paper's design-matched choice, bit-identical to the
pre-seam code path.
"""

from __future__ import annotations

from typing import (
    Callable,
    Dict,
    List,
    Optional,
    Protocol,
    Tuple,
    runtime_checkable,
)

from ..sim.stats import LatencySeries
from .request import MemoryRequest


@runtime_checkable
class Scheduler(Protocol):
    """What the memory-side NI (and every harness) may rely on."""

    # --- request admission ------------------------------------------- #
    def can_accept(self, request: MemoryRequest) -> bool: ...
    def enqueue(self, request: MemoryRequest, cycle: int) -> None: ...

    # --- per-cycle command selection --------------------------------- #
    def tick(self, cycle: int) -> None: ...
    def drain_finished(self) -> list: ...

    # --- occupancy / idle-skip contract ------------------------------ #
    @property
    def pending(self) -> int: ...
    @property
    def idle(self) -> bool: ...
    @property
    def quiescent(self) -> bool: ...
    def next_event_cycle(self, cycle: int) -> Optional[int]: ...
    def on_cycles_skipped(self, start: int, stop: int) -> None: ...

    # --- bank-state queries ------------------------------------------ #
    def open_rows(self) -> Dict[int, Optional[int]]: ...

    # --- stats surface ----------------------------------------------- #
    def scheduler_stats(self) -> Dict[str, float]: ...
    def latency_bound(self) -> Optional[int]: ...


#: Every member a backend must expose (the conformance checklist the
#: tests walk; ``runtime_checkable`` isinstance only verifies presence).
SCHEDULER_MEMBERS: Tuple[str, ...] = (
    "can_accept", "enqueue", "tick", "drain_finished",
    "pending", "idle", "quiescent",
    "next_event_cycle", "on_cycles_skipped",
    "open_rows", "scheduler_stats", "latency_bound",
    "service_latency", "refresh", "device",
)


class SchedulerSeam:
    """Shared plumbing for every backend: the service-latency series and
    the bank-state query.

    *Service latency* is measured from admission (``enqueue``) to the
    request's final data beat — the span the memory arbiter actually
    controls, excluding NoC transit.  It is recorded unconditionally
    (count/total/min/max are O(1) per request, no samples kept) so the
    WCET column's measured p100 is always available, and it is the
    quantity the DPQ analytic bound is checked against.
    """

    device = None  # set by the concrete backend

    def _init_seam(self) -> None:
        self.service_latency = LatencySeries()
        self._admitted_at: Dict[int, int] = {}

    # --- admission / completion accounting --------------------------- #

    def _note_admitted(self, request: MemoryRequest, cycle: int) -> None:
        self._admitted_at[request.request_id] = cycle

    def _note_finished(self, finished) -> None:
        admitted = self._admitted_at
        for item in finished:
            start = admitted.pop(item.request.request_id, None)
            if start is not None:
                self.service_latency.record(item.data_ready_cycle - start)

    # --- bank-state queries ------------------------------------------ #

    def open_rows(self) -> Dict[int, Optional[int]]:
        """Per-bank open row (``None`` = precharged/idle).  Read-only:
        pending auto-precharge windows are reported as still open, which
        is what the command choosers see too."""
        return {
            bank.index: (bank.open_row if bank.is_active else None)
            for bank in self.device.banks
        }

    # --- stats surface defaults -------------------------------------- #

    def latency_bound(self) -> Optional[int]:
        """Analytic worst-case service latency, when the backend has one."""
        return None

    def _seam_stats(self) -> Dict[str, float]:
        series = self.service_latency
        stats: Dict[str, float] = {
            "service.count": float(series.count),
            "service.mean": series.mean,
            "service.p100": series.p100,
        }
        bound = self.latency_bound()
        if bound is not None:
            stats["service.bound"] = float(bound)
        return stats


# --------------------------------------------------------------------- #
# Backend registry
# --------------------------------------------------------------------- #

#: name -> factory(config, device, timing, tracer) -> Scheduler.
SCHEDULER_BACKENDS: Dict[str, Callable] = {}

#: The backends that ship with the repo (import side effect registers
#: them; anything user-registered on top is also honoured).
_BUILTIN_MODULES = (
    "repro.dram.subsystem",   # engine / memmax / databahn
    "repro.dram.dpq",         # dynamic priority queue
    "repro.dram.bankreg",     # per-bank bandwidth regulation
)


def register_scheduler(name: str):
    """Decorator registering a backend factory under ``name`` (last wins).

    A factory is called as ``factory(config, device, timing, tracer)``
    and must return an object satisfying :class:`Scheduler`.
    """

    def register(factory):
        SCHEDULER_BACKENDS[name] = factory
        return factory

    return register


def _load_builtin_backends() -> None:
    import importlib

    for module in _BUILTIN_MODULES:
        importlib.import_module(module)


def registered_backends() -> List[str]:
    """Names of every registered backend, builtin ones guaranteed loaded."""
    _load_builtin_backends()
    return sorted(SCHEDULER_BACKENDS)


def resolve_backend(name: str) -> Callable:
    """The factory for ``name``; raises ``KeyError`` listing what exists.

    Misspellings normally never reach this point: the ``arbiter`` field
    is validated against :func:`registered_backends` when the
    :class:`~repro.sim.config.SystemConfig` is constructed.
    """
    _load_builtin_backends()
    try:
        return SCHEDULER_BACKENDS[name]
    except KeyError:
        raise KeyError(
            f"unknown memory-arbiter backend {name!r}; "
            f"registered: {registered_backends()}"
        ) from None
