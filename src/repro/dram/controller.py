"""SDRAM command engine and page policies.

The paper's memory subsystem (Fig. 6) is a pipeline of PRE / RAS / CAS
buffers feeding a command scheduler: several requests are in flight at
different stages so that bank preparation (ACT/PRE) for request *n+1*
overlaps the data burst of request *n* — the bank-interleaving pipelining of
Section III-A.  :class:`CommandEngine` models that pipeline as a small
in-order window:

* CAS commands are issued strictly in request order (in-order service — the
  reorder decisions were already made upstream, by the NoC routers or by the
  MemMax front-end);
* ACT and PRE for younger window entries may issue early, overlapping older
  bursts, provided they do not steal a row an older un-served entry needs.

Page policies (Section IV-C):

* ``OPEN_PAGE`` — banks stay open; conflicts pay a demand PRE (CONV, [4]);
* ``CLOSED_PAGE`` — every CAS carries auto-precharge;
* ``PARTIALLY_OPEN`` — the paper's policy: banks stay open, except a CAS
  whose request carries the SAGM *AP tag* (last short packet split from a
  long packet) closes the bank via auto-precharge.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional

from ..obs.events import EventType
from .bank import BankState
from .commands import CommandKind, DramCommand
from .device import SdramDevice
from .refresh import RefreshTimer
from .request import MemoryRequest
from .vectorized import make_gate


class PagePolicy(enum.Enum):
    OPEN_PAGE = "open"
    CLOSED_PAGE = "closed"
    PARTIALLY_OPEN = "partially-open"


@dataclass
class WindowEntry:
    """One request moving through the PRE/RAS/CAS pipeline."""

    request: MemoryRequest
    accepted_cycle: int
    beats_remaining: int = field(init=False)
    next_column: int = field(init=False)
    bursts_issued: int = 0
    last_data_end: int = -1
    required_act: bool = False  # this entry paid for its own row activation

    def __post_init__(self) -> None:
        self.beats_remaining = self.request.beats
        self.next_column = self.request.column

    @property
    def cas_done(self) -> bool:
        return self.beats_remaining <= 0


@dataclass(frozen=True)
class FinishedRequest:
    """A request whose final data beat has a known bus cycle."""

    request: MemoryRequest
    data_ready_cycle: int


class CommandEngine:
    """In-order windowed PRE/RAS/CAS issue engine over one SDRAM device."""

    def __init__(
        self,
        device: SdramDevice,
        burst_beats: int,
        page_policy: PagePolicy = PagePolicy.OPEN_PAGE,
        window: int = 4,
        otf: bool = False,
        refresh: Optional[RefreshTimer] = None,
        tracer=None,
    ) -> None:
        """``burst_beats`` is the device BL mode; with ``otf`` (DDR III
        BL4/BL8 on-the-fly) a trailing short chunk uses BL 4 instead.
        ``refresh`` opts into periodic auto-refresh (off by default, as in
        the paper's evaluation)."""
        if window <= 0:
            raise ValueError("window must be positive")
        device.timing.validate_burst(burst_beats)
        self.device = device
        self.burst_beats = burst_beats
        self.page_policy = page_policy
        self.window_size = window
        self.otf = otf
        self.refresh = refresh
        self.entries: List[WindowEntry] = []
        self.finished: List[FinishedRequest] = []
        self.demand_precharges = 0
        self.tracer = tracer
        # Optional numpy datapath for the per-bank timing checks (None =
        # scalar path; see repro.dram.vectorized for the feature flag).
        self._vector_gate = make_gate(device)

    # ------------------------------------------------------------------ #

    @property
    def has_space(self) -> bool:
        return len(self.entries) < self.window_size

    def accept(self, request: MemoryRequest, cycle: int) -> None:
        if not self.has_space:
            raise RuntimeError("command engine window full")
        if not 0 <= request.bank < len(self.device.banks):
            raise ValueError(
                f"request addresses bank {request.bank} but the device has "
                f"{len(self.device.banks)} banks"
            )
        self.entries.append(WindowEntry(request, cycle))

    @property
    def pending(self) -> int:
        return len(self.entries)

    @property
    def idle(self) -> bool:
        return not self.entries

    def drain_finished(self) -> List[FinishedRequest]:
        if not self.finished:
            return self.finished
        done, self.finished = self.finished, []
        return done

    # ------------------------------------------------------------------ #
    # One command per cycle
    # ------------------------------------------------------------------ #

    def tick(self, cycle: int) -> Optional[DramCommand]:
        """Issue at most one command; retire fully-served entries."""
        if self.refresh is not None and self.refresh.enabled:
            blocking = self._refresh_tick(cycle)
            if blocking is not None:
                return blocking
            if self.refresh.in_progress(cycle) or self.refresh.due(cycle):
                return None
        if not self.entries:
            # Every _choose_command branch scans entries; with an empty
            # window no command can be chosen.
            return None
        command = self._choose_command(cycle)
        if command is not None:
            # Every chooser only returns a command can_issue just accepted
            # at this cycle, so the vetted path skips the re-check.
            completion = self.device.issue_vetted(cycle, command)
            tracer = self.tracer
            if tracer:
                tracer.emit(
                    EventType.DRAM_CMD,
                    cycle,
                    f"bank{command.bank}",
                    request_id=command.request_id,
                    kind=command.kind.value,
                    row=command.row,
                )
            if command.kind.is_cas:
                entry = self._entry_for(command.request_id)
                assert entry is not None and completion is not None
                if entry.bursts_issued == 0 and self.device.stats is not None:
                    self.device.stats.record_row_outcome(
                        cycle, hit=not entry.required_act, bank=command.bank
                    )
                entry.bursts_issued += 1
                entry.beats_remaining -= completion.useful_beats
                entry.next_column += command.burst_beats
                entry.last_data_end = completion.data_end
                if entry.cas_done:
                    self.finished.append(
                        FinishedRequest(entry.request, entry.last_data_end)
                    )
                    self.entries.remove(entry)
        return command

    # ------------------------------------------------------------------ #
    # Refresh handling (opt-in)
    # ------------------------------------------------------------------ #

    def _refresh_tick(self, cycle: int) -> Optional[DramCommand]:
        """Drive a due refresh: precharge all banks, wait for quiet, then
        start the all-bank refresh.  Returns a PRE command when one was
        issued this cycle (it occupies the command bus)."""
        assert self.refresh is not None
        if self.refresh.in_progress(cycle) or not self.refresh.due(cycle):
            return None
        # Close any open bank as soon as its timing allows.
        for bank in self.device.banks:
            if bank.is_active:
                command = DramCommand(kind=CommandKind.PRECHARGE, bank=bank.index)
                if self.device.can_issue(cycle, command):
                    self.device.issue_vetted(cycle, command)
                    return command
        quiet = (
            all(not bank.is_active and bank.auto_precharge_at is None
                and cycle >= bank.idle_at
                for bank in self.device.banks)
            and self.device.data_bus_free_at <= cycle
        )
        if quiet:
            done = self.refresh.start(cycle)
            for bank in self.device.banks:
                bank.idle_at = max(bank.idle_at, done + 1)
        return None

    # ------------------------------------------------------------------ #
    # Command selection: CAS (oldest first) > ACT > PRE
    # ------------------------------------------------------------------ #

    def _choose_command(self, cycle: int) -> Optional[DramCommand]:
        cas = self._cas_command(cycle)
        if cas is not None:
            return cas
        act = self._activate_command(cycle)
        if act is not None:
            return act
        return self._precharge_command(cycle)

    def _cas_command(self, cycle: int) -> Optional[DramCommand]:
        """CAS for the oldest entry whose row is open (in-order data)."""
        if not self.entries:
            return None
        if cycle < self.device.next_cas_ok:
            # Device-global tCCD gate: can_issue would reject any CAS this
            # cycle, so skip building and vetting the command.
            return None
        entry = self.entries[0]
        request = entry.request
        if not self.device.banks[request.bank].row_is_open(request.row, cycle):
            return None
        burst = self._burst_for(entry)
        useful = min(entry.beats_remaining, burst)
        last_burst = entry.beats_remaining <= burst
        command = DramCommand(
            kind=CommandKind.WRITE if request.is_write else CommandKind.READ,
            bank=request.bank,
            row=request.row,
            column=entry.next_column,
            burst_beats=burst,
            auto_precharge=last_burst and self._wants_auto_precharge(request),
            useful_beats=useful,
            request_id=request.request_id,
        )
        return command if self.device.can_issue(cycle, command) else None

    def _burst_for(self, entry: WindowEntry) -> int:
        if self.otf and entry.beats_remaining <= 4:
            return 4
        return self.burst_beats

    def _wants_auto_precharge(self, request: MemoryRequest) -> bool:
        if self.page_policy is PagePolicy.CLOSED_PAGE:
            return True
        if self.page_policy is PagePolicy.PARTIALLY_OPEN:
            return request.ap_tag
        return False

    def _activate_command(self, cycle: int) -> Optional[DramCommand]:
        """ACT for the first entry whose bank is idle (bank-prep overlap)."""
        if cycle < self.device.next_act_ok:
            # Device-global tRRD gate: can_issue would reject any ACT this
            # cycle, so skip the window scan.
            return None
        prepared = set()
        banks = self.device.banks
        for entry in self.entries:
            request = entry.request
            key = request.bank
            if key in prepared:
                continue
            prepared.add(key)
            if banks[key].row_is_open(request.row, cycle):
                continue
            command = DramCommand(
                kind=CommandKind.ACTIVATE, bank=request.bank, row=request.row
            )
            if self.device.can_issue(cycle, command):
                entry.required_act = True
                return command
        return None

    def _precharge_command(self, cycle: int) -> Optional[DramCommand]:
        """Demand PRE for a bank conflicting with a window entry's row.

        A bank may not be precharged while an older un-served entry still
        needs its currently-open row.
        """
        handled = set()
        for index, entry in enumerate(self.entries):
            request = entry.request
            if request.bank in handled:
                continue
            handled.add(request.bank)
            bank = self.device.banks[request.bank]
            if not bank.is_active or bank.open_row == request.row:
                continue
            if self._older_entry_needs_row(index, request.bank, bank.open_row):
                continue
            command = DramCommand(kind=CommandKind.PRECHARGE, bank=request.bank)
            if self.device.can_issue(cycle, command):
                self.demand_precharges += 1
                return command
        return None

    def next_attempt_cycle(self, cycle: int) -> int:
        """Earliest future cycle :meth:`_choose_command` could return a
        command, assuming no new accepts or external events.

        Event-dispatch support: when the engine stalls on SDRAM timing
        (tRC/tRP/tRCD, bus turnaround, tCCD/tRRD) the memory interface
        sleeps until this cycle instead of polling.  The bound mirrors the
        three choosers and is *conservative-early*: it may wake the engine
        before a command is actually legal (ordering constraints such as
        "an older entry still needs this row" resolve on retirement, which
        is itself an engine activity) — a spurious wake re-stalls
        bit-identically — but it is never later than the true earliest
        issue cycle, because every time-gated threshold of every candidate
        command is included.  Pure: no lazy auto-precharge retirement is
        applied (pending AP windows are read, not retired).
        """
        device = self.device
        banks = device.banks
        timing = device.timing
        floor = cycle + 1
        bound = None
        entries = self.entries
        if not entries:
            return floor
        # CAS: in-order, head entry only, and only while its row is open
        # (a pending auto-precharge will close it — the re-ACT path below
        # covers that bank instead).
        head = entries[0]
        request = head.request
        bank = banks[request.bank]
        if (
            bank.state is BankState.ACTIVE
            and bank.open_row == request.row
            and bank.auto_precharge_at is None
        ):
            latency = (
                timing.write_latency if request.is_write
                else timing.cas_latency
            )
            cas_at = max(
                bank.cas_ready_at,
                device._next_cas_ok,
                device._bus_free_at - latency,
            )
            if request.is_write:
                if device._last_read_data_end >= 0:
                    cas_at = max(
                        cas_at,
                        device._last_read_data_end + timing.t_rtw - latency + 1,
                    )
            elif device._last_write_data_end >= 0:
                cas_at = max(
                    cas_at, device._last_write_data_end + timing.t_wtr + 1
                )
            bound = cas_at
        # ACT / PRE: first entry per bank, as the choosers scan.
        gate = self._vector_gate
        if gate is not None:
            # Vector datapath: gather the first-entry-per-bank scan set
            # (order logic stays scalar), evaluate every per-bank timing
            # candidate in one array pass.
            gate.refresh()
            seen = set()
            bank_ids: List[int] = []
            rows: List[int] = []
            order_blocked: List[bool] = []
            for index, entry in enumerate(entries):
                request = entry.request
                key = request.bank
                if key in seen:
                    continue
                seen.add(key)
                bank = banks[key]
                bank_ids.append(key)
                rows.append(request.row)
                order_blocked.append(
                    bank.auto_precharge_at is None
                    and bank.state is BankState.ACTIVE
                    and bank.open_row != request.row
                    and self._older_entry_needs_row(index, key, bank.open_row)
                )
            candidate = gate.min_act_pre_bound(bank_ids, rows, order_blocked)
            if candidate is not None and (bound is None or candidate < bound):
                bound = candidate
        else:
            seen = set()
            for index, entry in enumerate(entries):
                request = entry.request
                key = request.bank
                if key in seen:
                    continue
                seen.add(key)
                bank = banks[key]
                if bank.auto_precharge_at is not None:
                    # Bank self-closes at the AP window's end, then an ACT
                    # for this entry's row becomes the pending command.
                    candidate = max(
                        device._next_act_ok, bank.auto_precharge_at
                    )
                elif bank.state is BankState.ACTIVE:
                    if bank.open_row == request.row:
                        continue  # row already open: nothing to prepare
                    if self._older_entry_needs_row(index, key, bank.open_row):
                        continue  # unblocked by retirement, not by time
                    candidate = bank.precharge_ok_at
                else:
                    candidate = max(device._next_act_ok, bank.idle_at)
                if bound is None or candidate < bound:
                    bound = candidate
        if bound is None:
            # Every bank is order-blocked; retirement (an engine activity)
            # unblocks them, so any wake cycle is safe.
            return floor
        return bound if bound > floor else floor

    def _older_entry_needs_row(self, index: int, bank: int, open_row) -> bool:
        for other in self.entries[:index]:
            if other.request.bank == bank and other.request.row == open_row:
                return True
        return False

    def _entry_for(self, request_id) -> Optional[WindowEntry]:
        for entry in self.entries:
            if entry.request.request_id == request_id:
                return entry
        return None
