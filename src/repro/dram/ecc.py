"""SEC-DED ECC model for the SDRAM data path.

Models the standard (72, 64) Hamming single-error-correct /
double-error-detect code used on ECC DIMMs: 64 data bits plus 7 Hamming
check bits plus 1 overall parity bit per word.

Two layers:

* :func:`encode` / :func:`decode` — a real, bit-exact implementation over
  64-bit words, so the correction logic itself is testable: flip any one
  of the 72 codeword bits and :func:`decode` returns the original word
  with :attr:`EccOutcome.CORRECTED`; flip two and it reports
  :attr:`EccOutcome.DETECTED` without mis-correcting.
* :class:`SecDedEcc` — the cycle-level accountant the memory subsystem
  uses: the fault injector tells it how many error bits a read burst
  carries, and it classifies the outcome and keeps the corrected /
  detected counters.  (Workloads are synthetic, so the simulator never
  stores the data itself — the word-level code is the reference the
  classification abstracts.)
"""

from __future__ import annotations

import enum

DATA_BITS = 64
#: Hamming check bits for 64 data bits (2**7 - 7 - 1 >= 64) plus the
#: overall parity bit that upgrades SEC to SEC-DED.
CHECK_BITS = 7
CODEWORD_BITS = DATA_BITS + CHECK_BITS + 1  # 72


class EccOutcome(enum.Enum):
    CLEAN = "clean"          # no error
    CORRECTED = "corrected"  # single-bit error, fixed in flight
    DETECTED = "detected"    # multi-bit error: report, do not correct


def _is_power_of_two(value: int) -> bool:
    return value & (value - 1) == 0


def _hamming_positions() -> list:
    """1-based codeword positions holding data bits (non powers of two)."""
    positions = []
    position = 1
    while len(positions) < DATA_BITS:
        if not _is_power_of_two(position):
            positions.append(position)
        position += 1
    return positions


_DATA_POSITIONS = _hamming_positions()
_HAMMING_BITS = _DATA_POSITIONS[-1]  # highest used position (71)


def encode(word: int) -> int:
    """Encode a 64-bit ``word`` into a 72-bit SEC-DED codeword.

    Bit 0 of the result is the overall parity bit; bits 1..71 are the
    Hamming codeword in standard position order (check bits at the
    power-of-two positions).
    """
    if not 0 <= word < (1 << DATA_BITS):
        raise ValueError("word must fit in 64 bits")
    codeword = 0
    for index, position in enumerate(_DATA_POSITIONS):
        if (word >> index) & 1:
            codeword |= 1 << position
    for check in range(CHECK_BITS):
        parity_position = 1 << check
        parity = 0
        for position in range(1, _HAMMING_BITS + 1):
            if position & parity_position and (codeword >> position) & 1:
                parity ^= 1
        if parity:
            codeword |= 1 << parity_position
    overall = bin(codeword).count("1") & 1
    return codeword | overall  # bit 0 makes total codeword parity even


def decode(codeword: int) -> tuple:
    """Decode a codeword; return ``(word, outcome)``.

    Single-bit errors (anywhere in the codeword, check bits included) are
    corrected; double-bit errors are detected and reported with the
    uncorrected data.
    """
    if not 0 <= codeword < (1 << CODEWORD_BITS):
        raise ValueError("codeword must fit in 72 bits")
    syndrome = 0
    for check in range(CHECK_BITS):
        parity_position = 1 << check
        parity = 0
        for position in range(1, _HAMMING_BITS + 1):
            if position & parity_position and (codeword >> position) & 1:
                parity ^= 1
        if parity:
            syndrome |= parity_position
    overall_error = bin(codeword).count("1") & 1
    if syndrome == 0 and not overall_error:
        outcome = EccOutcome.CLEAN
    elif overall_error:
        # Odd number of flipped bits: a single-bit error, correctable.
        # syndrome == 0 means the overall parity bit itself flipped.
        if syndrome:
            codeword ^= 1 << syndrome
        else:
            codeword ^= 1
        outcome = EccOutcome.CORRECTED
    else:
        # Even flip count with a nonzero syndrome: double-bit error.
        outcome = EccOutcome.DETECTED
    word = 0
    for index, position in enumerate(_DATA_POSITIONS):
        if (codeword >> position) & 1:
            word |= 1 << index
    return word, outcome


class SecDedEcc:
    """Burst-level SEC-DED accountant for the memory subsystem."""

    def __init__(self) -> None:
        self.clean_bursts = 0
        self.corrected = 0
        self.detected = 0

    def classify(self, error_bits: int) -> EccOutcome:
        """Outcome for a read burst carrying ``error_bits`` flipped bits."""
        if error_bits < 0:
            raise ValueError("error bits must be non-negative")
        if error_bits == 0:
            self.clean_bursts += 1
            return EccOutcome.CLEAN
        if error_bits == 1:
            self.corrected += 1
            return EccOutcome.CORRECTED
        self.detected += 1
        return EccOutcome.DETECTED
