"""Memory subsystem assemblies.

Three subsystems appear in the paper's evaluation:

* :class:`ConvMemorySubsystem` — the conventional design: a MemMax-style
  4-thread reordering scheduler in front of a Databahn-style lookahead
  controller, with per-thread 32-flit request and data buffers (Section V);
* :class:`ThinMemorySubsystem` with ``OPEN_PAGE`` — the SDRAM-aware design
  [4]: memory requests arrive already scheduled by the NoC routers, so the
  subsystem is a simple in-order controller with no reorder buffers;
* :class:`ThinMemorySubsystem` with ``PARTIALLY_OPEN`` + SAGM burst mode —
  the paper's Fig. 6 controller: partially-open-page policy driven by the
  SAGM auto-precharge tags (BL 4 mode on DDR I/II, BL 4/8 OTF on DDR III).

All subsystems are instances of the :class:`~repro.dram.scheduler.Scheduler`
protocol: ``can_accept`` / ``enqueue`` for admission with backpressure,
``tick`` issuing at most one SDRAM command per cycle, ``drain_finished``
reporting requests whose final data beat has completed, plus the seam's
bank-state query and stats surface.  This module registers the three
paper-era backends (``engine``, ``memmax``, ``databahn``); the newer
arbiters live in :mod:`repro.dram.dpq` and :mod:`repro.dram.bankreg`.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional

from ..sim.config import DdrGeneration, NocDesign, SystemConfig
from ..sim.stats import StatsCollector
from .controller import CommandEngine, FinishedRequest, PagePolicy
from .databahn import DATABAHN_LOOKAHEAD, DatabahnController
from .device import SdramDevice
from .memmax import MemMaxScheduler
from .request import MemoryRequest
from .scheduler import SchedulerSeam, register_scheduler, resolve_backend
from .timing import DramTiming


class ThinMemorySubsystem(SchedulerSeam):
    """In-order SDRAM controller with a small input FIFO (Fig. 6 shell).

    ``engine`` substitutes a prebuilt command engine (the Databahn
    backend passes its deep-lookahead subclass); when given, the
    burst/page/window/otf arguments are ignored.
    """

    def __init__(
        self,
        device: SdramDevice,
        burst_beats: int = 8,
        page_policy: PagePolicy = PagePolicy.OPEN_PAGE,
        otf: bool = False,
        input_capacity: int = 4,
        window: int = 4,
        tracer=None,
        engine: Optional[CommandEngine] = None,
    ) -> None:
        if input_capacity <= 0:
            raise ValueError("input_capacity must be positive")
        self.device = device
        self.engine = engine if engine is not None else CommandEngine(
            device,
            burst_beats=burst_beats,
            page_policy=page_policy,
            window=window,
            otf=otf,
            tracer=tracer,
        )
        self.input_capacity = input_capacity
        self.queue: Deque[MemoryRequest] = deque()
        self.accepted = 0
        self._init_seam()

    def can_accept(self, request: MemoryRequest) -> bool:
        return len(self.queue) < self.input_capacity

    def enqueue(self, request: MemoryRequest, cycle: int) -> None:
        if not self.can_accept(request):
            raise RuntimeError("memory subsystem input queue full")
        self.queue.append(request)
        self.accepted += 1
        self._note_admitted(request, cycle)

    def tick(self, cycle: int) -> None:
        while self.queue and self.engine.has_space:
            self.engine.accept(self.queue.popleft(), cycle)
        self.engine.tick(cycle)
        self.device.tick(cycle)

    def drain_finished(self) -> List[FinishedRequest]:
        done = self.engine.drain_finished()
        if done:
            self._note_finished(done)
        return done

    @property
    def pending(self) -> int:
        return len(self.queue) + self.engine.pending

    @property
    def idle(self) -> bool:
        return self.pending == 0

    @property
    def quiescent(self) -> bool:
        """No queued work *and* no finished requests awaiting drain: apart
        from device accounting, :meth:`tick` would be a no-op."""
        return (
            not self.queue and not self.engine.entries
            and not self.engine.finished
        )

    @property
    def refresh(self):
        return self.engine.refresh

    def scheduler_stats(self) -> Dict[str, float]:
        stats = self._seam_stats()
        stats["demand_precharges"] = float(self.engine.demand_precharges)
        stats["accepted"] = float(self.accepted)
        return stats

    def next_event_cycle(self, cycle: int) -> Optional[int]:
        """Event-dispatch: next cycle :meth:`tick` could do real work
        (``None`` = fully drained; only new admissions wake it).  While
        requests wait in the window on SDRAM timing, this is the command
        engine's conservative-early next-attempt bound — the controller
        sleeps through tRC/tRP/turnaround stalls instead of polling."""
        refresh = self.engine.refresh
        if refresh is not None and refresh.enabled:
            if refresh.due(cycle) or refresh.in_progress(cycle):
                # Refresh phases issue PREs / wait for quiet on sub-cycle
                # conditions; they are rare and short, so poll through.
                return cycle + 1
            due = refresh.next_due_cycle
        else:
            due = None
        if self.queue and self.engine.has_space:
            return cycle + 1
        if self.engine.finished:
            return cycle + 1
        if self.engine.entries:
            nxt = self.engine.next_attempt_cycle(cycle)
        elif self.queue:
            # Queue blocked on a full window: retirement is an engine
            # activity, but stay conservative.
            nxt = cycle + 1
        else:
            nxt = None
        if due is not None and (nxt is None or due < nxt):
            nxt = due
        return nxt

    def on_cycles_skipped(self, start: int, stop: int) -> None:
        self.device.on_cycles_skipped(start, stop)


class ConvMemorySubsystem(SchedulerSeam):
    """MemMax thread scheduler + Databahn lookahead controller (CONV).

    Beyond the arbitration itself, the thread-based pipeline costs latency:
    requests are decoded into per-thread request/data buffers, arbitrated,
    and handed to the Databahn, and read data is staged through the thread
    data buffers (store-and-forward) before re-entering the NoC.  That is
    modelled as ``PIPELINE_LATENCY`` fixed cycles plus the data-buffer
    store time of each read response — overhead the paper's thin Fig. 6
    subsystem avoids, and one reason CONV's memory latency is the worst of
    the compared designs (Tables I/II).
    """

    #: Fixed thread-pipeline cycles (ingress decode + arbitration + egress).
    PIPELINE_LATENCY = 12

    def __init__(
        self,
        device: SdramDevice,
        burst_beats: int = 8,
        priority_first: bool = False,
        threads: int = 4,
        thread_capacity_flits: int = 32,
        tracer=None,
    ) -> None:
        self.device = device
        self.scheduler = MemMaxScheduler(
            threads=threads,
            thread_capacity_flits=thread_capacity_flits,
            priority_first=priority_first,
            tracer=tracer,
        )
        self.engine = DatabahnController(
            device, burst_beats=burst_beats, tracer=tracer
        )
        self.accepted = 0
        self._init_seam()

    def can_accept(self, request: MemoryRequest) -> bool:
        return self.scheduler.can_accept(request)

    def enqueue(self, request: MemoryRequest, cycle: int) -> None:
        self.scheduler.push(request)
        self.accepted += 1
        self._note_admitted(request, cycle)

    def tick(self, cycle: int) -> None:
        while self.engine.has_space:
            request = self.scheduler.pop_next(cycle)
            if request is None:
                break
            self.engine.accept(request, cycle)
        self.engine.tick(cycle)
        self.device.tick(cycle)

    def drain_finished(self) -> List[FinishedRequest]:
        finished = []
        for item in self.engine.drain_finished():
            # request/response data staged through the thread data buffers
            staging = (item.request.beats + 1) // 2
            finished.append(
                FinishedRequest(
                    item.request,
                    item.data_ready_cycle + self.PIPELINE_LATENCY + staging,
                )
            )
        if finished:
            self._note_finished(finished)
        return finished

    @property
    def pending(self) -> int:
        return self.scheduler.pending + self.engine.pending

    @property
    def idle(self) -> bool:
        return self.pending == 0

    @property
    def quiescent(self) -> bool:
        """See :attr:`ThinMemorySubsystem.quiescent`; an empty MemMax
        front-end is side-effect free to poll, so skipping the whole
        pipeline is exact."""
        return (
            self.scheduler.pending == 0
            and not self.engine.entries
            and not self.engine.finished
        )

    @property
    def refresh(self):
        return self.engine.refresh

    def scheduler_stats(self) -> Dict[str, float]:
        stats = self._seam_stats()
        stats["demand_precharges"] = float(self.engine.demand_precharges)
        stats["accepted"] = float(self.accepted)
        for index, wins in enumerate(self.scheduler.thread_wins):
            stats[f"thread{index}.wins"] = float(wins)
        return stats

    def next_event_cycle(self, cycle: int) -> Optional[int]:
        """Event-dispatch bound for the CONV pipeline.  MemMax arbitration
        is cycle-dependent (per-thread service accounting), so any queued
        front-end work polls per cycle; a back-end stalled purely on SDRAM
        timing uses the engine's next-attempt bound, like the thin
        subsystem."""
        refresh = self.engine.refresh
        if refresh is not None and refresh.enabled:
            if refresh.due(cycle) or refresh.in_progress(cycle):
                return cycle + 1
            due = refresh.next_due_cycle
        else:
            due = None
        if self.engine.finished:
            return cycle + 1
        if self.scheduler.pending and self.engine.has_space:
            return cycle + 1
        nxt = (
            self.engine.next_attempt_cycle(cycle)
            if self.engine.entries else None
        )
        if due is not None and (nxt is None or due < nxt):
            nxt = due
        return nxt

    def on_cycles_skipped(self, start: int, stop: int) -> None:
        self.device.on_cycles_skipped(start, stop)


# --------------------------------------------------------------------- #
# Backend factories (the paper-era schedulers)
# --------------------------------------------------------------------- #

@register_scheduler("memmax")
def build_memmax_backend(
    config: SystemConfig,
    device: SdramDevice,
    timing: DramTiming,
    tracer=None,
) -> ConvMemorySubsystem:
    """MemMax 4-thread front-end over a Databahn lookahead engine —
    the CONV memory subsystem (Section V)."""
    return ConvMemorySubsystem(
        device,
        burst_beats=8,
        priority_first=config.design.uses_pfs,
        tracer=tracer,
    )


@register_scheduler("databahn")
def build_databahn_backend(
    config: SystemConfig,
    device: SdramDevice,
    timing: DramTiming,
    tracer=None,
) -> ThinMemorySubsystem:
    """Databahn lookahead controller *without* the MemMax thread pipeline:
    deep open-page lookahead fed in arrival order.  Isolates the value of
    command lookahead from the thread-reorder front-end."""
    return ThinMemorySubsystem(
        device,
        input_capacity=max(2, DATABAHN_LOOKAHEAD // 2),
        tracer=tracer,
        engine=DatabahnController(device, tracer=tracer),
    )


@register_scheduler("engine")
def build_engine_backend(
    config: SystemConfig,
    device: SdramDevice,
    timing: DramTiming,
    tracer=None,
) -> ThinMemorySubsystem:
    """The paper's thin in-order controller; page policy and burst mode
    follow the NoC design exactly as the pre-seam builder chose them."""
    if config.design.uses_sagm:
        if config.ddr is DdrGeneration.DDR3:
            # DDR III: BL 8 with BL4/BL8 on-the-fly for trailing chunks.
            burst, otf = 8, True
        else:
            # DDR I/II: device dropped to BL 4 mode via MRS.
            burst, otf = 4, False
        # Short packets carry fewer data cycles each, so the PRE/RAS/CAS
        # pipeline holds proportionally more of them to keep the same
        # data-time lookahead (entries are a few address bits each — far
        # cheaper than the reorder buffers the design removes).
        depth = _window_for(timing, burst)
        return ThinMemorySubsystem(
            device,
            burst_beats=burst,
            page_policy=PagePolicy.PARTIALLY_OPEN,
            otf=otf,
            window=depth,
            input_capacity=max(2, depth // 2),
            tracer=tracer,
        )
    # [4] and plain GSS: thin in-order controller, BL 8, open page.
    depth = _window_for(timing, 8)
    return ThinMemorySubsystem(
        device,
        burst_beats=8,
        page_policy=PagePolicy.OPEN_PAGE,
        window=depth,
        input_capacity=max(2, depth // 2),
        tracer=tracer,
    )


def default_backend_for(design: NocDesign) -> str:
    """The design-matched backend: what Section V pairs with each NoC."""
    if design in (NocDesign.CONV, NocDesign.CONV_PFS):
        return "memmax"
    return "engine"


def build_memory_subsystem(
    config: SystemConfig, stats: Optional[StatsCollector] = None, tracer=None
):
    """Construct device + scheduler backend for ``config``.

    ``config.arbiter`` picks a registered backend by name;  ``None`` —
    the default — resolves to the design-matched choice of Section V
    (bit-identical to the pre-seam hard-wired builder).
    """
    timing = DramTiming.for_clock(config.ddr, config.clock_mhz)
    device = SdramDevice(timing, stats=stats, tracer=tracer)
    name = (
        config.arbiter if config.arbiter is not None
        else default_backend_for(config.design)
    )
    factory = resolve_backend(name)
    return device, factory(config, device, timing, tracer)


#: Data-time the thin controller's PRE/RAS/CAS pipeline looks ahead, in
#: data-bus cycles; window entries = lookahead / burst data cycles.
PIPELINE_LOOKAHEAD_DATA_CYCLES = 16


def _window_for(timing: DramTiming, burst_beats: int) -> int:
    return max(4, PIPELINE_LOOKAHEAD_DATA_CYCLES // timing.burst_cycles(burst_beats))
