"""Databahn-like lookahead SDRAM controller (CONV back-end).

Denali's Databahn [27] is described in the paper as an SDRAM controller that
"employs command look-ahead to prepare pages in memory in advance of when
commands execute".  That is precisely the behaviour of
:class:`~repro.dram.controller.CommandEngine` with a deep window: ACT/PRE
for request *n+k* are issued while request *n*'s burst is on the data bus.

This module packages the engine with Databahn-flavoured defaults (deeper
lookahead than the paper's thin Fig. 6 controller) so the CONV memory
subsystem gets the class-leading open-page behaviour the product claims.
"""

from __future__ import annotations

from .controller import CommandEngine, PagePolicy
from .device import SdramDevice

#: Databahn's command look-ahead depth (requests prepared in advance).
DATABAHN_LOOKAHEAD = 6


class DatabahnController(CommandEngine):
    """Command engine with Databahn-style deep page lookahead."""

    def __init__(
        self, device: SdramDevice, burst_beats: int = 8, tracer=None
    ) -> None:
        super().__init__(
            device,
            burst_beats=burst_beats,
            page_policy=PagePolicy.OPEN_PAGE,
            window=DATABAHN_LOOKAHEAD,
            tracer=tracer,
        )
