"""MemMax-like thread-based memory scheduler (CONV front-end).

The conventional NoC design in the paper (Section V) pairs round-robin
routers with a Sonics MemMax [26] style memory scheduler: requests arrive
over four OCP threads, each thread has its own request/data buffers, there
is no ordering requirement *between* threads, and the scheduler freely
reorders across threads to prevent bank conflict and data contention while
honouring per-thread quality-of-service settings.

This module implements that behaviour as a *bandwidth-regulated* weighted
round-robin: MemMax's arbitration is driven by the per-thread QoS
allocations (threads receive their programmed share in round-robin order),
with starvation aging and an optional priority-first mode (the paper's
CONV+PFS configuration).  SDRAM friendliness of the final command stream is
the job of the Databahn back-end's page lookahead, not of the thread
arbiter — which is why the paper finds that moving scheduling into the NoC
routers, where candidates carry explicit (RA, BA, R/W) state, beats the
conventional split (Table I).  An optional ``sdram_friendly_skip`` mode
(used by ablation benchmarks) lets the arbiter skip threads whose head
would bank-conflict or turn the bus around.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Deque, List, Optional
from collections import deque

from ..obs.events import EventType
from .request import MemoryRequest


@dataclass
class ThreadQueue:
    """One OCP thread: separate 32-flit request and data buffers.

    MemMax's OCP interface splits request signals from data signals, so each
    thread buffers them independently (Section V): a request costs one
    request-buffer flit; a write additionally occupies data-buffer flits for
    its payload (2 beats per flit).
    """

    index: int
    capacity_flits: int
    qos_weight: int = 1
    queue: Deque[MemoryRequest] = field(default_factory=deque)
    data_occupancy_flits: int = 0
    age: int = 0  # arbitration rounds since last win

    @staticmethod
    def data_flits(request: MemoryRequest) -> int:
        return (request.beats + 1) // 2 if request.is_write else 0

    def can_accept(self, request: MemoryRequest) -> bool:
        if len(self.queue) >= self.capacity_flits:
            return False  # request buffer full
        return (
            self.data_occupancy_flits + self.data_flits(request)
            <= self.capacity_flits
        )

    def push(self, request: MemoryRequest) -> None:
        if not self.can_accept(request):
            raise RuntimeError(f"thread {self.index} buffer overflow")
        self.queue.append(request)
        self.data_occupancy_flits += self.data_flits(request)

    def head(self) -> Optional[MemoryRequest]:
        return self.queue[0] if self.queue else None

    def pop(self) -> MemoryRequest:
        request = self.queue.popleft()
        self.data_occupancy_flits -= self.data_flits(request)
        return request

    def __len__(self) -> int:
        return len(self.queue)


class MemMaxScheduler:
    """Four-thread request scheduler with SDRAM-friendly arbitration."""

    #: Aging threshold after which a thread wins regardless of SDRAM state.
    STARVATION_ROUNDS = 16

    def __init__(
        self,
        threads: int = 4,
        thread_capacity_flits: int = 32,
        priority_first: bool = False,
        sdram_friendly_skip: bool = False,
        tracer=None,
    ) -> None:
        if threads <= 0:
            raise ValueError("need at least one thread")
        self.threads = [
            ThreadQueue(i, thread_capacity_flits) for i in range(threads)
        ]
        self.priority_first = priority_first
        self.sdram_friendly_skip = sdram_friendly_skip
        self._last_scheduled: Optional[MemoryRequest] = None
        self._rr_pointer = 0
        self.tracer = tracer
        #: Arbitration wins per thread index (telemetry).
        self.thread_wins: List[int] = [0] * threads

    # ------------------------------------------------------------------ #
    # Thread assignment / admission
    # ------------------------------------------------------------------ #

    def thread_for(self, request: MemoryRequest) -> ThreadQueue:
        return self.threads[request.master % len(self.threads)]

    def can_accept(self, request: MemoryRequest) -> bool:
        return self.thread_for(request).can_accept(request)

    def push(self, request: MemoryRequest) -> None:
        self.thread_for(request).push(request)

    @property
    def pending(self) -> int:
        return sum(len(thread) for thread in self.threads)

    # ------------------------------------------------------------------ #
    # Arbitration
    # ------------------------------------------------------------------ #

    def pop_next(self, cycle: int = 0) -> Optional[MemoryRequest]:
        """Select and dequeue the next request for the command engine."""
        candidates = [t for t in self.threads if t.head() is not None]
        if not candidates:
            return None
        winner = self._select(candidates)
        for thread in candidates:
            thread.age = 0 if thread is winner else thread.age + 1
        request = winner.pop()
        self._last_scheduled = request
        self._rr_pointer = (winner.index + 1) % len(self.threads)
        self.thread_wins[winner.index] += 1
        tracer = self.tracer
        if tracer:
            tracer.emit(
                EventType.ARB_GRANT,
                cycle,
                f"memmax.t{winner.index}",
                request_id=request.request_id,
                bank=request.bank,
                priority=request.is_priority,
            )
        return request

    def _select(self, candidates: List[ThreadQueue]) -> ThreadQueue:
        """Bandwidth-regulated weighted round-robin (see module docstring).

        A starved thread always wins; priority-first mode (CONV+PFS) serves
        priority heads before anything else; otherwise threads are granted
        in round-robin order, optionally skipping SDRAM-unfriendly heads
        when ``sdram_friendly_skip`` is enabled.
        """
        starved = [t for t in candidates if t.age >= self.STARVATION_ROUNDS]
        if starved:
            return max(starved, key=lambda t: t.age)
        if self.priority_first:
            priority = [t for t in candidates if t.head().is_priority]
            if priority:
                return self._round_robin(priority)
        if self.sdram_friendly_skip:
            clean = [t for t in candidates if self._is_clean(t.head())]
            if clean:
                return self._round_robin(clean)
            no_conflict = [
                t for t in candidates
                if not (self._last_scheduled is not None
                        and t.head().bank_conflict_with(self._last_scheduled))
            ]
            if no_conflict:
                return self._round_robin(no_conflict)
        return self._round_robin(candidates)

    def _is_clean(self, head: MemoryRequest) -> bool:
        last = self._last_scheduled
        if last is None:
            return True
        return not (
            head.bank_conflict_with(last) or head.data_contention_with(last)
        )

    def _round_robin(self, candidates: List[ThreadQueue]) -> ThreadQueue:
        return min(
            candidates,
            key=lambda t: (t.index - self._rr_pointer) % len(self.threads),
        )
