"""Independent DDR protocol checker.

:class:`ProtocolChecker` replays a timestamped command log against the
JEDEC-style constraints of a :class:`~repro.dram.timing.DramTiming` and
reports every violation.  It shares **no code** with the
:class:`~repro.dram.device.SdramDevice` legality logic, so it serves as a
redundant referee: the test suite drives random traffic through the
command engine while the checker audits the emitted command stream, the
way an RTL testbench pairs a DUT with an independent protocol monitor.

Checked rules:

* one command per cycle on the shared command bus;
* ACT only to an idle (precharged) bank, tRP/tRC honoured;
* tRRD between ACTs to different banks;
* CAS only to an activated bank after tRCD, row must match the open row;
* tCCD and data-bus occupancy between CAS commands;
* write-to-read (tWTR) and read-to-write turnaround gaps;
* PRE only after tRAS and after read/write recovery (tRTP / tWR);
* auto-precharge closes the bank; no further CAS until re-activation.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .commands import CommandKind, DramCommand
from .timing import DramTiming


@dataclass(frozen=True)
class Violation:
    """One protocol violation found in a command log."""

    cycle: int
    command: str
    rule: str
    detail: str

    def __str__(self) -> str:
        return f"@{self.cycle} {self.command}: {self.rule} — {self.detail}"


@dataclass
class _BankAudit:
    """Checker-side view of one bank's state."""

    active: bool = False
    open_row: Optional[int] = None
    act_cycle: int = -(10 ** 9)
    idle_at: int = 0            # earliest legal re-ACT
    pre_ok_at: int = 0          # earliest legal PRE
    ap_pending_until: Optional[int] = None


class ProtocolChecker:
    """Replays (cycle, command) logs and collects violations."""

    def __init__(self, timing: DramTiming) -> None:
        self.timing = timing
        self.violations: List[Violation] = []
        self._banks: Dict[int, _BankAudit] = {
            index: _BankAudit() for index in range(timing.banks)
        }
        self._last_command_cycle: Optional[int] = None
        self._last_act_cycle = -(10 ** 9)
        self._next_cas_ok = 0
        self._bus_free_at = 0
        self._last_write_data_end = -(10 ** 9)
        self._last_read_data_end = -(10 ** 9)

    # ------------------------------------------------------------------ #

    def check(self, log: List[Tuple[int, DramCommand]]) -> List[Violation]:
        """Audit a chronologically ordered (cycle, command) log."""
        previous = -1
        for cycle, command in log:
            if cycle < previous:
                self._flag(cycle, command, "log-order",
                           "commands must be chronologically ordered")
            previous = max(previous, cycle)
            self._step(cycle, command)
        return self.violations

    # ------------------------------------------------------------------ #

    def _flag(self, cycle: int, command: DramCommand, rule: str, detail: str):
        self.violations.append(Violation(cycle, str(command), rule, detail))

    def _apply_ap(self, bank: _BankAudit, cycle: int) -> None:
        if bank.ap_pending_until is not None and cycle >= bank.ap_pending_until:
            bank.active = False
            bank.open_row = None
            bank.idle_at = bank.ap_pending_until
            bank.ap_pending_until = None

    def _step(self, cycle: int, command: DramCommand) -> None:
        if command.kind is CommandKind.NOP:
            return
        if self._last_command_cycle is not None and cycle == self._last_command_cycle:
            self._flag(cycle, command, "command-bus",
                       "two commands in the same cycle")
        self._last_command_cycle = cycle

        bank = self._banks.get(command.bank)
        if bank is None:
            self._flag(cycle, command, "bank-range",
                       f"device has {self.timing.banks} banks")
            return
        self._apply_ap(bank, cycle)

        if command.kind is CommandKind.ACTIVATE:
            self._check_activate(cycle, command, bank)
        elif command.kind is CommandKind.PRECHARGE:
            self._check_precharge(cycle, command, bank)
        else:
            self._check_cas(cycle, command, bank)

    def _check_activate(self, cycle: int, command: DramCommand, bank: _BankAudit):
        if bank.active or bank.ap_pending_until is not None:
            self._flag(cycle, command, "act-on-active",
                       "bank must be precharged before ACT")
        if cycle < bank.idle_at:
            self._flag(cycle, command, "tRP",
                       f"bank idle at {bank.idle_at}")
        if cycle - self._last_act_cycle < self.timing.t_rrd:
            self._flag(cycle, command, "tRRD",
                       f"last ACT at {self._last_act_cycle}")
        bank.active = True
        bank.open_row = command.row
        bank.act_cycle = cycle
        bank.pre_ok_at = cycle + self.timing.t_ras
        self._last_act_cycle = cycle

    def _check_precharge(self, cycle: int, command: DramCommand, bank: _BankAudit):
        if not bank.active:
            self._flag(cycle, command, "pre-on-idle",
                       "bank is not active")
            return
        if cycle < bank.pre_ok_at:
            self._flag(cycle, command, "tRAS/recovery",
                       f"PRE legal at {bank.pre_ok_at}")
        bank.active = False
        bank.open_row = None
        bank.idle_at = cycle + self.timing.t_rp

    def _check_cas(self, cycle: int, command: DramCommand, bank: _BankAudit):
        timing = self.timing
        if not bank.active or bank.ap_pending_until is not None:
            self._flag(cycle, command, "cas-on-idle",
                       "bank has no open row")
            return
        if command.row is not None and command.row != bank.open_row:
            self._flag(cycle, command, "row-mismatch",
                       f"open row is {bank.open_row}")
        if cycle - bank.act_cycle < timing.t_rcd:
            self._flag(cycle, command, "tRCD",
                       f"ACT at {bank.act_cycle}")
        if cycle < self._next_cas_ok:
            self._flag(cycle, command, "tCCD/data-bus",
                       f"next CAS legal at {self._next_cas_ok}")
        latency = timing.write_latency if command.is_write else timing.cas_latency
        data_start = cycle + latency
        data_end = data_start + timing.burst_cycles(command.burst_beats) - 1
        if data_start < self._bus_free_at:
            self._flag(cycle, command, "data-bus",
                       f"bus busy until {self._bus_free_at - 1}")
        if command.is_read and cycle <= self._last_write_data_end + timing.t_wtr:
            self._flag(cycle, command, "tWTR",
                       f"write data ended at {self._last_write_data_end}")
        if command.is_write and data_start <= self._last_read_data_end + timing.t_rtw:
            self._flag(cycle, command, "read-to-write",
                       f"read data ended at {self._last_read_data_end}")

        recovery = timing.t_wr if command.is_write else 0
        bank.pre_ok_at = max(bank.pre_ok_at, data_end + recovery + 1)
        if command.auto_precharge:
            bank.ap_pending_until = data_end + recovery + timing.t_rp + 1
        self._next_cas_ok = cycle + max(
            timing.t_ccd, timing.burst_cycles(command.burst_beats)
        )
        self._bus_free_at = data_end + 1
        if command.is_write:
            self._last_write_data_end = data_end
        else:
            self._last_read_data_end = data_end

    @property
    def clean(self) -> bool:
        return not self.violations


def audit_engine(engine, requests, max_cycles: int = 20_000):
    """Drive ``requests`` through ``engine`` while logging every command,
    then audit the log.  Returns (finished, violations)."""
    log: List[Tuple[int, DramCommand]] = []
    pending = deque(requests)
    finished = []
    cycle = 0
    while (pending or not engine.idle) and cycle < max_cycles:
        if pending and engine.has_space:
            engine.accept(pending.popleft(), cycle)
        command = engine.tick(cycle)
        if command is not None:
            log.append((cycle, command))
        finished.extend(engine.drain_finished())
        cycle += 1
    checker = ProtocolChecker(engine.device.timing)
    violations = checker.check(log)
    return finished, violations
