"""Per-bank memory bandwidth regulation.

After Sullivan et al. (arXiv 2603.26054): interference between masters
in a shared SDRAM is dominated by *bank* contention, so regulating each
master's bandwidth per bank — not just in aggregate — isolates masters
from each other's row-conflict storms.  Each (master, bank) pair holds a
beat budget that replenishes every regulation window; a master whose
head request would overdraw its budget for the addressed bank is stalled
until the next window, while other masters (or the same master on other
banks) keep flowing.

The implementation keeps a private FIFO per master and releases head
requests round-robin into an open-page :class:`CommandEngine` (the same
engine the paper's thin subsystem uses), charging ``request.beats``
against the ``(master, bank)`` budget at release time.  Replenishment is
*lazy*: budgets are keyed by the window epoch ``cycle // window_cycles``
and the spent-table is cleared whenever the epoch advances, so the
scheme is fast-forward-safe — jumping ten windows of idle cycles needs
no per-window bookkeeping.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from ..sim.config import SystemConfig
from .controller import CommandEngine, FinishedRequest, PagePolicy
from .device import SdramDevice
from .request import MemoryRequest
from .scheduler import SchedulerSeam, register_scheduler
from .timing import DramTiming

#: Regulation window length, cycles.
REG_WINDOW_CYCLES = 256

#: Beats each (master, bank) pair may move per window.  At 2 beats per
#: cycle a window carries 512 beats of raw bus capacity; 64 per pair
#: caps any one master at an eighth of it on any one bank, while leaving
#: well-spread traffic unthrottled.
REG_BUDGET_BEATS = 64

#: Per-master FIFO depth.
REG_QUEUE_CAPACITY = 8


class BankRegulatedScheduler(SchedulerSeam):
    """Round-robin release gated by per-(master, bank) beat budgets."""

    def __init__(
        self,
        device: SdramDevice,
        timing: DramTiming,
        window_cycles: int = REG_WINDOW_CYCLES,
        budget_beats: int = REG_BUDGET_BEATS,
        queue_capacity: int = REG_QUEUE_CAPACITY,
        tracer=None,
    ) -> None:
        if window_cycles <= 0:
            raise ValueError("window_cycles must be positive")
        if budget_beats <= 0:
            raise ValueError("budget_beats must be positive")
        if queue_capacity <= 0:
            raise ValueError("queue_capacity must be positive")
        self.device = device
        self.timing = timing
        self.window_cycles = window_cycles
        self.budget_beats = budget_beats
        self.queue_capacity = queue_capacity
        self.engine = CommandEngine(
            device,
            burst_beats=8,
            page_policy=PagePolicy.OPEN_PAGE,
            window=4,
            tracer=tracer,
        )
        self.queues: Dict[int, Deque[MemoryRequest]] = {}
        #: round-robin order over masters (first-seen order).
        self.order: List[int] = []
        self._rr_offset = 0
        #: beats charged in the current window, keyed by (master, bank).
        self.spent: Dict[Tuple[int, int], int] = {}
        self._epoch = 0
        self.accepted = 0
        self.releases = 0
        self.throttled_releases = 0
        self._init_seam()

    # --- request admission ------------------------------------------- #

    def can_accept(self, request: MemoryRequest) -> bool:
        queue = self.queues.get(request.master)
        return queue is None or len(queue) < self.queue_capacity

    def enqueue(self, request: MemoryRequest, cycle: int) -> None:
        queue = self.queues.get(request.master)
        if queue is None:
            queue = self.queues[request.master] = deque()
            self.order.append(request.master)
        if len(queue) >= self.queue_capacity:
            raise RuntimeError("regulator master queue full")
        queue.append(request)
        self.accepted += 1
        self._note_admitted(request, cycle)

    # --- per-cycle command selection --------------------------------- #

    def _refill(self, cycle: int) -> None:
        epoch = cycle // self.window_cycles
        if epoch != self._epoch:
            self._epoch = epoch
            self.spent.clear()

    def _within_budget(self, request: MemoryRequest) -> bool:
        """A fresh budget always admits at least one request (even one
        larger than the whole budget — it then overdraws and blocks the
        pair for the rest of the window), so every head is guaranteed to
        release by the next window boundary: no starvation."""
        key = (request.master, request.bank)
        spent = self.spent.get(key, 0)
        return spent == 0 or spent + request.beats <= self.budget_beats

    def tick(self, cycle: int) -> None:
        self._refill(cycle)
        while self.engine.has_space:
            released = self._release()
            if released is None:
                break
            self.engine.accept(released, cycle)
        self.engine.tick(cycle)
        self.device.tick(cycle)

    def _release(self) -> Optional[MemoryRequest]:
        """Next head request within budget, round-robin over masters.
        A budget-blocked head stalls only its own master; the scan keeps
        going, so one master's storm cannot dam the others."""
        order = self.order
        count = len(order)
        for step in range(count):
            master = order[(self._rr_offset + step) % count]
            queue = self.queues[master]
            if not queue:
                continue
            head = queue[0]
            if not self._within_budget(head):
                self.throttled_releases += 1
                continue
            queue.popleft()
            key = (head.master, head.bank)
            self.spent[key] = self.spent.get(key, 0) + head.beats
            self.releases += 1
            self._rr_offset = (self._rr_offset + step + 1) % count
            return head
        return None

    def drain_finished(self) -> List[FinishedRequest]:
        done = self.engine.drain_finished()
        if done:
            self._note_finished(done)
        return done

    # --- occupancy / idle-skip contract ------------------------------ #

    @property
    def pending(self) -> int:
        return sum(len(q) for q in self.queues.values()) + self.engine.pending

    @property
    def idle(self) -> bool:
        return self.pending == 0

    @property
    def quiescent(self) -> bool:
        return (
            not self.engine.entries
            and not self.engine.finished
            and all(not q for q in self.queues.values())
        )

    def _releasable(self, cycle: int) -> bool:
        self._refill(cycle)
        return any(
            queue and self._within_budget(queue[0])
            for queue in self.queues.values()
        )

    def next_event_cycle(self, cycle: int) -> Optional[int]:
        """Budget-blocked heads wake at the next window boundary (the
        only instant their budget can change); everything else follows
        the thin subsystem's pattern."""
        if self.engine.finished:
            return cycle + 1
        queued = any(self.queues.values())
        boundary = (cycle // self.window_cycles + 1) * self.window_cycles
        if queued and self.engine.has_space:
            if self._releasable(cycle):
                return cycle + 1
            nxt = boundary
        else:
            nxt = boundary if queued else None
        if self.engine.entries:
            engine_next = self.engine.next_attempt_cycle(cycle)
            if nxt is None or engine_next < nxt:
                nxt = engine_next
        return nxt

    def on_cycles_skipped(self, start: int, stop: int) -> None:
        self.device.on_cycles_skipped(start, stop)

    # --- stats surface ----------------------------------------------- #

    @property
    def refresh(self):
        return self.engine.refresh

    def scheduler_stats(self) -> Dict[str, float]:
        stats = self._seam_stats()
        stats["accepted"] = float(self.accepted)
        stats["releases"] = float(self.releases)
        stats["throttled_releases"] = float(self.throttled_releases)
        stats["masters"] = float(len(self.queues))
        stats["demand_precharges"] = float(self.engine.demand_precharges)
        return stats


@register_scheduler("bank-reg")
def build_bankreg_backend(
    config: SystemConfig,
    device: SdramDevice,
    timing: DramTiming,
    tracer=None,
) -> BankRegulatedScheduler:
    return BankRegulatedScheduler(device, timing, tracer=tracer)
