"""SDRAM refresh support.

The paper (like most NoC-memory co-design studies) ignores refresh — at
the evaluated clocks an all-bank auto-refresh costs well under 1 % of
cycles — but a production controller must issue one REF every tREFI
(7.8 us) and stall tRFC while it completes.  This module provides an
opt-in :class:`RefreshTimer` the command engine consults: when a refresh
is due, the engine precharges all banks, idles until the device is quiet,
issues the refresh, and resumes.

Enabling refresh perturbs every design identically, so the paper's
comparisons are unchanged; the ``benchmarks/test_ablations.py`` suite
verifies the overhead stays marginal.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from .timing import DramTiming

#: JEDEC refresh interval and all-bank refresh cycle time (DDR2/3-class).
T_REFI_NS = 7_800.0
T_RFC_NS = 127.5


@dataclass
class RefreshTimer:
    """Tracks when the next auto-refresh is due and when it completes."""

    timing: DramTiming
    enabled: bool = True
    _next_due: int = 0
    _busy_until: int = -1
    refreshes_issued: int = 0

    def __post_init__(self) -> None:
        self.t_refi = max(1, math.ceil(T_REFI_NS * self.timing.clock_mhz / 1000.0))
        self.t_rfc = max(1, math.ceil(T_RFC_NS * self.timing.clock_mhz / 1000.0))
        self._next_due = self.t_refi

    def due(self, cycle: int) -> bool:
        return self.enabled and cycle >= self._next_due

    @property
    def next_due_cycle(self) -> int:
        """Cycle the next refresh becomes due (a simulator wake target)."""
        return self._next_due

    def in_progress(self, cycle: int) -> bool:
        return cycle <= self._busy_until

    def start(self, cycle: int) -> int:
        """Begin an all-bank refresh; returns the cycle it completes."""
        if not self.enabled:
            raise RuntimeError("refresh disabled")
        self._busy_until = cycle + self.t_rfc
        self._next_due = cycle + self.t_refi
        self.refreshes_issued += 1
        return self._busy_until

    @property
    def overhead_fraction(self) -> float:
        """Steady-state fraction of cycles spent refreshing."""
        return self.t_rfc / self.t_refi if self.enabled else 0.0
