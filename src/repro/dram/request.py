"""Memory request model.

A :class:`MemoryRequest` is the unit that cores emit, the NoC carries (as a
packet), NoC flow controllers schedule, and the SDRAM controller turns into
ACT/CAS/PRE commands.  It carries the SDRAM coordinates the paper's flow
controllers key on — (RA, BA, R/W) — plus the priority class and the SAGM
split lineage (auto-precharge tag on the last short packet)."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional


class ServiceClass(enum.Enum):
    """How the NoC should treat this request (Section III-B)."""

    BEST_EFFORT = "best-effort"
    PRIORITY = "priority"


@dataclass(slots=True)
class MemoryRequest:
    """One SDRAM read or write request from a core.

    ``beats`` is the number of *useful* data beats the core wants (one beat =
    one data-bus word; DDR moves two beats per cycle).  The device may move
    more beats than that when the burst granularity is coarser — the access
    granularity mismatch of Section III-C.  Declared with ``slots=True``:
    requests flow through every layer's hot path, and the flow-control
    filters read their fields millions of times per run.
    """

    request_id: int
    master: int                 # core id that issued the request
    bank: int
    row: int
    column: int
    beats: int
    is_read: bool
    service: ServiceClass = ServiceClass.BEST_EFFORT
    is_demand: bool = False     # CPU demand (vs prefetch / streaming)
    issued_cycle: int = 0
    # SAGM split lineage (Section IV-C)
    parent_id: Optional[int] = None
    split_index: int = 0
    split_count: int = 1
    ap_tag: bool = False        # set on the last short packet of a split
    #: Watchdog re-issue generation (see :mod:`repro.resilience.watchdog`):
    #: responses whose epoch trails the reassembly tracker's are stale
    #: duplicates from before a re-issue and are dropped at the core NI.
    retry_epoch: int = 0
    #: Cached: ``service`` never changes after construction, and the flow
    #: filters and schedulers read this on every candidate comparison.
    is_priority: bool = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.beats <= 0:
            raise ValueError("request must ask for at least one beat")
        if self.bank < 0 or self.row < 0 or self.column < 0:
            raise ValueError("negative SDRAM coordinate")
        if self.split_index >= self.split_count:
            raise ValueError("split index out of range")
        self.is_priority = self.service is ServiceClass.PRIORITY

    @property
    def is_write(self) -> bool:
        return not self.is_read

    @property
    def is_split(self) -> bool:
        return self.split_count > 1

    @property
    def is_last_split(self) -> bool:
        return self.split_index == self.split_count - 1

    # --- scheduling relations the paper defines in Section IV-B --------- #

    def bank_conflict_with(self, other: "MemoryRequest") -> bool:
        """(BA_n = BA_n+1) and (RA_n != RA_n+1)."""
        return self.bank == other.bank and self.row != other.row

    def data_contention_with(self, other: "MemoryRequest") -> bool:
        """(R/W_n != R/W_n+1): a read following a write or vice versa."""
        return self.is_read != other.is_read

    def row_hit_with(self, other: "MemoryRequest") -> bool:
        """(BA_n = BA_n+1) and (RA_n = RA_n+1)."""
        return self.bank == other.bank and self.row == other.row

    def bank_interleaves_with(self, other: "MemoryRequest") -> bool:
        """(BA_n != BA_n+1)."""
        return self.bank != other.bank

    def __str__(self) -> str:
        op = "RD" if self.is_read else "WR"
        tag = "/AP" if self.ap_tag else ""
        pri = "P" if self.is_priority else "BE"
        return (
            f"req#{self.request_id}[{pri}] {op} b{self.bank} r{self.row} "
            f"c{self.column} x{self.beats}{tag}"
        )
