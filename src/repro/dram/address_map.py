"""Physical-address <-> (bank, row, column) decomposition.

Cores in the workload models address memory through flat byte addresses;
this module maps them onto SDRAM coordinates with the common
row:bank:column interleaving, so that consecutive rows of a frame buffer
naturally spread across banks (bank interleaving) while accesses within a
row stay row-buffer hits.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class AddressMap:
    """Row : bank : column address split over a 2-beats/cycle data bus."""

    banks: int
    rows: int = 8192
    columns: int = 1024          # columns per row, in beats
    bytes_per_beat: int = 4      # 32-bit data bus (Section V)

    def __post_init__(self) -> None:
        for name in ("banks", "rows", "columns", "bytes_per_beat"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")

    @property
    def row_bytes(self) -> int:
        return self.columns * self.bytes_per_beat

    @property
    def capacity_bytes(self) -> int:
        return self.row_bytes * self.banks * self.rows

    def decode(self, address: int):
        """Return (bank, row, column-in-beats) for a byte address."""
        if address < 0:
            raise ValueError("address must be non-negative")
        beat = (address // self.bytes_per_beat) % (self.columns * self.banks * self.rows)
        column = beat % self.columns
        bank = (beat // self.columns) % self.banks
        row = (beat // (self.columns * self.banks)) % self.rows
        return bank, row, column

    def encode(self, bank: int, row: int, column: int) -> int:
        """Inverse of :meth:`decode` (useful for tests and traces)."""
        if not 0 <= bank < self.banks:
            raise ValueError("bank out of range")
        if not 0 <= row < self.rows:
            raise ValueError("row out of range")
        if not 0 <= column < self.columns:
            raise ValueError("column out of range")
        beat = (row * self.banks + bank) * self.columns + column
        return beat * self.bytes_per_beat
