"""Application-aware NoC design for efficient SDRAM access.

Full-system cycle-level reproduction of W. Jang and D. Z. Pan,
"Application-Aware NoC Design for Efficient SDRAM Access" (DAC 2010 /
IEEE TCAD 30(10), 2011): the GSS (guaranteed SDRAM service) router, SAGM
(SDRAM access granularity matching), the SDRAM-aware baseline [4], and the
conventional MemMax/Databahn-style memory subsystem, over cycle-level DDR
I/II/III device models and a wormhole 2-D mesh NoC.

Quick start::

    from repro import SystemConfig, NocDesign, run_config

    config = SystemConfig(app="single_dtv", design=NocDesign.GSS_SAGM,
                          priority_enabled=True, cycles=20_000)
    metrics = run_config(config)
    print(metrics.utilization, metrics.latency_all, metrics.latency_demand)
"""

from .core.system import SocSystem, build_system, run_config
from .obs import MemoryTracer, MetricsRegistry, NullTracer, SimulatorProfiler
from .resilience import FaultConfig, FaultInjector, FaultSite, ScheduledFault
from .sim.config import (
    ConfigError,
    DdrGeneration,
    NocDesign,
    SystemConfig,
    paper_configs,
)
from .sim.stats import RunMetrics
from .sweep import Job, ResultStore, SweepSpec, run_sweep

__version__ = "1.3.0"

__all__ = [
    "ConfigError",
    "DdrGeneration",
    "FaultConfig",
    "FaultInjector",
    "FaultSite",
    "Job",
    "MemoryTracer",
    "MetricsRegistry",
    "NocDesign",
    "NullTracer",
    "ResultStore",
    "RunMetrics",
    "ScheduledFault",
    "SimulatorProfiler",
    "SocSystem",
    "SweepSpec",
    "SystemConfig",
    "build_system",
    "paper_configs",
    "run_config",
    "run_sweep",
    "__version__",
]
