"""Standing simulator benchmarks: the machine-readable perf trajectory.

Every growth PR extends ``BENCH_<n>.json`` so the simulator's
cycles-per-second history is a first-class, reviewable artifact next to
the paper exhibits.  Three benchmarks cover the layers that dominate wall
time:

* ``full_system_gss_sagm`` — the paper's headline configuration (8 DTV
  cores, GSS routers, SAGM thin controller): NoC plan/commit, GSS filter
  chains, and the SDRAM pipeline all hot;
* ``full_system_conv`` — the conventional design (MemMax + Databahn), a
  different scheduler mix with the same fabric;
* ``dram_engine`` — the CommandEngine + SdramDevice pair alone, no
  network, so DRAM-model regressions are visible even when the NoC
  dominates the full system.

Wall-clock on shared hosts is noisy in a *structured* way: CPUs ramp
frequency over the first seconds of a process and neighbours steal time,
so raw cycles/sec numbers from different runs are not comparable.  The
harness therefore (a) runs warm-up repetitions and keeps the best timed
repetition — the standard min-of-trials estimator for the machine's true
capability — and (b) records a **calibration score** from a fixed
pure-Python workload alongside every measurement.  Comparing two
trajectory points from different machines (or CPU regimes) means scaling
by the calibration ratio first; :func:`check_regression` and the speed
tests in ``benchmarks/`` do exactly that.
"""

from __future__ import annotations

import json
import time
from collections import deque
from dataclasses import dataclass
from itertools import count
from typing import Callable, Dict, List, Optional

from ..sim.config import DdrGeneration, NocDesign, SystemConfig

#: Trajectory file written by this PR (bump per growth PR).
TRAJECTORY_FILE = "BENCH_7.json"

#: Default measurement protocol (mirrors ``benchmarks/conftest.py``).
DEFAULT_CYCLES = 12_000
DEFAULT_REPS = 5
DEFAULT_WARMUP_REPS = 2


@dataclass(frozen=True)
class BenchResult:
    """One benchmark's best repetition."""

    name: str
    cycles: int
    wall_seconds: float
    cycles_per_second: float


def _best_of(
    work: Callable[[], float],
    reps: int,
    warmup_reps: int,
    on_rep: Optional[Callable[[int, float, bool], None]] = None,
) -> float:
    """Run ``work`` (returns elapsed seconds) ``reps`` times; discard the
    first ``warmup_reps`` (allocator, bytecode, and CPU-frequency warm-up)
    and return the minimum of the rest.  ``on_rep(rep, elapsed, warmup)``
    observes every repetition — the telemetry hook."""
    if reps <= warmup_reps:
        raise ValueError("need at least one measured repetition")
    best: Optional[float] = None
    for rep in range(reps):
        elapsed = work()
        if on_rep is not None:
            on_rep(rep, elapsed, rep < warmup_reps)
        if rep < warmup_reps:
            continue
        if best is None or elapsed < best:
            best = elapsed
    assert best is not None
    return best


def calibrate(reps: int = 3) -> float:
    """Machine-speed score in kilo-operations/second from a fixed
    pure-Python workload (attribute access, method calls, deque traffic —
    the same bytecode mix the simulator's hot loops execute).  Recorded
    next to every measurement so trajectory points taken on different
    machines or CPU-frequency regimes can be compared after scaling."""

    class _Cell:
        __slots__ = ("value", "due")

        def __init__(self, value: int) -> None:
            self.value = value
            self.due = value % 7

        def step(self, cycle: int) -> int:
            if cycle < self.due:
                return 0
            self.value += 1
            return self.value

    def work() -> float:
        cells = [_Cell(i) for i in range(64)]
        fifo: deque = deque()
        total = 0
        start = time.perf_counter()
        for cycle in range(4_000):
            for cell in cells:
                total += cell.step(cycle)
            fifo.append(cycle)
            if len(fifo) > 16:
                fifo.popleft()
        elapsed = time.perf_counter() - start
        assert total != 0 and fifo
        return elapsed

    best = _best_of(work, reps + 1, 1)
    operations = 4_000 * 64
    return operations / best / 1_000.0


def bench_full_system(
    design: NocDesign = NocDesign.GSS_SAGM,
    app: str = "single_dtv",
    cycles: int = DEFAULT_CYCLES,
    reps: int = DEFAULT_REPS,
    warmup_reps: int = DEFAULT_WARMUP_REPS,
    on_rep: Optional[Callable[[int, float, bool], None]] = None,
) -> BenchResult:
    """Simulated cycles/second of a freshly built full system."""
    from ..core.system import build_system

    def work() -> float:
        system = build_system(
            SystemConfig(app=app, cycles=cycles, warmup=0, design=design)
        )
        start = time.perf_counter()
        system.simulator.run(cycles)
        return time.perf_counter() - start

    best = _best_of(work, reps, warmup_reps, on_rep)
    name = f"full_system_{design.value.replace('+', '_')}"
    return BenchResult(name, cycles, best, cycles / best)


def bench_dram_engine(
    cycles: int = 60_000,
    requests: int = 2_048,
    reps: int = DEFAULT_REPS,
    warmup_reps: int = DEFAULT_WARMUP_REPS,
    on_rep: Optional[Callable[[int, float, bool], None]] = None,
) -> BenchResult:
    """CommandEngine + SdramDevice alone (no NoC in the loop)."""
    from ..dram.controller import CommandEngine
    from ..dram.device import SdramDevice
    from ..dram.request import MemoryRequest
    from ..dram.timing import DramTiming

    timing = DramTiming.for_clock(DdrGeneration.DDR2, 333)
    ids = count()
    executed = [0]

    def work() -> float:
        device = SdramDevice(timing)
        engine = CommandEngine(device, burst_beats=8)
        pending = deque(
            MemoryRequest(
                request_id=next(ids), master=0, bank=i % 8, row=i // 8,
                column=0, beats=16, is_read=True,
            )
            for i in range(requests)
        )
        cycle = 0
        start = time.perf_counter()
        while (pending or not engine.idle) and cycle < cycles:
            if pending and engine.has_space:
                engine.accept(pending.popleft(), cycle)
            engine.tick(cycle)
            engine.drain_finished()
            cycle += 1
        # The batch usually drains before the cap: report the cycles the
        # engine actually simulated, or cycles/sec is inflated.
        executed[0] = cycle
        return time.perf_counter() - start

    best = _best_of(work, reps, warmup_reps, on_rep)
    return BenchResult("dram_engine", executed[0], best, executed[0] / best)


def _round_publisher(telemetry, name: str):
    """An ``on_rep`` hook emitting one ``bench_round`` record per timed
    repetition into a telemetry stream (None telemetry = no hook)."""
    if telemetry is None:
        return None

    def on_rep(rep: int, elapsed: float, warmup: bool) -> None:
        telemetry.emit(
            "bench_round", bench=name, rep=rep,
            wall_s=elapsed, warmup=warmup,
        )

    return on_rep


def run_benchmarks(
    cycles: int = DEFAULT_CYCLES,
    reps: int = DEFAULT_REPS,
    warmup_reps: int = DEFAULT_WARMUP_REPS,
    telemetry=None,
) -> Dict[str, object]:
    """Run the standing benchmark set; returns the trajectory-point dict.

    ``telemetry`` (a :class:`~repro.obs.stream.TelemetryWriter`) gets one
    ``bench_round`` record per repetition, so a monitor shows benchmark
    progress live instead of staring at a silent multi-second run.
    """
    # Calibrate before *and* after the timed benchmarks and keep the
    # faster score: CPU-frequency regimes shift between the two, and an
    # underestimated machine speed only makes a regression check lenient,
    # while an overestimate would fail it spuriously.
    calibration = calibrate()
    results = [
        bench_full_system(
            NocDesign.GSS_SAGM, "single_dtv", cycles, reps, warmup_reps,
            on_rep=_round_publisher(telemetry, "full_system_gss_sagm"),
        ),
        bench_full_system(
            NocDesign.CONV, "dual_dtv", cycles, reps, warmup_reps,
            on_rep=_round_publisher(telemetry, "full_system_conv"),
        ),
        bench_dram_engine(
            reps=reps, warmup_reps=warmup_reps,
            on_rep=_round_publisher(telemetry, "dram_engine"),
        ),
    ]
    calibration = max(calibration, calibrate())
    point: Dict[str, object] = {
        "calibration_kops": round(calibration, 1),
    }
    for result in results:
        point[result.name] = {
            "cycles": result.cycles,
            "wall_seconds": round(result.wall_seconds, 4),
            "cycles_per_second": round(result.cycles_per_second, 1),
        }
    return point


# ---------------------------------------------------------------------- #
# Trajectory file I/O
# ---------------------------------------------------------------------- #

def load_trajectory(path: str) -> Dict[str, object]:
    with open(path) as handle:
        return json.load(handle)


def write_trajectory(
    path: str,
    current: Dict[str, object],
    baseline: Optional[Dict[str, object]] = None,
    protocol: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """Write a trajectory file containing the recorded ``baseline`` (the
    measurement this PR started from) and the ``current`` point, plus the
    calibration-scaled speedups between them."""
    from ..obs.stream import host_manifest

    document: Dict[str, object] = {
        "bench": TRAJECTORY_FILE.rsplit(".", 1)[0],
        "schema": 1,
        "protocol": protocol or {
            "cycles": DEFAULT_CYCLES,
            "reps": DEFAULT_REPS,
            "warmup_reps": DEFAULT_WARMUP_REPS,
            "estimator": "min over measured reps",
        },
        # Who measured: calibration scaling absorbs speed differences,
        # but python/numpy/host changes shift the *shape* of the work —
        # host_mismatch() flags those when comparing trajectories.
        "host": host_manifest(),
        "current": current,
    }
    if baseline is not None:
        document["baseline"] = baseline
        document["speedup"] = {
            name: round(ratio, 3)
            for name, ratio in _speedups(baseline, current).items()
        }
    with open(path, "w") as handle:
        json.dump(document, handle, indent=1, sort_keys=True)
        handle.write("\n")
    return document


def _speedups(
    baseline: Dict[str, object], current: Dict[str, object]
) -> Dict[str, float]:
    """Raw speedups for every benchmark both points share.

    Baseline and current are recorded from interleaved runs on the same
    host, so the raw cycles/sec ratio is the fair comparison; calibration
    scaling (:func:`machine_scale`) is for *checking* a fresh measurement
    from a possibly different host against the file."""
    out: Dict[str, float] = {}
    for name, entry in current.items():
        if not isinstance(entry, dict) or "cycles_per_second" not in entry:
            continue
        base_entry = baseline.get(name)
        if not isinstance(base_entry, dict):
            continue
        base_cps = float(base_entry["cycles_per_second"])
        out[name] = float(entry["cycles_per_second"]) / base_cps
    return out


#: Host-manifest fields whose change makes raw trajectory comparison
#: suspect even after calibration scaling (numpy toggles vectorized
#: paths on/off; interpreter and host shift the bytecode-vs-simulation
#: cost mix).
_HOST_COMPARE_FIELDS = ("python", "implementation", "numpy", "hostname")


def host_mismatch(
    recorded: Optional[Dict[str, object]],
    observed: Optional[Dict[str, object]] = None,
) -> List[str]:
    """Fields on which two host manifests disagree, as warning strings.

    ``observed=None`` compares against this process's own manifest.  A
    recorded trajectory without a host manifest (pre-schema files)
    produces no warnings — absence is not a mismatch.
    """
    if not recorded:
        return []
    if observed is None:
        from ..obs.stream import host_manifest

        observed = host_manifest()
    warnings: List[str] = []
    for field in _HOST_COMPARE_FIELDS:
        before, after = recorded.get(field), observed.get(field)
        if before is not None and after is not None and before != after:
            warnings.append(f"{field}: recorded on {before!r}, now {after!r}")
    return warnings


def machine_scale(
    recorded: Dict[str, object], observed: Dict[str, object]
) -> float:
    """How much faster the observed machine/regime is than the recorded
    one, per the calibration workload (1.0 when either side lacks a
    calibration score)."""
    recorded_kops = recorded.get("calibration_kops")
    observed_kops = observed.get("calibration_kops")
    if not recorded_kops or not observed_kops:
        return 1.0
    return float(observed_kops) / float(recorded_kops)


def check_regression(
    recorded: Dict[str, object],
    current: Dict[str, object],
    max_regression: float = 0.2,
) -> List[str]:
    """Compare ``current`` against the trajectory file's recorded point.

    Returns failure messages for every benchmark whose calibration-scaled
    cycles/second fell more than ``max_regression`` below the recorded
    value; empty means the trajectory holds."""
    failures: List[str] = []
    # Clamp at 1.0: a slower host lowers the floor (the rescue this scale
    # exists for), but calibration noise must never *raise* it above the
    # recorded absolute numbers.
    scale = min(machine_scale(recorded, current), 1.0)
    for name, entry in recorded.items():
        if not isinstance(entry, dict) or "cycles_per_second" not in entry:
            continue
        observed = current.get(name)
        if not isinstance(observed, dict):
            failures.append(f"{name}: missing from current measurement")
            continue
        floor = float(entry["cycles_per_second"]) * scale * (1.0 - max_regression)
        cps = float(observed["cycles_per_second"])
        if cps < floor:
            failures.append(
                f"{name}: {cps:.0f} c/s is below the regression floor "
                f"{floor:.0f} c/s (recorded {entry['cycles_per_second']} "
                f"c/s, machine scale {scale:.2f})"
            )
    return failures


def render(point: Dict[str, object]) -> str:
    """Human-readable one-point summary."""
    lines = [f"calibration   : {point.get('calibration_kops', '?')} kops/s"]
    for name, entry in sorted(point.items()):
        if isinstance(entry, dict) and "cycles_per_second" in entry:
            lines.append(
                f"{name:<24}: {entry['cycles_per_second']:>10} cycles/s "
                f"({entry['wall_seconds']}s for {entry['cycles']} cycles)"
            )
    return "\n".join(lines)
