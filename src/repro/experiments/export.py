"""Machine-readable export of the experiment results.

Dumps every exhibit's data to a single JSON document so downstream tools
(plotting scripts, CI dashboards, regression trackers) can consume the
reproduction without scraping the text tables.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, Optional, Union

from ..sim.config import NocDesign
from .comparison import ComparisonResult, METRICS
from .fig8 import Fig8Curve, run_fig8
from .runner import DEFAULT_SEEDS
from .table1 import run_table1
from .table2 import Table2Result, run_table2
from .table3 import Table3Row, run_table3
from .table4 import run_table4
from .table5 import run_table5


def comparison_to_dict(result: ComparisonResult) -> Dict:
    cells = [
        {
            "app": cell.app,
            "ddr": cell.ddr.value,
            "clock_mhz": cell.clock_mhz,
            "design": cell.design.value,
            **{metric: cell.value(metric) for metric in METRICS},
        }
        for cell in result.cells
    ]
    averages = {
        design.value: values for design, values in result.averages().items()
    }
    return {"cells": cells, "averages": averages}


def table2_to_dict(result: Table2Result) -> Dict:
    data = comparison_to_dict(result.comparison)
    data["baseline_table1_sdram_aware"] = result.baseline_averages
    data["ratios_vs_table1_baseline"] = {
        design.value: values for design, values in result.ratios().items()
    }
    return data


def table3_to_dict(rows: Iterable[Table3Row]) -> Dict:
    return {
        "rows": [
            {
                "app": row.app,
                "clock_mhz": row.clock_mhz,
                "utilization": row.with_sti.utilization,
                "utilization_improvement": row.utilization_improvement,
                "latency": row.with_sti.latency_all,
                "latency_improvement": row.latency_improvement,
                "priority_latency": row.with_sti.latency_demand,
                "priority_latency_improvement": row.priority_latency_improvement,
            }
            for row in rows
        ]
    }


def fig8_to_dict(curves: Iterable[Fig8Curve]) -> Dict:
    return {
        "curves": [
            {
                "app": curve.app,
                "ddr": curve.ddr.value,
                "clock_mhz": curve.clock_mhz,
                "gss_routers": curve.gss_router_counts,
                "utilization": curve.utilization,
                "latency_all": curve.latency_all,
                "latency_priority": curve.latency_priority,
            }
            for curve in curves
        ]
    }


def export_all(
    path: Union[str, Path],
    cycles: Optional[int] = None,
    warmup: Optional[int] = None,
    seeds=DEFAULT_SEEDS,
) -> Dict:
    """Run every exhibit and write one JSON document to ``path``."""
    kwargs = dict(cycles=cycles, warmup=warmup, seeds=seeds)
    document = {
        "table1": comparison_to_dict(run_table1(**kwargs)),
        "table2": table2_to_dict(run_table2(**kwargs)),
        "table3": table3_to_dict(run_table3(**kwargs)),
        "table4": run_table4(),
        "table5": run_table5(),
        "fig8": fig8_to_dict(run_fig8(**kwargs)),
    }
    Path(path).write_text(json.dumps(document, indent=1))
    return document
