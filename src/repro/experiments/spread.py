"""Run-to-run spread measurement.

The paper runs each configuration once for 1 M cycles; this reproduction
uses much shorter horizons, so every reported comparison carries sampling
noise.  :func:`measure_spread` quantifies it: one configuration, many
workload seeds, mean and standard deviation per metric — the numbers
EXPERIMENTS.md's error bars come from.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Sequence

from ..core.system import run_config
from ..sim.config import SystemConfig

METRIC_NAMES = ("utilization", "latency_all", "latency_demand")


@dataclass(frozen=True)
class MetricSpread:
    mean: float
    stdev: float
    minimum: float
    maximum: float
    samples: int

    @property
    def relative_stdev(self) -> float:
        return self.stdev / self.mean if self.mean else 0.0


def measure_spread(
    config: SystemConfig, seeds: Sequence[int]
) -> Dict[str, MetricSpread]:
    """Simulate ``config`` once per seed; return per-metric spread."""
    if len(seeds) < 2:
        raise ValueError("need at least two seeds to measure spread")
    runs = [run_config(config.with_(seed=seed)) for seed in seeds]
    spread: Dict[str, MetricSpread] = {}
    for name in METRIC_NAMES:
        values = [getattr(run, name) for run in runs]
        mean = sum(values) / len(values)
        variance = sum((v - mean) ** 2 for v in values) / (len(values) - 1)
        spread[name] = MetricSpread(
            mean=mean,
            stdev=math.sqrt(variance),
            minimum=min(values),
            maximum=max(values),
            samples=len(values),
        )
    return spread


def render(spread: Dict[str, MetricSpread]) -> str:
    lines = [f"{'metric':16s} {'mean':>9s} {'stdev':>8s} {'min':>9s} {'max':>9s}"]
    for name, stats in spread.items():
        lines.append(
            f"{name:16s} {stats.mean:9.3f} {stats.stdev:8.3f} "
            f"{stats.minimum:9.3f} {stats.maximum:9.3f}"
        )
    return "\n".join(lines)
