"""Controlled (trace-replay) design comparison.

The Table I/II comparisons use live closed-loop generators, so a design
that serves requests faster also *receives* requests sooner — the same
feedback the paper's testbed has.  For analyses that must isolate pure
scheduling effects, this module captures the request trace of one
reference run and replays the identical per-master streams through every
design under test.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from ..core.system import build_system
from ..sim.config import NocDesign, SystemConfig
from ..sim.stats import RunMetrics
from ..workloads.trace import TraceEntry, record_system, replay_into_system


@dataclass(frozen=True)
class ControlledResult:
    """Metrics per design, all fed the identical request trace."""

    reference_design: NocDesign
    traces: Dict[int, List[TraceEntry]]
    metrics: Dict[NocDesign, RunMetrics]


def capture_trace(config: SystemConfig) -> Dict[int, List[TraceEntry]]:
    """Run ``config`` once and return the per-master request trace."""
    system = build_system(config)
    recorders = record_system(system)
    system.run()
    return {master: recorder.entries for master, recorder in recorders.items()}


def run_controlled(
    config: SystemConfig,
    designs: Sequence[NocDesign],
    max_outstanding: int = 8,
) -> ControlledResult:
    """Capture a trace under ``config`` and replay it through ``designs``."""
    traces = capture_trace(config)
    metrics: Dict[NocDesign, RunMetrics] = {}
    for design in designs:
        system = build_system(config.with_(design=design))
        replay_into_system(system, traces, max_outstanding=max_outstanding)
        metrics[design] = system.run()
    return ControlledResult(
        reference_design=config.design, traces=traces, metrics=metrics
    )


def render(result: ControlledResult) -> str:
    total = sum(len(entries) for entries in result.traces.values())
    lines = [
        f"Controlled comparison — {total} identical requests replayed "
        f"(trace captured under {result.reference_design.value})",
        f"{'design':18s} {'util':>7s} {'lat(all)':>9s} {'lat(dem)':>9s} {'served':>7s}",
    ]
    for design, metrics in result.metrics.items():
        lines.append(
            f"{design.value:18s} {metrics.utilization:7.3f} "
            f"{metrics.latency_all:9.1f} {metrics.latency_demand:9.1f} "
            f"{metrics.completed:7d}"
        )
    return "\n".join(lines)
