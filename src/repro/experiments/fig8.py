"""Fig. 8 — memory performance vs number of GSS routers.

The paper starts from a system with conventional priority-first /
round-robin routers and a thin memory subsystem (no input buffer, no
memory scheduler), then replaces routers with GSS routers one at a time,
closest-to-memory first.  Three curves are reported — average memory
utilization (a), average latency of all packets (b), and average latency
of priority (demand) packets (c) — for single DTV on DDR I at 200 MHz,
Blu-ray on DDR II at 333 MHz, and dual DTV on DDR III at 666 MHz.

The expected shape: large gains for the first three routers (the ones
surrounding the memory corner, where all memory traffic funnels), then a
plateau — which is the paper's hardware-cost argument for deploying only
three GSS flow controllers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List

from ..sim.config import DdrGeneration, NocDesign
from .runner import AveragedMetrics, DEFAULT_SEEDS, experiment_config, run_averaged

#: Fig. 8 operating points: (application, DDR generation, clock MHz).
FIG8_POINTS = [
    ("single_dtv", DdrGeneration.DDR1, 200),
    ("bluray", DdrGeneration.DDR2, 333),
    ("dual_dtv", DdrGeneration.DDR3, 666),
]


@dataclass(frozen=True)
class Fig8Curve:
    """One application's sweep over the number of GSS routers."""

    app: str
    ddr: DdrGeneration
    clock_mhz: int
    gss_router_counts: List[int]
    utilization: List[float]
    latency_all: List[float]
    latency_priority: List[float]


def gss_router_counts(app: str, max_routers: int | None = None) -> List[int]:
    """The router counts swept for ``app`` (0 .. mesh size, capped)."""
    mesh_nodes = 16 if app == "dual_dtv" else 9
    top = mesh_nodes if max_routers is None else min(max_routers, mesh_nodes)
    return list(range(0, top + 1))


def fig8_config(app: str, ddr: DdrGeneration, mhz: int, k: int, **overrides):
    """The configuration of one Fig. 8 point: ``k`` GSS routers on the
    ``app`` operating point.  Shared with the sweep grid definition in
    :mod:`repro.sweep.grids` so both paths enumerate identical configs."""
    return experiment_config(
        app=app,
        ddr=ddr,
        clock_mhz=mhz,
        design=NocDesign.GSS_SAGM,
        priority_enabled=True,
        num_gss_routers=k,
        **overrides,
    )


def run_fig8(
    cycles: int | None = None,
    warmup: int | None = None,
    seeds: Iterable[int] = DEFAULT_SEEDS,
    max_routers: int | None = None,
) -> List[Fig8Curve]:
    """Regenerate the three Fig. 8 sweeps."""
    overrides = {}
    if cycles is not None:
        overrides["cycles"] = cycles
    if warmup is not None:
        overrides["warmup"] = warmup
    curves: List[Fig8Curve] = []
    for app, ddr, mhz in FIG8_POINTS:
        counts = gss_router_counts(app, max_routers)
        utilization: List[float] = []
        latency_all: List[float] = []
        latency_priority: List[float] = []
        for k in counts:
            config = fig8_config(app, ddr, mhz, k, **overrides)
            metrics = run_averaged(config, seeds=seeds)
            utilization.append(metrics.utilization)
            latency_all.append(metrics.latency_all)
            latency_priority.append(metrics.latency_demand)
        curves.append(
            Fig8Curve(app, ddr, mhz, counts, utilization, latency_all, latency_priority)
        )
    return curves


def render(curves: List[Fig8Curve]) -> str:
    lines = ["Fig. 8 — memory performance vs number of GSS routers"]
    for curve in curves:
        lines.append(f"\n{curve.app} / {curve.ddr.value} @ {curve.clock_mhz} MHz")
        lines.append(f"{'#GSS':>5s} {'util':>7s} {'lat(all)':>9s} {'lat(pri)':>9s}")
        for i, k in enumerate(curve.gss_router_counts):
            lines.append(
                f"{k:>5d} {curve.utilization[i]:7.3f} "
                f"{curve.latency_all[i]:9.1f} {curve.latency_priority[i]:9.1f}"
            )
    return "\n".join(lines)


def knee_index(curve: Fig8Curve, fraction: float = 0.8) -> int:
    """Smallest router count capturing ``fraction`` of the total
    utilization gain — the paper finds this lands at ~3 routers."""
    base = curve.utilization[0]
    best = max(curve.utilization)
    if best <= base:
        return 0
    threshold = base + fraction * (best - base)
    for i, value in enumerate(curve.utilization):
        if value >= threshold:
            return curve.gss_router_counts[i]
    return curve.gss_router_counts[-1]


def main() -> None:  # pragma: no cover - CLI convenience
    print(render(run_fig8()))


if __name__ == "__main__":  # pragma: no cover
    main()
