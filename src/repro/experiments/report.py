"""Paper-style text rendering of experiment results."""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence


def format_table(
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    footer: Sequence[Sequence[object]] = (),
) -> str:
    """Render an aligned text table with a title and optional footer rows."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    str_footer = [[_fmt(cell) for cell in row] for row in footer]
    widths = [len(h) for h in headers]
    for row in str_rows + str_footer:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [title]
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    if str_footer:
        lines.append("  ".join("-" * w for w in widths))
        for row in str_footer:
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(title: str, x_label: str, series: Mapping[str, Sequence[float]],
                  x_values: Sequence[object]) -> str:
    """Render a figure's data as one column per series (Fig. 8 style)."""
    headers = [x_label] + list(series.keys())
    rows: List[List[object]] = []
    for i, x in enumerate(x_values):
        rows.append([x] + [values[i] for values in series.values()])
    return format_table(title, headers, rows)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}" if abs(cell) < 10 else f"{cell:.1f}"
    return str(cell)


def ratio_footer(
    averages: Dict[str, Dict[str, float]], baseline: str, metrics: Sequence[str]
) -> List[List[object]]:
    """The paper's 'Average' and 'Ratio' footer rows.

    ``averages`` maps design -> metric -> mean value; ratios are relative to
    ``baseline`` (the paper uses the SDRAM-aware design [4])."""
    avg_row: List[object] = ["Average"]
    ratio_row: List[object] = ["Ratio"]
    for design in averages:
        for metric in metrics:
            avg_row.append(averages[design][metric])
            base = averages[baseline][metric]
            ratio_row.append(averages[design][metric] / base if base else 0.0)
    return [avg_row, ratio_row]
