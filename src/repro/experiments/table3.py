"""Table III — short turn-around bank interleaving (STI) on DDR III.

High-clock DDR III takes tens of cycles to deactivate and re-activate a
bank (tWR + tRP = 23 cycles at 800 MHz), so the Fig. 4(b) filter — which
additionally avoids scheduling a packet whose bank is still inside that
turn-around window — pays off.  The paper runs GSS+SAGM+STI with three GSS
routers against GSS+SAGM on DDR III at each application's top clock and
reports the improvement in utilization, overall latency, and priority
latency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List

from ..sim.config import DdrGeneration, NocDesign
from .runner import AveragedMetrics, DEFAULT_SEEDS, experiment_config, run_averaged

#: The paper's Table III operating points (all DDR III).
TABLE3_POINTS = [
    ("bluray", 533),
    ("single_dtv", 667),
    ("dual_dtv", 800),
]

#: "For this experiment, we use three GSS routers employing Fig. 4(b)."
TABLE3_GSS_ROUTERS = 3


@dataclass(frozen=True)
class Table3Row:
    app: str
    clock_mhz: int
    without_sti: AveragedMetrics
    with_sti: AveragedMetrics

    @property
    def utilization_improvement(self) -> float:
        base = self.without_sti.utilization
        return (self.with_sti.utilization - base) / base if base else 0.0

    @property
    def latency_improvement(self) -> float:
        base = self.without_sti.latency_all
        return (base - self.with_sti.latency_all) / base if base else 0.0

    @property
    def priority_latency_improvement(self) -> float:
        base = self.without_sti.latency_demand
        return (base - self.with_sti.latency_demand) / base if base else 0.0


def run_table3(
    cycles: int | None = None,
    warmup: int | None = None,
    seeds: Iterable[int] = DEFAULT_SEEDS,
) -> List[Table3Row]:
    """Regenerate Table III: GSS+SAGM+STI vs GSS+SAGM on DDR III."""
    overrides = {}
    if cycles is not None:
        overrides["cycles"] = cycles
    if warmup is not None:
        overrides["warmup"] = warmup
    rows: List[Table3Row] = []
    for app, mhz in TABLE3_POINTS:
        variants: Dict[bool, AveragedMetrics] = {}
        for sti in (False, True):
            config = experiment_config(
                app=app,
                ddr=DdrGeneration.DDR3,
                clock_mhz=mhz,
                design=NocDesign.GSS_SAGM,
                priority_enabled=True,
                sti=sti,
                num_gss_routers=TABLE3_GSS_ROUTERS,
                **overrides,
            )
            variants[sti] = run_averaged(config, seeds=seeds)
        rows.append(Table3Row(app, mhz, variants[False], variants[True]))
    return rows


def render(rows: List[Table3Row]) -> str:
    lines = ["Table III — GSS+SAGM+STI vs GSS+SAGM (DDR III)"]
    header = (
        f"{'Application':12s} {'Clock':>7s} {'Util':>6s} {'dUtil':>7s} "
        f"{'Lat':>6s} {'dLat':>7s} {'PriLat':>7s} {'dPri':>7s}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for row in rows:
        lines.append(
            f"{row.app:12s} {row.clock_mhz:>4d}MHz "
            f"{row.with_sti.utilization:6.3f} {row.utilization_improvement:+6.1%} "
            f"{row.with_sti.latency_all:6.1f} {row.latency_improvement:+6.1%} "
            f"{row.with_sti.latency_demand:7.1f} {row.priority_latency_improvement:+6.1%}"
        )
    n = len(rows)
    lines.append(
        f"{'Average':12s} {'':>7s} "
        f"{sum(r.with_sti.utilization for r in rows)/n:6.3f} "
        f"{sum(r.utilization_improvement for r in rows)/n:+6.1%} "
        f"{sum(r.with_sti.latency_all for r in rows)/n:6.1f} "
        f"{sum(r.latency_improvement for r in rows)/n:+6.1%} "
        f"{sum(r.with_sti.latency_demand for r in rows)/n:7.1f} "
        f"{sum(r.priority_latency_improvement for r in rows)/n:+6.1%}"
    )
    return "\n".join(lines)


def main() -> None:  # pragma: no cover - CLI convenience
    print(render(run_table3()))


if __name__ == "__main__":  # pragma: no cover
    main()
