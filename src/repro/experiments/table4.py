"""Table IV — gate-count comparison (analytical model).

See :mod:`repro.cost.gate_count` for the model; this module renders it in
the paper's table shape with the per-module ratios normalized to the
proposed design.
"""

from __future__ import annotations

from typing import Dict

from ..cost.gate_count import table4
from .report import format_table

DESIGN_ORDER = ("conv", "sdram-aware", "gss+sagm+sti")


def run_table4() -> Dict[str, Dict[str, int]]:
    return table4()


def render(result: Dict[str, Dict[str, int]] | None = None) -> str:
    data = result if result is not None else run_table4()
    headers = ["Module"]
    for design in DESIGN_ORDER:
        headers += [f"{design} gates", f"{design} ratio"]
    rows = []
    for module, designs in data.items():
        ours = designs["gss+sagm+sti"]
        row: list = [module]
        for design in DESIGN_ORDER:
            gates = designs[design]
            row += [gates, gates / ours if ours else 0.0]
        rows.append(row)
    return format_table("Table IV — gate count at 400 MHz", headers, rows)


def main() -> None:  # pragma: no cover - CLI convenience
    print(render())


if __name__ == "__main__":  # pragma: no cover
    main()
