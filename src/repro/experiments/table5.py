"""Table V — average power comparison (analytical model).

See :mod:`repro.cost.power`.  Optionally the power numbers are modulated
by the measured switching activity (memory utilization) of an actual
simulation run of each design at each operating point.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from ..cost.power import TABLE5_POINTS, estimate_power
from ..sim.config import DdrGeneration, NocDesign
from .report import format_table
from .runner import DEFAULT_SEEDS, experiment_config, run_averaged

#: design key in the cost model -> NocDesign for activity simulation
DESIGN_MAP = {
    "conv": NocDesign.CONV,
    "sdram-aware": NocDesign.SDRAM_AWARE,
    "gss+sagm+sti": NocDesign.GSS_SAGM,
}

#: Table V clock points use DDR I at 200 MHz, DDR II at 400, DDR III at 800.
POINT_DDR = {200: DdrGeneration.DDR1, 400: DdrGeneration.DDR2, 800: DdrGeneration.DDR3}


def run_table5(
    with_activity: bool = False,
    cycles: Optional[int] = None,
    seeds: Iterable[int] = DEFAULT_SEEDS,
) -> Dict[str, Dict[str, float]]:
    """Average power (mW) per design and operating point.

    With ``with_activity`` the simulator supplies each design's measured
    utilization as the switching-activity factor.
    """
    result: Dict[str, Dict[str, float]] = {}
    for app, mhz in TABLE5_POINTS:
        row: Dict[str, float] = {}
        for key, design in DESIGN_MAP.items():
            activity = None
            if with_activity:
                config = experiment_config(
                    app=app,
                    ddr=POINT_DDR[mhz],
                    clock_mhz=mhz,
                    design=design,
                    sti=design is NocDesign.GSS_SAGM,
                    **({"cycles": cycles} if cycles else {}),
                )
                activity = min(1.0, run_averaged(config, seeds=seeds).raw_utilization)
            row[key] = estimate_power(key, app, mhz, activity=activity).milliwatts
        result[f"{app}@{mhz}MHz"] = row
    return result


def render(result: Optional[Dict[str, Dict[str, float]]] = None) -> str:
    data = result if result is not None else run_table5()
    designs = list(next(iter(data.values())).keys())
    headers = ["Operating point"] + [f"{d} (mW)" for d in designs] + ["conv ratio", "[4] ratio"]
    rows = []
    for point, row in data.items():
        ours = row["gss+sagm+sti"]
        rows.append(
            [point]
            + [row[d] for d in designs]
            + [row["conv"] / ours if ours else 0.0, row["sdram-aware"] / ours if ours else 0.0]
        )
    return format_table("Table V — average power", headers, rows)


def main() -> None:  # pragma: no cover - CLI convenience
    print(render())


if __name__ == "__main__":  # pragma: no cover
    main()
