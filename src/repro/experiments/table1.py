"""Table I — comparison without priority memory requests.

All packets (including CPU demands) receive best-effort service.  The
paper compares CONV, the SDRAM-aware baseline [4], GSS, and GSS+SAGM over
three applications x three DDR generations and reports memory utilization,
memory latency of all packets, and memory latency of demand packets, with
a final ratio row normalized to [4].
"""

from __future__ import annotations

from typing import Iterable, List

from ..sim.config import NocDesign, PAPER_CLOCK_POINTS
from .comparison import ComparisonResult, METRICS, run_comparison
from .report import format_table
from .runner import DEFAULT_SEEDS

TABLE1_DESIGNS = [
    NocDesign.CONV,
    NocDesign.SDRAM_AWARE,
    NocDesign.GSS,
    NocDesign.GSS_SAGM,
]

BASELINE = NocDesign.SDRAM_AWARE


def run_table1(
    cycles: int | None = None,
    warmup: int | None = None,
    seeds: Iterable[int] = DEFAULT_SEEDS,
) -> ComparisonResult:
    """Regenerate Table I's measurements."""
    return run_comparison(
        TABLE1_DESIGNS, priority=False, cycles=cycles, warmup=warmup, seeds=seeds
    )


def render(result: ComparisonResult, title: str = "Table I — no priority memory request") -> str:
    """Paper-style text table."""
    headers = ["Application", "Clock"]
    for metric in METRICS:
        for design in result.designs:
            headers.append(f"{_short(design)}:{_metric_short(metric)}")
    rows: List[List[object]] = []
    for app, points in PAPER_CLOCK_POINTS.items():
        for ddr, mhz in points.items():
            row: List[object] = [app, f"{mhz}MHz/{ddr.value}"]
            for metric in METRICS:
                for design in result.designs:
                    row.append(result.cell(app, ddr, design).value(metric))
            rows.append(row)
    averages = result.averages()
    ratios = result.ratios(BASELINE if BASELINE in result.designs else result.designs[0])
    avg_row: List[object] = ["Average", ""]
    ratio_row: List[object] = ["Ratio", ""]
    for metric in METRICS:
        for design in result.designs:
            avg_row.append(averages[design][metric])
            ratio_row.append(ratios[design][metric])
    return format_table(title, headers, rows, footer=[avg_row, ratio_row])


def _short(design: NocDesign) -> str:
    return {
        NocDesign.CONV: "CONV",
        NocDesign.CONV_PFS: "CONV+PFS",
        NocDesign.SDRAM_AWARE: "[4]",
        NocDesign.SDRAM_AWARE_PFS: "[4]+PFS",
        NocDesign.GSS: "GSS",
        NocDesign.GSS_SAGM: "GSS+SAGM",
    }[design]


def _metric_short(metric: str) -> str:
    return {
        "utilization": "util",
        "latency_all": "lat",
        "latency_demand": "dem",
    }[metric]


def main() -> None:  # pragma: no cover - CLI convenience
    print(render(run_table1()))


if __name__ == "__main__":  # pragma: no cover
    main()
