"""Fault-rate sweep: resilience cost on the paper's headline metrics.

Sweeps the uniform fault rate (see
:meth:`repro.resilience.faults.FaultConfig.uniform`) over several decades
on one operating point and reports how SDRAM utilization and memory
latency degrade as the CRC/retry, ECC, and watchdog machinery absorbs
the faults — together with the fault ledger proving that every injected
fault was corrected, recovered, or surfaced as a failed request (the
``unresolved`` column must read zero; a run that cannot drain to
quiescence is reported as hung, with the rate and the drain budget it
exhausted).

The zero-rate row doubles as the control: with ``faults=None`` the
resilience machinery is not even built, so that row is bit-identical to
the plain system and any difference against it is attributable to the
faults, not the instrumentation.

:func:`run_fault_point` is the single-point path the sweep
orchestrator's ``fault-point`` job runner executes verbatim
(:mod:`repro.sweep.runners`), which is what makes a sharded
``repro sweep fault`` bit-identical to this serial driver.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional

from ..core.system import build_system
from ..resilience.faults import FaultConfig
from .runner import experiment_config

#: Default sweep: clean control plus three decades of fault rate.
FAULT_SWEEP_RATES = (0.0, 1e-4, 1e-3, 1e-2)

#: Cycle budget for post-run drain to quiescence.
DRAIN_CYCLES = 50_000


@dataclass(frozen=True)
class FaultSweepPoint:
    """One fault rate's outcome."""

    rate: float
    utilization: float
    latency_all: float
    completed: int
    injected: int
    corrected: int
    recovered: int
    failed_faults: int
    unresolved: int
    crc_retries: int
    dram_rereads: int
    watchdog_reissues: int
    failed_requests: int
    quiesced: bool
    #: The drain budget this point was given (cycles); reported whenever
    #: the point hangs so the message says what was exhausted.
    drain_budget: int = DRAIN_CYCLES

    @property
    def accounted(self) -> bool:
        """Did the ledger resolve 100% of the injected faults?"""
        return self.unresolved == 0 and (
            self.injected
            == self.corrected + self.recovered + self.failed_faults
        )

    def failure_reason(self) -> Optional[str]:
        """Why this point counts as failed, or ``None`` if healthy.

        Hung points name the rate and the exhausted drain budget;
        unaccounted points name the rate and the ledger imbalance.
        """
        if not self.quiesced:
            return (
                f"rate={self.rate:g}: hung — did not drain to quiescence "
                f"within the {self.drain_budget}-cycle drain budget"
            )
        if not self.accounted:
            resolved = self.corrected + self.recovered + self.failed_faults
            return (
                f"rate={self.rate:g}: fault ledger unaccounted — "
                f"injected={self.injected} but "
                f"corrected+recovered+failed={resolved}, "
                f"unresolved={self.unresolved}"
            )
        return None


def run_fault_point(
    rate: float,
    cycles: Optional[int] = None,
    warmup: Optional[int] = None,
    seed: int = 2010,
    app: str = "single_dtv",
    drain_cycles: int = DRAIN_CYCLES,
) -> FaultSweepPoint:
    """Simulate one fault rate on the paper's default GSS+SAGM point."""
    overrides = {}
    if cycles is not None:
        overrides["cycles"] = cycles
    if warmup is not None:
        overrides["warmup"] = warmup
    faults = FaultConfig.uniform(rate) if rate > 0.0 else None
    config = experiment_config(app=app, seed=seed, faults=faults, **overrides)
    system = build_system(config)
    metrics = system.run()
    quiesced = system.drain(drain_cycles)
    controller = system.resilience
    if controller is None:
        return FaultSweepPoint(
            rate=rate,
            utilization=metrics.utilization,
            latency_all=metrics.latency_all,
            completed=metrics.completed,
            injected=0, corrected=0, recovered=0,
            failed_faults=0, unresolved=0, crc_retries=0,
            dram_rereads=0, watchdog_reissues=0,
            failed_requests=0, quiesced=quiesced,
            drain_budget=drain_cycles,
        )
    return FaultSweepPoint(
        rate=rate,
        utilization=metrics.utilization,
        latency_all=metrics.latency_all,
        completed=metrics.completed,
        injected=controller.injected_total,
        corrected=controller.corrected,
        recovered=controller.recovered,
        failed_faults=controller.failed_faults,
        unresolved=controller.unresolved,
        crc_retries=controller.crc_retries,
        dram_rereads=controller.dram_reread_count,
        watchdog_reissues=controller.watchdog_reissues,
        failed_requests=controller.failed_requests,
        quiesced=quiesced,
        drain_budget=drain_cycles,
    )


def run_fault_sweep(
    rates: Iterable[float] = FAULT_SWEEP_RATES,
    cycles: Optional[int] = None,
    warmup: Optional[int] = None,
    seed: int = 2010,
    app: str = "single_dtv",
    drain_cycles: int = DRAIN_CYCLES,
) -> List[FaultSweepPoint]:
    """Run the sweep on the paper's default GSS+SAGM operating point."""
    return [
        run_fault_point(
            rate,
            cycles=cycles,
            warmup=warmup,
            seed=seed,
            app=app,
            drain_cycles=drain_cycles,
        )
        for rate in rates
    ]


def render(points: List[FaultSweepPoint]) -> str:
    lines = [
        "Fault-rate sweep — resilience cost on utilization and latency",
        f"{'rate':>8s} {'util':>7s} {'lat(all)':>9s} {'done':>6s} "
        f"{'inj':>6s} {'corr':>6s} {'recov':>6s} {'fail':>5s} "
        f"{'unres':>5s} {'retry':>6s} {'reread':>6s} {'failed-req':>10s}",
    ]
    for p in points:
        lines.append(
            f"{p.rate:>8g} {p.utilization:7.3f} {p.latency_all:9.1f} "
            f"{p.completed:>6d} {p.injected:>6d} {p.corrected:>6d} "
            f"{p.recovered:>6d} {p.failed_faults:>5d} {p.unresolved:>5d} "
            f"{p.crc_retries:>6d} {p.dram_rereads:>6d} "
            f"{p.failed_requests:>10d}"
            + ("" if p.quiesced else f"  [HUNG >{p.drain_budget}c]")
        )
    return "\n".join(lines)


def main() -> None:  # pragma: no cover - CLI convenience
    print(render(run_fault_sweep()))


if __name__ == "__main__":  # pragma: no cover
    main()
