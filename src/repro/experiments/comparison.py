"""Shared machinery for the Table I / Table II design comparisons,
plus the memory-arbiter comparison the scheduler seam enables: the same
(application x DDR generation) grid swept over arbiter backends instead
of NoC designs, with a WCET column pairing each backend's measured
worst-case service latency against its analytic bound (when it has one —
the DPQ arbiter's whole selling point)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from ..sim.config import DdrGeneration, NocDesign, PAPER_CLOCK_POINTS
from .report import format_table
from .runner import AveragedMetrics, DEFAULT_SEEDS, experiment_config, run_averaged

#: Metric keys reported per design in Tables I-III.
METRICS = ("utilization", "latency_all", "latency_demand")

#: The backends the arbiter comparison sweeps by default (every builtin).
DEFAULT_ARBITERS = ("engine", "memmax", "databahn", "dpq", "bank-reg")


@dataclass
class ComparisonCell:
    """One (application, clock, design) measurement."""

    app: str
    ddr: DdrGeneration
    clock_mhz: int
    design: NocDesign
    metrics: AveragedMetrics

    def value(self, metric: str) -> float:
        return getattr(self.metrics, metric)


@dataclass
class ComparisonResult:
    """All cells of one comparison plus derived averages/ratios."""

    designs: List[NocDesign]
    cells: List[ComparisonCell] = field(default_factory=list)

    def cell(self, app: str, ddr: DdrGeneration, design: NocDesign) -> ComparisonCell:
        for cell in self.cells:
            if cell.app == app and cell.ddr == ddr and cell.design == design:
                return cell
        raise KeyError((app, ddr, design))

    def averages(self) -> Dict[NocDesign, Dict[str, float]]:
        result: Dict[NocDesign, Dict[str, float]] = {}
        for design in self.designs:
            cells = [c for c in self.cells if c.design == design]
            result[design] = {
                metric: sum(c.value(metric) for c in cells) / len(cells)
                for metric in METRICS
            }
        return result

    def ratios(self, baseline: NocDesign) -> Dict[NocDesign, Dict[str, float]]:
        """The paper's 'Ratio' row: averages normalized to ``baseline``."""
        averages = self.averages()
        base = averages[baseline]
        return {
            design: {
                metric: (values[metric] / base[metric] if base[metric] else 0.0)
                for metric in METRICS
            }
            for design, values in averages.items()
        }


def run_comparison(
    designs: Sequence[NocDesign],
    priority: bool,
    cycles: int | None = None,
    warmup: int | None = None,
    seeds: Iterable[int] = DEFAULT_SEEDS,
) -> ComparisonResult:
    """Simulate every (app x DDR generation x design) cell of Section V."""
    result = ComparisonResult(designs=list(designs))
    overrides = {}
    if cycles is not None:
        overrides["cycles"] = cycles
    if warmup is not None:
        overrides["warmup"] = warmup
    for app, points in PAPER_CLOCK_POINTS.items():
        for ddr, mhz in points.items():
            for design in designs:
                config = experiment_config(
                    app=app,
                    ddr=ddr,
                    clock_mhz=mhz,
                    design=design,
                    priority_enabled=priority,
                    **overrides,
                )
                metrics = run_averaged(config, seeds=seeds)
                result.cells.append(
                    ComparisonCell(app, ddr, mhz, design, metrics)
                )
    return result


# --------------------------------------------------------------------- #
# Arbiter comparison (scheduler-seam axis)
# --------------------------------------------------------------------- #

@dataclass
class ArbiterCell:
    """One (application, clock, arbiter backend) measurement."""

    app: str
    ddr: DdrGeneration
    clock_mhz: int
    arbiter: str
    metrics: AveragedMetrics

    def value(self, metric: str) -> float:
        return getattr(self.metrics, metric)


@dataclass
class ArbiterComparisonResult:
    """All cells of one arbiter sweep at a fixed NoC design."""

    design: NocDesign
    arbiters: List[str]
    cells: List[ArbiterCell] = field(default_factory=list)

    def cell(self, app: str, ddr: DdrGeneration, arbiter: str) -> ArbiterCell:
        for cell in self.cells:
            if cell.app == app and cell.ddr == ddr and cell.arbiter == arbiter:
                return cell
        raise KeyError((app, ddr, arbiter))

    def averages(self) -> Dict[str, Dict[str, float]]:
        result: Dict[str, Dict[str, float]] = {}
        for arbiter in self.arbiters:
            cells = [c for c in self.cells if c.arbiter == arbiter]
            result[arbiter] = {
                metric: sum(c.value(metric) for c in cells) / len(cells)
                for metric in METRICS
            }
        return result

    def bound_violations(self) -> List[ArbiterCell]:
        """Cells whose measured p100 exceeds the analytic bound — must be
        empty for any correctly bounded backend."""
        return [
            cell for cell in self.cells
            if cell.metrics.wcet_bound is not None
            and cell.metrics.service_p100 > cell.metrics.wcet_bound
        ]


def run_arbiter_comparison(
    arbiters: Sequence[str] = DEFAULT_ARBITERS,
    design: NocDesign = NocDesign.GSS_SAGM,
    priority: bool = False,
    cycles: int | None = None,
    warmup: int | None = None,
    seeds: Iterable[int] = DEFAULT_SEEDS,
    apps: Optional[Sequence[str]] = None,
) -> ArbiterComparisonResult:
    """Sweep the memory-arbiter axis over the (app x DDR) grid.

    The NoC design is held fixed (default: the paper's best, GSS+SAGM)
    so the cells isolate what the *memory-side* arbiter contributes —
    the "how does application-aware NoC arbitration fare against newer
    SDRAM arbiters" question.  ``apps`` restricts the application rows
    (the CI smoke job runs a single app).
    """
    result = ArbiterComparisonResult(design=design, arbiters=list(arbiters))
    overrides = {}
    if cycles is not None:
        overrides["cycles"] = cycles
    if warmup is not None:
        overrides["warmup"] = warmup
    for app, points in PAPER_CLOCK_POINTS.items():
        if apps is not None and app not in apps:
            continue
        for ddr, mhz in points.items():
            for arbiter in arbiters:
                config = experiment_config(
                    app=app,
                    ddr=ddr,
                    clock_mhz=mhz,
                    design=design,
                    priority_enabled=priority,
                    arbiter=arbiter,
                    **overrides,
                )
                metrics = run_averaged(config, seeds=seeds)
                result.cells.append(
                    ArbiterCell(app, ddr, mhz, arbiter, metrics)
                )
    return result


def render_arbiter_comparison(
    result: ArbiterComparisonResult,
    title: str = "Memory-arbiter comparison",
) -> str:
    """Text table: per-point utilization/latency per backend, then the
    WCET columns — measured p100 service latency vs. analytic bound
    ("—" for backends with no bound)."""
    headers = ["Application", "Clock"]
    for arbiter in result.arbiters:
        headers.append(f"{arbiter}:util")
        headers.append(f"{arbiter}:lat")
        headers.append(f"{arbiter}:p100")
        headers.append(f"{arbiter}:wcet")
    rows: List[List[object]] = []
    for app, points in PAPER_CLOCK_POINTS.items():
        for ddr, mhz in points.items():
            try:
                cells = {
                    arbiter: result.cell(app, ddr, arbiter)
                    for arbiter in result.arbiters
                }
            except KeyError:
                continue  # app filtered out of this sweep
            row: List[object] = [app, f"{mhz}MHz/{ddr.value}"]
            for arbiter in result.arbiters:
                cell = cells[arbiter]
                row.append(cell.metrics.utilization)
                row.append(cell.metrics.latency_all)
                row.append(cell.metrics.service_p100)
                bound = cell.metrics.wcet_bound
                row.append("—" if bound is None else bound)
            rows.append(row)
    table = format_table(
        f"{title} (design: {result.design.value})", headers, rows
    )
    violations = result.bound_violations()
    if violations:
        lines = [table, "", "BOUND VIOLATIONS:"]
        for cell in violations:
            lines.append(
                f"  {cell.app}/{cell.ddr.value}@{cell.clock_mhz}MHz/"
                f"{cell.arbiter}: p100 {cell.metrics.service_p100:.0f} > "
                f"bound {cell.metrics.wcet_bound:.0f}"
            )
        return "\n".join(lines)
    return table
