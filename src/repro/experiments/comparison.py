"""Shared machinery for the Table I / Table II design comparisons."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence

from ..sim.config import DdrGeneration, NocDesign, PAPER_CLOCK_POINTS
from .runner import AveragedMetrics, DEFAULT_SEEDS, experiment_config, run_averaged

#: Metric keys reported per design in Tables I-III.
METRICS = ("utilization", "latency_all", "latency_demand")


@dataclass
class ComparisonCell:
    """One (application, clock, design) measurement."""

    app: str
    ddr: DdrGeneration
    clock_mhz: int
    design: NocDesign
    metrics: AveragedMetrics

    def value(self, metric: str) -> float:
        return getattr(self.metrics, metric)


@dataclass
class ComparisonResult:
    """All cells of one comparison plus derived averages/ratios."""

    designs: List[NocDesign]
    cells: List[ComparisonCell] = field(default_factory=list)

    def cell(self, app: str, ddr: DdrGeneration, design: NocDesign) -> ComparisonCell:
        for cell in self.cells:
            if cell.app == app and cell.ddr == ddr and cell.design == design:
                return cell
        raise KeyError((app, ddr, design))

    def averages(self) -> Dict[NocDesign, Dict[str, float]]:
        result: Dict[NocDesign, Dict[str, float]] = {}
        for design in self.designs:
            cells = [c for c in self.cells if c.design == design]
            result[design] = {
                metric: sum(c.value(metric) for c in cells) / len(cells)
                for metric in METRICS
            }
        return result

    def ratios(self, baseline: NocDesign) -> Dict[NocDesign, Dict[str, float]]:
        """The paper's 'Ratio' row: averages normalized to ``baseline``."""
        averages = self.averages()
        base = averages[baseline]
        return {
            design: {
                metric: (values[metric] / base[metric] if base[metric] else 0.0)
                for metric in METRICS
            }
            for design, values in averages.items()
        }


def run_comparison(
    designs: Sequence[NocDesign],
    priority: bool,
    cycles: int | None = None,
    warmup: int | None = None,
    seeds: Iterable[int] = DEFAULT_SEEDS,
) -> ComparisonResult:
    """Simulate every (app x DDR generation x design) cell of Section V."""
    result = ComparisonResult(designs=list(designs))
    overrides = {}
    if cycles is not None:
        overrides["cycles"] = cycles
    if warmup is not None:
        overrides["warmup"] = warmup
    for app, points in PAPER_CLOCK_POINTS.items():
        for ddr, mhz in points.items():
            for design in designs:
                config = experiment_config(
                    app=app,
                    ddr=ddr,
                    clock_mhz=mhz,
                    design=design,
                    priority_enabled=priority,
                    **overrides,
                )
                metrics = run_averaged(config, seeds=seeds)
                result.cells.append(
                    ComparisonCell(app, ddr, mhz, design, metrics)
                )
    return result
