"""Table II — comparison with priority memory requests.

CPU demand requests are served as priority packets.  The paper compares
CONV+PFS, [4]+PFS, GSS, and GSS+SAGM; the ratio row is normalized to the
*Table I* [4] baseline, so this module also runs plain [4] without
priority for the normalization, exactly as the paper does ("the ratio is
based on [4] in Table I").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable

from ..sim.config import NocDesign
from .comparison import ComparisonResult, METRICS, run_comparison
from .runner import DEFAULT_SEEDS
from .table1 import render as _render_shared

TABLE2_DESIGNS = [
    NocDesign.CONV_PFS,
    NocDesign.SDRAM_AWARE_PFS,
    NocDesign.GSS,
    NocDesign.GSS_SAGM,
]


@dataclass
class Table2Result:
    """Table II measurements plus the Table I [4] normalization point."""

    comparison: ComparisonResult
    baseline_averages: Dict[str, float]  # [4] without priority (Table I)

    def ratios(self) -> Dict[NocDesign, Dict[str, float]]:
        averages = self.comparison.averages()
        return {
            design: {
                metric: (
                    values[metric] / self.baseline_averages[metric]
                    if self.baseline_averages[metric]
                    else 0.0
                )
                for metric in METRICS
            }
            for design, values in averages.items()
        }


def run_table2(
    cycles: int | None = None,
    warmup: int | None = None,
    seeds: Iterable[int] = DEFAULT_SEEDS,
) -> Table2Result:
    """Regenerate Table II's measurements."""
    comparison = run_comparison(
        TABLE2_DESIGNS, priority=True, cycles=cycles, warmup=warmup, seeds=seeds
    )
    baseline = run_comparison(
        [NocDesign.SDRAM_AWARE], priority=False,
        cycles=cycles, warmup=warmup, seeds=seeds,
    )
    return Table2Result(
        comparison=comparison,
        baseline_averages=baseline.averages()[NocDesign.SDRAM_AWARE],
    )


def render(result: Table2Result) -> str:
    """Paper-style text table (ratio row vs Table I's [4])."""
    body = _render_shared(
        result.comparison, title="Table II — with priority memory request"
    )
    ratio_lines = ["Ratio vs Table I [4]:"]
    for design, values in result.ratios().items():
        ratio_lines.append(
            f"  {design.value:16s} "
            + "  ".join(f"{metric}={values[metric]:.3f}" for metric in METRICS)
        )
    return body + "\n" + "\n".join(ratio_lines)


def main() -> None:  # pragma: no cover - CLI convenience
    print(render(run_table2()))


if __name__ == "__main__":  # pragma: no cover
    main()
