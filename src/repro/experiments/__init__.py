"""Experiment drivers regenerating every table and figure of Section V."""

from .controlled import ControlledResult, capture_trace, run_controlled
from .export import export_all
from .spread import MetricSpread, measure_spread
from .comparison import ComparisonCell, ComparisonResult, METRICS, run_comparison
from .fault_sweep import (
    DRAIN_CYCLES,
    FAULT_SWEEP_RATES,
    FaultSweepPoint,
    run_fault_point,
    run_fault_sweep,
)
from .fig8 import FIG8_POINTS, Fig8Curve, knee_index, run_fig8
from .runner import (
    AveragedMetrics,
    DEFAULT_CYCLES,
    DEFAULT_SEEDS,
    DEFAULT_WARMUP,
    active_store,
    cached_runs,
    experiment_config,
    run_averaged,
    run_once,
)
from .table1 import TABLE1_DESIGNS, run_table1
from .table2 import TABLE2_DESIGNS, Table2Result, run_table2
from .table3 import TABLE3_POINTS, Table3Row, run_table3
from .table4 import run_table4
from .table5 import run_table5

__all__ = [
    "AveragedMetrics",
    "ComparisonCell",
    "ControlledResult",
    "capture_trace",
    "export_all",
    "MetricSpread",
    "measure_spread",
    "run_controlled",
    "ComparisonResult",
    "DEFAULT_CYCLES",
    "DEFAULT_SEEDS",
    "DEFAULT_WARMUP",
    "DRAIN_CYCLES",
    "FAULT_SWEEP_RATES",
    "FaultSweepPoint",
    "FIG8_POINTS",
    "Fig8Curve",
    "METRICS",
    "TABLE1_DESIGNS",
    "TABLE2_DESIGNS",
    "TABLE3_POINTS",
    "Table2Result",
    "Table3Row",
    "active_store",
    "cached_runs",
    "experiment_config",
    "knee_index",
    "run_averaged",
    "run_comparison",
    "run_fault_point",
    "run_fault_sweep",
    "run_fig8",
    "run_once",
    "run_table1",
    "run_table2",
    "run_table3",
    "run_table4",
    "run_table5",
]
