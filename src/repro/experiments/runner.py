"""Experiment runner: simulate configurations and aggregate metrics.

The paper simulates each configuration for one million cycles of Verilog
RTL; a pure-Python cycle-level model is ~10^3x slower, so the default here
is 20 000 cycles with a 3 000-cycle warmup, optionally averaged over
several workload seeds.  The reported metrics are time-averages that are
stable well below that horizon; ``EXPERIMENTS.md`` records the residual
run-to-run spread.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import asdict, dataclass
from typing import Iterable, List, Optional, Sequence

from ..core.system import build_system
from ..sim.config import SystemConfig
from ..sim.records import RunResult
from ..sim.stats import RunMetrics

#: Default experiment horizon (cycles) and warmup.
DEFAULT_CYCLES = 20_000
DEFAULT_WARMUP = 3_000
DEFAULT_SEEDS = (2010, 2011)


@dataclass(frozen=True)
class AveragedMetrics:
    """Seed-averaged metrics for one configuration.

    The WCET pair aggregates by *max*, not mean: ``service_p100`` is the
    worst service latency observed across the seeds, and ``wcet_bound``
    the largest analytic bound any seed reported (``None`` when the
    backend has no bound) — a bound that held per-seed must hold for the
    maxima too, so the pair stays directly comparable.
    """

    utilization: float
    raw_utilization: float
    latency_all: float
    latency_demand: float
    completed: float
    row_hit_rate: float
    runs: int
    service_p100: float = 0.0
    wcet_bound: Optional[float] = None

    @classmethod
    def from_runs(cls, runs: Sequence[RunMetrics]) -> "AveragedMetrics":
        if not runs:
            raise ValueError("no runs to average")
        n = len(runs)
        bounds = [r.wcet_bound for r in runs if r.wcet_bound is not None]
        return cls(
            utilization=sum(r.utilization for r in runs) / n,
            raw_utilization=sum(r.raw_utilization for r in runs) / n,
            latency_all=sum(r.latency_all for r in runs) / n,
            latency_demand=sum(r.latency_demand for r in runs) / n,
            completed=sum(r.completed for r in runs) / n,
            row_hit_rate=sum(r.row_hit_rate for r in runs) / n,
            runs=n,
            service_p100=max((r.service_p100 for r in runs), default=0.0),
            wcet_bound=max(bounds) if bounds else None,
        )


#: When set (via :func:`cached_runs`), every :func:`run_once` consults
#: this content-addressed store before simulating — the seam that makes
#: a second ``repro all`` near-instant.
_ACTIVE_STORE = None


@contextmanager
def cached_runs(store):
    """Serve :func:`run_once` from ``store`` within the block.

    ``store`` is a :class:`repro.sweep.store.ResultStore`; results are
    addressed by the same ``metrics``-job key the sweep orchestrator
    uses, so exhibits and sweeps share one cache.  Metrics round-trip
    through JSON exactly (Python floats are repr-round-trip stable), so
    a cache hit is bit-identical to a fresh simulation.
    """
    global _ACTIVE_STORE
    previous = _ACTIVE_STORE
    _ACTIVE_STORE = store
    try:
        yield store
    finally:
        _ACTIVE_STORE = previous


def active_store():
    """The store :func:`run_once` currently consults, if any."""
    return _ACTIVE_STORE


def run_once(config: SystemConfig) -> RunResult:
    """Build and simulate one configuration.

    Inside a :func:`cached_runs` block, a configuration whose result is
    already stored is served from the store without simulating; a fresh
    result is stored on the way out.
    """
    store = _ACTIVE_STORE
    if store is None:
        system = build_system(config)
        return RunResult(config=config, metrics=system.run())
    # Imported lazily: repro.sweep imports this module for the
    # experiment defaults.
    from ..sweep.runners import metrics_job
    from ..sweep.store import make_record

    job = metrics_job(config)
    record = store.get(job.key)
    if record is not None and record.get("status") == "ok":
        return RunResult(
            config=config, metrics=RunMetrics(**record["result"])
        )
    started = time.perf_counter()
    system = build_system(config)
    metrics = system.run()
    store.put(
        make_record(
            job,
            status="ok",
            result=asdict(metrics),
            elapsed_s=time.perf_counter() - started,
        )
    )
    return RunResult(config=config, metrics=metrics)


def run_averaged(
    config: SystemConfig,
    seeds: Iterable[int] = DEFAULT_SEEDS,
) -> AveragedMetrics:
    """Run ``config`` once per seed and average the headline metrics."""
    runs: List[RunMetrics] = []
    for seed in seeds:
        runs.append(run_once(config.with_(seed=seed)).metrics)
    return AveragedMetrics.from_runs(runs)


def experiment_config(**overrides) -> SystemConfig:
    """A SystemConfig with the experiment-default horizon applied."""
    overrides.setdefault("cycles", DEFAULT_CYCLES)
    overrides.setdefault("warmup", DEFAULT_WARMUP)
    return SystemConfig(**overrides)
