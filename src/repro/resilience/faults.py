"""Deterministic seeded fault injection.

:class:`FaultInjector` is the single source of every fault in a run.  It
draws from one independent :class:`random.Random` stream per
:class:`FaultSite` (derived with :func:`repro.sim.rng.derive_rng` from the
fault seed), so enabling one fault class never perturbs the sample
sequence — and therefore the injected fault pattern — of another, and the
same seed always reproduces the same faults cycle for cycle.

Fault model
-----------

* **Link corruption / drop** — sampled per flit-hop as a flit commits onto
  an inter-router (or router-to-NI) link.  Both poison the carrying
  packet: the flit still traverses and still consumes buffer space and
  credits (so wormhole bookkeeping and credit conservation are
  untouched), but the packet arrives with a failing CRC at the endpoint
  NI, which discards it and NACKs (see
  :class:`~repro.resilience.protection.ResilienceController`).  A *drop*
  is the lost-flit case — the CRC length check fails; a *corrupt* is a
  payload bit error.  They are counted separately but recovered the same
  way.
* **Buffer bit flip** — once per cycle at most: an SEU strikes a randomly
  chosen router input-buffer cell; if a flit currently occupies it, the
  resident packet is poisoned the same way.
* **SDRAM bit error** — sampled per read burst when the memory subsystem
  completes it: with probability ``sdram_bit_rate`` the burst carries an
  error, which is double-bit (detected but uncorrectable by SEC-DED, so
  the controller re-reads) with probability ``sdram_double_bit_fraction``
  and single-bit (corrected in flight) otherwise.

Besides the rates, a scripted ``schedule`` of :class:`ScheduledFault`
entries forces specific faults at specific cycles — the tool for unit
tests and directed what-if experiments.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..obs.events import EventType
from ..sim.config import ConfigError
from ..sim.rng import derive_rng


class FaultSite(enum.Enum):
    """Where a fault strikes."""

    LINK_CORRUPT = "link-corrupt"   # payload bit error on a link flit
    LINK_DROP = "link-drop"         # link flit lost (CRC length failure)
    BUFFER_FLIP = "buffer-flip"     # SEU in a router input-buffer cell
    SDRAM_BIT = "sdram-bit"         # bit error in SDRAM read data


@dataclass(frozen=True)
class ScheduledFault:
    """One scripted fault: fire ``site`` at ``cycle``.

    ``node`` restricts link / buffer faults to one router (``None`` = the
    first opportunity anywhere).  ``bits`` sets the error weight of an
    ``SDRAM_BIT`` fault (1 = correctable, >=2 = uncorrectable).
    """

    cycle: int
    site: FaultSite
    node: Optional[int] = None
    bits: int = 1

    def __post_init__(self) -> None:
        if self.cycle < 0:
            raise ConfigError("schedule", f"fault cycle must be >= 0, got {self.cycle}")
        if not isinstance(self.site, FaultSite):
            raise ConfigError("schedule", f"unknown fault site {self.site!r}")
        if self.bits < 1:
            raise ConfigError("schedule", f"fault bits must be >= 1, got {self.bits}")


def _rate(name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise ConfigError(name, f"rate must be within [0, 1], got {value}")


@dataclass(frozen=True)
class FaultConfig:
    """Fault rates, a scripted schedule, and the protection knobs.

    Rates are per sampling opportunity: per flit-hop for the link rates,
    per cycle for ``buffer_flip_rate``, per read burst for
    ``sdram_bit_rate``.  A config with every rate zero and an empty
    schedule still builds the full protection stack — useful for
    measuring its overhead — while ``SystemConfig.faults = None`` builds
    nothing at all.
    """

    link_corrupt_rate: float = 0.0
    link_drop_rate: float = 0.0
    buffer_flip_rate: float = 0.0
    sdram_bit_rate: float = 0.0
    #: Of the SDRAM errors, the fraction that are double-bit (detected
    #: but uncorrectable by SEC-DED; the controller re-reads the burst).
    sdram_double_bit_fraction: float = 0.1
    #: Scripted faults, fired in addition to the rate-driven ones.
    schedule: Tuple[ScheduledFault, ...] = ()
    #: Fault-stream seed; ``None`` derives from ``SystemConfig.seed`` so
    #: the fault pattern follows the run seed by default.
    seed: Optional[int] = None
    # --- protection knobs ------------------------------------------------ #
    #: CRC NACK retransmissions per packet before the request is failed.
    crc_retry_limit: int = 8
    #: Exponential backoff: retransmit ``n`` waits
    #: ``min(cap, base * 2**(n-1))`` cycles after the NACK.
    retry_backoff_base: int = 4
    retry_backoff_cap: int = 64
    #: SDRAM re-reads of an uncorrectable burst before the request fails.
    dram_retry_limit: int = 4
    #: Cycles a request may stay outstanding before the watchdog re-issues
    #: it; must dominate worst-case queueing latency or healthy requests
    #: get duplicated.
    watchdog_timeout: int = 4096
    #: Watchdog re-issues per request before it is surfaced as failed.
    watchdog_retry_limit: int = 2
    #: Packet-age bound enforced by the invariant checker (livelock /
    #: deadlock detection).
    max_packet_age: int = 16384

    def __post_init__(self) -> None:
        _rate("link_corrupt_rate", self.link_corrupt_rate)
        _rate("link_drop_rate", self.link_drop_rate)
        _rate("buffer_flip_rate", self.buffer_flip_rate)
        _rate("sdram_bit_rate", self.sdram_bit_rate)
        _rate("sdram_double_bit_fraction", self.sdram_double_bit_fraction)
        if not isinstance(self.schedule, tuple):
            raise ConfigError(
                "schedule",
                f"schedule must be a tuple of ScheduledFault, got {type(self.schedule).__name__}",
            )
        for entry in self.schedule:
            if not isinstance(entry, ScheduledFault):
                raise ConfigError("schedule", f"expected a ScheduledFault, got {entry!r}")
        if self.crc_retry_limit < 1:
            raise ConfigError(
                "crc_retry_limit", f"retry limit must be >= 1, got {self.crc_retry_limit}"
            )
        if self.retry_backoff_base < 1:
            raise ConfigError(
                "retry_backoff_base", f"backoff base must be >= 1, got {self.retry_backoff_base}"
            )
        if self.retry_backoff_cap < self.retry_backoff_base:
            raise ConfigError(
                "retry_backoff_cap",
                f"backoff cap {self.retry_backoff_cap} is below the base "
                f"{self.retry_backoff_base}",
            )
        if self.dram_retry_limit < 1:
            raise ConfigError(
                "dram_retry_limit", f"retry limit must be >= 1, got {self.dram_retry_limit}"
            )
        if self.watchdog_timeout < 1:
            raise ConfigError(
                "watchdog_timeout", f"timeout must be >= 1, got {self.watchdog_timeout}"
            )
        if self.watchdog_retry_limit < 0:
            raise ConfigError(
                "watchdog_retry_limit",
                f"retry limit must be >= 0, got {self.watchdog_retry_limit}",
            )
        if self.max_packet_age < 1:
            raise ConfigError(
                "max_packet_age", f"age bound must be >= 1, got {self.max_packet_age}"
            )

    @classmethod
    def uniform(cls, rate: float, **overrides) -> "FaultConfig":
        """A one-knob mixed-fault profile scaled by ``rate``.

        Link corruption carries the full rate; drops, buffer flips, and
        SDRAM errors scale down with it, roughly matching the relative
        event frequencies of a real system (soft bit errors dominate).
        """
        _rate("rate", rate)
        defaults = dict(
            link_corrupt_rate=rate,
            link_drop_rate=rate / 4.0,
            buffer_flip_rate=rate / 8.0,
            sdram_bit_rate=rate,
        )
        defaults.update(overrides)
        return cls(**defaults)

    def backoff(self, attempt: int) -> int:
        """Cycles to wait before retransmission ``attempt`` (1-based)."""
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        return min(self.retry_backoff_cap, self.retry_backoff_base << (attempt - 1))

    @property
    def any_faults(self) -> bool:
        return bool(self.schedule) or any(
            r > 0.0
            for r in (
                self.link_corrupt_rate,
                self.link_drop_rate,
                self.buffer_flip_rate,
                self.sdram_bit_rate,
            )
        )


class FaultInjector:
    """Samples and applies faults; the only source of randomness here.

    One RNG stream per :class:`FaultSite` keeps fault classes
    independent; all streams derive from a single root seed, so runs are
    reproducible end to end.  ``enabled`` gates all rate-driven sampling
    (the drain phase of a run switches it off to let the system reach
    quiescence).
    """

    def __init__(self, config: FaultConfig, seed: int, tracer=None) -> None:
        self.config = config
        root = config.seed if config.seed is not None else seed
        self._rngs = {site: derive_rng(root, "fault", site.value) for site in FaultSite}
        self.tracer = tracer
        self.enabled = True
        self.network = None
        self.injected: Dict[FaultSite, int] = {site: 0 for site in FaultSite}
        self._schedule: List[ScheduledFault] = sorted(
            config.schedule, key=lambda f: f.cycle
        )
        self._schedule_pos = 0
        # Scheduled faults armed and waiting for their next opportunity.
        self._forced_link: List[ScheduledFault] = []
        self._forced_sdram: List[ScheduledFault] = []

    def attach_network(self, network) -> None:
        """Give the injector access to router buffers (buffer flips)."""
        self.network = network

    @property
    def total_injected(self) -> int:
        return sum(self.injected.values())

    # ------------------------------------------------------------------ #
    # Per-cycle sampling
    # ------------------------------------------------------------------ #

    def tick(self, cycle: int) -> None:
        """Arm this cycle's scheduled faults and sample buffer flips."""
        while (
            self._schedule_pos < len(self._schedule)
            and self._schedule[self._schedule_pos].cycle <= cycle
        ):
            fault = self._schedule[self._schedule_pos]
            self._schedule_pos += 1
            if fault.site in (FaultSite.LINK_CORRUPT, FaultSite.LINK_DROP):
                self._forced_link.append(fault)
            elif fault.site is FaultSite.SDRAM_BIT:
                self._forced_sdram.append(fault)
            else:
                self._flip_buffer(cycle, fault.node)
        rate = self.config.buffer_flip_rate
        if rate > 0.0 and self.enabled:
            if self._rngs[FaultSite.BUFFER_FLIP].random() < rate:
                self._flip_buffer(cycle, None)

    def _flip_buffer(self, cycle: int, node: Optional[int]) -> None:
        """An SEU strikes one random input-buffer cell of one router."""
        if self.network is None:
            return
        rng = self._rngs[FaultSite.BUFFER_FLIP]
        routers = self.network.routers
        router = routers[node] if node is not None else rng.choice(routers)
        buffers = [b for lanes in router.inputs.values() for b in lanes]
        buffer = rng.choice(buffers)
        occupied = [e for e in buffer.entries if e.resident_flits > 0]
        if not occupied:
            return  # the struck cell held no flit: the flip is masked
        entry = rng.choice(occupied)
        self._poison(cycle, FaultSite.BUFFER_FLIP, router.node, None, entry.packet)

    # ------------------------------------------------------------------ #
    # Link flits
    # ------------------------------------------------------------------ #

    def on_link_flit(self, cycle: int, node: int, port, packet) -> None:
        """One flit of ``packet`` commits onto the link out of ``node``."""
        if self._forced_link:
            for index, fault in enumerate(self._forced_link):
                if fault.node is None or fault.node == node:
                    del self._forced_link[index]
                    self._poison(cycle, fault.site, node, port, packet)
                    break
        if not self.enabled:
            return
        config = self.config
        if config.link_corrupt_rate > 0.0:
            if self._rngs[FaultSite.LINK_CORRUPT].random() < config.link_corrupt_rate:
                self._poison(cycle, FaultSite.LINK_CORRUPT, node, port, packet)
        if config.link_drop_rate > 0.0:
            if self._rngs[FaultSite.LINK_DROP].random() < config.link_drop_rate:
                self._poison(cycle, FaultSite.LINK_DROP, node, port, packet)

    def _poison(self, cycle: int, site: FaultSite, node, port, packet) -> None:
        packet.corrupted = True
        packet.fault_bits += 1
        self.injected[site] += 1
        tracer = self.tracer
        if tracer:
            request = packet.request
            tracer.emit(
                EventType.FAULT,
                cycle,
                f"router{node}" if node is not None else "fabric",
                packet_id=packet.packet_id,
                request_id=(request.request_id if request is not None else None),
                site=site.value,
                port=(port.name if port is not None else None),
            )

    # ------------------------------------------------------------------ #
    # SDRAM read data
    # ------------------------------------------------------------------ #

    def sdram_read_bits(self, cycle: int, request) -> int:
        """Error bits carried by this read burst (0 = clean)."""
        if self._forced_sdram:
            fault = self._forced_sdram.pop(0)
            self.injected[FaultSite.SDRAM_BIT] += 1
            self._trace_sdram(cycle, request, fault.bits)
            return fault.bits
        rate = self.config.sdram_bit_rate
        if rate <= 0.0 or not self.enabled:
            return 0
        rng = self._rngs[FaultSite.SDRAM_BIT]
        if rng.random() >= rate:
            return 0
        bits = 2 if rng.random() < self.config.sdram_double_bit_fraction else 1
        self.injected[FaultSite.SDRAM_BIT] += 1
        self._trace_sdram(cycle, request, bits)
        return bits

    def _trace_sdram(self, cycle: int, request, bits: int) -> None:
        tracer = self.tracer
        if tracer:
            tracer.emit(
                EventType.FAULT,
                cycle,
                "sdram",
                request_id=request.request_id,
                site=FaultSite.SDRAM_BIT.value,
                bits=bits,
            )
