"""Fault injection and resilience.

The paper's GSS/SAGM pipeline guarantees SDRAM service over a *perfect*
fabric; this package supplies the failure half of that contract:

* :mod:`repro.resilience.faults` — a deterministic, seeded
  :class:`FaultInjector` that corrupts or drops flits on links, flips bits
  in router input buffers, and injects SDRAM data errors, driven by
  per-site rates or a scripted schedule;
* :mod:`repro.resilience.protection` — the :class:`ResilienceController`:
  link-level CRC with NACK-triggered retransmission and bounded
  exponential backoff at the network interfaces, DRAM re-reads on
  uncorrectable ECC errors, and the fault ledger that accounts for every
  injected fault (corrected / recovered / failed / pending);
* :mod:`repro.resilience.watchdog` — a per-request watchdog that re-issues
  timed-out requests up to a cap, then surfaces them as failed instead of
  hanging the simulation;
* :mod:`repro.resilience.invariants` — a live :class:`InvariantChecker`
  simulator hook asserting GSS token conservation, link credit
  conservation, and a packet-age (livelock/deadlock) bound.

Everything here is opt-in: with ``SystemConfig.faults`` left ``None`` no
resilience object is built and simulation results are bit-identical to a
system without this package.
"""

from .faults import FaultConfig, FaultInjector, FaultSite, ScheduledFault
from .invariants import InvariantChecker, InvariantViolation
from .protection import ResilienceController
from .watchdog import RequestWatchdog

__all__ = [
    "FaultConfig",
    "FaultInjector",
    "FaultSite",
    "InvariantChecker",
    "InvariantViolation",
    "RequestWatchdog",
    "ResilienceController",
    "ScheduledFault",
]
