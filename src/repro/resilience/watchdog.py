"""Per-request watchdog: re-issue timed-out requests, then fail them.

The CRC/NACK and ECC re-read paths recover from every fault they can
*see*.  The watchdog is the backstop for everything they cannot: it
scans each core NI's outstanding (reassembly) trackers and, when a
request has made no progress — no part response accepted — for
``watchdog_timeout`` cycles, re-issues the whole request: the tracker's
retry epoch is bumped and every part packet is rebuilt and re-injected.
Responses still in flight from the previous issue carry the old epoch
and are dropped as stale at the core NI.  After
``watchdog_retry_limit`` re-issues the request is surfaced as *failed*
through the :class:`~repro.resilience.protection.ResilienceController`
instead of hanging the simulation.
"""

from __future__ import annotations

import logging
from typing import Callable, Dict, List, Optional

from .faults import FaultConfig
from .protection import ResilienceController

logger = logging.getLogger(__name__)

#: Tracker-scan stride in cycles: timeouts are detected within one
#: interval of expiring, a rounding the timeout knob dwarfs.
CHECK_INTERVAL = 64


class RequestWatchdog:
    """Simulator component; must tick *after* the core NIs."""

    def __init__(
        self,
        controller: ResilienceController,
        core_interfaces: List[object],
        config: FaultConfig,
    ) -> None:
        self.controller = controller
        self.core_interfaces = core_interfaces
        self.config = config
        self._reissues: Dict[int, int] = {}  # parent id -> re-issue count
        #: Post-mortem hook, called as ``on_hang(cycle, parent, master)``
        #: the moment a request exhausts its re-issue budget (a detected
        #: hang).  The CLI wires this to a checkpoint dump so the hung
        #: state can be inspected offline.  Never load-bearing: a raising
        #: hook is logged and swallowed, and the hook is process-local
        #: (dropped from snapshots — re-attach after restore).
        self.on_hang: Optional[Callable[[int, int, int], None]] = None

    def __getstate__(self):
        state = self.__dict__.copy()
        state["on_hang"] = None
        return state

    def is_idle(self, cycle: int) -> bool:
        """No-op cycles: off the scan stride, or nothing outstanding to
        judge.  Purely reactive — while any request *is* outstanding its
        core NI reports non-idle, so fast-forward never jumps a deadline."""
        if cycle % CHECK_INTERVAL != 0:
            return True
        return not any(
            interface._reassembly for interface in self.core_interfaces
        )

    def wake_at(self) -> None:
        return None

    def event_wake_at(self, cycle: int) -> int:
        """Self-arm every scan stride: under event dispatch a core NI can
        sleep with reassembly outstanding (it is only woken by events), so
        the watchdog cannot rely on anyone else keeping time for its
        deadline checks — it ticks once per CHECK_INTERVAL regardless."""
        return cycle + CHECK_INTERVAL - (cycle % CHECK_INTERVAL)

    def tick(self, cycle: int) -> None:
        if cycle % CHECK_INTERVAL != 0:
            return
        timeout = self.config.watchdog_timeout
        for interface in self.core_interfaces:
            # Snapshot: re-issue/failure mutates the tracker dict.
            expired = [
                parent
                for parent, tracker in interface._reassembly.items()
                if cycle - tracker.last_activity > timeout
            ]
            for parent in expired:
                attempts = self._reissues.get(parent, 0)
                if attempts >= self.config.watchdog_retry_limit:
                    self.controller.fail_request(
                        cycle,
                        parent,
                        interface.generator.master,
                        reason="watchdog",
                    )
                    self._reissues.pop(parent, None)
                    if self.on_hang is not None:
                        try:
                            self.on_hang(
                                cycle, parent, interface.generator.master
                            )
                        except Exception:  # noqa: BLE001 - never load-bearing
                            logger.exception(
                                "watchdog on_hang hook failed "
                                "(request %d, cycle %d)", parent, cycle
                            )
                else:
                    self._reissues[parent] = attempts + 1
                    interface.reissue(parent, cycle)
                    self.controller.on_watchdog_reissue(
                        cycle, parent, interface.generator.master
                    )
