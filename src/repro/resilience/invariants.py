"""Live structural invariants, checked while the system runs.

The :class:`InvariantChecker` is a simulator ``on_cycle`` hook that
audits the end-of-cycle state of the whole fabric:

* **credit conservation** — every input buffer's flit occupancy is
  within its capacity and every entry's ``sent``/``received`` counters
  are mutually consistent (a violated credit loop is how a wormhole
  fabric corrupts itself silently);
* **token conservation** — every packet a GSS token table tracks is
  actually resident in that router, every resident, registered
  memory-request packet is tracked by the controller of its route, and
  all token counts stay within Algorithm 1's ``1..MAX_TOKENS`` band;
* **packet-age bound** — no resident packet is older than
  ``max_packet_age`` cycles: the livelock/deadlock detector.  When a
  recording tracer is attached, the raised
  :class:`InvariantViolation` carries the offending packet's lifecycle
  trail (via :mod:`repro.obs`) so the stall is debuggable post mortem.

Packets that arrived in the current cycle sit in a buffer's pending
registration list until the next plan phase; the token checks treat them
as exempt rather than flagging the one-cycle registration latency.
"""

from __future__ import annotations

from typing import List, Optional, Set

from ..core.tokens import MAX_TOKENS


class InvariantViolation(AssertionError):
    """A structural invariant failed at the end of a cycle."""

    def __init__(self, kind: str, cycle: int, detail: str) -> None:
        super().__init__(f"[{kind} @cycle {cycle}] {detail}")
        self.kind = kind
        self.cycle = cycle
        self.detail = detail


#: Events included in a violation's lifecycle dump.
_DUMP_EVENTS = 20


class InvariantChecker:
    """End-of-cycle auditor for buffers, token tables, and packet age."""

    def __init__(
        self,
        network,
        max_packet_age: int = 16384,
        interval: int = 64,
        tracer=None,
    ) -> None:
        if interval < 1:
            raise ValueError("interval must be >= 1")
        if max_packet_age < 1:
            raise ValueError("max_packet_age must be >= 1")
        self.network = network
        self.max_packet_age = max_packet_age
        self.interval = interval
        self.tracer = tracer
        self.checks_run = 0

    def attach(self, simulator) -> None:
        simulator.on_cycle(self.on_cycle)

    def on_cycle(self, cycle: int) -> None:
        if cycle % self.interval != 0:
            return
        self.check(cycle)

    # ------------------------------------------------------------------ #

    def check(self, cycle: int) -> None:
        """Audit the fabric now; raise :class:`InvariantViolation`."""
        self.checks_run += 1
        for router in self.network.routers:
            self._check_buffers(cycle, router)
            self._check_tokens(cycle, router)
        for node, sink in self.network.local_sinks.items():
            self._check_buffer(cycle, f"sink{node}", sink)

    # ------------------------------------------------------------------ #
    # Credit conservation
    # ------------------------------------------------------------------ #

    def _check_buffers(self, cycle: int, router) -> None:
        for port, lanes in router.inputs.items():
            for lane, buffer in enumerate(lanes):
                self._check_buffer(
                    cycle, f"router{router.node}.{port.name}[{lane}]", buffer
                )

    def _check_buffer(self, cycle: int, where: str, buffer) -> None:
        occupancy = buffer.occupancy_flits
        if not 0 <= occupancy <= buffer.capacity_flits:
            raise InvariantViolation(
                "credit",
                cycle,
                f"{where}: occupancy {occupancy} outside "
                f"[0, {buffer.capacity_flits}]",
            )
        if buffer._reserved_slots < 0:
            raise InvariantViolation(
                "credit", cycle, f"{where}: negative reserved slots"
            )
        for entry in buffer.entries:
            packet = entry.packet
            if not 0 <= entry.sent <= entry.received <= packet.size_flits:
                raise InvariantViolation(
                    "credit",
                    cycle,
                    f"{where}: {packet} counters sent={entry.sent} "
                    f"received={entry.received} size={packet.size_flits}",
                )
            age = cycle - packet.created_cycle
            if age > self.max_packet_age:
                raise InvariantViolation(
                    "packet-age",
                    cycle,
                    f"{where}: {packet} resident for {age} cycles "
                    f"(bound {self.max_packet_age}) — livelock or deadlock"
                    + self._lifecycle_dump(packet),
                )

    # ------------------------------------------------------------------ #
    # Token conservation
    # ------------------------------------------------------------------ #

    def _check_tokens(self, cycle: int, router) -> None:
        resident: Set[int] = set()
        arriving: Set[int] = set()
        unclaimed: List = []
        for lanes in router.inputs.values():
            for buffer in lanes:
                for packet in buffer._arrivals:
                    arriving.add(packet.packet_id)
                for entry in buffer.entries:
                    resident.add(entry.packet.packet_id)
                    if not entry.claimed:
                        unclaimed.append(entry.packet)
        for port, output in router.outputs.items():
            controller = output.controller
            tracked = controller.tracked_packet_ids()
            if tracked is None:
                continue
            # Tracked => resident: a scheduled or delivered packet must
            # have left the table; a tracked ghost would age forever.
            ghosts = tracked - resident
            if ghosts:
                raise InvariantViolation(
                    "token",
                    cycle,
                    f"router{router.node}.{port.name}: controller tracks "
                    f"packets {sorted(ghosts)} not resident in any input "
                    f"buffer",
                )
            for tokens, packet in controller.token_counts():
                if not 1 <= tokens <= MAX_TOKENS:
                    raise InvariantViolation(
                        "token",
                        cycle,
                        f"router{router.node}.{port.name}: {packet} holds "
                        f"{tokens} tokens outside [1, {MAX_TOKENS}]",
                    )
        # Registered => tracked: every resident, unclaimed memory-request
        # packet must be in the token table of each admissible output
        # (packets still awaiting registration are exempt).
        for packet in unclaimed:
            if not packet.is_memory_request or packet.packet_id in arriving:
                continue
            for port in router._routes(packet):
                controller = router.outputs[port].controller
                tracked = controller.tracked_packet_ids()
                if tracked is not None and packet.packet_id not in tracked:
                    raise InvariantViolation(
                        "token",
                        cycle,
                        f"router{router.node}.{port.name}: resident "
                        f"{packet} is not tracked by its flow controller",
                    )

    # ------------------------------------------------------------------ #

    def _lifecycle_dump(self, packet) -> str:
        tracer = self.tracer
        events = getattr(tracer, "events", None)
        if not events:
            return ""
        request = packet.request
        request_id = request.request_id if request is not None else None
        trail = [
            event
            for event in events
            if event.packet_id == packet.packet_id
            or (request_id is not None and event.request_id == request_id)
        ][-_DUMP_EVENTS:]
        if not trail:
            return ""
        lines = "\n  ".join(repr(event) for event in trail)
        return f"\nlifecycle trail (last {len(trail)} events):\n  {lines}"
