"""Recovery machinery: CRC/NACK retransmission, DRAM re-reads, failure.

The :class:`ResilienceController` is the run's single recovery authority.
The NoC endpoints check each arriving packet's CRC (modelled as the
``corrupted`` flag the injector sets) and hand corrupted packets here;
the controller discards them, NACKs, and schedules a retransmission at
the originating NI after a bounded exponential backoff —
``min(cap, base * 2**(n-1))`` cycles for attempt ``n``.  Requests
retransmit from the core NI, responses from the memory NI (the finished
data is still buffered there).  A packet that exhausts its retry budget
fails its whole parent request: the core NI's reassembly tracker is
dropped, the generator's outstanding slot is released, and the request
is *reported* failed instead of hanging the run.

On the SDRAM path the controller owns the :class:`SecDedEcc` accountant:
single-bit read errors are corrected in flight; double-bit errors are
detected-uncorrectable, so the stored data itself is bad and the request
is re-enqueued for a device re-read (retransmitting the response would
resend the same bad data), again up to a cap.

Every injected fault is tracked through a ledger until it resolves::

    injected == corrected + recovered + failed + unresolved

``corrected`` are ECC single-bit fixes; ``recovered`` are faults whose
packet was eventually delivered clean (CRC retry) or whose burst
eventually re-read clean; ``failed`` rode a request that was surfaced as
failed; ``unresolved`` is the in-flight remainder (zero once the system
drains to quiescence).
"""

from __future__ import annotations

import heapq
from collections import deque
from itertools import count
from typing import Deque, Dict, List, Optional, Set, Tuple

from ..dram.ecc import EccOutcome, SecDedEcc
from ..obs.events import EventType
from .faults import FaultConfig, FaultInjector

#: Ledger key: ("req" | "rsp" | "dram", memory-request part id).
_Key = Tuple[str, int]


class _PendingFaults:
    """Faults charged to one in-recovery packet / burst."""

    __slots__ = ("faults", "attempts", "parent", "master")

    def __init__(self, parent: int, master: int) -> None:
        self.faults = 0
        self.attempts = 0
        self.parent = parent
        self.master = master


class ResilienceController:
    """Schedules retransmissions and keeps the fault ledger."""

    def __init__(
        self,
        injector: FaultInjector,
        config: FaultConfig,
        tracer=None,
    ) -> None:
        self.injector = injector
        self.config = config
        self.tracer = tracer
        self.ecc = SecDedEcc()
        self._cores: Dict[int, object] = {}     # master -> CoreInterface
        self._memory = None                      # MemoryInterface
        # (due_cycle, seq, kind, request) retransmissions waiting out backoff.
        self._retransmit_heap: List[tuple] = []
        self._seq = count()
        self._wake = None
        # DRAM re-reads ready for admission (drained by the memory NI).
        self.dram_retries: Deque[object] = deque()
        # In-recovery fault bookkeeping.
        self._pending: Dict[_Key, _PendingFaults] = {}
        self._parent_keys: Dict[int, Set[_Key]] = {}
        self._failed_parents: Set[int] = set()
        # Resolution counters (the ledger).
        self.recovered = 0
        self.failed_faults = 0
        # Event counters.
        self.crc_retries = 0
        self.dram_reread_count = 0
        self.watchdog_reissues = 0
        self.failed_requests = 0
        self.stale_responses = 0

    # ------------------------------------------------------------------ #
    # Wiring
    # ------------------------------------------------------------------ #

    def register_core(self, master: int, interface) -> None:
        self._cores[master] = interface

    def attach_memory(self, interface) -> None:
        self._memory = interface

    # ------------------------------------------------------------------ #
    # Ledger
    # ------------------------------------------------------------------ #

    @property
    def corrected(self) -> int:
        return self.ecc.corrected

    @property
    def injected_total(self) -> int:
        return self.injector.total_injected

    @property
    def unresolved(self) -> int:
        """Injected faults not yet corrected, recovered, or failed."""
        return (
            self.injector.total_injected
            - self.corrected
            - self.recovered
            - self.failed_faults
        )

    def _charge(self, key: _Key, request, faults: int) -> _PendingFaults:
        pending = self._pending.get(key)
        if pending is None:
            parent = request.parent_id if request.parent_id is not None else request.request_id
            pending = _PendingFaults(parent, request.master)
            self._pending[key] = pending
            self._parent_keys.setdefault(parent, set()).add(key)
        pending.faults += faults
        return pending

    def _resolve(self, key: _Key, recovered: bool) -> None:
        pending = self._pending.pop(key, None)
        if pending is None:
            return
        keys = self._parent_keys.get(pending.parent)
        if keys is not None:
            keys.discard(key)
            if not keys:
                del self._parent_keys[pending.parent]
        if recovered:
            self.recovered += pending.faults
        else:
            self.failed_faults += pending.faults

    # ------------------------------------------------------------------ #
    # Per-cycle: release due retransmissions
    # ------------------------------------------------------------------ #

    def tick(self, cycle: int) -> None:
        self.injector.tick(cycle)
        heap = self._retransmit_heap
        while heap and heap[0][0] <= cycle:
            _, _, kind, request = heapq.heappop(heap)
            parent = request.parent_id if request.parent_id is not None else request.request_id
            if parent in self._failed_parents:
                continue  # the parent failed while this retry waited
            if kind == "req":
                core = self._cores[request.master]
                core.retransmit_request(request, cycle)
            else:
                self._memory.resend_response(request, cycle)

    # ------------------------------------------------------------------ #
    # Simulator idle-skip contract
    # ------------------------------------------------------------------ #

    def is_idle(self, cycle: int) -> bool:
        """Skipping a tick is safe only when the injector draws no
        per-cycle randomness (rate-driven buffer flips) and nothing is
        pending: no backoff retransmissions and no scheduled faults left
        to arm at their exact cycles."""
        injector = self.injector
        if injector.enabled and self.config.buffer_flip_rate > 0.0:
            return False
        if injector._schedule_pos < len(injector._schedule):
            return False
        return not self._retransmit_heap

    def wake_at(self) -> Optional[int]:
        heap = self._retransmit_heap
        return heap[0][0] if heap else None

    # ------------------------------------------------------------------ #
    # Event-dispatch contract
    # ------------------------------------------------------------------ #

    def attach_wake(self, wake) -> None:
        self._wake = wake

    def __getstate__(self):
        # Engine wake handles are process-local; rebind re-issues them.
        state = self.__dict__.copy()
        state["_wake"] = None
        return state

    def event_wake_at(self, cycle: int) -> Optional[int]:
        """Rate-driven buffer flips draw per-cycle randomness, so they
        force per-cycle ticking; otherwise the controller sleeps until the
        next scheduled fault or due retransmission (new NACKs arm the
        wake handle from :meth:`_nack`)."""
        injector = self.injector
        if injector.enabled and self.config.buffer_flip_rate > 0.0:
            return cycle + 1
        nxt = None
        schedule = injector._schedule
        pos = injector._schedule_pos
        if pos < len(schedule):
            nxt = schedule[pos].cycle
            if nxt <= cycle:
                nxt = cycle + 1
        heap = self._retransmit_heap
        if heap:
            due = heap[0][0]
            if due <= cycle:
                due = cycle + 1
            if nxt is None or due < nxt:
                nxt = due
        return nxt

    # ------------------------------------------------------------------ #
    # CRC endpoints
    # ------------------------------------------------------------------ #

    def on_corrupt_request(self, cycle: int, packet) -> None:
        """Memory NI found a failing CRC on an arriving request packet."""
        self._nack(cycle, packet, "req")

    def on_corrupt_response(self, cycle: int, packet) -> None:
        """Core NI found a failing CRC on an arriving response packet."""
        self._nack(cycle, packet, "rsp")

    def _nack(self, cycle: int, packet, kind: str) -> None:
        request = packet.request
        key = (kind, request.request_id)
        pending = self._charge(key, request, packet.fault_bits)
        if pending.parent in self._failed_parents:
            # Straggler of an already-failed request: nothing to retry.
            self._resolve(key, recovered=False)
            return
        pending.attempts += 1
        if pending.attempts > self.config.crc_retry_limit:
            self.fail_request(cycle, pending.parent, pending.master, reason="crc")
            return
        due = cycle + self.config.backoff(pending.attempts)
        heapq.heappush(self._retransmit_heap, (due, next(self._seq), kind, request))
        wake = self._wake
        if wake is not None:
            wake(due)  # NACKs arrive mid-cycle from the NI ticks
        self.crc_retries += 1
        tracer = self.tracer
        if tracer:
            tracer.emit(
                EventType.RETRY,
                cycle,
                "crc",
                packet_id=packet.packet_id,
                request_id=request.request_id,
                kind=kind,
                attempt=pending.attempts,
                due=due,
            )

    def on_request_admitted(self, request) -> None:
        """A clean request packet reached the memory subsystem."""
        self._resolve(("req", request.request_id), recovered=True)

    def on_response_delivered(self, request) -> None:
        """A clean response part reached its master."""
        self._resolve(("rsp", request.request_id), recovered=True)

    def note_stale_response(self, request) -> None:
        """Response for an already-failed or re-issued request: dropped."""
        self.stale_responses += 1

    # ------------------------------------------------------------------ #
    # SDRAM data path (ECC)
    # ------------------------------------------------------------------ #

    def on_dram_burst(self, cycle: int, request) -> EccOutcome:
        """Classify a finished burst; queue a re-read if uncorrectable.

        Returns the ECC outcome; on ``DETECTED`` the caller must *not*
        send the response (the controller has either queued a re-read or
        failed the request).
        """
        if not request.is_read:
            return EccOutcome.CLEAN  # errors in stored data surface on reads
        bits = self.injector.sdram_read_bits(cycle, request)
        outcome = self.ecc.classify(bits)
        if outcome is EccOutcome.CORRECTED:
            # The fault begins and ends here: corrected in flight.
            tracer = self.tracer
            if tracer:
                tracer.emit(
                    EventType.CORRECTED,
                    cycle,
                    "ecc",
                    request_id=request.request_id,
                )
        elif outcome is EccOutcome.DETECTED:
            key = ("dram", request.request_id)
            pending = self._charge(key, request, 1)
            if pending.parent in self._failed_parents:
                self._resolve(key, recovered=False)
                return outcome
            pending.attempts += 1
            if pending.attempts > self.config.dram_retry_limit:
                self.fail_request(cycle, pending.parent, pending.master, reason="ecc")
            else:
                self.dram_retries.append(request)
                self.dram_reread_count += 1
                tracer = self.tracer
                if tracer:
                    tracer.emit(
                        EventType.RETRY,
                        cycle,
                        "ecc",
                        request_id=request.request_id,
                        attempt=pending.attempts,
                    )
        else:
            self._resolve(("dram", request.request_id), recovered=True)
        return outcome

    # ------------------------------------------------------------------ #
    # Watchdog / failure
    # ------------------------------------------------------------------ #

    def on_watchdog_reissue(self, cycle: int, parent: int, master: int) -> None:
        self.watchdog_reissues += 1
        tracer = self.tracer
        if tracer:
            tracer.emit(
                EventType.RETRY,
                cycle,
                "watchdog",
                request_id=parent,
                kind="reissue",
            )

    def fail_request(
        self, cycle: int, parent: int, master: int, reason: str
    ) -> None:
        """Give up on ``parent``: surface it as failed, settle its faults."""
        if parent in self._failed_parents:
            return
        self._failed_parents.add(parent)
        for key in list(self._parent_keys.get(parent, ())):
            self._resolve(key, recovered=False)
        core = self._cores.get(master)
        if core is not None:
            core.fail_request(parent, cycle)
        self.failed_requests += 1
        tracer = self.tracer
        if tracer:
            tracer.emit(
                EventType.FAILED,
                cycle,
                "resilience",
                request_id=parent,
                reason=reason,
            )

    # ------------------------------------------------------------------ #
    # Quiescence
    # ------------------------------------------------------------------ #

    @property
    def busy(self) -> bool:
        """Recovery work still in flight (retransmits or re-reads)."""
        return bool(self._retransmit_heap) or bool(self.dram_retries)

    def metrics_into(self, registry) -> None:
        """Publish the ledger and event counters (``resilience.*``)."""
        for site, value in self.injector.injected.items():
            registry.counter(f"resilience.injected.{site.value}").inc(value)
        registry.counter("resilience.injected.total").inc(self.injector.total_injected)
        registry.counter("resilience.corrected").inc(self.corrected)
        registry.counter("resilience.recovered").inc(self.recovered)
        registry.counter("resilience.failed_faults").inc(self.failed_faults)
        registry.counter("resilience.unresolved").inc(self.unresolved)
        registry.counter("resilience.crc_retries").inc(self.crc_retries)
        registry.counter("resilience.dram_rereads").inc(self.dram_reread_count)
        registry.counter("resilience.watchdog_reissues").inc(self.watchdog_reissues)
        registry.counter("resilience.failed_requests").inc(self.failed_requests)
        registry.counter("resilience.stale_responses").inc(self.stale_responses)
        registry.counter("resilience.ecc.clean_bursts").inc(self.ecc.clean_bursts)
        registry.counter("resilience.ecc.detected").inc(self.ecc.detected)
