"""Request trace capture and replay.

Wrapping a traffic generator in a :class:`TraceRecorder` captures every
issued request; a :class:`TraceReplayer` re-issues a captured trace
verbatim.  This gives bit-identical workloads across NoC designs when a
comparison must isolate scheduling effects from generator feedback (the
closed-loop generators otherwise adapt their issue times to completion
times), and is what the determinism tests build on.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Union

from ..dram.request import MemoryRequest, ServiceClass


@dataclass(frozen=True)
class TraceEntry:
    cycle: int
    request: MemoryRequest


class TraceRecorder:
    """TrafficGenerator decorator that logs every issued request."""

    def __init__(self, inner) -> None:
        self.inner = inner
        self.master = inner.master
        self.entries: List[TraceEntry] = []

    def generate(self, cycle: int) -> List[MemoryRequest]:
        requests = self.inner.generate(cycle)
        for request in requests:
            self.entries.append(TraceEntry(cycle, _copy_request(request)))
        return requests

    def on_complete(self, request_id: int, cycle: int) -> None:
        self.inner.on_complete(request_id, cycle)

    @property
    def next_issue_cycle(self) -> Optional[int]:
        # Deliberately raises AttributeError when the wrapped generator is
        # not schedulable, so hasattr() sees the recorder the same way it
        # would see the inner generator.
        return self.inner.next_issue_cycle

    @property
    def issue_blocked(self) -> bool:
        # Same delegation contract as next_issue_cycle: AttributeError
        # propagates, and the NI's getattr() default treats it as False.
        return self.inner.issue_blocked


class TraceReplayer:
    """TrafficGenerator that replays a recorded trace open-loop.

    Requests are issued at (or after) their recorded cycles, gated by
    ``max_outstanding`` so replay still exerts backpressure.
    """

    def __init__(
        self,
        master: int,
        entries: List[TraceEntry],
        max_outstanding: Optional[int] = None,
    ) -> None:
        self.master = master
        self.entries = sorted(entries, key=lambda e: e.cycle)
        self.max_outstanding = max_outstanding
        self._cursor = 0
        self._outstanding = 0

    def generate(self, cycle: int) -> List[MemoryRequest]:
        issued: List[MemoryRequest] = []
        while self._cursor < len(self.entries):
            entry = self.entries[self._cursor]
            if entry.cycle > cycle:
                break
            if (
                self.max_outstanding is not None
                and self._outstanding >= self.max_outstanding
            ):
                break
            issued.append(_copy_request(entry.request))
            self._cursor += 1
            self._outstanding += 1
            break  # at most one request per cycle, like the live generators
        return issued

    def on_complete(self, request_id: int, cycle: int) -> None:
        self._outstanding = max(0, self._outstanding - 1)

    @property
    def exhausted(self) -> bool:
        return self._cursor >= len(self.entries)

    @property
    def next_issue_cycle(self) -> Optional[int]:
        """Next recorded issue cycle; ``None`` once the trace is drained
        (the replayer never wakes again on its own)."""
        if self._cursor >= len(self.entries):
            return None
        return self.entries[self._cursor].cycle

    @property
    def issue_blocked(self) -> bool:
        """At the outstanding cap: generate() no-ops until a completion
        arrives, so an event-dispatched NI need not poll the trace."""
        return (
            self.max_outstanding is not None
            and self._outstanding >= self.max_outstanding
        )


def _copy_request(request: MemoryRequest) -> MemoryRequest:
    return MemoryRequest(
        request_id=request.request_id,
        master=request.master,
        bank=request.bank,
        row=request.row,
        column=request.column,
        beats=request.beats,
        is_read=request.is_read,
        service=request.service,
        is_demand=request.is_demand,
        issued_cycle=request.issued_cycle,
        parent_id=request.parent_id,
        split_index=request.split_index,
        split_count=request.split_count,
        ap_tag=request.ap_tag,
    )


# ---------------------------------------------------------------------- #
# Trace persistence (JSON)
# ---------------------------------------------------------------------- #


def _entry_to_dict(entry: TraceEntry) -> Dict:
    request = entry.request
    return {
        "cycle": entry.cycle,
        "id": request.request_id,
        "master": request.master,
        "bank": request.bank,
        "row": request.row,
        "column": request.column,
        "beats": request.beats,
        "read": request.is_read,
        "priority": request.is_priority,
        "demand": request.is_demand,
    }


def _entry_from_dict(raw: Dict) -> TraceEntry:
    request = MemoryRequest(
        request_id=raw["id"],
        master=raw["master"],
        bank=raw["bank"],
        row=raw["row"],
        column=raw["column"],
        beats=raw["beats"],
        is_read=raw["read"],
        service=(
            ServiceClass.PRIORITY if raw.get("priority")
            else ServiceClass.BEST_EFFORT
        ),
        is_demand=raw.get("demand", False),
    )
    return TraceEntry(cycle=raw["cycle"], request=request)


def save_traces(
    traces: Dict[int, List[TraceEntry]], path: Union[str, Path]
) -> None:
    """Write per-master traces to a JSON file."""
    payload = {
        str(master): [_entry_to_dict(entry) for entry in entries]
        for master, entries in traces.items()
    }
    Path(path).write_text(json.dumps(payload, indent=1))


def load_traces(path: Union[str, Path]) -> Dict[int, List[TraceEntry]]:
    """Read per-master traces from a JSON file written by save_traces."""
    payload = json.loads(Path(path).read_text())
    return {
        int(master): [_entry_from_dict(raw) for raw in entries]
        for master, entries in payload.items()
    }


# ---------------------------------------------------------------------- #
# System-level capture / replay
# ---------------------------------------------------------------------- #


def record_system(system) -> Dict[int, TraceRecorder]:
    """Wrap every core of a built system in a TraceRecorder (before run)."""
    recorders: Dict[int, TraceRecorder] = {}
    for interface, core in zip(system.core_interfaces, system.cores):
        recorder = TraceRecorder(core)
        interface.generator = recorder
        recorders[core.master] = recorder
    return recorders


def replay_into_system(
    system, traces: Dict[int, List[TraceEntry]], max_outstanding: int = 8
) -> None:
    """Replace every core's generator with a replayer of ``traces``.

    Used for controlled comparisons: the same request stream is fed to
    different NoC designs, isolating scheduling effects from the
    closed-loop feedback of the live generators.
    """
    for interface, core in zip(system.core_interfaces, system.cores):
        entries = traces.get(core.master, [])
        interface.generator = TraceReplayer(
            core.master, entries, max_outstanding=max_outstanding
        )
