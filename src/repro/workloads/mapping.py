"""Core-to-node placement (the paper's Fig. 7 / A3MAP substitute).

The paper maps cores with A3MAP [28], an analytic mapper that minimizes
weighted communication distance; with a single memory subsystem, the
dominant term is each core's bandwidth demand times its hop distance to the
memory corner.  We reproduce that objective greedily: the memory subsystem
occupies corner node 0 (Fig. 7 places it in a corner), and cores are placed
in decreasing bandwidth order onto remaining nodes in increasing hop
distance from the memory node — heavy streamers end up adjacent to memory,
sparse cores at the far corner, matching the structure of Fig. 7.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..noc.topology import Mesh, Mesh3D
from .apps import AppModel
from .cores import CoreSpec

#: The memory subsystem's mesh node (upper-left corner, per Fig. 7).
MEMORY_NODE = 0


@dataclass(frozen=True)
class Placement:
    """A full placement: memory node plus core -> node assignments."""

    mesh: object  # Mesh or Mesh3D (duck-typed: ports/neighbor/hop_distance)
    memory_node: int
    core_nodes: Dict[int, int]      # core index in app.cores -> node

    def node_of_core(self, core_index: int) -> int:
        return self.core_nodes[core_index]

    @property
    def nodes_by_core(self) -> List[int]:
        return [self.core_nodes[i] for i in sorted(self.core_nodes)]


def place(app: AppModel) -> Placement:
    """Greedy bandwidth-times-distance placement (A3MAP substitute)."""
    if app.is_3d:
        mesh = Mesh3D(app.mesh_width, app.mesh_height, app.mesh_depth)
    else:
        mesh = Mesh(app.mesh_width, app.mesh_height)
    free_nodes = sorted(
        (node for node in mesh.nodes() if node != MEMORY_NODE),
        key=lambda node: (mesh.hop_distance(MEMORY_NODE, node), node),
    )
    order = sorted(
        range(len(app.cores)),
        key=lambda i: (-app.cores[i].bandwidth_weight, i),
    )
    core_nodes = {
        core_index: node for core_index, node in zip(order, free_nodes)
    }
    return Placement(mesh=mesh, memory_node=MEMORY_NODE, core_nodes=core_nodes)


def gss_router_order(placement: Placement) -> List[int]:
    """Routers in GSS-replacement order for the Fig. 8 sweep.

    The paper replaces conventional routers with GSS routers starting from
    the router closest to the memory subsystem and finishing with the
    farthest one.
    """
    mesh = placement.mesh
    return sorted(
        mesh.nodes(),
        key=lambda node: (mesh.hop_distance(placement.memory_node, node), node),
    )
