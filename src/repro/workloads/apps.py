"""Application models (Section V): Blu-ray, single DTV, dual DTV.

The paper evaluates three industrial multimedia systems of 9, 9, and 16
nodes respectively — a memory subsystem in one mesh corner plus the
processing cores, mapped by A3MAP onto 3x3 / 3x3 / 4x4 meshes (Fig. 7).
Each model below lists its cores as :class:`~repro.workloads.cores.CoreSpec`
instances; placement onto mesh nodes is handled by
:mod:`repro.workloads.mapping`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from .cores import (
    CoreSpec,
    audio_core,
    cpu_core,
    demux_core,
    display_core,
    enhancer_core,
    format_converter_core,
    graphics_core,
    h264_codec_core,
    mpeg2_codec_core,
    pvr_core,
)


@dataclass(frozen=True)
class AppModel:
    """One application: mesh shape plus its processing cores.

    ``mesh_depth`` > 1 describes a 3-D stacked SoC (the paper's p = 7
    router case); the paper's own models are 2-D.
    """

    name: str
    mesh_width: int
    mesh_height: int
    cores: List[CoreSpec]
    mesh_depth: int = 1

    @property
    def num_nodes(self) -> int:
        return self.mesh_width * self.mesh_height * self.mesh_depth

    @property
    def is_3d(self) -> bool:
        return self.mesh_depth > 1

    def __post_init__(self) -> None:
        if self.mesh_depth <= 0:
            raise ValueError("mesh_depth must be positive")
        if len(self.cores) != self.num_nodes - 1:
            raise ValueError(
                f"{self.name}: {len(self.cores)} cores do not fill a "
                f"{self.mesh_width}x{self.mesh_height}x{self.mesh_depth} "
                f"mesh minus the memory node"
            )


def bluray_model() -> AppModel:
    """Blu-ray player: H.264 decode path on a 3x3 mesh (9 nodes)."""
    return AppModel(
        name="bluray",
        mesh_width=3,
        mesh_height=3,
        cores=[
            cpu_core(),
            h264_codec_core(gap_mean=6.0),    # H.264 decoder
            h264_codec_core(gap_mean=10.0),    # H.264 encoder (BD-RE)
            enhancer_core(),                   # picture enhancer
            display_core(),
            graphics_core(),                   # BD-J graphics plane
            audio_core(),
            demux_core(),                      # stream demux / drive DMA
        ],
    )


def single_dtv_model() -> AppModel:
    """Single-channel DTV SoC on a 3x3 mesh (9 nodes)."""
    return AppModel(
        name="single_dtv",
        mesh_width=3,
        mesh_height=3,
        cores=[
            cpu_core(),
            mpeg2_codec_core(gap_mean=7.0),   # broadcast MPEG-2 decoder
            enhancer_core(),                   # video enhancer
            format_converter_core(),           # format converter / scaler
            display_core(),
            graphics_core(),                   # OSD
            audio_core(),
            demux_core(),
        ],
    )


def dual_dtv_model() -> AppModel:
    """Dual-channel DTV (picture-in-picture) SoC on a 4x4 mesh (16 nodes)."""
    return AppModel(
        name="dual_dtv",
        mesh_width=4,
        mesh_height=4,
        cores=[
            cpu_core(gap_mean=68.0),
            mpeg2_codec_core(gap_mean=27.0),   # channel-0 decoder
            h264_codec_core(gap_mean=24.0),    # channel-1 decoder
            enhancer_core(gap_mean=290.0),     # channel-0 enhancer
            enhancer_core(gap_mean=320.0),     # channel-1 enhancer
            format_converter_core(gap_mean=425.0),  # channel-0 converter
            format_converter_core(gap_mean=475.0),  # channel-1 converter
            display_core(gap_mean=390.0),      # main plane
            display_core(gap_mean=440.0),      # PIP plane
            graphics_core(gap_mean=153.0),      # OSD
            audio_core(gap_mean=240.0),
            audio_core(gap_mean=270.0),
            demux_core(gap_mean=510.0),        # channel-0 demux
            demux_core(gap_mean=560.0),        # channel-1 demux
            pvr_core(gap_mean=475.0),          # time-shift recorder
        ],
    )


APP_MODELS: Dict[str, Callable[[], AppModel]] = {
    "bluray": bluray_model,
    "single_dtv": single_dtv_model,
    "dual_dtv": dual_dtv_model,
}


def get_app_model(name: str) -> AppModel:
    try:
        return APP_MODELS[name]()
    except KeyError:
        raise ValueError(
            f"unknown application {name!r}; choose from {sorted(APP_MODELS)}"
        ) from None
