"""A3MAP-style analytic mapping (the paper's reference [28]).

A3MAP maps cores to mesh nodes by minimizing weighted communication
distance.  With a single shared memory subsystem, the dominant cost is
each core's memory bandwidth times its hop distance to the memory corner;
a full model also carries core-to-core flows (e.g. codec -> enhancer
frame handoffs happening through scratch buffers).

This module implements the objective explicitly and minimizes it with
deterministic-seeded simulated annealing over placement permutations,
refining the greedy seed placement in :mod:`repro.workloads.mapping`.
For the paper's single-memory applications the greedy seed is already
near-optimal, which the tests verify — the annealer is the general tool
for user-defined SoCs with core-to-core traffic.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..sim.rng import placement_rng
from .apps import AppModel
from .mapping import MEMORY_NODE, Placement, place


@dataclass
class MappingProblem:
    """Communication demands to be embedded into the mesh."""

    app: AppModel
    #: core index -> relative memory bandwidth (defaults to the specs').
    memory_flows: Dict[int, float] = field(default_factory=dict)
    #: (core a, core b) -> relative direct traffic between the two cores.
    core_flows: Dict[Tuple[int, int], float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for index, spec in enumerate(self.app.cores):
            self.memory_flows.setdefault(index, spec.bandwidth_weight)
        for (a, b), flow in self.core_flows.items():
            if not (0 <= a < len(self.app.cores) and 0 <= b < len(self.app.cores)):
                raise ValueError(f"core flow ({a}, {b}) references unknown core")
            if flow < 0:
                raise ValueError("flows must be non-negative")

    def cost(self, placement: Placement) -> float:
        """Total weighted hop distance of all flows under ``placement``."""
        mesh = placement.mesh
        total = 0.0
        for core, flow in self.memory_flows.items():
            total += flow * mesh.hop_distance(
                MEMORY_NODE, placement.node_of_core(core)
            )
        for (a, b), flow in self.core_flows.items():
            total += flow * mesh.hop_distance(
                placement.node_of_core(a), placement.node_of_core(b)
            )
        return total


def anneal(
    problem: MappingProblem,
    seed: int = 2010,
    iterations: int = 2_000,
    initial_temperature: float = 2.0,
) -> Placement:
    """Refine the greedy placement by simulated annealing (pair swaps).

    Deterministic for a given seed.  Never returns a placement worse than
    the greedy seed (the best-seen placement is tracked).
    """
    if iterations < 0:
        raise ValueError("iterations must be non-negative")
    greedy = place(problem.app)
    assignment = dict(greedy.core_nodes)
    cores = list(assignment)
    if len(cores) < 2 or iterations == 0:
        return greedy

    rng = placement_rng(seed)
    current_cost = problem.cost(greedy)
    best_assignment = dict(assignment)
    best_cost = current_cost

    for step in range(iterations):
        temperature = initial_temperature * (1.0 - step / iterations) + 1e-9
        a, b = rng.sample(cores, 2)
        assignment[a], assignment[b] = assignment[b], assignment[a]
        candidate = Placement(
            mesh=greedy.mesh, memory_node=greedy.memory_node,
            core_nodes=dict(assignment),
        )
        candidate_cost = problem.cost(candidate)
        delta = candidate_cost - current_cost
        if delta <= 0 or rng.random() < math.exp(-delta / temperature):
            current_cost = candidate_cost
            if candidate_cost < best_cost:
                best_cost = candidate_cost
                best_assignment = dict(assignment)
        else:
            assignment[a], assignment[b] = assignment[b], assignment[a]

    return Placement(
        mesh=greedy.mesh, memory_node=greedy.memory_node,
        core_nodes=best_assignment,
    )


def map_application(
    app: AppModel,
    core_flows: Optional[Dict[Tuple[int, int], float]] = None,
    seed: int = 2010,
    iterations: int = 2_000,
) -> Placement:
    """Convenience wrapper: build the problem and anneal it."""
    problem = MappingProblem(app=app, core_flows=dict(core_flows or {}))
    return anneal(problem, seed=seed, iterations=iterations)
