"""Workload models: synthetic cores, application models, placement, traces."""

from .a3map import MappingProblem, anneal, map_application
from .apps import APP_MODELS, AppModel, bluray_model, dual_dtv_model, get_app_model, single_dtv_model
from .cores import (
    CoreSpec,
    Stream,
    SyntheticCore,
    audio_core,
    cpu_core,
    demux_core,
    display_core,
    enhancer_core,
    format_converter_core,
    graphics_core,
    h264_codec_core,
    mpeg2_codec_core,
    pvr_core,
)
from .mapping import MEMORY_NODE, Placement, gss_router_order, place
from .trace import TraceEntry, TraceRecorder, TraceReplayer

__all__ = [
    "APP_MODELS",
    "AppModel",
    "CoreSpec",
    "MEMORY_NODE",
    "MappingProblem",
    "Placement",
    "Stream",
    "SyntheticCore",
    "TraceEntry",
    "TraceRecorder",
    "TraceReplayer",
    "anneal",
    "audio_core",
    "bluray_model",
    "cpu_core",
    "demux_core",
    "display_core",
    "dual_dtv_model",
    "enhancer_core",
    "format_converter_core",
    "get_app_model",
    "graphics_core",
    "map_application",
    "gss_router_order",
    "h264_codec_core",
    "mpeg2_codec_core",
    "place",
    "pvr_core",
    "single_dtv_model",
]
