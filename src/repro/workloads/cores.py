"""Synthetic core traffic models.

The paper drives its NoCs with industrial multimedia traffic: a
microprocessor issuing latency-critical *demand* requests and speculative
*prefetches* (Section III-B), H.264/MPEG video codecs issuing very short
requests (4/8/16 bytes — Section III-C), video enhancers / format
converters issuing very long 64-BL streaming bursts (Section III-B), plus
display, audio, graphics and peripheral traffic.  Those streams are not
public, so each core is modelled as a deterministic-seeded generator that
reproduces the *characteristics* the paper's mechanisms key on:

* request-size mix (beats) — drives the access-granularity mismatch;
* read/write mix and alternation — drives data contention;
* address locality — sequential streaming within rows (row-buffer hits,
  natural bank interleaving through the address map) with occasional jumps
  (bank conflicts);
* issue rate and outstanding-request window — drives congestion;
* demand/prefetch split for the CPU — drives the priority service.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..dram.address_map import AddressMap
from ..dram.request import MemoryRequest, ServiceClass
from ..sim.rng import core_rng


@dataclass
class Stream:
    """One address stream of a core (e.g. a frame-read or frame-write).

    The stream walks its core's bank-affine region sequentially: columns
    within the open row, then the next bank of the core's bank set, then
    the next row — the layout a tiled frame buffer produces, giving
    row-buffer locality plus natural bank interleaving within the core.
    """

    is_read: bool
    weight: float
    beats_choices: Sequence[Tuple[int, float]]  # (size in beats, weight)
    jump_probability: float = 0.02              # chance to leave the stream
    bank_slot: int = 0                          # index into the core's bank set
    row: int = 0
    column: int = 0


@dataclass
class CoreSpec:
    """Static description of one core's traffic (see factories below)."""

    name: str
    streams: List[Stream]
    gap_mean: float               # mean cycles between request issues
    max_outstanding: int = 4
    demand_fraction: float = 0.0  # fraction of requests that are CPU demands
    bandwidth_weight: float = 1.0  # relative demand, used for mapping
    #: Mean number of consecutive requests served from one stream before the
    #: core switches streams.  Media cores work in bursts (read a block,
    #: then write a block), so read/write direction changes come in runs,
    #: not per-request coin flips.
    run_mean: float = 8.0


class SyntheticCore:
    """Deterministic stochastic traffic generator for one core."""

    def __init__(
        self,
        master: int,
        spec: CoreSpec,
        address_map: AddressMap,
        region_index: int,
        region_count: int,
        request_ids,
        seed: int,
        priority_demand: bool = False,
    ) -> None:
        self.master = master
        self.spec = spec
        self.address_map = address_map
        self.request_ids = request_ids
        self.priority_demand = priority_demand
        self.rng = core_rng(seed, master)
        self._outstanding = 0
        self._next_issue_cycle = 0
        self._current_stream: Optional[Stream] = None
        self._run_remaining = 0
        self.issued = 0
        self.completed = 0
        # Bank-affine region: each core owns a small set of banks (its frame
        # buffers live there) plus a private row range, the way media SoCs
        # partition a shared SDRAM.  Cross-core bank conflicts then only
        # arise between cores whose bank sets overlap.
        banks = address_map.banks
        banks_per_core = min(4, banks)
        self._bank_set = [
            (region_index * 2 + i) % banks for i in range(banks_per_core)
        ]
        rows_per_region = max(1, address_map.rows // max(1, region_count))
        self._row_base = (region_index * rows_per_region) % address_map.rows
        self._row_span = rows_per_region
        for stream in self.spec.streams:
            self._jump_stream(stream)

    # ------------------------------------------------------------------ #

    def _jump_stream(self, stream: Stream) -> None:
        stream.bank_slot = self.rng.randrange(len(self._bank_set))
        stream.row = self.rng.randrange(self._row_span)
        stream.column = self.rng.randrange(self.address_map.columns)

    def _advance_stream(self, stream: Stream, beats: int) -> None:
        stream.column += beats
        if stream.column >= self.address_map.columns:
            stream.column -= self.address_map.columns
            stream.bank_slot += 1
            if stream.bank_slot >= len(self._bank_set):
                stream.bank_slot = 0
                stream.row = (stream.row + 1) % self._row_span

    def _pick_stream(self) -> Stream:
        """Current stream, switching only at run boundaries."""
        if self._current_stream is not None and self._run_remaining > 0:
            self._run_remaining -= 1
            return self._current_stream
        streams = self.spec.streams
        if len(streams) == 1:
            chosen = streams[0]
        else:
            weights = [s.weight for s in streams]
            chosen = self.rng.choices(streams, weights=weights, k=1)[0]
        self._current_stream = chosen
        run = self.rng.expovariate(1.0 / self.spec.run_mean) if self.spec.run_mean > 0 else 0.0
        self._run_remaining = max(0, round(run))
        return chosen

    def _pick_beats(self, stream: Stream) -> int:
        sizes = [size for size, _ in stream.beats_choices]
        weights = [weight for _, weight in stream.beats_choices]
        return self.rng.choices(sizes, weights=weights, k=1)[0]

    # ------------------------------------------------------------------ #
    # TrafficGenerator interface
    # ------------------------------------------------------------------ #

    def generate(self, cycle: int) -> List[MemoryRequest]:
        if self._outstanding >= self.spec.max_outstanding:
            return []
        if cycle < self._next_issue_cycle:
            return []
        stream = self._pick_stream()
        beats = self._pick_beats(stream)
        if stream.jump_probability > 0 and self.rng.random() < stream.jump_probability:
            self._jump_stream(stream)
        bank = self._bank_set[stream.bank_slot]
        row = (self._row_base + stream.row) % self.address_map.rows
        column = stream.column
        # Clip the burst at the row edge so a request never spans two rows.
        beats = min(beats, self.address_map.columns - column)
        self._advance_stream(stream, beats)
        is_demand = (
            self.spec.demand_fraction > 0
            and self.rng.random() < self.spec.demand_fraction
        )
        service = (
            ServiceClass.PRIORITY
            if is_demand and self.priority_demand
            else ServiceClass.BEST_EFFORT
        )
        request = MemoryRequest(
            request_id=next(self.request_ids),
            master=self.master,
            bank=bank,
            row=row,
            column=column,
            beats=beats,
            is_read=stream.is_read,
            service=service,
            is_demand=is_demand,
            issued_cycle=cycle,
        )
        self._outstanding += 1
        self.issued += 1
        gap = self.rng.expovariate(1.0 / self.spec.gap_mean) if self.spec.gap_mean > 0 else 0.0
        self._next_issue_cycle = cycle + max(1, round(gap))
        return [request]

    def on_complete(self, request_id: int, cycle: int) -> None:
        if self._outstanding <= 0:
            raise RuntimeError("completion without an outstanding request")
        self._outstanding -= 1
        self.completed += 1

    @property
    def outstanding(self) -> int:
        return self._outstanding

    @property
    def next_issue_cycle(self) -> Optional[int]:
        """Earliest cycle :meth:`generate` could issue (idle-skip wake
        target).  ``generate`` is a strict no-op — no RNG draws — before
        this cycle, so skipping it keeps the random stream bit-identical."""
        return self._next_issue_cycle

    @property
    def issue_blocked(self) -> bool:
        """At the outstanding cap: :meth:`generate` is a strict no-op (the
        cap check precedes every RNG draw) until a completion frees a
        slot, so an event-dispatched NI can sleep instead of polling
        ``next_issue_cycle`` (which deliberately ignores the cap)."""
        return self._outstanding >= self.spec.max_outstanding


# ---------------------------------------------------------------------- #
# Core-type factories (Section III / V traffic classes)
# ---------------------------------------------------------------------- #


def cpu_core(gap_mean: float = 26.0) -> CoreSpec:
    """Microprocessor: cache-line demands plus sequential prefetches."""
    return CoreSpec(
        name="cpu",
        streams=[
            Stream(is_read=True, weight=0.7,
                   beats_choices=[(8, 0.7), (16, 0.3)], jump_probability=0.071),
            Stream(is_read=False, weight=0.3,
                   beats_choices=[(8, 1.0)], jump_probability=0.071),
        ],
        gap_mean=gap_mean,
        max_outstanding=2,
        demand_fraction=0.6,
        bandwidth_weight=1.5,
    )


def h264_codec_core(gap_mean: float = 7.0) -> CoreSpec:
    """H.264 encoder/decoder: 4/8/16-byte motion compensation accesses."""
    return CoreSpec(
        name="h264",
        streams=[
            Stream(is_read=True, weight=0.75,
                   beats_choices=[(1, 0.15), (2, 0.35), (4, 0.35), (8, 0.15)],
                   jump_probability=0.065),
            Stream(is_read=False, weight=0.25,
                   beats_choices=[(2, 0.4), (4, 0.6)], jump_probability=0.065),
        ],
        gap_mean=gap_mean,
        max_outstanding=4,
        bandwidth_weight=1.2,
    )


def mpeg2_codec_core(gap_mean: float = 8.0) -> CoreSpec:
    """MPEG-1/2 codec: 8/16-byte accesses (Section III-C)."""
    return CoreSpec(
        name="mpeg2",
        streams=[
            Stream(is_read=True, weight=0.7,
                   beats_choices=[(2, 0.3), (4, 0.5), (8, 0.2)], jump_probability=0.07),
            Stream(is_read=False, weight=0.3,
                   beats_choices=[(4, 0.7), (8, 0.3)], jump_probability=0.07),
        ],
        gap_mean=gap_mean,
        max_outstanding=4,
        bandwidth_weight=1.0,
    )


def enhancer_core(gap_mean: float = 94.0) -> CoreSpec:
    """Video enhancer: 64-BL streaming bursts (long best-effort packets)."""
    return CoreSpec(
        name="enhancer",
        streams=[
            Stream(is_read=True, weight=0.5,
                   beats_choices=[(64, 1.0)], jump_probability=0.012),
            Stream(is_read=False, weight=0.5,
                   beats_choices=[(64, 1.0)], jump_probability=0.012),
        ],
        gap_mean=gap_mean,
        max_outstanding=2,
        bandwidth_weight=2.0,
    )


def format_converter_core(gap_mean: float = 138.0) -> CoreSpec:
    """Format converter: long read stream converted into a write stream."""
    return CoreSpec(
        name="format-conv",
        streams=[
            Stream(is_read=True, weight=0.5,
                   beats_choices=[(32, 0.4), (64, 0.6)], jump_probability=0.0125),
            Stream(is_read=False, weight=0.5,
                   beats_choices=[(32, 0.4), (64, 0.6)], jump_probability=0.0125),
        ],
        gap_mean=gap_mean,
        max_outstanding=2,
        bandwidth_weight=1.8,
    )


def display_core(gap_mean: float = 127.0) -> CoreSpec:
    """Display controller: long sequential frame reads."""
    return CoreSpec(
        name="display",
        streams=[
            Stream(is_read=True, weight=1.0,
                   beats_choices=[(32, 0.5), (64, 0.5)], jump_probability=0.012),
        ],
        gap_mean=gap_mean,
        max_outstanding=2,
        bandwidth_weight=1.6,
    )


def audio_core(gap_mean: float = 77.0) -> CoreSpec:
    """Audio DSP: sparse short accesses."""
    return CoreSpec(
        name="audio",
        streams=[
            Stream(is_read=True, weight=0.6,
                   beats_choices=[(2, 0.5), (4, 0.5)], jump_probability=0.06),
            Stream(is_read=False, weight=0.4,
                   beats_choices=[(2, 1.0)], jump_probability=0.06),
        ],
        gap_mean=gap_mean,
        max_outstanding=2,
        bandwidth_weight=0.4,
    )


def graphics_core(gap_mean: float = 50.0) -> CoreSpec:
    """Graphics/OSD blender: medium bursts, mixed read/write."""
    return CoreSpec(
        name="graphics",
        streams=[
            Stream(is_read=True, weight=0.55,
                   beats_choices=[(8, 0.4), (16, 0.6)], jump_probability=0.07),
            Stream(is_read=False, weight=0.45,
                   beats_choices=[(8, 0.5), (16, 0.5)], jump_probability=0.07),
        ],
        gap_mean=gap_mean,
        max_outstanding=3,
        bandwidth_weight=1.0,
    )


def demux_core(gap_mean: float = 165.0) -> CoreSpec:
    """Transport-stream demux / peripheral DMA: medium writes."""
    return CoreSpec(
        name="demux",
        streams=[
            Stream(is_read=False, weight=0.8,
                   beats_choices=[(8, 0.5), (16, 0.5)], jump_probability=0.05),
            Stream(is_read=True, weight=0.2,
                   beats_choices=[(8, 1.0)], jump_probability=0.05),
        ],
        gap_mean=gap_mean,
        max_outstanding=2,
        bandwidth_weight=0.6,
    )


def pvr_core(gap_mean: float = 154.0) -> CoreSpec:
    """Personal-video-recorder writer: long sequential writes."""
    return CoreSpec(
        name="pvr",
        streams=[
            Stream(is_read=False, weight=1.0,
                   beats_choices=[(32, 0.6), (64, 0.4)], jump_probability=0.012),
        ],
        gap_mean=gap_mean,
        max_outstanding=2,
        bandwidth_weight=1.0,
    )
