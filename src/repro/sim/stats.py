"""Latency and utilization accounting.

The paper reports three metrics per configuration (Tables I–III, Fig. 8):

* **memory utilization** — clock cycles spent transferring *useful* data on
  the SDRAM data bus divided by total simulated cycles (Section I defines it
  as "the number of clock cycles used for data transfer divided by the number
  of total clock cycles"; we additionally separate useful beats from
  granularity-mismatch waste so SAGM's benefit is measurable);
* **memory latency of all packets** — average request-to-completion latency;
* **memory latency of demand/priority packets** — same, restricted to the
  demand class.

A single :class:`StatsCollector` instance is threaded through the system and
records request completions plus per-cycle bus activity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class LatencySeries:
    """Running latency statistics for one request class."""

    count: int = 0
    total: int = 0
    maximum: int = 0
    minimum: int = 0
    samples: List[int] = field(default_factory=list)
    keep_samples: bool = False

    def record(self, latency: int) -> None:
        if latency < 0:
            raise ValueError(f"negative latency {latency}")
        if self.count == 0 or latency < self.minimum:
            self.minimum = latency
        self.count += 1
        self.total += latency
        if latency > self.maximum:
            self.maximum = latency
        if self.keep_samples:
            self.samples.append(latency)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @property
    def p100(self) -> float:
        """Exact observed worst case.  Served from the O(1) running
        maximum, so it is available whether or not samples were kept and
        never under-reports through rank rounding — the WCET column reads
        this, not ``percentile(100)``."""
        return float(self.maximum)

    @property
    def p0(self) -> float:
        """Exact observed best case (running minimum)."""
        return float(self.minimum)

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile (0-100) of recorded latencies, with
        linear interpolation between closest ranks (the numpy/R-7 default).

        ``q == 0`` and ``q == 100`` are served exactly from the running
        minimum/maximum — no rank arithmetic, no ``keep_samples``
        requirement — so the extremes cannot be under-reported.  Interior
        quantiles need ``keep_samples=True``; the paper reports means, but
        tail latency is what a real-time core actually provisions for.
        """
        if not 0 <= q <= 100:
            raise ValueError("percentile must be within [0, 100]")
        if self.count and q == 100:
            return self.p100
        if self.count and q == 0:
            return self.p0
        if not self.keep_samples:
            raise RuntimeError("series was created without keep_samples")
        if not self.samples:
            raise ValueError(
                "percentile of an empty series: no latencies recorded "
                "(check warmup vs. run length, or whether the class ever "
                "completed)"
            )
        ordered = sorted(self.samples)
        rank = q / 100 * (len(ordered) - 1)
        lower = int(rank)
        fraction = rank - lower
        if fraction == 0.0:
            return float(ordered[lower])
        return (
            ordered[lower] + (ordered[lower + 1] - ordered[lower]) * fraction
        )


class StatsCollector:
    """Accumulates latency and SDRAM data-bus activity for one run.

    ``warmup`` cycles at the start of the run are excluded from every
    statistic so that cold-start transients (empty buffers, closed banks) do
    not bias the averages.
    """

    def __init__(self, warmup: int = 0, keep_samples: bool = False) -> None:
        if warmup < 0:
            raise ValueError("warmup must be non-negative")
        self.warmup = warmup
        self.all_packets = LatencySeries(keep_samples=keep_samples)
        self.demand_packets = LatencySeries(keep_samples=keep_samples)
        self.per_master: Dict[int, LatencySeries] = {}
        self.keep_samples = keep_samples
        # Data-bus activity, in cycles.
        self.busy_cycles = 0        # bus transferring anything at all
        self.useful_cycles = 0.0    # fraction of each busy cycle moving requested beats
        self.wasted_beats = 0
        self.useful_beats = 0
        self.observed_cycles = 0
        # Command-bus activity (for ablations / command congestion analysis).
        self.commands_issued: Dict[str, int] = {}
        self.row_hits = 0
        self.row_misses = 0
        self.bank_conflict_precharges = 0
        # Per-bank (hits, misses) tallies, keyed by bank index.
        self.per_bank_rows: Dict[int, List[int]] = {}

    # ------------------------------------------------------------------ #
    # Request completion
    # ------------------------------------------------------------------ #

    def record_completion(
        self,
        cycle: int,
        issued_cycle: int,
        master: int,
        is_demand: bool,
    ) -> None:
        """Record a completed memory request.

        ``is_demand`` flags CPU demand requests — the class the paper tracks
        separately (served as priority packets in Table II / Fig. 8(c)).
        """
        if issued_cycle < self.warmup:
            return
        latency = cycle - issued_cycle
        self.all_packets.record(latency)
        if is_demand:
            self.demand_packets.record(latency)
        series = self.per_master.get(master)
        if series is None:
            series = self.per_master[master] = LatencySeries(
                keep_samples=self.keep_samples
            )
        series.record(latency)

    # ------------------------------------------------------------------ #
    # SDRAM bus activity
    # ------------------------------------------------------------------ #

    def record_bus_cycle(self, cycle: int, useful_beats: int, total_beats: int) -> None:
        """Record one data-bus-busy cycle transferring ``total_beats`` beats,
        of which ``useful_beats`` were actually requested by a core."""
        if cycle < self.warmup:
            return
        if total_beats <= 0:
            raise ValueError("bus cycle must transfer at least one beat")
        if not 0 <= useful_beats <= total_beats:
            raise ValueError("useful beats out of range")
        self.busy_cycles += 1
        self.useful_cycles += useful_beats / total_beats
        self.useful_beats += useful_beats
        self.wasted_beats += total_beats - useful_beats

    def record_idle_cycle(self, cycle: int) -> None:
        """Record that ``cycle`` elapsed (whether or not the bus was busy)."""
        if cycle < self.warmup:
            return
        self.observed_cycles += 1

    def record_idle_cycles(self, start: int, stop: int) -> None:
        """Bulk form of :meth:`record_idle_cycle` for the half-open range
        ``[start, stop)`` — used when the simulator fast-forwards over
        globally idle cycles, so the utilization denominator stays exactly
        what per-cycle accounting would have produced."""
        self.observed_cycles += max(0, stop - max(start, self.warmup))

    def record_command(self, cycle: int, kind: str) -> None:
        if cycle < self.warmup:
            return
        self.commands_issued[kind] = self.commands_issued.get(kind, 0) + 1

    def record_row_outcome(
        self, cycle: int, hit: bool, bank: Optional[int] = None
    ) -> None:
        if cycle < self.warmup:
            return
        if hit:
            self.row_hits += 1
        else:
            self.row_misses += 1
        if bank is not None:
            tally = self.per_bank_rows.get(bank)
            if tally is None:
                tally = self.per_bank_rows[bank] = [0, 0]
            tally[0 if hit else 1] += 1

    # ------------------------------------------------------------------ #
    # Derived metrics
    # ------------------------------------------------------------------ #

    @property
    def utilization(self) -> float:
        """Useful-data utilization: requested beats moved / bus capacity."""
        if self.observed_cycles == 0:
            return 0.0
        return self.useful_cycles / self.observed_cycles

    @property
    def raw_utilization(self) -> float:
        """Bus-occupancy utilization, counting wasted (overfetched) beats."""
        if self.observed_cycles == 0:
            return 0.0
        return self.busy_cycles / self.observed_cycles

    @property
    def mean_latency(self) -> float:
        return self.all_packets.mean

    @property
    def mean_demand_latency(self) -> float:
        return self.demand_packets.mean

    @property
    def row_hit_rate(self) -> float:
        total = self.row_hits + self.row_misses
        return self.row_hits / total if total else 0.0

    def summary(self) -> Dict[str, float]:
        """Flat dict of the headline metrics, for reports and tests."""
        return {
            "utilization": self.utilization,
            "raw_utilization": self.raw_utilization,
            "latency_all": self.mean_latency,
            "latency_demand": self.mean_demand_latency,
            "completed": float(self.all_packets.count),
            "row_hit_rate": self.row_hit_rate,
        }


@dataclass
class RunMetrics:
    """Frozen snapshot of one simulation run's headline metrics.

    ``service_p100`` / ``wcet_bound`` carry the memory-arbiter WCET
    column: the measured worst-case service latency (admission → final
    data beat, from the scheduler's always-on series) and the backend's
    analytic bound when it has one.  Both default empty so records cached
    before the scheduler seam still round-trip through
    ``RunMetrics(**payload)``.
    """

    utilization: float
    raw_utilization: float
    latency_all: float
    latency_demand: float
    completed: int
    row_hit_rate: float
    cycles: int
    service_p100: float = 0.0
    wcet_bound: Optional[float] = None

    @classmethod
    def from_collector(
        cls,
        stats: StatsCollector,
        cycles: int,
        scheduler=None,
    ) -> "RunMetrics":
        service_p100 = 0.0
        wcet_bound: Optional[float] = None
        if scheduler is not None:
            series = getattr(scheduler, "service_latency", None)
            if series is not None and series.count:
                service_p100 = series.p100
            bound_fn = getattr(scheduler, "latency_bound", None)
            if bound_fn is not None:
                bound = bound_fn()
                if bound is not None:
                    wcet_bound = float(bound)
        return cls(
            utilization=stats.utilization,
            raw_utilization=stats.raw_utilization,
            latency_all=stats.mean_latency,
            latency_demand=stats.mean_demand_latency,
            completed=stats.all_packets.count,
            row_hit_rate=stats.row_hit_rate,
            cycles=cycles,
            service_p100=service_p100,
            wcet_bound=wcet_bound,
        )
