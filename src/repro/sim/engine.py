"""Cycle-driven simulation kernel.

The whole system (traffic generators, NoC routers, memory subsystem, SDRAM
device) advances in lockstep, one memory-clock cycle at a time.  Components
implement the :class:`Clocked` protocol and are registered with a
:class:`Simulator` in pipeline order (producers before consumers), which keeps
single-cycle forwarding deterministic without a two-phase commit.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Protocol, runtime_checkable


@runtime_checkable
class Clocked(Protocol):
    """Anything that advances by one clock cycle."""

    def tick(self, cycle: int) -> None:
        """Advance this component to the end of ``cycle``."""


class Simulator:
    """Fixed-order, cycle-driven simulator.

    Components are ticked every cycle in registration order.  Registration
    order therefore defines intra-cycle data-flow order: a component
    registered earlier can hand data to a later component within the same
    cycle, while the reverse incurs a one-cycle delay — exactly the
    behaviour of registered (flip-flop separated) hardware pipelines.
    """

    def __init__(self) -> None:
        self._components: List[Clocked] = []
        self._cycle = 0
        self._hooks: List[Callable[[int], None]] = []
        self._profiler = None

    @property
    def cycle(self) -> int:
        """Number of cycles simulated so far."""
        return self._cycle

    def add(self, component: Clocked) -> Clocked:
        """Register ``component`` and return it (for fluent wiring)."""
        if not hasattr(component, "tick"):
            raise TypeError(f"{component!r} does not implement tick()")
        self._components.append(component)
        return component

    def add_all(self, components) -> None:
        """Register every component in ``components`` in iteration order."""
        for component in components:
            self.add(component)

    def on_cycle(self, hook: Callable[[int], None]) -> None:
        """Call ``hook(cycle)`` at the end of every simulated cycle."""
        self._hooks.append(hook)

    def attach_profiler(self, profiler) -> None:
        """Route every subsequent cycle through ``profiler.step`` (see
        :class:`repro.obs.profiler.SimulatorProfiler`); ``None`` detaches.
        The unprofiled dispatch loop is untouched when detached."""
        self._profiler = profiler

    @property
    def profiler(self):
        return self._profiler

    def step(self) -> int:
        """Advance the system by exactly one cycle; return the new cycle count."""
        cycle = self._cycle
        if self._profiler is None:
            for component in self._components:
                component.tick(cycle)
            for hook in self._hooks:
                hook(cycle)
        else:
            self._profiler.step(self._components, self._hooks, cycle)
        self._cycle = cycle + 1
        return self._cycle

    def run(self, cycles: int, until: Optional[Callable[[], bool]] = None) -> int:
        """Run for ``cycles`` cycles, or until ``until()`` becomes true.

        Returns the total number of cycles simulated so far.
        """
        if cycles < 0:
            raise ValueError("cycles must be non-negative")
        end = self._cycle + cycles
        while self._cycle < end:
            self.step()
            if until is not None and until():
                break
        return self._cycle
