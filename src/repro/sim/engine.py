"""Cycle-driven simulation kernel with idle-aware dispatch.

The whole system (traffic generators, NoC routers, memory subsystem, SDRAM
device) advances in lockstep, one memory-clock cycle at a time.  Components
implement the :class:`Clocked` protocol and are registered with a
:class:`Simulator` in pipeline order (producers before consumers), which keeps
single-cycle forwarding deterministic without a two-phase commit.

Idle-aware dispatch
-------------------

Ticking every component every memory-clock cycle is wasteful in exactly the
regime bandwidth-bound SoCs live in: most cycles, most of the fabric is
quiescent.  Components may therefore opt into the **idle-skip contract**:

* ``is_idle(cycle) -> bool`` — ``True`` iff ``tick(cycle)`` would be a
  provable no-op *and* the component stays a no-op every subsequent cycle
  until either an external input arrives (another component's tick) or its
  own ``wake_at()`` cycle is reached.  The simulator then skips the tick.
  Because a skipped tick changes no state, skipping is bit-identical to
  naive stepping by construction.
* ``wake_at() -> Optional[int]`` — earliest future cycle at which the
  component could become non-idle *on its own* (a traffic generator's next
  issue, a refresh timer's next due cycle, a watchdog deadline).  ``None``
  means purely reactive: only another component can wake it.
* ``on_cycles_skipped(start, stop) -> None`` (optional) — account for the
  half-open cycle range ``[start, stop)`` the component was never ticked
  for.  Used by per-cycle bookkeeping such as the SDRAM observed-cycle
  counter, so fast-forwarding keeps utilization denominators exact.

When *every* registered component reports idle in the same cycle, the
kernel **fast-forwards**: it jumps straight to the minimum ``wake_at()``
(bounded by the run horizon) instead of stepping through the gap one cycle
at a time.  Fast-forwarding is disabled while ``on_cycle`` hooks or a
profiler are attached — those observe individual cycles — and per-component
skipping is disabled under a profiler so attribution stays truthful.

Set ``idle_skip=False`` (or ``Simulator(idle_skip=False)``) to force naive
exhaustive stepping; the golden regression tests run both kernels and
require bit-identical metrics.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Protocol, runtime_checkable


@runtime_checkable
class Clocked(Protocol):
    """Anything that advances by one clock cycle."""

    def tick(self, cycle: int) -> None:
        """Advance this component to the end of ``cycle``."""


class Simulator:
    """Fixed-order, cycle-driven simulator.

    Components are ticked every cycle in registration order.  Registration
    order therefore defines intra-cycle data-flow order: a component
    registered earlier can hand data to a later component within the same
    cycle, while the reverse incurs a one-cycle delay — exactly the
    behaviour of registered (flip-flop separated) hardware pipelines.
    """

    def __init__(self, idle_skip: bool = True) -> None:
        self._components: List[Clocked] = []
        self._cycle = 0
        self._hooks: List[Callable[[int], None]] = []
        self._profiler = None
        self.idle_skip = idle_skip
        # Parallel to _components: bound fast-path methods, or None when a
        # component does not implement the corresponding contract method.
        self._ticks: List[Callable[[int], None]] = []
        self._idle_checks: List[Optional[Callable[[int], bool]]] = []
        self._wake_ats: List[Optional[Callable[[], Optional[int]]]] = []
        self._skip_accounts: List[Optional[Callable[[int, int], None]]] = []
        # Per-cycle skip predicates: like _idle_checks, but None for
        # components with on_cycles_skipped — those keep per-cycle state
        # (e.g. observed-cycle counters) that only bulk fast-forward
        # accounting may elide, so step() must always tick them.
        self._step_idle_checks: List[Optional[Callable[[int], bool]]] = []
        # (check, tick) pairs, so the per-cycle dispatch loop iterates one
        # list without indexing into the parallel ones.
        self._step_pairs: List = []
        #: Cycles elided by fast-forward (telemetry; counted in ``cycle``).
        self.fast_forwarded_cycles = 0

    @property
    def cycle(self) -> int:
        """Number of cycles simulated so far."""
        return self._cycle

    def add(self, component: Clocked) -> Clocked:
        """Register ``component`` and return it (for fluent wiring)."""
        tick = getattr(component, "tick", None)
        if not callable(tick):
            raise TypeError(f"{component!r} does not implement tick()")
        self._components.append(component)
        self._ticks.append(tick)
        is_idle = getattr(component, "is_idle", None)
        if not callable(is_idle):
            is_idle = None
        self._idle_checks.append(is_idle)
        wake_at = getattr(component, "wake_at", None)
        self._wake_ats.append(wake_at if callable(wake_at) else None)
        skipped = getattr(component, "on_cycles_skipped", None)
        if not callable(skipped):
            skipped = None
        self._skip_accounts.append(skipped)
        # Components with bulk skip accounting must be ticked every
        # stepped cycle; self-gating components ask to be ticked directly
        # because their tick() is already a cheap no-op when idle, making
        # a separate per-cycle idle probe pure overhead.  Both still
        # participate in fast-forward via is_idle/wake_at.
        if skipped is not None or getattr(component, "step_self_gating", False):
            step_check = None
        else:
            step_check = is_idle
        self._step_idle_checks.append(step_check)
        self._step_pairs.append((step_check, tick))
        return component

    def add_all(self, components) -> None:
        """Register every component in ``components`` in iteration order."""
        for component in components:
            self.add(component)

    def on_cycle(self, hook: Callable[[int], None]) -> None:
        """Call ``hook(cycle)`` at the end of every simulated cycle."""
        self._hooks.append(hook)

    def attach_profiler(self, profiler) -> None:
        """Route every subsequent cycle through ``profiler.step`` (see
        :class:`repro.obs.profiler.SimulatorProfiler`); ``None`` detaches.
        The unprofiled dispatch loop is untouched when detached."""
        self._profiler = profiler

    @property
    def profiler(self):
        return self._profiler

    def step(self) -> int:
        """Advance the system by exactly one cycle; return the new cycle count."""
        cycle = self._cycle
        if self._profiler is None:
            if self.idle_skip:
                for check, tick in self._step_pairs:
                    if check is not None and check(cycle):
                        continue
                    tick(cycle)
            else:
                for tick in self._ticks:
                    tick(cycle)
            for hook in self._hooks:
                hook(cycle)
        else:
            self._profiler.step(self._components, self._hooks, cycle)
        self._cycle = cycle + 1
        return self._cycle

    # ------------------------------------------------------------------ #
    # Fast-forward support
    # ------------------------------------------------------------------ #

    def _all_idle(self, cycle: int) -> bool:
        """Every component implements and reports the idle contract."""
        for check in self._idle_checks:
            if check is None or not check(cycle):
                return False
        return True

    def _next_wake(self) -> Optional[int]:
        """Earliest self-wake cycle across components (None = fully
        reactive system: with everything idle, nothing ever happens)."""
        earliest: Optional[int] = None
        for wake in self._wake_ats:
            if wake is None:
                continue
            candidate = wake()
            if candidate is None:
                continue
            if earliest is None or candidate < earliest:
                earliest = candidate
        return earliest

    def _fast_forward(self, end: int) -> bool:
        """If the whole system is idle at the current cycle, jump to the
        next wake cycle (clamped to ``end``).  Returns whether a jump
        happened.  Skipped ranges are reported to components that account
        per-cycle state via ``on_cycles_skipped``."""
        cycle = self._cycle
        if not self._all_idle(cycle):
            return False
        wake = self._next_wake()
        target = end if wake is None else min(max(wake, cycle + 1), end)
        if target <= cycle:
            return False
        for account in self._skip_accounts:
            if account is not None:
                account(cycle, target)
        self.fast_forwarded_cycles += target - cycle
        self._cycle = target
        return True

    def run(self, cycles: int, until: Optional[Callable[[], bool]] = None) -> int:
        """Run for ``cycles`` cycles, or until ``until()`` becomes true.

        ``until`` is evaluated *before* each step, so a predicate that is
        already true at entry simulates zero cycles.  Returns the total
        number of cycles simulated so far.
        """
        if cycles < 0:
            raise ValueError("cycles must be non-negative")
        end = self._cycle + cycles
        fast_forward_ok = (
            self.idle_skip and self._profiler is None and not self._hooks
        )
        while self._cycle < end:
            if until is not None and until():
                break
            if fast_forward_ok and self._fast_forward(end):
                continue
            self.step()
        return self._cycle
