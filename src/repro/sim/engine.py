"""Cycle-driven simulation kernel with event-driven dispatch.

The whole system (traffic generators, NoC routers, memory subsystem, SDRAM
device) advances in lockstep, one memory-clock cycle at a time.  Components
implement the :class:`Clocked` protocol and are registered with a
:class:`Simulator` in pipeline order (producers before consumers), which keeps
single-cycle forwarding deterministic without a two-phase commit.

Dispatch tiers
--------------

The kernel picks the cheapest dispatch strategy the registered components
support, in order:

1. **Event dispatch** — when *every* component implements the event
   contract (below), components are not polled at all: each one *arms* the
   calendar wake-queue with the next cycle it needs to run, and reactive
   components are woken by their upstream producers through wake handles.
   Cycles on which nothing is armed are jumped over in one step.
2. **Idle-skip stepping** — the legacy contract: every cycle, every
   component is either ticked or skipped via a cheap ``is_idle`` probe,
   and whole-system idle gaps fast-forward to the earliest ``wake_at``.
   Any registered component without the event contract drops the whole
   simulator to this tier (the documented escape hatch: a component only
   needs ``tick`` to participate, it just costs per-cycle dispatch).
3. **Naive stepping** (``idle_skip=False``) — tick everything every cycle.
   This is the bit-exact reference the golden-identity suite compares the
   other tiers against.

Idle-skip contract (legacy / tier 2)
------------------------------------

* ``is_idle(cycle) -> bool`` — ``True`` iff ``tick(cycle)`` would be a
  provable no-op *and* the component stays a no-op every subsequent cycle
  until either an external input arrives (another component's tick) or its
  own ``wake_at()`` cycle is reached.  The simulator then skips the tick.
* ``wake_at() -> Optional[int]`` — earliest future cycle at which the
  component could become non-idle *on its own*.  ``None`` means purely
  reactive: only another component can wake it.
* ``on_cycles_skipped(start, stop) -> None`` (optional) — account for the
  half-open cycle range ``[start, stop)`` the component was never ticked
  for (per-cycle bookkeeping such as the SDRAM observed-cycle counter).

Event contract (tier 1)
-----------------------

* ``event_wake_at(cycle) -> Optional[int]`` — called right after every
  ``tick(cycle)``; returns the next cycle this component needs to tick
  *absent any external input* (``None`` = purely reactive until woken).
  Unlike ``wake_at`` this is consulted while the component is busy, so it
  can express fine-grained stalls ("nothing until the DRAM bus frees at
  cycle N").  Returning a cycle ``<= cycle`` re-arms for ``cycle + 1``.
* ``attach_wake(wake)`` (optional) — receives a wake handle the component
  (or its producers) may call whenever its inputs change:
  ``wake()`` arms the component as soon as the registration order allows —
  *this* cycle if the caller runs earlier in registration order than the
  target (the target has not been processed yet), the *next* cycle
  otherwise.  That reproduces exactly the visibility rule of ordered
  per-cycle stepping: an earlier-registered producer's output is seen the
  same cycle, a later-registered producer's the next cycle.
  ``wake(at)`` arms a specific future cycle (e.g. a scheduled deadline).
* Arming is conservative by construction: a spurious wake only runs a
  tick that naive stepping would have run as a state-gated no-op, so
  extra wakes are always bit-identical.  Only a *missed* wake can diverge
  — which is what the golden-identity and property suites hunt.
* ``on_run_mode(event_dispatch)`` (optional) — notified at every
  :meth:`Simulator.run` entry whether event dispatch is active, so
  components can enable internal event-only shortcuts (e.g. router sleep
  states) only when the reference kernels are not in use.
* ``on_run_start(cycle)`` / ``on_run_end(cycle)`` (optional) — run
  brackets: called at every :meth:`Simulator.run` entry and exit (exit
  fires even when the run raises).  This is how observation components —
  the telemetry sampler above all — flush partial state at run
  boundaries without the system layer having to know about them: the
  sampler is just another registered component, armed on the wake queue
  like everything else.

Skip accounting works on both tiers: under event dispatch the kernel
bulk-accounts each component's un-ticked gaps lazily (before its next tick
and at run exit), so per-cycle denominators stay exact even when other
components keep the cycle busy.

Serialization
-------------

A :class:`Simulator` pickles as its registered components plus the clock
and telemetry flags — none of the derived dispatch state (parallel tick
lists, calendar heap, armed deadlines, wake closures) is serialized.
That state is only meaningful *between* ``run()`` calls, where it is
redundant by construction: ``_event_run`` re-arms every component at run
entry and spurious ticks are state-gated no-ops, so ``run(k); run(N-k)``
is bit-identical to ``run(N)``.  Checkpoints (see
:mod:`repro.sim.checkpoint`) are therefore taken at run boundaries, and
a restored simulator rebuilds its dispatch state by re-registering its
components lazily on first use (:meth:`Simulator._rebind`), which also
re-issues every ``attach_wake`` handle.  Wake handles themselves are
process-local closures and are never serialized: components that store
one drop it in ``__getstate__`` (identified via :func:`is_engine_wake`).

Fast-forward inhibition
-----------------------

``on_cycle`` hooks observe individual cycles, so any hook forces tier 2/3
stepping with fast-forward disabled.  A profiler forces tier-2 stepping
only on legacy systems; on all-event systems it rides event dispatch and
attributes exactly the ticks that actually ran.  Both cases are surfaced
through the ``fast_forward_inhibited`` telemetry flag and a one-shot
logged warning instead of silently degrading.
"""

from __future__ import annotations

import logging
from bisect import insort
from heapq import heappop, heappush
from typing import Callable, List, Optional, Protocol, runtime_checkable

logger = logging.getLogger(__name__)

#: Sentinel wake cycle for "not armed" (far past any simulated horizon).
_NEVER = 1 << 62


def is_engine_wake(hook) -> bool:
    """Whether ``hook`` is a wake handle issued by a :class:`Simulator`.

    Wake handles are process-local closures over live dispatch state, so
    they must never be pickled; components that may hold one (directly or
    through a buffer hook) consult this in ``__getstate__`` and drop it —
    restore re-issues handles through :meth:`Simulator._rebind`.
    """
    return getattr(hook, "_engine_wake", False) is True


@runtime_checkable
class Clocked(Protocol):
    """Anything that advances by one clock cycle."""

    def tick(self, cycle: int) -> None:
        """Advance this component to the end of ``cycle``."""


class Simulator:
    """Fixed-order, cycle-driven simulator.

    Components are processed every cycle in registration order.
    Registration order therefore defines intra-cycle data-flow order: a
    component registered earlier can hand data to a later component within
    the same cycle, while the reverse incurs a one-cycle delay — exactly
    the behaviour of registered (flip-flop separated) hardware pipelines.
    The event-dispatch wake queue preserves that order: due components are
    run in registration order within each cycle, and a wake arriving
    mid-cycle lands in the current cycle only if its target has not been
    processed yet.
    """

    def __init__(self, idle_skip: bool = True) -> None:
        self._components: List[Clocked] = []
        self._cycle = 0
        self._hooks: List[Callable[[int], None]] = []
        self._profiler = None
        self.idle_skip = idle_skip
        # Parallel to _components: bound fast-path methods, or None when a
        # component does not implement the corresponding contract method.
        self._ticks: List[Callable[[int], None]] = []
        self._idle_checks: List[Optional[Callable[[int], bool]]] = []
        self._skip_accounts: List[Optional[Callable[[int, int], None]]] = []
        # Legacy wake sources, compacted at registration: only components
        # that actually implement wake_at are scanned on a fast-forward
        # attempt (most components are purely reactive), instead of the
        # old O(N)-over-everything probe.
        self._wake_sources: List[Callable[[], Optional[int]]] = []
        # Per-cycle skip predicates: like _idle_checks, but None for
        # components with on_cycles_skipped — those keep per-cycle state
        # (e.g. observed-cycle counters) that only bulk fast-forward
        # accounting may elide, so step() must always tick them.
        self._step_idle_checks: List[Optional[Callable[[int], bool]]] = []
        # (check, tick) pairs, so the per-cycle dispatch loop iterates one
        # list without indexing into the parallel ones.
        self._step_pairs: List = []
        # --- event-dispatch state ---------------------------------------
        self._event_wakes: List[Optional[Callable[[int], Optional[int]]]] = []
        self._labels: List[str] = []
        self._mode_hooks: List[Callable[[bool], None]] = []
        self._run_starts: List[Callable[[int], None]] = []
        self._run_ends: List[Callable[[int], None]] = []
        self._all_event = True
        #: Armed wake cycle per component (_NEVER = not armed); the heap
        #: holds (cycle, index) entries validated lazily against it.
        self._armed: List[int] = []
        #: Per-component "already queued in the cycle being processed"
        #: flag: the heap may hold several entries for one component (one
        #: per re-arm), so collection dedups through this, not ``_armed``.
        self._queued = bytearray()
        self._heap: List = []
        #: Indices due in the cycle currently being processed (sorted);
        #: wake handles insort into it past the processing position.
        self._ready: List[int] = []
        #: Next cycle still unaccounted per component (skip accounting).
        self._accounted: List[int] = []
        self._now = -1        # cycle being processed (-1 = between cycles)
        self._progress = -1   # index being processed within _now
        self._event_live = False
        #: Cycles elided by fast-forward or event-queue jumps (telemetry;
        #: counted in ``cycle``).
        self.fast_forwarded_cycles = 0
        #: True once a run had to disable fast-forward (hooks attached, or
        #: a profiler on a non-event system) — see the one-shot warning.
        self.fast_forward_inhibited = False
        self._warned_inhibited = False
        #: Dispatch tier of the most recent run(): "event", "stepped",
        #: "naive" (introspection for tests and reports).
        self.last_dispatch_mode: Optional[str] = None
        #: Components restored from a pickle but not yet re-registered
        #: (see __setstate__/_rebind); None once dispatch state is live.
        self._pending_rebind: Optional[List[Clocked]] = None

    @property
    def cycle(self) -> int:
        """Number of cycles simulated so far."""
        return self._cycle

    def add(self, component: Clocked) -> Clocked:
        """Register ``component`` and return it (for fluent wiring)."""
        if self._pending_rebind is not None:
            # Restored-from-pickle simulator: re-register the saved
            # components first so they keep their original indices (and
            # therefore their original intra-cycle ordering).
            self._rebind()
        tick = getattr(component, "tick", None)
        if not callable(tick):
            raise TypeError(f"{component!r} does not implement tick()")
        index = len(self._components)
        self._components.append(component)
        self._ticks.append(tick)
        self._labels.append(type(component).__name__)
        is_idle = getattr(component, "is_idle", None)
        if not callable(is_idle):
            is_idle = None
        self._idle_checks.append(is_idle)
        wake_at = getattr(component, "wake_at", None)
        if callable(wake_at):
            self._wake_sources.append(wake_at)
        skipped = getattr(component, "on_cycles_skipped", None)
        if not callable(skipped):
            skipped = None
        self._skip_accounts.append(skipped)
        # Components with bulk skip accounting must be ticked every
        # stepped cycle; self-gating components ask to be ticked directly
        # because their tick() is already a cheap no-op when idle, making
        # a separate per-cycle idle probe pure overhead.  Both still
        # participate in fast-forward via is_idle/wake_at.
        if skipped is not None or getattr(component, "step_self_gating", False):
            step_check = None
        else:
            step_check = is_idle
        self._step_idle_checks.append(step_check)
        self._step_pairs.append((step_check, tick))
        # Event contract: event_wake_at makes the component event-capable;
        # one legacy component in the system drops every run to stepping.
        event_wake = getattr(component, "event_wake_at", None)
        if not callable(event_wake):
            event_wake = None
            self._all_event = False
        self._event_wakes.append(event_wake)
        self._armed.append(_NEVER)
        self._queued.append(0)
        self._accounted.append(self._cycle)
        attach = getattr(component, "attach_wake", None)
        if callable(attach):
            attach(self._make_wake(index))
        mode_hook = getattr(component, "on_run_mode", None)
        if callable(mode_hook):
            self._mode_hooks.append(mode_hook)
        run_start = getattr(component, "on_run_start", None)
        if callable(run_start):
            self._run_starts.append(run_start)
        run_end = getattr(component, "on_run_end", None)
        if callable(run_end):
            self._run_ends.append(run_end)
        return component

    def add_all(self, components) -> None:
        """Register every component in ``components`` in iteration order."""
        for component in components:
            self.add(component)

    def on_cycle(self, hook: Callable[[int], None]) -> None:
        """Call ``hook(cycle)`` at the end of every simulated cycle."""
        self._hooks.append(hook)

    def attach_profiler(self, profiler) -> None:
        """Route every subsequent cycle through the profiler (see
        :class:`repro.obs.profiler.SimulatorProfiler`); ``None`` detaches.
        The unprofiled dispatch loops are untouched when detached."""
        self._profiler = profiler

    @property
    def profiler(self):
        return self._profiler

    # ------------------------------------------------------------------ #
    # Wake handles
    # ------------------------------------------------------------------ #

    def _make_wake(self, index: int) -> Callable[..., None]:
        """Build the wake handle for component ``index``.

        ``wake()`` — arm as early as ordering allows (see module docs);
        ``wake(at)`` — arm at the future cycle ``at``.
        Handles are inert (cheap early return) outside event dispatch, so
        producer-side hook calls cost one branch on the reference kernels.
        """

        def wake(at: Optional[int] = None) -> None:
            if not self._event_live:
                return
            armed = self._armed
            now = self._now
            if now >= 0:
                if at is None or at <= now:
                    if index > self._progress:
                        # Not yet processed this cycle: run it this cycle,
                        # exactly as ordered stepping would.
                        if not self._queued[index]:
                            self._queued[index] = 1
                            armed[index] = now
                            insort(self._ready, index)
                        return
                    at = now + 1
            else:
                base = self._cycle
                if at is None or at < base:
                    at = base
            if at < armed[index]:
                armed[index] = at
                heappush(self._heap, (at, index))

        # Serialization marker (see is_engine_wake): holders drop tagged
        # closures in __getstate__; _rebind re-issues them.
        wake._engine_wake = True
        return wake

    # ------------------------------------------------------------------ #
    # Serialization (see module docs, "Serialization")
    # ------------------------------------------------------------------ #

    def __getstate__(self):
        """Components, clock, and telemetry — no derived dispatch state."""
        return {
            "components": self._components,
            "cycle": self._cycle,
            "hooks": self._hooks,
            "idle_skip": self.idle_skip,
            "fast_forwarded_cycles": self.fast_forwarded_cycles,
            "fast_forward_inhibited": self.fast_forward_inhibited,
            "warned_inhibited": self._warned_inhibited,
            "last_dispatch_mode": self.last_dispatch_mode,
        }

    def __setstate__(self, state):
        # Re-registration is deferred: at __setstate__ time the component
        # graph may still be mid-unpickle (cyclic references), so calling
        # attach_wake here could hand handles to half-restored objects —
        # and a component's own later __setstate__ would clobber them
        # anyway.  _rebind runs on first use instead, when the graph is
        # guaranteed complete.
        self.__init__(idle_skip=state["idle_skip"])
        self._cycle = state["cycle"]
        self._hooks = state["hooks"]
        self.fast_forwarded_cycles = state["fast_forwarded_cycles"]
        self.fast_forward_inhibited = state["fast_forward_inhibited"]
        self._warned_inhibited = state["warned_inhibited"]
        self.last_dispatch_mode = state["last_dispatch_mode"]
        self._pending_rebind = state["components"]

    def _rebind(self) -> None:
        """Rebuild dispatch state after unpickling: re-register every
        saved component (original order), re-issuing wake handles."""
        components = self._pending_rebind
        self._pending_rebind = None
        if components:
            self.add_all(components)

    # ------------------------------------------------------------------ #
    # Per-cycle stepping (tiers 2/3; also the manual step() entry point)
    # ------------------------------------------------------------------ #

    def step(self) -> int:
        """Advance the system by exactly one cycle; return the new cycle count."""
        if self._pending_rebind is not None:
            self._rebind()
        cycle = self._cycle
        if self._profiler is None:
            if self.idle_skip:
                for check, tick in self._step_pairs:
                    if check is not None and check(cycle):
                        continue
                    tick(cycle)
            else:
                for tick in self._ticks:
                    tick(cycle)
            for hook in self._hooks:
                hook(cycle)
        else:
            self._profiler.step(self._components, self._hooks, cycle)
        self._cycle = cycle + 1
        return self._cycle

    # ------------------------------------------------------------------ #
    # Legacy fast-forward support
    # ------------------------------------------------------------------ #

    def _all_idle(self, cycle: int) -> bool:
        """Every component implements and reports the idle contract."""
        for check in self._idle_checks:
            if check is None or not check(cycle):
                return False
        return True

    def _next_wake(self) -> Optional[int]:
        """Earliest self-wake cycle across the components that declare one
        (``_wake_sources`` is compacted at registration, so purely
        reactive components cost nothing here)."""
        earliest: Optional[int] = None
        for wake in self._wake_sources:
            candidate = wake()
            if candidate is None:
                continue
            if earliest is None or candidate < earliest:
                earliest = candidate
        return earliest

    def _fast_forward(self, end: int) -> bool:
        """If the whole system is idle at the current cycle, jump to the
        next wake cycle (clamped to ``end``).  Returns whether a jump
        happened.  Skipped ranges are reported to components that account
        per-cycle state via ``on_cycles_skipped``."""
        cycle = self._cycle
        if not self._all_idle(cycle):
            return False
        wake = self._next_wake()
        target = end if wake is None else min(max(wake, cycle + 1), end)
        if target <= cycle:
            return False
        for account in self._skip_accounts:
            if account is not None:
                account(cycle, target)
        self.fast_forwarded_cycles += target - cycle
        self._cycle = target
        return True

    # ------------------------------------------------------------------ #
    # Event dispatch (tier 1)
    # ------------------------------------------------------------------ #

    def _event_run(self, end: int, until, profiler) -> None:
        heap = self._heap
        armed = self._armed
        queued = self._queued
        ready = self._ready
        ticks = self._ticks
        event_wakes = self._event_wakes
        accounts = self._skip_accounts
        accounted = self._accounted
        labels = self._labels
        # Arm everything for the entry cycle: external state may have
        # changed between runs (drain flags, reconfiguration); the ticks
        # are state-gated no-ops when nothing did.
        entry = self._cycle
        for index in range(len(ticks)):
            armed[index] = entry
            heappush(heap, (entry, index))
        # Post-tick re-arms for exactly the next cycle — the dominant case
        # while the system is busy — bypass the heap entirely: they land in
        # ``carry`` and are consumed at the very next iteration.
        carry: List[int] = []
        while self._cycle < end:
            if until is not None and until():
                break
            if carry:
                cycle = self._cycle
            else:
                # Next validly armed cycle (lazy deletion of stale
                # entries).
                while heap:
                    item = heap[0]
                    if armed[item[1]] == item[0]:
                        break
                    heappop(heap)
                nxt = heap[0][0] if heap else end
                if nxt >= end:
                    self.fast_forwarded_cycles += end - self._cycle
                    self._cycle = end
                    break
                if nxt > self._cycle:
                    self.fast_forwarded_cycles += nxt - self._cycle
                    self._cycle = nxt
                cycle = nxt
            del ready[:]
            for index in carry:
                if armed[index] == cycle and not queued[index]:
                    queued[index] = 1
                    ready.append(index)
            del carry[:]
            while heap and heap[0][0] == cycle:
                _, index = heappop(heap)
                if armed[index] == cycle and not queued[index]:
                    queued[index] = 1
                    ready.append(index)
            ready.sort()
            self._now = cycle
            pos = 0
            while pos < len(ready):
                index = ready[pos]
                self._progress = index
                queued[index] = 0
                armed[index] = _NEVER
                account = accounts[index]
                if account is not None:
                    start = accounted[index]
                    if start < cycle:
                        account(start, cycle)
                    accounted[index] = cycle + 1
                if profiler is None:
                    ticks[index](cycle)
                else:
                    profiler.timed_tick(labels[index], ticks[index], cycle)
                wake = event_wakes[index](cycle)
                if wake is not None:
                    if wake <= cycle:
                        wake = cycle + 1
                    if wake < armed[index]:
                        armed[index] = wake
                        if wake == cycle + 1:
                            carry.append(index)
                        else:
                            heappush(heap, (wake, index))
                pos += 1
            self._now = -1
            self._progress = -1
            if profiler is not None:
                profiler.end_cycle(cycle)
            self._cycle = cycle + 1
        # Flush skip accounting for components still asleep at run exit,
        # so denominators cover the full horizon.
        stop = self._cycle
        for index, account in enumerate(accounts):
            if account is not None:
                start = accounted[index]
                if start < stop:
                    account(start, stop)
                accounted[index] = stop

    # ------------------------------------------------------------------ #

    def _announce_mode(self, event_dispatch: bool) -> None:
        for hook in self._mode_hooks:
            hook(event_dispatch)

    def _warn_inhibited(self, reason: str) -> None:
        self.fast_forward_inhibited = True
        if not self._warned_inhibited:
            self._warned_inhibited = True
            logger.warning(
                "fast-forward disabled for this run (%s): every cycle "
                "will be stepped individually", reason
            )

    def run(
        self,
        cycles: int,
        until: Optional[Callable[[], bool]] = None,
        *,
        checkpoint_every: Optional[int] = None,
        on_checkpoint: Optional[Callable[[int], object]] = None,
    ) -> int:
        """Run for ``cycles`` cycles, or until ``until()`` becomes true.

        ``until`` is evaluated *before* each processed cycle, so a
        predicate that is already true at entry simulates zero cycles.
        Returns the total number of cycles simulated so far.

        With ``checkpoint_every`` set, the horizon is executed as a
        sequence of run segments of at most that many cycles, and
        ``on_checkpoint(cycle)`` is called after each one — the hook
        (typically :func:`repro.sim.checkpoint.save_checkpoint`) runs at
        a run boundary, where serialization is guaranteed resumable.  A
        truthy return from the hook stops the run early (how a signal
        handler turns "checkpoint, then exit" into a clean stop).
        Segmentation never inhibits fast-forward: each segment jumps its
        idle gaps exactly as one long run would, clamped to the segment
        end, so the cycles elided are identical.
        """
        if self._pending_rebind is not None:
            self._rebind()
        if cycles < 0:
            raise ValueError("cycles must be non-negative")
        if checkpoint_every is None:
            return self._run_bracketed(cycles, until)
        if checkpoint_every <= 0:
            raise ValueError("checkpoint_every must be positive")
        end = self._cycle + cycles
        while self._cycle < end:
            before = self._cycle
            self._run_bracketed(min(checkpoint_every, end - self._cycle), until)
            if self._cycle == before:
                break  # ``until`` already true: nothing left to snapshot
            if on_checkpoint is not None and on_checkpoint(self._cycle):
                break
        return self._cycle

    def _run_bracketed(
        self, cycles: int, until: Optional[Callable[[], bool]]
    ) -> int:
        for run_start in self._run_starts:
            run_start(self._cycle)
        try:
            return self._run(cycles, until)
        finally:
            for run_end in self._run_ends:
                run_end(self._cycle)

    def _run(self, cycles: int, until: Optional[Callable[[], bool]]) -> int:
        end = self._cycle + cycles
        event_ok = (
            self.idle_skip and self._all_event and not self._hooks
        )
        if event_ok:
            self.last_dispatch_mode = "event"
            self._announce_mode(True)
            self._event_live = True
            try:
                self._event_run(end, until, self._profiler)
            finally:
                self._event_live = False
            return self._cycle
        self.last_dispatch_mode = "stepped" if self.idle_skip else "naive"
        self._announce_mode(False)
        if self.idle_skip:
            if self._hooks:
                self._warn_inhibited("on_cycle hooks attached")
            elif self._profiler is not None and not self._all_event:
                self._warn_inhibited(
                    "profiler attached to a non-event-capable system"
                )
        fast_forward_ok = (
            self.idle_skip and self._profiler is None and not self._hooks
        )
        while self._cycle < end:
            if until is not None and until():
                break
            if fast_forward_ok and self._fast_forward(end):
                continue
            self.step()
        return self._cycle
