"""Structured result records shared by the experiment drivers."""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Dict, List

from .config import SystemConfig
from .stats import RunMetrics


@dataclass(frozen=True)
class RunResult:
    """Metrics from one simulated configuration."""

    config: SystemConfig
    metrics: RunMetrics

    @property
    def utilization(self) -> float:
        return self.metrics.utilization

    @property
    def latency_all(self) -> float:
        return self.metrics.latency_all

    @property
    def latency_demand(self) -> float:
        return self.metrics.latency_demand

    def to_dict(self) -> Dict[str, object]:
        record = {"label": self.config.label}
        record.update(asdict(self.metrics))
        return record


@dataclass(frozen=True)
class TableRow:
    """One row of a paper-style comparison table."""

    application: str
    clock_mhz: int
    ddr: str
    values: Dict[str, float]


def ratio_row(rows: List[TableRow], baseline_key: str) -> Dict[str, float]:
    """Compute the paper's 'Ratio' footer: column average / baseline average."""
    if not rows:
        return {}
    keys = rows[0].values.keys()
    averages = {
        key: sum(row.values[key] for row in rows) / len(rows) for key in keys
    }
    base = averages.get(baseline_key)
    if not base:
        return {key: 0.0 for key in keys}
    return {key: averages[key] / base for key in keys}
