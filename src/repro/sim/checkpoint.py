"""Deterministic checkpoint/restore for whole simulated systems.

A checkpoint is one atomic file holding the *complete* state of a
:class:`~repro.core.system.SocSystem` (or any picklable component
graph): event-engine clock, NoC buffers and in-flight flits, NI and
router state, DRAM bank FSMs and refresh counters, every derived RNG
stream, fault-injector schedules and resilience ledgers, and obs
counters.  The golden guarantee — enforced by the resume-identity test
suite — is that ``run(N)`` and ``run(k); save; load; run(N-k)`` produce
bit-identical metrics and trace events on every dispatch tier, with and
without fault injection.

Why whole-graph pickling: the simulator's components share live objects
(a packet sitting in a router buffer is the *same* object a watchdog
tracker holds).  Serializing per component would sever that aliasing;
one pickle of the root preserves it through the pickle memo.  The only
state excluded is process-local plumbing — engine wake closures,
telemetry callbacks, open file handles — which the engine rebuilds on
first use after restore (see :mod:`repro.sim.engine`, "Serialization").

File format (version :data:`SCHEMA_VERSION`)::

    MAGIC (8 bytes) | header length (4 bytes LE) | header JSON | payload

The header carries the schema version, the payload's length and CRC-32,
the clock cycle, and free-form ``meta``.  Loading verifies magic, schema
and CRC before unpickling and raises :class:`CheckpointError` with a
precise reason otherwise — a truncated or bit-flipped snapshot is
*rejected*, never silently half-loaded.  Writes are crash-safe: payload
to a temp file in the target directory, ``fsync``, then atomic
``os.replace``, so a crash mid-save leaves the previous snapshot intact.

Schema versioning policy: bump :data:`SCHEMA_VERSION` whenever the
serialized component graph changes shape (renamed attributes, new
simulator state).  Pickles are not migrated across versions — a mismatch
is an immediate, explicit error telling the user to re-run from scratch.
"""

from __future__ import annotations

import io
import json
import os
import pickle
import struct
import zlib
from pathlib import Path
from typing import Dict, Iterable, Optional, Tuple, Union

#: File magic: identifies a repro checkpoint regardless of extension.
MAGIC = b"REPROCKP"

#: Bump on any change to the serialized component-graph shape.
SCHEMA_VERSION = 1

_HEADER_STRUCT = struct.Struct("<I")

PathLike = Union[str, Path]


class CheckpointError(RuntimeError):
    """A snapshot could not be written, validated, or restored."""


def _cycle_of(system) -> Optional[int]:
    simulator = getattr(system, "simulator", system)
    cycle = getattr(simulator, "cycle", None)
    return int(cycle) if isinstance(cycle, int) else None


def _label_of(system) -> Optional[str]:
    config = getattr(system, "config", None)
    label = getattr(config, "label", None)
    return str(label) if label is not None else None


def save_checkpoint(
    path: PathLike,
    system,
    meta: Optional[Dict[str, object]] = None,
) -> Path:
    """Atomically write a snapshot of ``system`` to ``path``.

    The write is crash-safe (temp file + ``fsync`` + ``os.replace``): at
    every instant ``path`` either holds the previous valid snapshot or
    the new one, never a torn mix.  Returns the final path.
    """
    path = Path(path)
    try:
        payload = pickle.dumps(system, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as exc:
        raise CheckpointError(
            f"system is not serializable: {type(exc).__name__}: {exc}"
        ) from exc
    header = {
        "schema": SCHEMA_VERSION,
        "crc32": zlib.crc32(payload),
        "payload_bytes": len(payload),
        "cycle": _cycle_of(system),
        "label": _label_of(system),
        "meta": dict(meta) if meta else {},
    }
    header_bytes = json.dumps(header, sort_keys=True).encode("utf-8")
    if path.parent != Path(""):
        path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
    try:
        with open(tmp, "wb") as handle:
            handle.write(MAGIC)
            handle.write(_HEADER_STRUCT.pack(len(header_bytes)))
            handle.write(header_bytes)
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except OSError as exc:
        try:
            tmp.unlink()
        except OSError:
            pass
        raise CheckpointError(f"cannot write snapshot {path}: {exc}") from exc
    _fsync_directory(path.parent)
    return path


def _fsync_directory(directory: Path) -> None:
    """Best-effort durability for the rename itself."""
    try:
        fd = os.open(directory if str(directory) else ".", os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def read_header(path: PathLike) -> Dict[str, object]:
    """Parse and validate a snapshot's header (magic + schema only).

    Cheap — reads a few hundred bytes, not the payload.  Raises
    :class:`CheckpointError` on malformed files or schema mismatches.
    """
    path = Path(path)
    try:
        with open(path, "rb") as handle:
            header, _ = _read_header_stream(handle, path)
    except OSError as exc:
        raise CheckpointError(f"cannot read snapshot {path}: {exc}") from exc
    return header


def _read_header_stream(
    handle: io.BufferedReader, path: Path
) -> Tuple[Dict[str, object], int]:
    magic = handle.read(len(MAGIC))
    if magic != MAGIC:
        raise CheckpointError(
            f"{path} is not a repro checkpoint (bad magic "
            f"{magic!r}; expected {MAGIC!r})"
        )
    raw_len = handle.read(_HEADER_STRUCT.size)
    if len(raw_len) != _HEADER_STRUCT.size:
        raise CheckpointError(f"{path} is truncated (no header length)")
    (header_len,) = _HEADER_STRUCT.unpack(raw_len)
    header_bytes = handle.read(header_len)
    if len(header_bytes) != header_len:
        raise CheckpointError(f"{path} is truncated (incomplete header)")
    try:
        header = json.loads(header_bytes.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise CheckpointError(f"{path} has a corrupt header: {exc}") from exc
    schema = header.get("schema")
    if schema != SCHEMA_VERSION:
        raise CheckpointError(
            f"{path} was written with checkpoint schema v{schema}; this "
            f"build reads v{SCHEMA_VERSION}.  Snapshots are not migrated "
            "across schema versions — re-run from scratch."
        )
    return header, len(MAGIC) + _HEADER_STRUCT.size + header_len


def load_checkpoint(path: PathLike):
    """Load, verify, and restore the system snapshotted at ``path``.

    Verification order: magic → schema version → payload length →
    CRC-32 → unpickle.  Any failure raises :class:`CheckpointError`
    naming the failing stage; a valid snapshot returns the restored
    system, ready to ``run()`` (the simulator rebuilds its dispatch
    state and wake handles on first use).
    """
    path = Path(path)
    try:
        with open(path, "rb") as handle:
            header, _ = _read_header_stream(handle, path)
            payload = handle.read()
    except OSError as exc:
        raise CheckpointError(f"cannot read snapshot {path}: {exc}") from exc
    expected = header.get("payload_bytes")
    if expected != len(payload):
        raise CheckpointError(
            f"{path} is truncated: header promises {expected} payload "
            f"byte(s), file holds {len(payload)}"
        )
    crc = zlib.crc32(payload)
    if crc != header.get("crc32"):
        raise CheckpointError(
            f"{path} failed its CRC check (stored {header.get('crc32')}, "
            f"computed {crc}) — the snapshot is corrupted"
        )
    try:
        return pickle.loads(payload)
    except Exception as exc:
        raise CheckpointError(
            f"{path} passed validation but failed to unpickle "
            f"({type(exc).__name__}: {exc}) — was it written by a "
            "different code revision?"
        ) from exc


def latest_checkpoint(
    candidates: Union[PathLike, Iterable[PathLike]],
    pattern: str = "*.ckpt",
) -> Optional[Path]:
    """The newest *valid* snapshot among ``candidates``.

    ``candidates`` may be a directory (searched with ``pattern``), one
    path, or an iterable of paths.  Each candidate's header is validated
    (cheap); invalid or unreadable files are skipped, so a torn temp
    file or foreign file next to real snapshots never wins.  "Newest"
    means highest recorded cycle, ties broken by modification time.
    Returns ``None`` when no candidate validates.
    """
    if isinstance(candidates, (str, Path)):
        root = Path(candidates)
        paths = sorted(root.glob(pattern)) if root.is_dir() else [root]
    else:
        paths = [Path(p) for p in candidates]
    best: Optional[Tuple[int, float, Path]] = None
    for path in paths:
        try:
            header = read_header(path)
            mtime = path.stat().st_mtime
        except (CheckpointError, OSError):
            continue
        cycle = header.get("cycle")
        rank = (int(cycle) if isinstance(cycle, int) else -1, mtime, path)
        if best is None or rank[:2] > best[:2]:
            best = rank
    return best[2] if best is not None else None
