"""Cycle-driven simulation kernel, configuration, metrics, and analysis."""

from .analysis import (
    MasterReport,
    TailLatency,
    bandwidth_share,
    per_master_report,
    render_master_report,
    tail_latencies,
)

from .config import (
    ConfigError,
    DdrGeneration,
    NocDesign,
    PAPER_CLOCK_POINTS,
    SystemConfig,
    paper_configs,
)
from .engine import Clocked, Simulator
from .records import RunResult, TableRow, ratio_row
from .rng import core_rng, derive_rng, derive_seed, placement_rng
from .stats import LatencySeries, RunMetrics, StatsCollector

__all__ = [
    "Clocked",
    "ConfigError",
    "core_rng",
    "derive_rng",
    "derive_seed",
    "placement_rng",
    "MasterReport",
    "TailLatency",
    "bandwidth_share",
    "per_master_report",
    "render_master_report",
    "tail_latencies",
    "DdrGeneration",
    "LatencySeries",
    "NocDesign",
    "PAPER_CLOCK_POINTS",
    "RunMetrics",
    "RunResult",
    "Simulator",
    "StatsCollector",
    "SystemConfig",
    "TableRow",
    "paper_configs",
    "ratio_row",
]
