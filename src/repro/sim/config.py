"""Experiment configuration.

A :class:`SystemConfig` fully describes one simulated system: the
application model (which cores, where they sit on the mesh), the SDRAM
generation and clock, the NoC design under test, and the run length.  The
experiment drivers in :mod:`repro.experiments` enumerate these configs to
regenerate every table and figure of the paper.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Optional


class ConfigError(ValueError):
    """An invalid configuration value, caught at construction time.

    ``field`` names the offending configuration field so failures surface
    at the call site that built the config, not deep inside a run.
    """

    def __init__(self, field: str, message: str) -> None:
        super().__init__(f"{field}: {message}")
        self.field = field


class NocDesign(enum.Enum):
    """The NoC designs compared in the paper's evaluation (Section V)."""

    CONV = "conv"                    # round-robin routers + MemMax/Databahn subsystem
    CONV_PFS = "conv+pfs"            # CONV with priority-first service
    SDRAM_AWARE = "sdram-aware"      # baseline [4]: SDRAM-aware routers
    SDRAM_AWARE_PFS = "sdram-aware+pfs"  # [4] with priority-first service
    GSS = "gss"                      # this paper: guaranteed SDRAM service router
    GSS_SAGM = "gss+sagm"            # GSS + access-granularity matching

    @property
    def uses_gss_router(self) -> bool:
        return self in (NocDesign.GSS, NocDesign.GSS_SAGM)

    @property
    def uses_sagm(self) -> bool:
        return self is NocDesign.GSS_SAGM

    @property
    def uses_pfs(self) -> bool:
        return self in (NocDesign.CONV_PFS, NocDesign.SDRAM_AWARE_PFS)


class DdrGeneration(enum.Enum):
    """DDR SDRAM generations evaluated in the paper."""

    DDR1 = "ddr1"
    DDR2 = "ddr2"
    DDR3 = "ddr3"

    @property
    def device_burst_beats(self) -> int:
        """Device burst length (beats) in the paper's configuration:
        BL 8 for CONV/[4]; SAGM drops DDR I/II to BL 4 and uses DDR III's
        BL4/BL8 on-the-fly mode (Section III-C)."""
        return 8

    @property
    def sagm_granularity_beats(self) -> int:
        """SAGM split granularity in beats (Section IV-C): packets of
        'BL 2' (two data cycles = 4 beats) for DDR I/II in device BL 4 mode,
        'BL 4' (8 beats) for DDR III in BL 8 OTF mode."""
        return 4 if self in (DdrGeneration.DDR1, DdrGeneration.DDR2) else 8


@dataclass(frozen=True)
class SystemConfig:
    """Complete description of one simulated system configuration."""

    app: str = "single_dtv"           # bluray | single_dtv | dual_dtv
    ddr: DdrGeneration = DdrGeneration.DDR2
    clock_mhz: int = 333              # memory (and NoC) clock in MHz
    design: NocDesign = NocDesign.GSS_SAGM
    priority_enabled: bool = False    # Table I: False; Table II / Fig 8: True
    pct: int = 5                      # priority control token (Algorithm 1, line 9)
    sti: bool = False                 # Fig. 4(b) short-turnaround filter (Table III)
    num_gss_routers: Optional[int] = None  # None = all on memory path (Fig. 8 sweep)
    cycles: int = 20_000
    warmup: int = 2_000
    seed: int = 2010                  # DAC 2010 — deterministic workloads
    #: Endpoint (NI injection / ejection) buffer size: must hold the
    #: largest whole packet (a 64-beat transfer = 32 flits).
    input_buffer_flits: int = 64
    #: Inter-router input buffer size.  Shallow link buffers keep queueing
    #: at arbitration points, where priority packets can overtake; deep
    #: ones would accumulate head-of-line blocking priority cannot bypass.
    link_buffer_flits: int = 12
    max_outstanding: int = 4          # per-core outstanding request cap
    #: Use minimal-adaptive west-first routing instead of deterministic XY
    #: (Section IV-A allows either; the paper's experiments use XY).
    adaptive_routing: bool = False
    #: Virtual channels per inter-router input port (Section IV-A names
    #: wormhole and virtual-channel buffering; the paper's experiments use
    #: wormhole = 1 VC).  With 2, the second lane is reserved for priority
    #: packets, removing same-FIFO head-of-line blocking.
    virtual_channels: int = 1
    #: Fault injection and protection knobs (:class:`repro.resilience.faults
    #: .FaultConfig`).  ``None`` — the default — builds no resilience
    #: machinery at all: results are bit-identical to a pre-resilience
    #: system and the hot path pays nothing.
    faults: Optional[object] = None
    #: Attach the :class:`repro.resilience.invariants.InvariantChecker`
    #: simulator hook (token/credit conservation, packet-age bound).
    check_invariants: bool = False
    #: Memory-arbiter backend, by registry name (see
    #: :mod:`repro.dram.scheduler`): ``engine`` | ``memmax`` |
    #: ``databahn`` | ``dpq`` | ``bank-reg``, or any user-registered
    #: backend.  ``None`` — the default — keeps the paper's
    #: design-matched subsystem (MemMax/Databahn for CONV designs, the
    #: thin Fig. 6 controller otherwise), bit-identical to the pre-seam
    #: code path.
    arbiter: Optional[str] = None

    def __post_init__(self) -> None:
        if not isinstance(self.design, NocDesign):
            raise ConfigError(
                "design",
                f"unknown NoC design {self.design!r}; "
                f"choose a NocDesign ({[d.value for d in NocDesign]})",
            )
        if not isinstance(self.ddr, DdrGeneration):
            raise ConfigError(
                "ddr",
                f"unknown DDR generation {self.ddr!r}; "
                f"choose a DdrGeneration ({[g.value for g in DdrGeneration]})",
            )
        if not 1 <= self.pct <= 6:
            raise ConfigError("pct", f"PCT must be in 1..6, got {self.pct}")
        if self.cycles <= 0:
            raise ConfigError(
                "cycles", f"cycle count must be positive, got {self.cycles}"
            )
        if not 0 <= self.warmup < self.cycles:
            raise ConfigError(
                "warmup",
                f"warmup must be in [0, cycles), got {self.warmup} "
                f"with cycles={self.cycles}",
            )
        if self.clock_mhz <= 0:
            raise ConfigError(
                "clock_mhz", f"clock must be positive, got {self.clock_mhz}"
            )
        if self.input_buffer_flits <= 0:
            raise ConfigError(
                "input_buffer_flits",
                f"buffer depth must be positive, got {self.input_buffer_flits}",
            )
        if self.link_buffer_flits <= 0:
            raise ConfigError(
                "link_buffer_flits",
                f"buffer depth must be positive, got {self.link_buffer_flits}",
            )
        if self.max_outstanding <= 0:
            raise ConfigError(
                "max_outstanding",
                f"outstanding cap must be positive, got {self.max_outstanding}",
            )
        if not 1 <= self.virtual_channels <= 4:
            raise ConfigError(
                "virtual_channels",
                f"virtual channels must be within 1..4, "
                f"got {self.virtual_channels}",
            )
        if self.num_gss_routers is not None and self.num_gss_routers < 0:
            raise ConfigError(
                "num_gss_routers",
                f"router count must be non-negative, got {self.num_gss_routers}",
            )
        if self.faults is not None:
            # Imported lazily: repro.resilience.faults imports this module
            # for ConfigError.
            from ..resilience.faults import FaultConfig

            if not isinstance(self.faults, FaultConfig):
                raise ConfigError(
                    "faults",
                    f"expected a repro.resilience.FaultConfig or None, "
                    f"got {self.faults!r}",
                )
        if self.arbiter is not None:
            # Imported lazily: the backend modules import this module for
            # SystemConfig.  Validating here turns a misspelled backend
            # name into a ConfigError at the call site instead of a deep
            # construction-time KeyError.
            from ..dram.scheduler import registered_backends

            if self.arbiter not in registered_backends():
                raise ConfigError(
                    "arbiter",
                    f"unknown memory-arbiter backend {self.arbiter!r}; "
                    f"registered: {registered_backends()}",
                )
        # Validate against the application registry (imported lazily so that
        # user-registered models in repro.workloads.apps.APP_MODELS count).
        from ..workloads.apps import APP_MODELS

        if self.app not in APP_MODELS:
            raise ConfigError(
                "app",
                f"unknown application model {self.app!r}; "
                f"registered: {sorted(APP_MODELS)}",
            )

    def with_(self, **changes) -> "SystemConfig":
        """Return a copy with ``changes`` applied (frozen-dataclass update)."""
        return replace(self, **changes)

    @property
    def label(self) -> str:
        tag = self.design.value
        if self.design.uses_gss_router and self.sti:
            tag += "+sti"
        if self.arbiter is not None:
            tag += f"/{self.arbiter}"
        return f"{self.app}/{self.ddr.value}@{self.clock_mhz}MHz/{tag}"


# The nine application/clock points used throughout Section V.
PAPER_CLOCK_POINTS = {
    "bluray": {
        DdrGeneration.DDR1: 133,
        DdrGeneration.DDR2: 266,
        DdrGeneration.DDR3: 533,
    },
    "single_dtv": {
        DdrGeneration.DDR1: 166,
        DdrGeneration.DDR2: 333,
        DdrGeneration.DDR3: 667,
    },
    "dual_dtv": {
        DdrGeneration.DDR1: 200,
        DdrGeneration.DDR2: 400,
        DdrGeneration.DDR3: 800,
    },
}


def paper_configs(design: NocDesign, priority: bool, **overrides):
    """Yield the nine (app × DDR generation) configs of Tables I/II."""
    for app, points in PAPER_CLOCK_POINTS.items():
        for ddr, mhz in points.items():
            yield SystemConfig(
                app=app,
                ddr=ddr,
                clock_mhz=mhz,
                design=design,
                priority_enabled=priority,
                **overrides,
            )
