"""Post-run analysis helpers.

The paper reports fleet averages; these helpers break a run down further —
per-master latency (which core starves?), latency percentiles (what would
a real-time core have to provision for?), and bandwidth shares — which is
what a designer adopting this methodology actually debugs with.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from .stats import LatencySeries, StatsCollector


@dataclass(frozen=True)
class MasterReport:
    """Latency summary for one master core."""

    master: int
    name: str
    completed: int
    mean_latency: float
    max_latency: int
    p95_latency: Optional[float]


def per_master_report(
    stats: StatsCollector, names: Optional[Dict[int, str]] = None
) -> List[MasterReport]:
    """Per-master latency table, sorted by master id."""
    names = names or {}
    reports = []
    for master in sorted(stats.per_master):
        series = stats.per_master[master]
        p95 = series.percentile(95) if series.keep_samples else None
        reports.append(
            MasterReport(
                master=master,
                name=names.get(master, f"core{master}"),
                completed=series.count,
                mean_latency=series.mean,
                max_latency=series.maximum,
                p95_latency=p95,
            )
        )
    return reports


def render_master_report(reports: List[MasterReport]) -> str:
    lines = [
        f"{'master':>6s} {'name':14s} {'done':>6s} {'mean':>8s} "
        f"{'max':>6s} {'p95':>8s}"
    ]
    for report in reports:
        p95 = f"{report.p95_latency:8.1f}" if report.p95_latency is not None else "     n/a"
        lines.append(
            f"{report.master:>6d} {report.name:14s} {report.completed:>6d} "
            f"{report.mean_latency:8.1f} {report.max_latency:>6d} {p95}"
        )
    return "\n".join(lines)


@dataclass(frozen=True)
class TailLatency:
    """Mean vs tail latency of a request class."""

    mean: float
    p50: float
    p95: float
    p99: float
    maximum: int

    @classmethod
    def from_series(cls, series: LatencySeries) -> "TailLatency":
        if not series.keep_samples:
            raise RuntimeError("series was created without keep_samples")
        if not series.samples:
            # An empty class (e.g. no demand requests completed) has no
            # tail; report zeros rather than propagate the ValueError.
            return cls(mean=0.0, p50=0.0, p95=0.0, p99=0.0, maximum=0)
        return cls(
            mean=series.mean,
            p50=series.percentile(50),
            p95=series.percentile(95),
            p99=series.percentile(99),
            maximum=series.maximum,
        )


def tail_latencies(stats: StatsCollector) -> Dict[str, TailLatency]:
    """Tail latency of all packets and of the demand class.

    Requires the collector to have been built with ``keep_samples=True``.
    """
    return {
        "all": TailLatency.from_series(stats.all_packets),
        "demand": TailLatency.from_series(stats.demand_packets),
    }


def bandwidth_share(stats: StatsCollector) -> Dict[str, float]:
    """Useful vs wasted share of the moved beats."""
    total = stats.useful_beats + stats.wasted_beats
    if total == 0:
        return {"useful": 0.0, "wasted": 0.0}
    return {
        "useful": stats.useful_beats / total,
        "wasted": stats.wasted_beats / total,
    }
