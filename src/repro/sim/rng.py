"""Deterministic RNG stream derivation.

Every stochastic component in the simulator draws from its own
:class:`random.Random` instance whose seed is *derived* from the single
``SystemConfig.seed`` — never from module-level ``random`` calls, whose
hidden global state would couple unrelated components and break
reproducibility.  This module is the one place seeds are turned into
streams:

* :func:`derive_seed` / :func:`derive_rng` — scope-labelled derivation for
  new consumers (fault injection sites, future stochastic models).  The
  mix is a SHA-256 digest of the root seed plus the scope labels, so
  streams are decoupled (adding draws to one site never perturbs another)
  and stable across Python versions and processes.
* :func:`core_rng` / :func:`placement_rng` — the *frozen* legacy
  derivations the workload generators have always used.  They are kept
  bit-exact on purpose: golden waveforms and the recorded experiment
  numbers depend on these exact streams.
"""

from __future__ import annotations

import hashlib
import random

__all__ = ["core_rng", "derive_rng", "derive_seed", "placement_rng"]


def derive_seed(root: int, *scope) -> int:
    """A 64-bit seed derived from ``root`` and the ``scope`` labels.

    The derivation is a cryptographic mix, so distinct scopes give
    statistically independent streams even for adjacent root seeds.
    """
    material = "|".join([str(int(root)), *map(str, scope)])
    digest = hashlib.sha256(material.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


def derive_rng(root: int, *scope) -> random.Random:
    """A :class:`random.Random` stream for ``scope`` under ``root``.

    With no scope labels this is exactly ``random.Random(root)`` (the
    historical stream of seed-only consumers); with labels the seed is
    mixed through :func:`derive_seed`.
    """
    if not scope:
        return random.Random(root)
    return random.Random(derive_seed(root, *scope))


def core_rng(seed: int, master: int) -> random.Random:
    """The frozen per-core workload stream: ``Random((seed << 8) ^ master)``.

    Do not change this derivation — the paper-exhibit numbers recorded in
    EXPERIMENTS.md and the golden waveform tests are produced from it.
    """
    return random.Random((seed << 8) ^ master)


def placement_rng(seed: int) -> random.Random:
    """The frozen annealing stream used by :mod:`repro.workloads.a3map`."""
    return random.Random(seed)
