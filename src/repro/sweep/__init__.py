"""Sharded sweep orchestration with a content-addressed result store.

The layer between "one simulation" and "an experiment service":
declarative parameter grids (:class:`SweepSpec`) expand into
fully-resolved :class:`Job` objects, a multiprocess orchestrator
(:func:`run_sweep`) shards them across worker processes with per-point
failure containment, and every outcome lands in a persistent
:class:`ResultStore` under a content-addressed key — so repeated points
are never simulated twice and interrupted sweeps resume for free.

See ``docs/ARCHITECTURE.md`` (Sweep orchestration) for the job
lifecycle, seed derivation, and cache-key composition.
"""

from .grids import (
    ARBITER_MATRIX_BACKENDS,
    arbiter_matrix_rows,
    arbiter_matrix_spec,
    config_grid_spec,
    fault_points,
    fault_sweep_spec,
    fig8_curves,
    fig8_jobs,
    run_arbiter_matrix_grid,
    run_fault_sweep_grid,
    run_fig8_grid,
)
from .orchestrator import (
    JobOutcome,
    ProgressPrinter,
    SweepReport,
    execute_job,
    run_sweep,
)
from .runners import (
    JOB_RUNNERS,
    JobFailure,
    config_from_payload,
    config_payload,
    metrics_job,
    register_runner,
)
from .spec import Job, SweepSpec, dedupe
from .store import SCHEMA_VERSION, ResultStore, job_key, make_record

__all__ = [
    "ARBITER_MATRIX_BACKENDS",
    "JOB_RUNNERS",
    "Job",
    "arbiter_matrix_rows",
    "arbiter_matrix_spec",
    "JobFailure",
    "JobOutcome",
    "ProgressPrinter",
    "ResultStore",
    "SCHEMA_VERSION",
    "SweepReport",
    "SweepSpec",
    "config_from_payload",
    "config_grid_spec",
    "config_payload",
    "dedupe",
    "execute_job",
    "fault_points",
    "fault_sweep_spec",
    "fig8_curves",
    "fig8_jobs",
    "job_key",
    "make_record",
    "metrics_job",
    "register_runner",
    "run_arbiter_matrix_grid",
    "run_fault_sweep_grid",
    "run_fig8_grid",
    "run_sweep",
]
