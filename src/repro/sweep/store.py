"""Content-addressed result store for sweep jobs.

Every sweep job is identified by a **cache key**: the SHA-256 digest of
the canonical JSON encoding of its kind, its fully-resolved parameters,
and the store schema version.  Two jobs with byte-identical resolved
configs share a key, so repeated points are never simulated twice — not
within one sweep (duplicates are collapsed), not across invocations
(the store persists), and not across exhibits (``repro all`` and
``repro sweep`` address the same store).

The persistent backend is an append-only JSON-Lines file: one record
per completed job, last write wins on key collisions (a deliberate
re-run supersedes the old row).  Only the orchestrating process writes;
worker processes return results to the parent, which serialises the
appends — no cross-process locking is needed.  A store created with
``path=None`` is memory-only, which the tests and one-shot sweeps use.

Bumping :data:`SCHEMA_VERSION` invalidates every cached result at once
(the version participates in the key), which is the escape hatch for
semantic changes to the simulator that keep configs identical.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import time
from pathlib import Path
from typing import Dict, Iterator, List, Mapping, Optional, Union

logger = logging.getLogger(__name__)

#: Bump when simulator semantics change without a config change; every
#: key — and therefore every cached result — is invalidated at once.
SCHEMA_VERSION = 1


def canonical_json(payload: object) -> str:
    """The canonical encoding hashed into a cache key.

    ``sort_keys`` makes dict insertion order irrelevant; the compact
    separators make the encoding unique; JSON float formatting uses
    ``repr`` round-tripping, which is stable across processes and
    Python versions (>= 3.1).
    """
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), allow_nan=False
    )


def job_key(
    kind: str,
    params: Mapping[str, object],
    schema: int = SCHEMA_VERSION,
) -> str:
    """The content-addressed key of one fully-resolved job."""
    payload = {"kind": kind, "params": dict(params), "schema": schema}
    digest = hashlib.sha256(canonical_json(payload).encode("utf-8"))
    return digest.hexdigest()


def make_record(
    job,
    status: str,
    result: Optional[Mapping[str, object]],
    error: Optional[str] = None,
    elapsed_s: float = 0.0,
    attempts: int = 1,
    traceback: Optional[str] = None,
) -> Dict[str, object]:
    """One store row: job identity plus outcome.

    ``attempts`` counts executions including retries; ``traceback`` is
    the last failure's formatted traceback (``None`` for ok rows), so a
    failed row is debuggable without re-running the job.
    """
    if status not in ("ok", "failed"):
        raise ValueError(f"unknown record status {status!r}")
    return {
        "key": job.key,
        "kind": job.kind,
        "label": job.label,
        "params": dict(job.params),
        "schema": SCHEMA_VERSION,
        "status": status,
        "result": dict(result) if result is not None else None,
        "error": error,
        "attempts": int(attempts),
        "traceback": traceback,
        "elapsed_s": round(float(elapsed_s), 6),
        "stored_at": time.time(),
    }


class ResultStore:
    """Keyed result records, optionally persisted as JSON Lines.

    ``get`` / ``put`` maintain an in-memory index; with a ``path`` every
    ``put`` is also appended to the file immediately, so an interrupted
    sweep loses at most the in-flight job and a re-run resumes from the
    last completed point for free.

    ``fsync=True`` additionally fsyncs every append, shrinking the
    at-most-one-job loss window from "whatever the page cache held" to
    zero even across a power failure — at the cost of one disk flush per
    record.  A crash can still leave a *partial* final line (the append
    itself is not atomic); :meth:`repair` truncates such a tail
    explicitly instead of skipping it on every future load.
    """

    def __init__(
        self,
        path: Optional[Union[str, Path]] = None,
        fsync: bool = False,
    ) -> None:
        self.path = Path(path) if path is not None else None
        self.fsync = fsync
        self._index: Dict[str, Dict[str, object]] = {}
        #: Lookup counters — `repro sweep` and `repro all` report these.
        self.hits = 0
        self.misses = 0
        #: Lines in the backing file that failed to parse (truncated
        #: tail of an interrupted append); skipped, never fatal.
        self.corrupt_lines = 0
        if self.path is not None and self.path.exists():
            self._load()

    def _load(self) -> None:
        with self.path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                    key = record["key"]
                except (ValueError, TypeError, KeyError):
                    self.corrupt_lines += 1
                    continue
                self._index[key] = record

    def get(self, key: str) -> Optional[Dict[str, object]]:
        """The stored record for ``key``, counting the hit or miss."""
        record = self._index.get(key)
        if record is None:
            self.misses += 1
        else:
            self.hits += 1
        return record

    def contains(self, key: str) -> bool:
        """Membership test that does not touch the hit/miss counters."""
        return key in self._index

    def put(self, record: Mapping[str, object]) -> None:
        record = dict(record)
        key = record["key"]
        self._index[key] = record
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with self.path.open("a", encoding="utf-8") as handle:
                handle.write(json.dumps(record) + "\n")
                if self.fsync:
                    handle.flush()
                    os.fsync(handle.fileno())

    def repair(self) -> int:
        """Truncate a corrupt tail off the backing file; returns the
        number of bytes removed.

        A crash mid-append (or a torn filesystem) can leave a partial
        final line.  :meth:`_load` already *skips* unparsable lines, but
        skipping leaves the damage in place — every future load re-counts
        it and a resumed sweep appends after garbage.  ``repair`` scans
        the file, keeps the longest valid prefix (corruption anywhere
        invalidates that line and everything after it — an append-only
        log has no valid data past its first tear), truncates in place,
        and rebuilds the index from the surviving records.
        """
        if self.path is None or not self.path.exists():
            return 0
        valid_bytes = 0
        survivors: Dict[str, Dict[str, object]] = {}
        with self.path.open("rb") as handle:
            for line in handle:
                if not line.endswith(b"\n"):
                    break
                stripped = line.strip()
                if stripped:
                    try:
                        record = json.loads(stripped.decode("utf-8"))
                        key = record["key"]
                    except (ValueError, TypeError, KeyError,
                            UnicodeDecodeError):
                        break
                    survivors[key] = record
                valid_bytes += len(line)
        total = self.path.stat().st_size
        removed = total - valid_bytes
        if removed:
            with self.path.open("rb+") as handle:
                handle.truncate(valid_bytes)
                handle.flush()
                os.fsync(handle.fileno())
            logger.warning(
                "repaired %s: truncated %d corrupt byte(s), "
                "%d record(s) survive", self.path, removed, len(survivors),
            )
        self._index = survivors
        self.corrupt_lines = 0
        return removed

    def records(self) -> List[Dict[str, object]]:
        return list(self._index.values())

    def keys(self) -> Iterator[str]:
        return iter(self._index)

    def __len__(self) -> int:
        return len(self._index)

    def __contains__(self, key: str) -> bool:
        return self.contains(key)
