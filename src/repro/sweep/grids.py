"""Canonical grid definitions: the paper's sweeps as orchestrator jobs.

Each grid comes in three pieces: a *jobs* builder that enumerates the
fully-resolved jobs (the exact configs the serial driver would run, so
results are bit-identical), a *reconstruction* function that reads the
jobs' records back out of a :class:`~repro.sweep.store.ResultStore` and
rebuilds the driver's native result types, and a convenience runner
that chains both through :func:`~repro.sweep.orchestrator.run_sweep`.

Grids defined here:

* **fault** — the fault-rate × seed grid behind ``repro sweep fault``,
  one ``fault-point`` job per (seed, rate).  Hung or unaccounted points
  come back as *failed* store records (rate and drain budget in the
  error) whose partial metrics still render in the table.
* **fig8** — the paper's Fig. 8 GSS-router-count sweep, flattened to
  one ``metrics`` job per (application point, router count, seed); the
  curves are rebuilt by averaging per-seed runs in seed order, exactly
  as :func:`repro.experiments.runner.run_averaged` does.
* **config grid** — arbitrary :class:`~repro.sim.config.SystemConfig`
  field grids (``repro sweep grid --axis field=v1,v2 ...``), resolved
  through :func:`repro.experiments.runner.experiment_config`.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..experiments.fault_sweep import (
    DRAIN_CYCLES,
    FAULT_SWEEP_RATES,
    FaultSweepPoint,
)
from ..experiments.fig8 import FIG8_POINTS, Fig8Curve, fig8_config, gss_router_counts
from ..experiments.runner import (
    AveragedMetrics,
    DEFAULT_CYCLES,
    DEFAULT_SEEDS,
    DEFAULT_WARMUP,
    experiment_config,
)
from ..sim.stats import RunMetrics
from .orchestrator import SweepReport, run_sweep
from .runners import metrics_job
from .spec import Job, SweepSpec
from .store import ResultStore


def _stored_result(store: ResultStore, job: Job) -> Mapping[str, object]:
    record = store.get(job.key)
    if record is None:
        raise KeyError(
            f"no stored result for job {job.label!r} (key {job.key[:12]}…); "
            f"run the sweep before reconstructing its results"
        )
    result = record.get("result")
    if result is None:
        raise KeyError(
            f"job {job.label!r} failed without a result: {record.get('error')}"
        )
    return result


# --------------------------------------------------------------------- #
# Fault-rate grid
# --------------------------------------------------------------------- #

def fault_sweep_spec(
    rates: Sequence[float] = FAULT_SWEEP_RATES,
    seeds: Sequence[int] = (2010,),
    cycles: Optional[int] = None,
    warmup: Optional[int] = None,
    app: str = "single_dtv",
    drain_cycles: int = DRAIN_CYCLES,
) -> SweepSpec:
    """The fault grid: seed (outer) × rate (inner), fully resolved."""
    return SweepSpec(
        name="fault-sweep",
        kind="fault-point",
        base={
            "app": app,
            "cycles": cycles if cycles is not None else DEFAULT_CYCLES,
            "warmup": warmup if warmup is not None else DEFAULT_WARMUP,
            "drain_cycles": drain_cycles,
        },
        axes={"seed": list(seeds), "rate": list(rates)},
    )


def fault_points(
    store: ResultStore, spec: SweepSpec
) -> List[Tuple[int, FaultSweepPoint]]:
    """``(seed, point)`` per grid job, in grid order, from the store.

    Failed jobs (hung / unaccounted) carry their partial metrics in the
    record's ``result`` and are reconstructed like any other point —
    the hang shows up as ``quiesced=False``, never as a silent row.
    """
    points: List[Tuple[int, FaultSweepPoint]] = []
    for job in spec.expand():
        result = _stored_result(store, job)
        points.append((job.params["seed"], FaultSweepPoint(**result)))
    return points


def run_fault_sweep_grid(
    store: Optional[ResultStore] = None,
    workers: int = 1,
    **spec_kwargs,
) -> Tuple[List[Tuple[int, FaultSweepPoint]], SweepReport]:
    """Run the fault grid through the orchestrator and rebuild points."""
    spec = fault_sweep_spec(**spec_kwargs)
    if store is None:
        store = ResultStore()
    report = run_sweep(spec, store=store, workers=workers)
    return fault_points(store, spec), report


# --------------------------------------------------------------------- #
# Fig. 8 grid
# --------------------------------------------------------------------- #

def fig8_jobs(
    cycles: Optional[int] = None,
    warmup: Optional[int] = None,
    seeds: Sequence[int] = DEFAULT_SEEDS,
    max_routers: Optional[int] = None,
) -> List[Job]:
    """One ``metrics`` job per (application point, router count, seed).

    Flattening the seed average into the grid is what lets the
    orchestrator shard the whole figure across cores; the curves are
    re-averaged at reconstruction time.
    """
    overrides = {}
    if cycles is not None:
        overrides["cycles"] = cycles
    if warmup is not None:
        overrides["warmup"] = warmup
    jobs: List[Job] = []
    for app, ddr, mhz in FIG8_POINTS:
        for k in gss_router_counts(app, max_routers):
            for seed in seeds:
                config = fig8_config(
                    app, ddr, mhz, k, seed=seed, **overrides
                )
                jobs.append(
                    metrics_job(
                        config,
                        label=f"{app}/gss={k}/seed={seed}",
                    )
                )
    return jobs


def fig8_curves(
    store: ResultStore,
    cycles: Optional[int] = None,
    warmup: Optional[int] = None,
    seeds: Sequence[int] = DEFAULT_SEEDS,
    max_routers: Optional[int] = None,
) -> List[Fig8Curve]:
    """Rebuild the Fig. 8 curves from stored per-seed runs.

    Per-seed metrics are averaged in seed order through
    :meth:`AveragedMetrics.from_runs` — the same arithmetic, in the
    same order, as the serial ``run_fig8`` — so the reconstructed
    curves are bit-identical to the serial baseline.
    """
    overrides = {}
    if cycles is not None:
        overrides["cycles"] = cycles
    if warmup is not None:
        overrides["warmup"] = warmup
    curves: List[Fig8Curve] = []
    for app, ddr, mhz in FIG8_POINTS:
        counts = gss_router_counts(app, max_routers)
        utilization: List[float] = []
        latency_all: List[float] = []
        latency_priority: List[float] = []
        for k in counts:
            runs = []
            for seed in seeds:
                config = fig8_config(app, ddr, mhz, k, seed=seed, **overrides)
                result = _stored_result(store, metrics_job(config))
                runs.append(RunMetrics(**result))
            averaged = AveragedMetrics.from_runs(runs)
            utilization.append(averaged.utilization)
            latency_all.append(averaged.latency_all)
            latency_priority.append(averaged.latency_demand)
        curves.append(
            Fig8Curve(
                app, ddr, mhz, counts, utilization, latency_all,
                latency_priority,
            )
        )
    return curves


def run_fig8_grid(
    store: Optional[ResultStore] = None,
    workers: int = 1,
    cycles: Optional[int] = None,
    warmup: Optional[int] = None,
    seeds: Sequence[int] = DEFAULT_SEEDS,
    max_routers: Optional[int] = None,
) -> Tuple[List[Fig8Curve], SweepReport]:
    """Run the Fig. 8 grid through the orchestrator, rebuild curves."""
    if store is None:
        store = ResultStore()
    jobs = fig8_jobs(
        cycles=cycles, warmup=warmup, seeds=seeds, max_routers=max_routers
    )
    report = run_sweep(jobs, store=store, workers=workers)
    curves = fig8_curves(
        store, cycles=cycles, warmup=warmup, seeds=seeds,
        max_routers=max_routers,
    )
    return curves, report


# --------------------------------------------------------------------- #
# Arbitrary SystemConfig grids
# --------------------------------------------------------------------- #

def config_grid_spec(
    base: Mapping[str, object],
    axes: Mapping[str, Iterable[object]],
    replicates: int = 1,
    root_seed: int = 2010,
    name: str = "grid",
) -> SweepSpec:
    """A grid over arbitrary :class:`SystemConfig` fields.

    ``base`` and ``axes`` hold constructor-level values (enums allowed);
    each assignment is resolved through :func:`experiment_config` into a
    complete configuration payload, so the cache key covers every field
    — including the ones the grid left at their defaults.
    """

    def resolve(params: Dict[str, object]) -> Mapping[str, object]:
        from ..resilience.faults import FaultConfig
        from .runners import config_payload

        params = dict(params)
        # `fault_rate` is a pseudo-field: a nonzero rate expands to the
        # uniform mixed-fault profile, zero builds no resilience at all
        # (mirrors the `repro run --fault-rate` CLI semantics).
        rate = params.pop("fault_rate", 0.0)
        if rate:
            params["faults"] = FaultConfig.uniform(rate)
        return config_payload(experiment_config(**params))

    return SweepSpec(
        name=name,
        kind="metrics",
        base=dict(base),
        axes={axis: list(values) for axis, values in axes.items()},
        replicates=replicates,
        root_seed=root_seed,
        resolver=resolve,
    )


# --------------------------------------------------------------------- #
# Memory-arbiter matrix
# --------------------------------------------------------------------- #

#: Every builtin Scheduler backend, in render order.
ARBITER_MATRIX_BACKENDS = ("engine", "memmax", "databahn", "dpq", "bank-reg")


def arbiter_matrix_spec(
    arbiters: Sequence[str] = ARBITER_MATRIX_BACKENDS,
    seeds: Sequence[int] = (2010,),
    cycles: Optional[int] = None,
    warmup: Optional[int] = None,
    **base_overrides,
) -> SweepSpec:
    """The arbiter × seed matrix: one ``metrics`` job per backend/seed at
    a fixed NoC design (the CI smoke job's grid).  Plain
    :func:`config_grid_spec` underneath, so the jobs share the exhibit
    cache key space."""
    base: Dict[str, object] = dict(base_overrides)
    if cycles is not None:
        base["cycles"] = cycles
    if warmup is not None:
        base["warmup"] = warmup
    return config_grid_spec(
        base=base,
        axes={"seed": list(seeds), "arbiter": list(arbiters)},
        name="arbiter-matrix",
    )


def arbiter_matrix_rows(
    store: ResultStore, spec: SweepSpec
) -> List[Tuple[str, int, RunMetrics]]:
    """``(arbiter, seed, metrics)`` per matrix job, in grid order."""
    rows: List[Tuple[str, int, RunMetrics]] = []
    for job in spec.expand():
        result = _stored_result(store, job)
        rows.append(
            (
                job.params["arbiter"],
                job.params["seed"],
                RunMetrics(**result),
            )
        )
    return rows


def run_arbiter_matrix_grid(
    store: Optional[ResultStore] = None,
    workers: int = 1,
    **spec_kwargs,
) -> Tuple[List[Tuple[str, int, RunMetrics]], SweepReport]:
    """Run the arbiter matrix through the orchestrator, rebuild rows."""
    spec = arbiter_matrix_spec(**spec_kwargs)
    if store is None:
        store = ResultStore()
    report = run_sweep(spec, store=store, workers=workers)
    return arbiter_matrix_rows(store, spec), report
