"""Multiprocess sweep orchestrator.

:func:`run_sweep` takes a job list (or a :class:`~repro.sweep.spec
.SweepSpec`), collapses duplicate keys, serves every already-stored key
from the :class:`~repro.sweep.store.ResultStore`, and shards the
remainder across worker processes.  Each job's outcome — ``ok`` or
``failed``, with metrics or an error — is appended to the store the
moment it completes, so an interrupted sweep resumes from its last
completed point and a finished sweep re-runs as 100% cache hits.

Failure containment is per point, never per sweep:

* a runner that raises records a *failed* job (with
  :class:`~repro.sweep.runners.JobFailure` carrying any partial
  result) and the sweep continues;
* a worker process that dies outright (segfault, ``os._exit``, OOM
  kill) breaks the shared pool — the orchestrator then re-runs each
  unfinished job in its own single-worker pool, so the crasher is
  identified precisely and marked failed while innocent in-flight jobs
  complete normally.

Workers are forked where available (Linux/macOS ``fork`` context) so
runner registrations made by the parent are visible without re-import;
pass ``mp_context`` to override.

Liveness has two optional surfaces, both off by default:

* ``telemetry=`` (a :class:`~repro.obs.stream.TelemetryWriter`) streams
  the sweep lifecycle — ``sweep_start``, per-job ``job_start`` /
  ``job_done`` / ``job_fail`` / ``job_hit``, per-worker ``heartbeat``
  records written by the worker processes themselves, rolling
  ``sweep_progress`` with throughput and ETA, and a closing
  ``sweep_end`` — for ``repro monitor`` to render live;
* :class:`ProgressPrinter` is a ready-made :data:`ProgressFn` that keeps
  a single updating stderr line (done/total, failures, cache hits, ETA)
  on a tty and degrades to sparse plain lines when piped.
"""

from __future__ import annotations

import multiprocessing
import sys
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    TextIO,
    Union,
)

from .runners import (
    JOB_RUNNERS,
    JobFailure,
    worker_job_finished,
    worker_job_started,
)
from .spec import Job, SweepSpec, dedupe
from .store import ResultStore, make_record

#: Outcome-stream callback: (job, record, cached, done_count, total_count).
ProgressFn = Callable[[Job, Mapping[str, object], bool, int, int], None]


def execute_job(
    kind: str,
    params: Dict[str, object],
    telemetry_path: Optional[str] = None,
    key: Optional[str] = None,
    label: Optional[str] = None,
) -> Dict[str, object]:
    """Run one job in the current process; never raises.

    The worker-side entry point: every failure mode is folded into the
    returned payload so a Python-level error can never poison the pool.
    With ``telemetry_path`` set, the worker itself appends ``job_start``
    and ``heartbeat`` records to the stream (line-atomic ``O_APPEND``
    writes), so a monitor sees jobs as workers pick them up.
    """
    if telemetry_path is not None:
        worker_job_started(telemetry_path, key or "", kind, label or "")
    started = time.perf_counter()
    try:
        runner = JOB_RUNNERS.get(kind)
        if runner is None:
            raise JobFailure(
                f"unknown job kind {kind!r}; "
                f"registered: {sorted(JOB_RUNNERS)}"
            )
        result = runner(params)
        payload = {
            "status": "ok",
            "result": dict(result),
            "error": None,
            "elapsed_s": time.perf_counter() - started,
        }
    except JobFailure as failure:
        payload = {
            "status": "failed",
            "result": failure.result,
            "error": failure.error,
            "elapsed_s": time.perf_counter() - started,
        }
    except Exception as exc:  # noqa: BLE001 - boundary: fold into record
        payload = {
            "status": "failed",
            "result": None,
            "error": f"{type(exc).__name__}: {exc}",
            "elapsed_s": time.perf_counter() - started,
        }
    if telemetry_path is not None:
        worker_job_finished(
            telemetry_path, key or "", label or "", str(payload["status"])
        )
    return payload


@dataclass(frozen=True)
class JobOutcome:
    """One job's resolution within a sweep."""

    job: Job
    record: Mapping[str, object]
    cached: bool

    @property
    def ok(self) -> bool:
        return self.record.get("status") == "ok"


@dataclass
class SweepReport:
    """What a sweep did: per-job outcomes plus aggregate counters."""

    outcomes: List[JobOutcome] = field(default_factory=list)
    #: Jobs submitted more than once with the same key (collapsed).
    duplicates: int = 0
    elapsed_s: float = 0.0

    @property
    def total(self) -> int:
        return len(self.outcomes)

    @property
    def hits(self) -> int:
        return sum(1 for outcome in self.outcomes if outcome.cached)

    @property
    def executed(self) -> int:
        return sum(1 for outcome in self.outcomes if not outcome.cached)

    @property
    def failed(self) -> int:
        return sum(1 for outcome in self.outcomes if not outcome.ok)

    @property
    def all_cached(self) -> bool:
        return self.executed == 0

    def record_for(self, job: Job) -> Mapping[str, object]:
        for outcome in self.outcomes:
            if outcome.job.key == job.key:
                return outcome.record
        raise KeyError(job.key)

    def summary(self) -> str:
        return (
            f"{self.total} job(s): {self.hits} cache hit(s), "
            f"{self.executed} executed, {self.failed} failed "
            f"({self.elapsed_s:.1f}s)"
        )


class ProgressPrinter:
    """Single updating progress line: done/total, failures, hits, ETA.

    A :data:`ProgressFn` for long grids.  On a tty the line redraws in
    place (``\\r``); piped to a file it prints at most ~10 milestone
    lines so logs stay readable.  Call :meth:`close` (or use the CLI,
    which does) to terminate the tty line with a newline.
    """

    def __init__(self, stream: Optional[TextIO] = None) -> None:
        self.stream = stream if stream is not None else sys.stderr
        self._isatty = bool(getattr(self.stream, "isatty", lambda: False)())
        self._started = time.perf_counter()
        self._executed = 0
        self._failed = 0
        self._hits = 0
        self._open_line = False

    def __call__(
        self,
        job: Job,
        record: Mapping[str, object],
        cached: bool,
        done: int,
        total: int,
    ) -> None:
        if cached:
            self._hits += 1
        else:
            self._executed += 1
        if record.get("status") != "ok":
            self._failed += 1
        if self._isatty or done == total or self._milestone(done, total):
            self._render(done, total)

    def _milestone(self, done: int, total: int) -> bool:
        step = max(1, total // 10)
        return done % step == 0

    def eta_s(self, done: int, total: int) -> Optional[float]:
        """Remaining-work estimate from executed-job throughput; cache
        hits are free, so they never count toward the rate."""
        if self._executed == 0 or done >= total:
            return None
        elapsed = time.perf_counter() - self._started
        if elapsed <= 0:
            return None
        return (total - done) * elapsed / self._executed

    def _render(self, done: int, total: int) -> None:
        eta = self.eta_s(done, total)
        text = (
            f"sweep [{done}/{total}] "
            f"{self._executed} run, {self._hits} cached, "
            f"{self._failed} failed"
        )
        if eta is not None:
            text += f", eta {eta:.0f}s"
        if self._isatty:
            self.stream.write("\r\x1b[K" + text)
            self._open_line = True
        else:
            self.stream.write(text + "\n")
        self.stream.flush()

    def close(self) -> None:
        """Terminate an in-place line so later output starts clean."""
        if self._open_line:
            self.stream.write("\n")
            self.stream.flush()
            self._open_line = False


def _default_context():
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX fallback
        return multiprocessing.get_context()


def _run_isolated(
    job: Job, mp_context, telemetry_path: Optional[str] = None
) -> Dict[str, object]:
    """Re-run one suspect job in a disposable single-worker pool.

    If this pool breaks too, the crash is attributable to exactly this
    job, which is then the one marked failed.
    """
    try:
        with ProcessPoolExecutor(
            max_workers=1, mp_context=mp_context
        ) as pool:
            return pool.submit(
                execute_job, job.kind, dict(job.params),
                telemetry_path, job.key, job.label,
            ).result()
    except BrokenProcessPool:
        return {
            "status": "failed",
            "result": None,
            "error": "worker process died while running this job",
            "elapsed_s": 0.0,
        }


def _run_parallel(
    pending: Sequence[Job],
    workers: int,
    mp_context,
    on_done: Callable[[Job, Dict[str, object]], None],
    telemetry_path: Optional[str] = None,
) -> None:
    """Shard ``pending`` over a worker pool, isolating crashers."""
    suspects: List[Job] = []
    with ProcessPoolExecutor(
        max_workers=workers, mp_context=mp_context
    ) as pool:
        futures = {
            pool.submit(
                execute_job, job.kind, dict(job.params),
                telemetry_path, job.key, job.label,
            ): job
            for job in pending
        }
        for future in as_completed(futures):
            job = futures[future]
            try:
                payload = future.result()
            except BrokenProcessPool:
                # A worker died; every unfinished future resolves this
                # way and the crasher is not attributable here.  Defer
                # to isolated re-runs below.
                suspects.append(job)
                continue
            except Exception as exc:  # noqa: BLE001 - e.g. unpicklable
                payload = {
                    "status": "failed",
                    "result": None,
                    "error": f"{type(exc).__name__}: {exc}",
                    "elapsed_s": 0.0,
                }
            on_done(job, payload)
    for job in suspects:
        on_done(job, _run_isolated(job, mp_context, telemetry_path))


def run_sweep(
    jobs: Union[SweepSpec, Sequence[Job]],
    store: Optional[ResultStore] = None,
    workers: int = 1,
    use_cache: bool = True,
    retry_failed: bool = False,
    progress: Optional[ProgressFn] = None,
    mp_context=None,
    telemetry=None,
) -> SweepReport:
    """Resolve every job — from the store where possible, by
    simulation otherwise — and return the per-job outcomes.

    ``use_cache=False`` forces every point to execute (fresh records
    still overwrite the store, so it doubles as an invalidation pass).
    ``retry_failed=True`` re-executes stored *failed* records instead
    of serving them from cache — the default serves them, because the
    simulator is deterministic and a re-run reproduces the failure.
    ``telemetry`` (a :class:`~repro.obs.stream.TelemetryWriter`) streams
    the sweep lifecycle; workers append their own ``job_start`` and
    ``heartbeat`` records when the writer is file-backed.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if isinstance(jobs, SweepSpec):
        jobs = jobs.expand()
    if store is None:
        store = ResultStore()  # memory-only
    started = time.perf_counter()
    unique = dedupe(jobs)
    report = SweepReport(duplicates=len(jobs) - len(unique))
    telemetry_path = (
        str(telemetry.path)
        if telemetry is not None and telemetry.path is not None
        else None
    )

    outcomes: Dict[str, JobOutcome] = {}
    pending: List[Job] = []
    for job in unique:
        record = store.get(job.key) if use_cache else None
        if record is not None and (
            record.get("status") == "ok" or not retry_failed
        ):
            outcomes[job.key] = JobOutcome(job, record, cached=True)
        else:
            pending.append(job)

    if telemetry is not None:
        telemetry.emit(
            "sweep_start",
            total=len(unique),
            pending=len(pending),
            cached=len(outcomes),
            workers=workers,
            duplicates=report.duplicates,
        )

    done_count = len(outcomes)
    executed_done = 0
    failed_count = 0
    for job in unique:
        outcome = outcomes.get(job.key)
        if outcome is None:
            continue
        if not outcome.ok:
            failed_count += 1
        if progress is not None:
            progress(job, outcome.record, True, done_count, len(unique))
        if telemetry is not None:
            telemetry.emit(
                "job_hit",
                key=job.key,
                label=job.label,
                status=outcome.record.get("status"),
            )

    def on_done(job: Job, payload: Dict[str, object]) -> None:
        nonlocal done_count, executed_done, failed_count
        record = make_record(
            job,
            status=payload["status"],
            result=payload["result"],
            error=payload["error"],
            elapsed_s=payload["elapsed_s"],
        )
        store.put(record)
        outcomes[job.key] = JobOutcome(job, record, cached=False)
        done_count += 1
        executed_done += 1
        failed = payload["status"] != "ok"
        if failed:
            failed_count += 1
        if progress is not None:
            progress(job, record, False, done_count, len(unique))
        if telemetry is not None:
            telemetry.emit(
                "job_fail" if failed else "job_done",
                key=job.key,
                label=job.label,
                elapsed_s=payload["elapsed_s"],
                error=payload["error"],
            )
            elapsed = time.perf_counter() - started
            rate = executed_done / elapsed if elapsed > 0 else None
            remaining = len(unique) - done_count
            telemetry.emit(
                "sweep_progress",
                done=done_count,
                total=len(unique),
                failed=failed_count,
                hits=done_count - executed_done,
                jobs_per_s=rate,
                eta_s=remaining / rate if rate else None,
            )

    if pending:
        if workers == 1:
            for job in pending:
                on_done(
                    job,
                    execute_job(
                        job.kind, dict(job.params),
                        telemetry_path, job.key, job.label,
                    ),
                )
        else:
            _run_parallel(
                pending,
                workers,
                mp_context if mp_context is not None else _default_context(),
                on_done,
                telemetry_path,
            )

    # Report in submission order regardless of completion order.
    report.outcomes = [outcomes[job.key] for job in unique]
    report.elapsed_s = time.perf_counter() - started
    if telemetry is not None:
        telemetry.emit(
            "sweep_end",
            total=report.total,
            hits=report.hits,
            executed=report.executed,
            failed=report.failed,
            elapsed_s=report.elapsed_s,
            summary=report.summary(),
        )
    return report
