"""Multiprocess sweep orchestrator.

:func:`run_sweep` takes a job list (or a :class:`~repro.sweep.spec
.SweepSpec`), collapses duplicate keys, serves every already-stored key
from the :class:`~repro.sweep.store.ResultStore`, and shards the
remainder across worker processes.  Each job's outcome — ``ok`` or
``failed``, with metrics or an error — is appended to the store the
moment it completes, so an interrupted sweep resumes from its last
completed point and a finished sweep re-runs as 100% cache hits.

Failure containment is per point, never per sweep:

* a runner that raises records a *failed* job (with
  :class:`~repro.sweep.runners.JobFailure` carrying any partial
  result) and the sweep continues;
* a worker process that dies outright (segfault, ``os._exit``, OOM
  kill) breaks the shared pool — the orchestrator then re-runs each
  unfinished job in its own single-worker pool, so the crasher is
  identified precisely and marked failed while innocent in-flight jobs
  complete normally.

Workers are forked where available (Linux/macOS ``fork`` context) so
runner registrations made by the parent are visible without re-import;
pass ``mp_context`` to override.
"""

from __future__ import annotations

import multiprocessing
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Union

from .runners import JOB_RUNNERS, JobFailure
from .spec import Job, SweepSpec, dedupe
from .store import ResultStore, make_record

#: Outcome-stream callback: (job, record, cached, done_count, total_count).
ProgressFn = Callable[[Job, Mapping[str, object], bool, int, int], None]


def execute_job(kind: str, params: Dict[str, object]) -> Dict[str, object]:
    """Run one job in the current process; never raises.

    The worker-side entry point: every failure mode is folded into the
    returned payload so a Python-level error can never poison the pool.
    """
    started = time.perf_counter()
    try:
        runner = JOB_RUNNERS.get(kind)
        if runner is None:
            raise JobFailure(
                f"unknown job kind {kind!r}; "
                f"registered: {sorted(JOB_RUNNERS)}"
            )
        result = runner(params)
        return {
            "status": "ok",
            "result": dict(result),
            "error": None,
            "elapsed_s": time.perf_counter() - started,
        }
    except JobFailure as failure:
        return {
            "status": "failed",
            "result": failure.result,
            "error": failure.error,
            "elapsed_s": time.perf_counter() - started,
        }
    except Exception as exc:  # noqa: BLE001 - boundary: fold into record
        return {
            "status": "failed",
            "result": None,
            "error": f"{type(exc).__name__}: {exc}",
            "elapsed_s": time.perf_counter() - started,
        }


@dataclass(frozen=True)
class JobOutcome:
    """One job's resolution within a sweep."""

    job: Job
    record: Mapping[str, object]
    cached: bool

    @property
    def ok(self) -> bool:
        return self.record.get("status") == "ok"


@dataclass
class SweepReport:
    """What a sweep did: per-job outcomes plus aggregate counters."""

    outcomes: List[JobOutcome] = field(default_factory=list)
    #: Jobs submitted more than once with the same key (collapsed).
    duplicates: int = 0
    elapsed_s: float = 0.0

    @property
    def total(self) -> int:
        return len(self.outcomes)

    @property
    def hits(self) -> int:
        return sum(1 for outcome in self.outcomes if outcome.cached)

    @property
    def executed(self) -> int:
        return sum(1 for outcome in self.outcomes if not outcome.cached)

    @property
    def failed(self) -> int:
        return sum(1 for outcome in self.outcomes if not outcome.ok)

    @property
    def all_cached(self) -> bool:
        return self.executed == 0

    def record_for(self, job: Job) -> Mapping[str, object]:
        for outcome in self.outcomes:
            if outcome.job.key == job.key:
                return outcome.record
        raise KeyError(job.key)

    def summary(self) -> str:
        return (
            f"{self.total} job(s): {self.hits} cache hit(s), "
            f"{self.executed} executed, {self.failed} failed "
            f"({self.elapsed_s:.1f}s)"
        )


def _default_context():
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX fallback
        return multiprocessing.get_context()


def _run_isolated(job: Job, mp_context) -> Dict[str, object]:
    """Re-run one suspect job in a disposable single-worker pool.

    If this pool breaks too, the crash is attributable to exactly this
    job, which is then the one marked failed.
    """
    try:
        with ProcessPoolExecutor(
            max_workers=1, mp_context=mp_context
        ) as pool:
            return pool.submit(
                execute_job, job.kind, dict(job.params)
            ).result()
    except BrokenProcessPool:
        return {
            "status": "failed",
            "result": None,
            "error": "worker process died while running this job",
            "elapsed_s": 0.0,
        }


def _run_parallel(
    pending: Sequence[Job],
    workers: int,
    mp_context,
    on_done: Callable[[Job, Dict[str, object]], None],
) -> None:
    """Shard ``pending`` over a worker pool, isolating crashers."""
    suspects: List[Job] = []
    with ProcessPoolExecutor(
        max_workers=workers, mp_context=mp_context
    ) as pool:
        futures = {
            pool.submit(execute_job, job.kind, dict(job.params)): job
            for job in pending
        }
        for future in as_completed(futures):
            job = futures[future]
            try:
                payload = future.result()
            except BrokenProcessPool:
                # A worker died; every unfinished future resolves this
                # way and the crasher is not attributable here.  Defer
                # to isolated re-runs below.
                suspects.append(job)
                continue
            except Exception as exc:  # noqa: BLE001 - e.g. unpicklable
                payload = {
                    "status": "failed",
                    "result": None,
                    "error": f"{type(exc).__name__}: {exc}",
                    "elapsed_s": 0.0,
                }
            on_done(job, payload)
    for job in suspects:
        on_done(job, _run_isolated(job, mp_context))


def run_sweep(
    jobs: Union[SweepSpec, Sequence[Job]],
    store: Optional[ResultStore] = None,
    workers: int = 1,
    use_cache: bool = True,
    retry_failed: bool = False,
    progress: Optional[ProgressFn] = None,
    mp_context=None,
) -> SweepReport:
    """Resolve every job — from the store where possible, by
    simulation otherwise — and return the per-job outcomes.

    ``use_cache=False`` forces every point to execute (fresh records
    still overwrite the store, so it doubles as an invalidation pass).
    ``retry_failed=True`` re-executes stored *failed* records instead
    of serving them from cache — the default serves them, because the
    simulator is deterministic and a re-run reproduces the failure.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if isinstance(jobs, SweepSpec):
        jobs = jobs.expand()
    if store is None:
        store = ResultStore()  # memory-only
    started = time.perf_counter()
    unique = dedupe(jobs)
    report = SweepReport(duplicates=len(jobs) - len(unique))

    outcomes: Dict[str, JobOutcome] = {}
    pending: List[Job] = []
    for job in unique:
        record = store.get(job.key) if use_cache else None
        if record is not None and (
            record.get("status") == "ok" or not retry_failed
        ):
            outcomes[job.key] = JobOutcome(job, record, cached=True)
        else:
            pending.append(job)

    done_count = len(outcomes)
    if progress is not None:
        for job in unique:
            outcome = outcomes.get(job.key)
            if outcome is not None:
                progress(job, outcome.record, True, done_count, len(unique))

    def on_done(job: Job, payload: Dict[str, object]) -> None:
        nonlocal done_count
        record = make_record(
            job,
            status=payload["status"],
            result=payload["result"],
            error=payload["error"],
            elapsed_s=payload["elapsed_s"],
        )
        store.put(record)
        outcomes[job.key] = JobOutcome(job, record, cached=False)
        done_count += 1
        if progress is not None:
            progress(job, record, False, done_count, len(unique))

    if pending:
        if workers == 1:
            for job in pending:
                on_done(job, execute_job(job.kind, dict(job.params)))
        else:
            _run_parallel(
                pending,
                workers,
                mp_context if mp_context is not None else _default_context(),
                on_done,
            )

    # Report in submission order regardless of completion order.
    report.outcomes = [outcomes[job.key] for job in unique]
    report.elapsed_s = time.perf_counter() - started
    return report
