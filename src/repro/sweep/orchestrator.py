"""Multiprocess sweep orchestrator.

:func:`run_sweep` takes a job list (or a :class:`~repro.sweep.spec
.SweepSpec`), collapses duplicate keys, serves every already-stored key
from the :class:`~repro.sweep.store.ResultStore`, and shards the
remainder across worker processes.  Each job's outcome — ``ok`` or
``failed``, with metrics or an error — is appended to the store the
moment it completes, so an interrupted sweep resumes from its last
completed point and a finished sweep re-runs as 100% cache hits.

Failure containment is per point, never per sweep:

* a runner that raises records a *failed* job (with
  :class:`~repro.sweep.runners.JobFailure` carrying any partial
  result) and the sweep continues;
* a worker process that dies outright (segfault, ``os._exit``, OOM
  kill) breaks the shared pool — the orchestrator then re-runs each
  unfinished job in its own single-worker pool, so the crasher is
  identified precisely and marked failed while innocent in-flight jobs
  complete normally.

Workers are forked where available (Linux/macOS ``fork`` context) so
runner registrations made by the parent are visible without re-import;
pass ``mp_context`` to override.

Liveness has two optional surfaces, both off by default:

* ``telemetry=`` (a :class:`~repro.obs.stream.TelemetryWriter`) streams
  the sweep lifecycle — ``sweep_start``, per-job ``job_start`` /
  ``job_done`` / ``job_fail`` / ``job_hit``, per-worker ``heartbeat``
  records written by the worker processes themselves, rolling
  ``sweep_progress`` with throughput and ETA, and a closing
  ``sweep_end`` — for ``repro monitor`` to render live;
* :class:`ProgressPrinter` is a ready-made :data:`ProgressFn` that keeps
  a single updating stderr line (done/total, failures, cache hits, ETA)
  on a tty and degrades to sparse plain lines when piped.
"""

from __future__ import annotations

import multiprocessing
import signal
import sys
import time
import traceback as traceback_mod
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    TextIO,
    Union,
)

from .runners import (
    JOB_RUNNERS,
    JobFailure,
    heartbeat_drops,
    job_context,
    job_deadline,
    retry_backoff_s,
    worker_job_finished,
    worker_job_started,
)
from .spec import Job, SweepSpec, dedupe
from .store import ResultStore, make_record

#: Outcome-stream callback: (job, record, cached, done_count, total_count).
ProgressFn = Callable[[Job, Mapping[str, object], bool, int, int], None]


def execute_job(
    kind: str,
    params: Dict[str, object],
    telemetry_path: Optional[str] = None,
    key: Optional[str] = None,
    label: Optional[str] = None,
    timeout_s: Optional[float] = None,
    retries: int = 0,
    checkpoint_dir: Optional[str] = None,
    checkpoint_every: Optional[int] = None,
) -> Dict[str, object]:
    """Run one job in the current process; never raises.

    The worker-side entry point: every failure mode is folded into the
    returned payload so a Python-level error can never poison the pool.
    With ``telemetry_path`` set, the worker itself appends ``job_start``
    and ``heartbeat`` records to the stream (line-atomic ``O_APPEND``
    writes), so a monitor sees jobs as workers pick them up.

    ``timeout_s`` bounds each attempt's wall clock (SIGALRM, see
    :func:`~repro.sweep.runners.job_deadline`); ``retries`` allows that
    many *re*-executions after a timeout or an unexpected exception,
    each preceded by the deterministic jittered backoff of
    :func:`~repro.sweep.runners.retry_backoff_s`.  A
    :class:`~repro.sweep.runners.JobFailure` is never retried: the
    simulator is deterministic, so a domain-level failure reproduces
    exactly.  The payload reports ``attempts`` (executions, including
    the first), the last failure's ``traceback``, and the worker's
    ``heartbeat_drops`` delta for this job.
    """
    started = time.perf_counter()
    drops_before = heartbeat_drops()
    if telemetry_path is not None:
        worker_job_started(telemetry_path, key or "", kind, label or "")
    attempts = 0
    while True:
        attempts += 1
        try:
            runner = JOB_RUNNERS.get(kind)
            if runner is None:
                raise JobFailure(
                    f"unknown job kind {kind!r}; "
                    f"registered: {sorted(JOB_RUNNERS)}"
                )
            with job_context(key or "", checkpoint_dir, checkpoint_every):
                with job_deadline(timeout_s):
                    result = runner(params)
            payload = {
                "status": "ok",
                "result": dict(result),
                "error": None,
                "traceback": None,
            }
            break
        except JobFailure as failure:
            payload = {
                "status": "failed",
                "result": failure.result,
                "error": failure.error,
                "traceback": failure.traceback
                or traceback_mod.format_exc(),
            }
            break
        except Exception as exc:  # noqa: BLE001 - boundary: fold into record
            trace = traceback_mod.format_exc()
            if attempts <= retries:
                time.sleep(retry_backoff_s(key or kind, attempts))
                continue
            payload = {
                "status": "failed",
                "result": None,
                "error": f"{type(exc).__name__}: {exc}",
                "traceback": trace,
            }
            break
    payload["attempts"] = attempts
    payload["elapsed_s"] = time.perf_counter() - started
    if telemetry_path is not None:
        worker_job_finished(
            telemetry_path, key or "", label or "", str(payload["status"])
        )
    payload["heartbeat_drops"] = heartbeat_drops() - drops_before
    return payload


@dataclass(frozen=True)
class JobOutcome:
    """One job's resolution within a sweep."""

    job: Job
    record: Mapping[str, object]
    cached: bool

    @property
    def ok(self) -> bool:
        return self.record.get("status") == "ok"


@dataclass
class SweepReport:
    """What a sweep did: per-job outcomes plus aggregate counters."""

    outcomes: List[JobOutcome] = field(default_factory=list)
    #: Jobs submitted more than once with the same key (collapsed).
    duplicates: int = 0
    elapsed_s: float = 0.0
    #: Worker telemetry emissions dropped on OSError (summed deltas).
    heartbeat_drops: int = 0
    #: A SIGINT/SIGTERM drained the sweep early: running jobs finished
    #: and were stored, queued jobs were never started (and are absent
    #: from :attr:`outcomes`).
    interrupted: bool = False

    @property
    def total(self) -> int:
        return len(self.outcomes)

    @property
    def hits(self) -> int:
        return sum(1 for outcome in self.outcomes if outcome.cached)

    @property
    def executed(self) -> int:
        return sum(1 for outcome in self.outcomes if not outcome.cached)

    @property
    def failed(self) -> int:
        return sum(1 for outcome in self.outcomes if not outcome.ok)

    @property
    def all_cached(self) -> bool:
        return self.executed == 0

    def record_for(self, job: Job) -> Mapping[str, object]:
        for outcome in self.outcomes:
            if outcome.job.key == job.key:
                return outcome.record
        raise KeyError(job.key)

    def summary(self) -> str:
        text = (
            f"{self.total} job(s): {self.hits} cache hit(s), "
            f"{self.executed} executed, {self.failed} failed "
            f"({self.elapsed_s:.1f}s)"
        )
        if self.heartbeat_drops:
            text += f", {self.heartbeat_drops} heartbeat drop(s)"
        if self.interrupted:
            text += " — INTERRUPTED (resume with the same store)"
        return text


class ProgressPrinter:
    """Single updating progress line: done/total, failures, hits, ETA.

    A :data:`ProgressFn` for long grids.  On a tty the line redraws in
    place (``\\r``); piped to a file it prints at most ~10 milestone
    lines so logs stay readable.  Call :meth:`close` (or use the CLI,
    which does) to terminate the tty line with a newline.
    """

    def __init__(self, stream: Optional[TextIO] = None) -> None:
        self.stream = stream if stream is not None else sys.stderr
        self._isatty = bool(getattr(self.stream, "isatty", lambda: False)())
        self._started = time.perf_counter()
        self._executed = 0
        self._failed = 0
        self._hits = 0
        self._open_line = False

    def __call__(
        self,
        job: Job,
        record: Mapping[str, object],
        cached: bool,
        done: int,
        total: int,
    ) -> None:
        if cached:
            self._hits += 1
        else:
            self._executed += 1
        if record.get("status") != "ok":
            self._failed += 1
        if self._isatty or done == total or self._milestone(done, total):
            self._render(done, total)

    def _milestone(self, done: int, total: int) -> bool:
        step = max(1, total // 10)
        return done % step == 0

    def eta_s(self, done: int, total: int) -> Optional[float]:
        """Remaining-work estimate from executed-job throughput; cache
        hits are free, so they never count toward the rate."""
        if self._executed == 0 or done >= total:
            return None
        elapsed = time.perf_counter() - self._started
        if elapsed <= 0:
            return None
        return (total - done) * elapsed / self._executed

    def _render(self, done: int, total: int) -> None:
        eta = self.eta_s(done, total)
        text = (
            f"sweep [{done}/{total}] "
            f"{self._executed} run, {self._hits} cached, "
            f"{self._failed} failed"
        )
        if eta is not None:
            text += f", eta {eta:.0f}s"
        if self._isatty:
            self.stream.write("\r\x1b[K" + text)
            self._open_line = True
        else:
            self.stream.write(text + "\n")
        self.stream.flush()

    def close(self) -> None:
        """Terminate an in-place line so later output starts clean."""
        if self._open_line:
            self.stream.write("\n")
            self.stream.flush()
            self._open_line = False


def _default_context():
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX fallback
        return multiprocessing.get_context()


def _run_isolated(
    job: Job,
    mp_context,
    telemetry_path: Optional[str] = None,
    job_kwargs: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """Re-run one suspect job in a disposable single-worker pool.

    If this pool breaks too, the crash is attributable to exactly this
    job, which is then the one marked failed.
    """
    try:
        with ProcessPoolExecutor(
            max_workers=1, mp_context=mp_context
        ) as pool:
            return pool.submit(
                execute_job, job.kind, dict(job.params),
                telemetry_path, job.key, job.label,
                **(job_kwargs or {}),
            ).result()
    except BrokenProcessPool:
        return {
            "status": "failed",
            "result": None,
            "error": "worker process died while running this job",
            "elapsed_s": 0.0,
        }


def _run_parallel(
    pending: Sequence[Job],
    workers: int,
    mp_context,
    on_done: Callable[[Job, Dict[str, object]], None],
    telemetry_path: Optional[str] = None,
    should_stop: Optional[Callable[[], bool]] = None,
    job_kwargs: Optional[Dict[str, object]] = None,
) -> None:
    """Shard ``pending`` over a worker pool, isolating crashers.

    When ``should_stop`` turns true (a drain signal), every not-yet-
    started future is cancelled; jobs already running finish and are
    recorded, so the drain loses no completed work.
    """
    suspects: List[Job] = []
    draining = False
    with ProcessPoolExecutor(
        max_workers=workers, mp_context=mp_context
    ) as pool:
        futures = {
            pool.submit(
                execute_job, job.kind, dict(job.params),
                telemetry_path, job.key, job.label,
                **(job_kwargs or {}),
            ): job
            for job in pending
        }
        for future in as_completed(futures):
            if not draining and should_stop is not None and should_stop():
                draining = True
                for other in futures:
                    other.cancel()
            job = futures[future]
            if future.cancelled():
                continue
            try:
                payload = future.result()
            except BrokenProcessPool:
                # A worker died; every unfinished future resolves this
                # way and the crasher is not attributable here.  Defer
                # to isolated re-runs below.
                suspects.append(job)
                continue
            except Exception as exc:  # noqa: BLE001 - e.g. unpicklable
                payload = {
                    "status": "failed",
                    "result": None,
                    "error": f"{type(exc).__name__}: {exc}",
                    "elapsed_s": 0.0,
                }
            on_done(job, payload)
    if draining:
        return
    for job in suspects:
        on_done(
            job, _run_isolated(job, mp_context, telemetry_path, job_kwargs)
        )


def run_sweep(
    jobs: Union[SweepSpec, Sequence[Job]],
    store: Optional[ResultStore] = None,
    workers: int = 1,
    use_cache: bool = True,
    retry_failed: bool = False,
    progress: Optional[ProgressFn] = None,
    mp_context=None,
    telemetry=None,
    job_timeout_s: Optional[float] = None,
    job_retries: int = 0,
    checkpoint_dir: Optional[str] = None,
    checkpoint_every: Optional[int] = None,
    handle_signals: bool = False,
) -> SweepReport:
    """Resolve every job — from the store where possible, by
    simulation otherwise — and return the per-job outcomes.

    ``use_cache=False`` forces every point to execute (fresh records
    still overwrite the store, so it doubles as an invalidation pass).
    ``retry_failed=True`` re-executes stored *failed* records instead
    of serving them from cache — the default serves them, because the
    simulator is deterministic and a re-run reproduces the failure.
    ``telemetry`` (a :class:`~repro.obs.stream.TelemetryWriter`) streams
    the sweep lifecycle; workers append their own ``job_start`` and
    ``heartbeat`` records when the writer is file-backed.

    Crash tolerance: ``job_timeout_s`` bounds each attempt's wall
    clock, ``job_retries`` re-executes timeouts/unexpected exceptions
    (deterministic backoff — see :func:`execute_job`), and
    ``checkpoint_dir`` lets the ``metrics`` runner snapshot mid-job
    every ``checkpoint_every`` cycles so a killed worker's progress
    survives to the retry or the next invocation.  With
    ``handle_signals=True`` a SIGINT/SIGTERM drains gracefully: running
    jobs finish and are stored, queued jobs are skipped, and the report
    says ``interrupted`` — re-running the same sweep resumes from the
    store.  (Signal handlers are process-global: only the CLI, which
    owns the process, turns this on.)
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if isinstance(jobs, SweepSpec):
        jobs = jobs.expand()
    if store is None:
        store = ResultStore()  # memory-only
    started = time.perf_counter()
    unique = dedupe(jobs)
    report = SweepReport(duplicates=len(jobs) - len(unique))
    telemetry_path = (
        str(telemetry.path)
        if telemetry is not None and telemetry.path is not None
        else None
    )

    outcomes: Dict[str, JobOutcome] = {}
    pending: List[Job] = []
    for job in unique:
        record = store.get(job.key) if use_cache else None
        if record is not None and (
            record.get("status") == "ok" or not retry_failed
        ):
            outcomes[job.key] = JobOutcome(job, record, cached=True)
        else:
            pending.append(job)

    if telemetry is not None:
        telemetry.emit(
            "sweep_start",
            total=len(unique),
            pending=len(pending),
            cached=len(outcomes),
            workers=workers,
            duplicates=report.duplicates,
        )

    done_count = len(outcomes)
    executed_done = 0
    failed_count = 0
    for job in unique:
        outcome = outcomes.get(job.key)
        if outcome is None:
            continue
        if not outcome.ok:
            failed_count += 1
        if progress is not None:
            progress(job, outcome.record, True, done_count, len(unique))
        if telemetry is not None:
            telemetry.emit(
                "job_hit",
                key=job.key,
                label=job.label,
                status=outcome.record.get("status"),
            )

    def on_done(job: Job, payload: Dict[str, object]) -> None:
        nonlocal done_count, executed_done, failed_count
        record = make_record(
            job,
            status=payload["status"],
            result=payload["result"],
            error=payload["error"],
            elapsed_s=payload["elapsed_s"],
            attempts=payload.get("attempts", 1),
            traceback=payload.get("traceback"),
        )
        report.heartbeat_drops += int(payload.get("heartbeat_drops", 0))
        store.put(record)
        outcomes[job.key] = JobOutcome(job, record, cached=False)
        done_count += 1
        executed_done += 1
        failed = payload["status"] != "ok"
        if failed:
            failed_count += 1
        if progress is not None:
            progress(job, record, False, done_count, len(unique))
        if telemetry is not None:
            telemetry.emit(
                "job_fail" if failed else "job_done",
                key=job.key,
                label=job.label,
                elapsed_s=payload["elapsed_s"],
                error=payload["error"],
            )
            elapsed = time.perf_counter() - started
            rate = executed_done / elapsed if elapsed > 0 else None
            remaining = len(unique) - done_count
            telemetry.emit(
                "sweep_progress",
                done=done_count,
                total=len(unique),
                failed=failed_count,
                hits=done_count - executed_done,
                jobs_per_s=rate,
                eta_s=remaining / rate if rate else None,
            )

    job_kwargs: Dict[str, object] = {
        "timeout_s": job_timeout_s,
        "retries": job_retries,
        "checkpoint_dir": checkpoint_dir,
        "checkpoint_every": checkpoint_every,
    }
    stop_signals: List[int] = []
    previous_handlers: Dict[int, object] = {}
    if handle_signals:
        def request_stop(signum, frame):
            stop_signals.append(signum)

        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                previous_handlers[signum] = signal.signal(
                    signum, request_stop
                )
            except ValueError:  # not the main thread: no drain support
                for installed, handler in previous_handlers.items():
                    signal.signal(installed, handler)
                previous_handlers.clear()
                break

    try:
        if pending:
            if workers == 1:
                for job in pending:
                    if stop_signals:
                        break
                    on_done(
                        job,
                        execute_job(
                            job.kind, dict(job.params),
                            telemetry_path, job.key, job.label,
                            **job_kwargs,
                        ),
                    )
            else:
                _run_parallel(
                    pending,
                    workers,
                    mp_context if mp_context is not None
                    else _default_context(),
                    on_done,
                    telemetry_path,
                    should_stop=lambda: bool(stop_signals),
                    job_kwargs=job_kwargs,
                )
    finally:
        for signum, handler in previous_handlers.items():
            signal.signal(signum, handler)

    # Report in submission order regardless of completion order.  An
    # interrupted sweep has no outcome for never-started jobs.
    report.interrupted = bool(stop_signals)
    report.outcomes = [
        outcomes[job.key] for job in unique if job.key in outcomes
    ]
    report.elapsed_s = time.perf_counter() - started
    if telemetry is not None:
        telemetry.emit(
            "sweep_end",
            total=report.total,
            hits=report.hits,
            executed=report.executed,
            failed=report.failed,
            elapsed_s=report.elapsed_s,
            heartbeat_drops=report.heartbeat_drops,
            interrupted=report.interrupted,
            summary=report.summary(),
        )
    return report
