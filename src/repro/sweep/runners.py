"""Job runners: what a worker process executes for each job kind.

A runner is a plain function ``params -> result dict`` registered under
a job *kind*; the orchestrator ships ``(kind, params)`` to a worker,
which looks the runner up in :data:`JOB_RUNNERS` and executes it.  Both
sides of the boundary are JSON-level dicts so jobs pickle trivially and
hash canonically.

Two kinds are built in:

* ``metrics`` — build one :class:`~repro.sim.config.SystemConfig` from
  a fully-resolved payload, simulate it, return the
  :class:`~repro.sim.stats.RunMetrics` fields.  This is the kind the
  generic ``repro sweep grid`` command and the Fig. 8 grid use, and the
  one ``repro all`` consults for exhibit caching.
* ``fault-point`` — one point of the fault-rate sweep, via exactly the
  same code path as the serial
  :func:`repro.experiments.fault_sweep.run_fault_point`, so parallel
  sweeps are bit-identical to the serial baseline.  A point that hangs
  (fails to drain) or leaves injected faults unaccounted raises
  :class:`JobFailure` carrying the partial result, so the store records
  it as a *failed* job with the rate and drain budget in the error —
  never a silent row.

A runner signals a domain-level failure by raising :class:`JobFailure`
(optionally with the partial result); any other exception is caught at
the execution boundary and recorded as a failed job with the exception
text.
"""

from __future__ import annotations

import os
from dataclasses import asdict
from typing import Callable, Dict, Mapping, Optional

from ..core.system import build_system
from ..resilience.faults import FaultConfig, FaultSite, ScheduledFault
from ..sim.config import DdrGeneration, NocDesign, SystemConfig

#: Jobs this process has finished — the heartbeat progress counter.
#: Plain module state: each forked worker owns its copy.
_jobs_done = 0


def worker_job_started(
    telemetry_path: str, key: str, kind: str, label: str
) -> None:
    """Emit ``job_start`` + a heartbeat from inside a worker process.

    Workers append single lines to the shared stream file themselves
    (``O_APPEND``), so the monitor sees a job the moment a worker picks
    it up — not only when the parent collects the result.  Telemetry is
    never load-bearing: emission failures are swallowed.
    """
    from ..obs.stream import append_record

    try:
        append_record(
            telemetry_path, "job_start",
            key=key, kind=kind, label=label, worker=os.getpid(),
        )
        append_record(
            telemetry_path, "heartbeat",
            worker=os.getpid(), jobs_done=_jobs_done, current=label,
            phase="start",
        )
    except OSError:
        pass


def worker_job_finished(
    telemetry_path: str, key: str, label: str, status: str
) -> None:
    """Count the finished job and emit the worker's heartbeat."""
    global _jobs_done
    _jobs_done += 1
    from ..obs.stream import append_record

    try:
        append_record(
            telemetry_path, "heartbeat",
            worker=os.getpid(), jobs_done=_jobs_done, current=label,
            phase="done", status=status,
        )
    except OSError:
        pass


class JobFailure(Exception):
    """A runner-reported failure, optionally with a partial result."""

    def __init__(
        self, error: str, result: Optional[Mapping[str, object]] = None
    ) -> None:
        super().__init__(error)
        self.error = error
        self.result = dict(result) if result is not None else None


#: kind -> runner. Workers resolve kinds here; register new experiment
#: types with :func:`register_runner`.
JOB_RUNNERS: Dict[str, Callable[[Mapping[str, object]], Mapping[str, object]]] = {}


def register_runner(kind: str):
    """Decorator registering a runner for ``kind`` (last wins)."""

    def register(fn):
        JOB_RUNNERS[kind] = fn
        return fn

    return register


# --------------------------------------------------------------------- #
# Config <-> canonical JSON payload
# --------------------------------------------------------------------- #

def fault_payload(faults: FaultConfig) -> Dict[str, object]:
    """A FaultConfig flattened to JSON scalars (enums to values)."""
    payload = asdict(faults)
    payload["schedule"] = [
        {
            "cycle": entry.cycle,
            "site": entry.site.value,
            "node": entry.node,
            "bits": entry.bits,
        }
        for entry in faults.schedule
    ]
    return payload


def fault_from_payload(payload: Mapping[str, object]) -> FaultConfig:
    fields = dict(payload)
    fields["schedule"] = tuple(
        ScheduledFault(
            cycle=entry["cycle"],
            site=FaultSite(entry["site"]),
            node=entry["node"],
            bits=entry["bits"],
        )
        for entry in fields.get("schedule", ())
    )
    return FaultConfig(**fields)


def config_payload(config: SystemConfig) -> Dict[str, object]:
    """Every SystemConfig field, fully resolved, as JSON scalars.

    This is the ``metrics`` job's parameter mapping — and therefore the
    cache key material — so *every* field participates: changing any
    one of them is a miss, changing none is a hit.
    """
    payload = asdict(config)
    payload["ddr"] = config.ddr.value
    payload["design"] = config.design.value
    payload["faults"] = (
        fault_payload(config.faults) if config.faults is not None else None
    )
    return payload


def config_from_payload(payload: Mapping[str, object]) -> SystemConfig:
    fields = dict(payload)
    fields["ddr"] = DdrGeneration(fields["ddr"])
    fields["design"] = NocDesign(fields["design"])
    if fields.get("faults") is not None:
        fields["faults"] = fault_from_payload(fields["faults"])
    return SystemConfig(**fields)


def metrics_job(config: SystemConfig, label: Optional[str] = None):
    """The ``metrics`` job for one configuration.

    One seam shared by ``repro sweep`` and the ``repro all`` exhibit
    cache: both address the store through this job's key, so a point
    simulated by either is a hit for the other.
    """
    from .spec import Job  # local: spec imports store, not runners

    return Job(
        kind="metrics",
        params=config_payload(config),
        label=label if label is not None else config.label,
    )


# --------------------------------------------------------------------- #
# Built-in runners
# --------------------------------------------------------------------- #

@register_runner("metrics")
def run_metrics_job(params: Mapping[str, object]) -> Dict[str, object]:
    """Simulate one configuration; result = RunMetrics fields."""
    config = config_from_payload(params)
    system = build_system(config)
    metrics = system.run()
    return asdict(metrics)


@register_runner("fault-point")
def run_fault_point_job(params: Mapping[str, object]) -> Dict[str, object]:
    """One fault-sweep point, hung/unaccounted surfaced as failure."""
    from ..experiments import fault_sweep

    point = fault_sweep.run_fault_point(
        rate=params["rate"],
        cycles=params["cycles"],
        warmup=params["warmup"],
        seed=params["seed"],
        app=params["app"],
        drain_cycles=params["drain_cycles"],
    )
    result = asdict(point)
    reason = point.failure_reason()
    if reason is not None:
        raise JobFailure(reason, result)
    return result
