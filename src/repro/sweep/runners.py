"""Job runners: what a worker process executes for each job kind.

A runner is a plain function ``params -> result dict`` registered under
a job *kind*; the orchestrator ships ``(kind, params)`` to a worker,
which looks the runner up in :data:`JOB_RUNNERS` and executes it.  Both
sides of the boundary are JSON-level dicts so jobs pickle trivially and
hash canonically.

Two kinds are built in:

* ``metrics`` — build one :class:`~repro.sim.config.SystemConfig` from
  a fully-resolved payload, simulate it, return the
  :class:`~repro.sim.stats.RunMetrics` fields.  This is the kind the
  generic ``repro sweep grid`` command and the Fig. 8 grid use, and the
  one ``repro all`` consults for exhibit caching.
* ``fault-point`` — one point of the fault-rate sweep, via exactly the
  same code path as the serial
  :func:`repro.experiments.fault_sweep.run_fault_point`, so parallel
  sweeps are bit-identical to the serial baseline.  A point that hangs
  (fails to drain) or leaves injected faults unaccounted raises
  :class:`JobFailure` carrying the partial result, so the store records
  it as a *failed* job with the rate and drain budget in the error —
  never a silent row.

A runner signals a domain-level failure by raising :class:`JobFailure`
(optionally with the partial result); any other exception is caught at
the execution boundary and recorded as a failed job with the exception
text.
"""

from __future__ import annotations

import os
import signal
import threading
from contextlib import contextmanager
from dataclasses import asdict
from pathlib import Path
from typing import Callable, Dict, Mapping, Optional

from ..core.system import build_system
from ..resilience.faults import FaultConfig, FaultSite, ScheduledFault
from ..sim.config import DdrGeneration, NocDesign, SystemConfig
from ..sim.rng import derive_rng

#: Jobs this process has finished — the heartbeat progress counter.
#: Plain module state: each forked worker owns its copy.
_jobs_done = 0

#: Heartbeat/job_start emissions this process dropped on OSError.  The
#: drops stay non-fatal (telemetry is never load-bearing) but are now
#: *counted*: :func:`~repro.sweep.orchestrator.execute_job` folds the
#: delta into its payload and the sweep report surfaces the total, so a
#: full stream disk or bad path no longer silently blinds the monitor.
_heartbeat_drops = 0


def heartbeat_drops() -> int:
    """This process's dropped-emission count (monotonic)."""
    return _heartbeat_drops


def worker_job_started(
    telemetry_path: str, key: str, kind: str, label: str
) -> None:
    """Emit ``job_start`` + a heartbeat from inside a worker process.

    Workers append single lines to the shared stream file themselves
    (``O_APPEND``), so the monitor sees a job the moment a worker picks
    it up — not only when the parent collects the result.  Telemetry is
    never load-bearing: emission failures are swallowed, but counted in
    :func:`heartbeat_drops`.
    """
    global _heartbeat_drops
    from ..obs.stream import append_record

    try:
        append_record(
            telemetry_path, "job_start",
            key=key, kind=kind, label=label, worker=os.getpid(),
        )
        append_record(
            telemetry_path, "heartbeat",
            worker=os.getpid(), jobs_done=_jobs_done, current=label,
            phase="start",
        )
    except OSError:
        _heartbeat_drops += 1


def worker_job_finished(
    telemetry_path: str, key: str, label: str, status: str
) -> None:
    """Count the finished job and emit the worker's heartbeat."""
    global _jobs_done, _heartbeat_drops
    _jobs_done += 1
    from ..obs.stream import append_record

    try:
        append_record(
            telemetry_path, "heartbeat",
            worker=os.getpid(), jobs_done=_jobs_done, current=label,
            phase="done", status=status,
        )
    except OSError:
        _heartbeat_drops += 1


class JobFailure(Exception):
    """A runner-reported failure, optionally with a partial result.

    ``attempts`` and ``traceback`` are stamped by the execution boundary
    (:func:`~repro.sweep.orchestrator.execute_job`) so the stored record
    says how many executions it took and what the last one looked like.
    """

    def __init__(
        self,
        error: str,
        result: Optional[Mapping[str, object]] = None,
        attempts: int = 1,
        traceback: Optional[str] = None,
    ) -> None:
        super().__init__(error)
        self.error = error
        self.result = dict(result) if result is not None else None
        self.attempts = attempts
        self.traceback = traceback


class JobTimeout(Exception):
    """A runner exceeded its wall-clock deadline (see :func:`job_deadline`)."""


@contextmanager
def job_deadline(seconds: Optional[float]):
    """Raise :class:`JobTimeout` if the body runs longer than ``seconds``.

    Implemented with ``SIGALRM`` — the only way to interrupt a CPU-bound
    simulation loop from within the same process.  Worker processes run
    jobs on their main thread, where signal delivery works; off the main
    thread (or with ``seconds=None``/non-POSIX) the deadline degrades to
    a no-op rather than failing the job.
    """
    usable = (
        seconds is not None
        and seconds > 0
        and hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )
    if not usable:
        yield
        return

    def expire(signum, frame):
        raise JobTimeout(f"job exceeded its {seconds:g}s deadline")

    previous = signal.signal(signal.SIGALRM, expire)
    signal.setitimer(signal.ITIMER_REAL, float(seconds))
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def retry_backoff_s(
    key: str,
    attempt: int,
    base_s: float = 0.25,
    cap_s: float = 8.0,
) -> float:
    """Deterministic jittered exponential backoff before retry ``attempt``.

    Exponential in the attempt number, jittered to de-thunder a pool of
    workers retrying together — but the jitter is *derived* from the job
    key (via the same SHA-256 stream derivation every other seed in the
    repo uses), not wall-clock randomness, so a re-run of a sweep waits
    the exact same delays and the retry schedule is reproducible.
    """
    if attempt < 1:
        raise ValueError(f"attempt must be >= 1, got {attempt}")
    rng = derive_rng(0, "job-retry", key, attempt)
    return min(cap_s, base_s * (2.0 ** (attempt - 1))) * (0.5 + rng.random())


#: The job currently executing in this process, set by ``execute_job``:
#: ``key`` plus the checkpoint policy the orchestrator was given.
#: Runners that support mid-job snapshots (``metrics``) read it to find
#: where to save/resume; plain module state, per-process like
#: ``_jobs_done``.
_active_job: Dict[str, object] = {}


@contextmanager
def job_context(
    key: str,
    checkpoint_dir: Optional[str] = None,
    checkpoint_every: Optional[int] = None,
):
    """Install the per-job execution context around one runner call."""
    previous = dict(_active_job)
    _active_job.clear()
    _active_job.update(
        key=key,
        checkpoint_dir=checkpoint_dir,
        checkpoint_every=checkpoint_every,
    )
    try:
        yield
    finally:
        _active_job.clear()
        _active_job.update(previous)


#: kind -> runner. Workers resolve kinds here; register new experiment
#: types with :func:`register_runner`.
JOB_RUNNERS: Dict[str, Callable[[Mapping[str, object]], Mapping[str, object]]] = {}


def register_runner(kind: str):
    """Decorator registering a runner for ``kind`` (last wins)."""

    def register(fn):
        JOB_RUNNERS[kind] = fn
        return fn

    return register


# --------------------------------------------------------------------- #
# Config <-> canonical JSON payload
# --------------------------------------------------------------------- #

def fault_payload(faults: FaultConfig) -> Dict[str, object]:
    """A FaultConfig flattened to JSON scalars (enums to values)."""
    payload = asdict(faults)
    payload["schedule"] = [
        {
            "cycle": entry.cycle,
            "site": entry.site.value,
            "node": entry.node,
            "bits": entry.bits,
        }
        for entry in faults.schedule
    ]
    return payload


def fault_from_payload(payload: Mapping[str, object]) -> FaultConfig:
    fields = dict(payload)
    fields["schedule"] = tuple(
        ScheduledFault(
            cycle=entry["cycle"],
            site=FaultSite(entry["site"]),
            node=entry["node"],
            bits=entry["bits"],
        )
        for entry in fields.get("schedule", ())
    )
    return FaultConfig(**fields)


def config_payload(config: SystemConfig) -> Dict[str, object]:
    """Every SystemConfig field, fully resolved, as JSON scalars.

    This is the ``metrics`` job's parameter mapping — and therefore the
    cache key material — so *every* field participates: changing any
    one of them is a miss, changing none is a hit.
    """
    payload = asdict(config)
    payload["ddr"] = config.ddr.value
    payload["design"] = config.design.value
    payload["faults"] = (
        fault_payload(config.faults) if config.faults is not None else None
    )
    return payload


def config_from_payload(payload: Mapping[str, object]) -> SystemConfig:
    fields = dict(payload)
    fields["ddr"] = DdrGeneration(fields["ddr"])
    fields["design"] = NocDesign(fields["design"])
    if fields.get("faults") is not None:
        fields["faults"] = fault_from_payload(fields["faults"])
    return SystemConfig(**fields)


def metrics_job(config: SystemConfig, label: Optional[str] = None):
    """The ``metrics`` job for one configuration.

    One seam shared by ``repro sweep`` and the ``repro all`` exhibit
    cache: both address the store through this job's key, so a point
    simulated by either is a hit for the other.
    """
    from .spec import Job  # local: spec imports store, not runners

    return Job(
        kind="metrics",
        params=config_payload(config),
        label=label if label is not None else config.label,
    )


# --------------------------------------------------------------------- #
# Built-in runners
# --------------------------------------------------------------------- #

@register_runner("metrics")
def run_metrics_job(params: Mapping[str, object]) -> Dict[str, object]:
    """Simulate one configuration; result = RunMetrics fields.

    When the orchestrator supplies a checkpoint policy (``execute_job``
    sets it in the job context), the run snapshots to
    ``<checkpoint_dir>/<job_key>.ckpt`` every ``checkpoint_every``
    cycles, resumes from a valid existing snapshot (a SIGKILLed worker's
    partial progress), and deletes the snapshot on success.  The
    checkpoint-identity guarantee makes the resumed result bit-identical
    to an uninterrupted run, so caching semantics are unchanged.
    """
    config = config_from_payload(params)
    checkpoint_dir = _active_job.get("checkpoint_dir")
    if not checkpoint_dir:
        system = build_system(config)
        metrics = system.run()
        return asdict(metrics)

    from ..sim.checkpoint import (
        CheckpointError,
        load_checkpoint,
        save_checkpoint,
    )
    from ..sim.stats import RunMetrics

    path = Path(checkpoint_dir) / f"{_active_job.get('key', 'job')}.ckpt"
    system = None
    if path.exists():
        try:
            system = load_checkpoint(path)
        except CheckpointError:
            # Invalid snapshot (torn write from the crash itself):
            # discard it and start the job over.
            system = None
    if system is None:
        system = build_system(config)
    every = _active_job.get("checkpoint_every") or max(1, config.cycles // 4)

    def snapshot(cycle: int) -> bool:
        save_checkpoint(path, system)
        return False  # keep running

    system.simulator.run(
        max(0, config.cycles - system.simulator.cycle),
        checkpoint_every=every,
        on_checkpoint=snapshot,
    )
    metrics = RunMetrics.from_collector(
        system.stats, system.simulator.cycle, scheduler=system.subsystem
    )
    try:
        path.unlink()
    except OSError:
        pass
    return asdict(metrics)


@register_runner("fault-point")
def run_fault_point_job(params: Mapping[str, object]) -> Dict[str, object]:
    """One fault-sweep point, hung/unaccounted surfaced as failure."""
    from ..experiments import fault_sweep

    point = fault_sweep.run_fault_point(
        rate=params["rate"],
        cycles=params["cycles"],
        warmup=params["warmup"],
        seed=params["seed"],
        app=params["app"],
        drain_cycles=params["drain_cycles"],
    )
    result = asdict(point)
    reason = point.failure_reason()
    if reason is not None:
        raise JobFailure(reason, result)
    return result
