"""Declarative sweep specification: parameter grids expanded into jobs.

A :class:`SweepSpec` names a grid — fixed ``base`` parameters plus
``axes`` that are crossed (full Cartesian product, in declaration
order) — and :meth:`SweepSpec.expand` turns it into a list of
:class:`Job` objects, each carrying the fully-resolved parameter
mapping the worker needs and nothing else.  The job's content-addressed
``key`` (see :mod:`repro.sweep.store`) is derived from exactly those
parameters, so any field change is a cache miss and no field change is
a re-run.

Seeds are deterministic by construction.  If a grid names ``seed`` (in
``base`` or as an axis) the explicit values pass through untouched —
that is how the canonical fault-sweep and Fig. 8 grids stay
bit-identical to their serial baselines.  Otherwise every job gets a
seed derived with :func:`repro.sim.rng.derive_seed` from the spec's
``root_seed``, the spec name, the job's axis coordinates, and its
replicate index: decoupled streams, stable across processes, and
independent of expansion order.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence

from ..sim.rng import derive_seed
from .store import canonical_json, job_key


@dataclass(frozen=True)
class Job:
    """One fully-resolved unit of sweep work.

    ``params`` must be canonically JSON-serializable (scalars, lists,
    nested dicts — no enums or dataclasses); :attr:`key` hashes it
    together with ``kind`` and the store schema version.
    """

    kind: str
    params: Mapping[str, object]
    label: str = ""

    def __post_init__(self) -> None:
        # Fail at construction, not at store time: params must encode
        # canonically or the content address is meaningless.
        canonical_json(dict(self.params))

    @property
    def key(self) -> str:
        return job_key(self.kind, self.params)


@dataclass(frozen=True)
class SweepSpec:
    """A declarative parameter grid.

    ``resolver`` optionally maps each merged parameter assignment to
    the final job params — the hook grids use to expand a handful of
    swept fields into a complete, fully-resolved system configuration
    payload (defaults pinned, enums flattened) before hashing.
    """

    name: str
    kind: str = "metrics"
    base: Mapping[str, object] = field(default_factory=dict)
    axes: Mapping[str, Sequence[object]] = field(default_factory=dict)
    replicates: int = 1
    root_seed: int = 2010
    resolver: Optional[Callable[[Dict[str, object]], Mapping[str, object]]] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("spec name must be non-empty")
        if self.replicates < 1:
            raise ValueError(f"replicates must be >= 1, got {self.replicates}")
        overlap = set(self.base) & set(self.axes)
        if overlap:
            raise ValueError(
                f"fields {sorted(overlap)} appear in both base and axes; "
                f"a swept field must not also be pinned"
            )
        for axis, values in self.axes.items():
            if not values:
                raise ValueError(f"axis {axis!r} has no values")
        if self.replicates > 1 and (
            "seed" in self.base or "seed" in self.axes
        ):
            raise ValueError(
                "replicates > 1 derives one seed per replicate; "
                "it cannot be combined with an explicit seed"
            )

    @property
    def size(self) -> int:
        total = self.replicates
        for values in self.axes.values():
            total *= len(values)
        return total

    def expand(self) -> List[Job]:
        """The grid's jobs: full cross product × replicates, in axis
        declaration order with replicates innermost."""
        axis_names = list(self.axes)
        jobs: List[Job] = []
        for combo in itertools.product(
            *(self.axes[name] for name in axis_names)
        ):
            assignment = dict(zip(axis_names, combo))
            coords = [f"{name}={assignment[name]}" for name in axis_names]
            for replicate in range(self.replicates):
                params: Dict[str, object] = {**self.base, **assignment}
                if "seed" not in params:
                    params["seed"] = derive_seed(
                        self.root_seed, "sweep", self.name, *coords, replicate
                    )
                label = ",".join(coords) if coords else self.name
                if self.replicates > 1:
                    label += f",rep={replicate}"
                if self.resolver is not None:
                    params = dict(self.resolver(params))
                jobs.append(Job(kind=self.kind, params=params, label=label))
        return jobs


def dedupe(jobs: Sequence[Job]) -> List[Job]:
    """Jobs with duplicate keys collapsed, first occurrence kept."""
    seen: Dict[str, None] = {}
    unique: List[Job] = []
    for job in jobs:
        if job.key not in seen:
            seen[job.key] = None
            unique.append(job)
    return unique
