"""Analytical power model (Table V).

The paper measures average power with Synopsys PrimeTime PX after
gate-level simulation (45 nm).  We substitute an activity-based analytical
model: each design's power is its gate count (from
:mod:`repro.cost.gate_count`) times clock frequency times an effective
per-gate switching power density, optionally modulated by the measured
switching activity (memory utilization) of a simulation run.

With the default activity the model lands within a few percent of every
Table V entry, and the ratios (CONV ~1.4x, [4] ~1.003x of the proposed
design) follow directly from the gate-count structure: CONV burns its
extra power in the reorder buffers and MemMax thread buffers that the
NoC-scheduled designs remove.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from .gate_count import full_noc

#: Effective switching power density at 45 nm: watts per gate per MHz,
#: fitted to Table V's CONV @ 400 MHz entry.
WATTS_PER_GATE_MHZ = 8.84e-10

#: Fraction of power that is activity-independent (clock tree + leakage).
STATIC_FRACTION = 0.35

#: Mesh sizes of the paper's applications.
APP_MESH_NODES = {"bluray": 9, "single_dtv": 9, "dual_dtv": 16}


@dataclass(frozen=True)
class PowerEstimate:
    """Average power of one design at one operating point."""

    design: str
    app: str
    clock_mhz: int
    gates: int
    watts: float

    @property
    def milliwatts(self) -> float:
        return self.watts * 1e3


def estimate_power(
    design: str,
    app: str,
    clock_mhz: int,
    activity: Optional[float] = None,
) -> PowerEstimate:
    """Average power for ``design`` running ``app`` at ``clock_mhz``.

    ``activity`` is a 0..1 switching-activity factor (e.g. the measured
    memory utilization of a simulation run); None uses the nominal
    activity the Table V calibration assumes.
    """
    if clock_mhz <= 0:
        raise ValueError("clock_mhz must be positive")
    nodes = APP_MESH_NODES.get(app)
    if nodes is None:
        raise ValueError(f"unknown application {app!r}")
    gates = full_noc(design, mesh_nodes=nodes).total
    watts = gates * clock_mhz * WATTS_PER_GATE_MHZ
    if activity is not None:
        if not 0.0 <= activity <= 1.0:
            raise ValueError("activity must be within [0, 1]")
        # Nominal calibration corresponds to ~0.65 activity.
        dynamic = 1.0 - STATIC_FRACTION
        watts *= STATIC_FRACTION + dynamic * (activity / 0.65)
    return PowerEstimate(design, app, clock_mhz, gates, watts)


#: The operating points of Table V.
TABLE5_POINTS = [
    ("single_dtv", 200),
    ("bluray", 400),
    ("dual_dtv", 800),
]


def table5() -> Dict[str, Dict[str, float]]:
    """Average power (mW) in the shape of Table V."""
    designs = ("conv", "sdram-aware", "gss+sagm+sti")
    result: Dict[str, Dict[str, float]] = {}
    for app, mhz in TABLE5_POINTS:
        row = {
            design: estimate_power(design, app, mhz).milliwatts
            for design in designs
        }
        result[f"{app}@{mhz}MHz"] = row
    return result
