"""Analytical gate-count model (Table IV).

The paper synthesizes CONV, [4], and the proposed design with Synopsys
Design Vision on the 45 nm OSU PDK and reports gate counts for the flow
controller, one router, the memory subsystem, and a full 3x3 NoC with the
memory subsystem.  Synthesis is substituted here by a primitive-level area
model: every module is decomposed into the storage and logic primitives it
instantiates (flit buffer cells, scheduler comparators, token counters,
bank counters, reorder-buffer entries, ...), each with a gate cost typical
of a 45 nm standard-cell mapping.  The decomposition follows the paper's
architecture descriptions:

* CONV flow controller — plain round-robin arbitration;
* [4] flow controller — SDRAM-aware scheduling state per input (RA/BA/RW
  comparators, aging) with a starvation table;
* GSS flow controller — the same scheduling state plus token counters, the
  PCT filter cascade, and per-bank STI counters, but optimized
  event-driven (the paper reports it 8.9 % *smaller* than [4]);
* CONV memory subsystem — MemMax (4 threads x 32-flit request + data
  buffers, QoS arbitration) + Databahn (lookahead queue, open-page
  tracker) + reorder buffers;
* [4] subsystem — thin controller with PRE/RAS/CAS buffers;
* proposed subsystem — the same minus most PRE-buffer entries (AP performs
  the precharge) plus the AP tag path.

Absolute numbers are calibrated to land near Table IV; the *ratios* between
designs are structural consequences of the buffer/logic inventories.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

# ---------------------------------------------------------------------- #
# Primitive gate costs (NAND2-equivalent gates, 45 nm standard cells)
# ---------------------------------------------------------------------- #

GATES_PER_FLIT_BUFFER = 420        # 64-bit flit register + control
GATES_PER_COMPARATOR = 45          # address-field comparator
GATES_PER_COUNTER = 38             # small saturating counter
GATES_PER_ARBITER_PORT = 150       # round-robin arbitration slice
GATES_PER_FSM_STATE = 60
GATES_PER_REORDER_ENTRY = 520      # tag + data slot + match logic
GATES_CONTROL_OVERHEAD = 400


@dataclass(frozen=True)
class ModuleCost:
    """Gate count of one module with its itemized contributions."""

    name: str
    items: Dict[str, int]

    @property
    def total(self) -> int:
        return sum(self.items.values())


# ---------------------------------------------------------------------- #
# Flow controllers
# ---------------------------------------------------------------------- #


def conv_flow_controller(ports: int = 5) -> ModuleCost:
    """Round-robin flow controller of the conventional router."""
    return ModuleCost(
        "conv-flow-controller",
        {
            "rr_arbiter": ports * GATES_PER_ARBITER_PORT,
            "grant_fsm": 8 * GATES_PER_FSM_STATE,
            "winner_take_all": ports * 140,
            "control": 1000 + ports * 110,
        },
    )


def sdram_aware_flow_controller(ports: int = 5, banks: int = 8) -> ModuleCost:
    """[4]'s SDRAM-aware flow controller."""
    base = conv_flow_controller(ports).items
    return ModuleCost(
        "sdram-aware-flow-controller",
        {
            **base,
            # per input: RA/BA/RW registers + comparators vs last scheduled
            "condition_comparators": ports * 3 * GATES_PER_COMPARATOR,
            "last_request_state": 3 * 120,
            "aging_table": ports * 2 * GATES_PER_COUNTER,
            "grouping_logic": 1500,
            "schedule_select": ports * 180,
        },
    )


def gss_flow_controller(ports: int = 5, banks: int = 8, sti: bool = True) -> ModuleCost:
    """The proposed GSS flow controller (event-driven, Section V).

    It adds token counters, the PCT filter cascade, the priority-exclusion
    CAM, and per-bank STI counters — but drops [4]'s grouping logic for an
    event-driven implementation, ending up slightly smaller than [4]
    (Table IV reports -8.9 %).
    """
    base = conv_flow_controller(ports).items
    items = {
        **base,
        "condition_comparators": ports * 3 * GATES_PER_COMPARATOR,
        "last_request_state": 3 * 120,
        "token_counters": ports * GATES_PER_COUNTER * 2,
        "pct_filter_cascade": 6 * 70,
        "priority_exclusion": ports * 60,
        "schedule_select": ports * 140,
    }
    if sti:
        items["sti_bank_counters"] = banks * GATES_PER_COUNTER
    return ModuleCost("gss-flow-controller", items)


# ---------------------------------------------------------------------- #
# Routers
# ---------------------------------------------------------------------- #


def router(flow_controller: ModuleCost, ports: int = 5, buffer_flits: int = 20) -> ModuleCost:
    """A wormhole router: input buffers + crossbar + routing + flow control."""
    return ModuleCost(
        f"router[{flow_controller.name}]",
        {
            "input_buffers": ports * buffer_flits * GATES_PER_FLIT_BUFFER,
            "crossbar": ports * ports * 360,
            "routing_logic": ports * 240,
            "output_scheduler": ports * 310,
            "flow_controller": flow_controller.total,
            "control": GATES_CONTROL_OVERHEAD,
        },
    )


# ---------------------------------------------------------------------- #
# Memory subsystems
# ---------------------------------------------------------------------- #


def conv_memory_subsystem(threads: int = 4, thread_flits: int = 32) -> ModuleCost:
    """MemMax + Databahn + reorder buffers (the paper's CONV subsystem)."""
    return ModuleCost(
        "conv-memory-subsystem",
        {
            "thread_request_buffers": threads * thread_flits * GATES_PER_FLIT_BUFFER,
            "thread_data_buffers": threads * thread_flits * GATES_PER_FLIT_BUFFER,
            "qos_arbiter": threads * 2200,
            "reorder_buffers": 64 * GATES_PER_REORDER_ENTRY * 9,
            "databahn_lookahead": 6 * 2600,
            "page_table": 8 * 480,
            "command_scheduler": 5200,
            "sdram_phy_interface": 21000,
            "control": 14000,
        },
    )


def sdram_aware_memory_subsystem() -> ModuleCost:
    """[4]'s thin subsystem: PRE/RAS/CAS buffers, no reorder machinery."""
    return ModuleCost(
        "sdram-aware-memory-subsystem",
        {
            "input_buffer": 36 * GATES_PER_FLIT_BUFFER,
            "pre_buffer": 20 * 900,
            "ras_buffer": 20 * 900,
            "cas_buffer": 20 * 1150,
            "output_buffer": 64 * GATES_PER_FLIT_BUFFER,
            "data_buffer": 64 * GATES_PER_FLIT_BUFFER,
            "command_scheduler": 4600,
            "sdram_phy_interface": 21000,
            "control": 9000,
        },
    )


def app_aware_memory_subsystem() -> ModuleCost:
    """The proposed Fig. 6 subsystem: AP replaces most PRE-buffer entries,
    and the partially-open-page policy needs only the tag path extra."""
    base = sdram_aware_memory_subsystem().items.copy()
    base["pre_buffer"] = 4 * 900          # AP substitutes for PRE commands
    base["ap_tag_path"] = 1400
    base["partial_open_page_fsm"] = 8 * GATES_PER_FSM_STATE
    return ModuleCost("app-aware-memory-subsystem", base)


# ---------------------------------------------------------------------- #
# Full NoC (Table IV bottom row)
# ---------------------------------------------------------------------- #


def full_noc(design: str, mesh_nodes: int = 9, gss_routers: int = 3) -> ModuleCost:
    """A 3x3 NoC with memory subsystem, per Table IV.

    For the proposed design only ``gss_routers`` routers carry GSS flow
    controllers (the paper equips just the routers on the memory path) and
    the rest keep conventional flow controllers.
    """
    if design == "conv":
        r = router(conv_flow_controller())
        subsystem = conv_memory_subsystem()
        routers_total = mesh_nodes * r.total
    elif design == "sdram-aware":
        r = router(sdram_aware_flow_controller())
        subsystem = sdram_aware_memory_subsystem()
        routers_total = mesh_nodes * r.total
    elif design == "gss+sagm+sti":
        gss = router(gss_flow_controller())
        conv = router(conv_flow_controller())
        subsystem = app_aware_memory_subsystem()
        routers_total = gss_routers * gss.total + (mesh_nodes - gss_routers) * conv.total
    else:
        raise ValueError(f"unknown design {design!r}")
    return ModuleCost(
        f"noc3x3[{design}]",
        {"routers": routers_total, "memory_subsystem": subsystem.total},
    )


def table4() -> Dict[str, Dict[str, int]]:
    """Gate counts in the shape of Table IV."""
    return {
        "flow_controller": {
            "conv": conv_flow_controller().total,
            "sdram-aware": sdram_aware_flow_controller().total,
            "gss+sagm+sti": gss_flow_controller().total,
        },
        "router": {
            "conv": router(conv_flow_controller()).total,
            "sdram-aware": router(sdram_aware_flow_controller()).total,
            "gss+sagm+sti": router(gss_flow_controller()).total,
        },
        "memory_subsystem": {
            "conv": conv_memory_subsystem().total,
            "sdram-aware": sdram_aware_memory_subsystem().total,
            "gss+sagm+sti": app_aware_memory_subsystem().total,
        },
        "noc_3x3": {
            "conv": full_noc("conv").total,
            "sdram-aware": full_noc("sdram-aware").total,
            "gss+sagm+sti": full_noc("gss+sagm+sti").total,
        },
    }
