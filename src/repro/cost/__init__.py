"""Analytical hardware cost models (Table IV gate count, Table V power)."""

from .gate_count import (
    ModuleCost,
    app_aware_memory_subsystem,
    conv_flow_controller,
    conv_memory_subsystem,
    full_noc,
    gss_flow_controller,
    router,
    sdram_aware_flow_controller,
    sdram_aware_memory_subsystem,
    table4,
)
from .power import APP_MESH_NODES, PowerEstimate, TABLE5_POINTS, estimate_power, table5

__all__ = [
    "APP_MESH_NODES",
    "ModuleCost",
    "PowerEstimate",
    "TABLE5_POINTS",
    "app_aware_memory_subsystem",
    "conv_flow_controller",
    "conv_memory_subsystem",
    "estimate_power",
    "full_noc",
    "gss_flow_controller",
    "router",
    "sdram_aware_flow_controller",
    "sdram_aware_memory_subsystem",
    "table4",
    "table5",
]
