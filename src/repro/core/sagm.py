"""SDRAM access granularity matching (SAGM, Section IV-C).

Cores split every memory request into short packets whose payload matches
the SDRAM access granularity:

* DDR I/II — the device runs in BL 4 mode, so packets carry at most 4
  beats (two data cycles);
* DDR III — the device uses the BL4/BL8 on-the-fly mode, so packets carry
  at most 8 beats, with a trailing short chunk allowed.

The *last* short packet of a split carries the auto-precharge tag: the
memory subsystem's partially-open-page policy keeps the bank open across
the split's row-hitting siblings and closes it for free (AP rides on the
final CAS) once the parent request is fully served.

Splitting also serves the priority service: under winner-take-all
bandwidth allocation, a priority packet now waits at most one short packet
(2 data cycles on DDR I/II) instead of up to a 64-BL enhancer burst before
re-competing for the channel (Section III-B).
"""

from __future__ import annotations

from typing import Iterator, List

from ..dram.request import MemoryRequest
from ..obs.events import EventType
from ..sim.config import DdrGeneration


class SagmSplitter:
    """Splits memory requests at the core's network interface.

    The auto-precharge tag goes on the last short packet of a split *when
    the transaction ends at the SDRAM row boundary*: closing there is free
    (any sequential successor needs a new row regardless) and saves the PRE
    command slot, which is the Fig. 5 benefit.  A transaction that ends
    mid-row leaves the bank open — the partially-open-page policy — so
    sequential streaming keeps its row-buffer hits.
    """

    def __init__(
        self, ddr: DdrGeneration, row_columns: int = 1024, tracer=None
    ) -> None:
        if row_columns <= 0:
            raise ValueError("row_columns must be positive")
        self.ddr = ddr
        self.granularity_beats = ddr.sagm_granularity_beats
        self.row_columns = row_columns
        self.tracer = tracer

    def _ends_row(self, request: MemoryRequest) -> bool:
        return request.column + request.beats >= self.row_columns

    def split(self, request: MemoryRequest, id_source: Iterator[int]) -> List[MemoryRequest]:
        """Split ``request`` into granularity-sized short requests.

        ``id_source`` yields fresh request ids for the short packets.  The
        parent id is preserved in ``parent_id`` so the master's network
        interface can reassemble responses; columns advance so each short
        packet addresses its own slice of the original burst (all slices
        share the parent's row: the split relation is a row-buffer hit).
        """
        gran = self.granularity_beats
        if request.beats <= gran:
            single = self._clone(request, next(id_source), request.column,
                                 request.beats, 0, 1)
            single.ap_tag = self._ends_row(request)
            parts = [single]
        else:
            count = (request.beats + gran - 1) // gran
            parts = []
            remaining = request.beats
            column = request.column
            for index in range(count):
                beats = min(gran, remaining)
                part = self._clone(
                    request, next(id_source), column, beats, index, count
                )
                part.ap_tag = index == count - 1 and self._ends_row(request)
                parts.append(part)
                column += beats
                remaining -= beats
        tracer = self.tracer
        if tracer:
            tracer.emit(
                EventType.SAGM_SPLIT,
                request.issued_cycle,
                f"core{request.master}",
                request_id=request.request_id,
                parts=[part.request_id for part in parts],
                beats=request.beats,
                granularity=gran,
            )
        return parts

    def _clone(
        self,
        request: MemoryRequest,
        new_id: int,
        column: int,
        beats: int,
        index: int,
        count: int,
    ) -> MemoryRequest:
        return MemoryRequest(
            request_id=new_id,
            master=request.master,
            bank=request.bank,
            row=request.row,
            column=column,
            beats=beats,
            is_read=request.is_read,
            service=request.service,
            is_demand=request.is_demand,
            issued_cycle=request.issued_cycle,
            parent_id=request.request_id,
            split_index=index,
            split_count=count,
        )


def split_plan(total_beats: int, granularity: int) -> List[int]:
    """Pure helper: the beat sizes a request of ``total_beats`` splits into.

    Mirrors the paper's example (Section IV-C): a packet of 'BL 9' splits
    into 2+2+2+2+1 chunks on DDR I/II and 4+4+1 on DDR III (in data cycles;
    beats here are twice that).
    """
    if total_beats <= 0:
        raise ValueError("total_beats must be positive")
    if granularity <= 0:
        raise ValueError("granularity must be positive")
    sizes = []
    remaining = total_beats
    while remaining > 0:
        chunk = min(granularity, remaining)
        sizes.append(chunk)
        remaining -= chunk
    return sizes
